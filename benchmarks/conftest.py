"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one experiment of EXPERIMENTS.md.  Besides
the timing numbers collected by pytest-benchmark, each experiment produces a
small result table (the "rows the paper reports" — here, the logical
predictions of each theorem and the measured values).  The :func:`emit`
helper prints that table and also writes it to ``benchmarks/results/`` so the
numbers in EXPERIMENTS.md can be regenerated and diffed.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Mapping, Sequence

import pytest

RESULTS_DIRECTORY = Path(__file__).parent / "results"


def emit(experiment_id: str, title: str, table_text: str) -> None:
    """Print an experiment's result table and persist it under benchmarks/results/."""
    banner = f"\n=== {experiment_id}: {title} ===\n{table_text}\n"
    print(banner)
    RESULTS_DIRECTORY.mkdir(exist_ok=True)
    path = RESULTS_DIRECTORY / f"{experiment_id}.txt"
    path.write_text(banner.lstrip("\n") + "\n")


@pytest.fixture(scope="session")
def emit_result():
    """Fixture handing benchmarks the :func:`emit` helper."""
    return emit
