"""E10 — construction size law and build-time scaling.

The paper states that ``R_G`` and ``φ_G`` are constructible in time polynomial
in the size of ``G``, with ``|R_G| = 7m + 1`` tuples and
``m + n + m(m−1)/2 + 1`` columns.  The benchmark sweeps the clause count,
checks the size law exactly, and times the construction to confirm the
polynomial (quadratic-in-m, from the pair columns) growth of the build cost.
"""

from repro.analysis import format_table
from repro.reductions import RGConstruction
from repro.sat import planted_satisfiable


def _formula(clauses):
    formula, _ = planted_satisfiable(max(4, min(3 * clauses, 10)), clauses, seed=clauses)
    return formula


def _size_rows(clause_counts):
    rows = []
    for clauses in clause_counts:
        formula = _formula(clauses)
        construction = RGConstruction(formula)
        rows.append(
            {
                "m": construction.formula.num_clauses,
                "n": construction.formula.num_variables,
                "|R_G|": len(construction.relation),
                "predicted 7m+1": construction.predicted_relation_size(),
                "columns": len(construction.scheme),
                "predicted m+n+m(m-1)/2+1": construction.predicted_column_count(),
                "expression factors": len(construction.expression.parts),
            }
        )
    return rows


def test_e10_size_law(benchmark, emit_result):
    rows = benchmark.pedantic(
        lambda: _size_rows((3, 4, 6, 8, 12, 16, 24, 32)), rounds=1, iterations=1
    )
    emit_result("E10", "construction size law (|R_G| = 7m+1, column count)", format_table(rows))
    for row in rows:
        assert row["|R_G|"] == row["predicted 7m+1"]
        assert row["columns"] == row["predicted m+n+m(m-1)/2+1"]
        assert row["expression factors"] == row["m"] + 1


def test_e10_build_time_small(benchmark):
    """Construction time at m = 8."""
    formula = _formula(8)
    construction = benchmark(RGConstruction, formula)
    assert len(construction.relation) == 7 * construction.formula.num_clauses + 1


def test_e10_build_time_large(benchmark):
    """Construction time at m = 32 (quadratically more columns than m = 8)."""
    formula = _formula(32)
    construction = benchmark(RGConstruction, formula)
    assert len(construction.relation) == 7 * construction.formula.num_clauses + 1
