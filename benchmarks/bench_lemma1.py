"""E2 — Lemma 1 / Proposition 1 across formula families.

For satisfiable and unsatisfiable 3CNF formulas of growing size, the benchmark
checks that ``φ_G(R_G) = R_G ∪ R̃_G`` (one extra tuple per satisfying
assignment) and that the pair-column projection gains exactly the single tuple
``u_G`` iff the formula is satisfiable, and times the construction + evaluation
pipeline.
"""

from repro.analysis import format_table
from repro.expressions import evaluate
from repro.reductions import RGConstruction
from repro.sat import count_models, is_satisfiable
from repro.workloads import satisfiable_family, unsatisfiable_family


def _cases():
    return satisfiable_family(clause_counts=(3, 4, 5)) + unsatisfiable_family(
        extra_clause_counts=(0, 2)
    )


def _check_case(case):
    construction = RGConstruction(case.formula)
    result = evaluate(construction.expression, construction.relation)
    projection = evaluate(construction.pair_projection_expression(), construction.relation)
    satisfiable = is_satisfiable(construction.formula)
    models = count_models(construction.formula)
    return {
        "case": case.label,
        "m": construction.formula.num_clauses,
        "n": construction.formula.num_variables,
        "|R_G| (=7m+1)": len(construction.relation),
        "|phi(R_G)|": len(result),
        "predicted (7m+1+#SAT)": construction.predicted_result_size(models),
        "lemma1": result == construction.expected_result(),
        "prop1 (+u_G iff SAT)": projection
        == construction.expected_pair_projection(satisfiable),
    }


def test_e2_lemma1_family(benchmark, emit_result):
    rows = benchmark.pedantic(
        lambda: [_check_case(case) for case in _cases()], rounds=1, iterations=1
    )
    emit_result("E2", "Lemma 1 / Proposition 1 across formula families", format_table(rows))
    assert all(row["lemma1"] and row["prop1 (+u_G iff SAT)"] for row in rows)
    assert all(row["|phi(R_G)|"] == row["predicted (7m+1+#SAT)"] for row in rows)


def test_e2_single_evaluation(benchmark):
    """Time one representative construction + evaluation (m=5, satisfiable)."""
    case = satisfiable_family(clause_counts=(5,))[0]

    def run():
        construction = RGConstruction(case.formula)
        return evaluate(construction.expression, construction.relation)

    result = benchmark(run)
    assert len(result) >= 7 * case.formula.num_clauses + 1
