"""E1 — the paper's worked example (p. 106).

Regenerates the one explicit table in the paper: the 22-tuple, 12-column
relation ``R_G`` for ``G = (x1∨x2∨x3)(¬x2∨x3∨¬x4)(¬x3∨¬x4∨¬x5)`` and the
expression ``φ_G``, checks the construction against the verbatim
transcription, and times building and evaluating it.
"""

from repro.analysis import format_table
from repro.expressions import evaluate
from repro.reductions import RGConstruction
from repro.workloads import (
    PAPER_EXAMPLE_EXPRESSION_TEXT,
    paper_example_formula,
    paper_example_relation,
)


def test_e1_construction(benchmark, emit_result):
    """Build R_G / φ_G for the example formula and compare with the printed table."""
    construction = benchmark(RGConstruction, paper_example_formula())
    printed = paper_example_relation()
    result = evaluate(construction.expression, construction.relation)
    rows = [
        {
            "quantity": "|R_G| (tuples)",
            "paper": 22,
            "measured": len(construction.relation),
            "match": construction.relation == printed,
        },
        {
            "quantity": "columns of R_G",
            "paper": 12,
            "measured": len(construction.scheme),
            "match": construction.scheme == printed.scheme,
        },
        {
            "quantity": "phi_G matches printed expression",
            "paper": "yes",
            "measured": "yes"
            if construction.expression.to_text() == PAPER_EXAMPLE_EXPRESSION_TEXT
            else "no",
            "match": construction.expression.to_text() == PAPER_EXAMPLE_EXPRESSION_TEXT,
        },
        {
            "quantity": "|phi_G(R_G)| (Lemma 1: 22 + 20 models)",
            "paper": 42,
            "measured": len(result),
            "match": len(result) == 42,
        },
    ]
    emit_result("E1", "paper worked example (p. 106)", format_table(rows))
    assert all(row["match"] for row in rows)


def test_e1_evaluation(benchmark):
    """Time evaluating φ_G(R_G) on the example."""
    construction = RGConstruction(paper_example_formula())
    result = benchmark(evaluate, construction.expression, construction.relation)
    assert len(result) == 42
