"""E4 — Theorem 2: cardinality bounds (DP / NP / co-NP reductions).

Reports, for every satisfiable/unsatisfiable pair combination, the exact
cardinality of the product instance against the ``(β+1)β'`` target and the
``[β(β'+1)+1, β(β'+1)+β']`` window, plus the one-sided bounds on single
formulas, and times the bound decisions.
"""

from repro.analysis import format_table
from repro.decision import CardinalityDecider
from repro.reductions import (
    Theorem2LowerBoundReduction,
    Theorem2TwoSidedReduction,
    Theorem2UpperBoundReduction,
)
from repro.workloads import sat_unsat_pairs, satisfiable_family, unsatisfiable_family


def _two_sided_row(label, pair):
    reduction = Theorem2TwoSidedReduction(pair)
    decider = CardinalityDecider()
    exact = reduction.exact_instance()
    window = reduction.window_instance()
    cardinality = decider.cardinality(exact.expression, exact.relation)
    return {
        "pair": label,
        "beta": reduction.beta,
        "beta'": reduction.beta_prime,
        "|phi(R)|": cardinality,
        "target (beta+1)*beta'": exact.lower,
        "window": f"[{window.lower}, {window.upper}]",
        "exact holds": exact.holds_for(cardinality),
        "window holds": window.holds_for(cardinality),
        "expected": reduction.expected_yes(),
    }


def _one_sided_rows():
    rows = []
    decider = CardinalityDecider()
    for case in satisfiable_family(clause_counts=(3,)) + unsatisfiable_family(
        extra_clause_counts=(0,)
    ):
        lower = Theorem2LowerBoundReduction(case.formula)
        upper = Theorem2UpperBoundReduction(case.formula)
        lower_instance = lower.instance()
        upper_instance = upper.instance()
        cardinality = decider.cardinality(lower_instance.expression, lower_instance.relation)
        rows.append(
            {
                "formula": case.label,
                "|phi(R_G)|": cardinality,
                "lower bound 7m+2 holds (NP side)": cardinality >= lower_instance.lower,
                "expected sat": lower.expected_yes(),
                "upper bound 7m+1 holds (co-NP side)": cardinality <= upper_instance.upper,
                "expected unsat": upper.expected_yes(),
            }
        )
    return rows


def test_e4_two_sided(benchmark, emit_result):
    pairs = sat_unsat_pairs()
    rows = benchmark.pedantic(
        lambda: [_two_sided_row(label, pair) for label, pair in pairs],
        rounds=1,
        iterations=1,
    )
    emit_result("E4", "Theorem 2: two-sided cardinality bounds (DP)", format_table(rows))
    for row in rows:
        assert row["exact holds"] == row["expected"]
        assert row["window holds"] == row["expected"]


def test_e4_one_sided(benchmark, emit_result):
    rows = benchmark.pedantic(_one_sided_rows, rounds=1, iterations=1)
    emit_result("E4-one-sided", "Theorem 2: one-sided bounds (NP / co-NP)", format_table(rows))
    for row in rows:
        assert row["lower bound 7m+2 holds (NP side)"] == row["expected sat"]
        assert row["upper bound 7m+1 holds (co-NP side)"] == row["expected unsat"]
