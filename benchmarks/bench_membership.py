"""E8 — the NP / co-NP side results: tuple membership and the project-join fixpoint.

For satisfiable and unsatisfiable formulas, checks that ``u_G ∈ π_Y(φ_G(R_G))``
iff ``G`` is satisfiable (Yannakakis / Proposition 1) and that
``*_i π_{Y_i}(R_G) = R_G`` iff ``G`` is unsatisfiable (Maier–Sagiv–Yannakakis),
and compares four membership deciders (evaluation, streaming-engine with
early exit, certificate search, SAT-backed) on the same instances.
"""

from repro.analysis import format_table
from repro.decision import (
    CertificateMembershipDecider,
    EngineMembershipDecider,
    ProjectJoinFixpointDecider,
    SatBackedMembershipDecider,
    tuple_in_result,
)
from repro.reductions import FixpointReduction, MembershipReduction
from repro.sat import is_satisfiable
from repro.workloads import satisfiable_family, unsatisfiable_family


def _cases():
    return satisfiable_family(clause_counts=(3, 4)) + unsatisfiable_family(
        extra_clause_counts=(0,)
    )


def _check(case):
    membership = MembershipReduction(case.formula)
    fixpoint = FixpointReduction(case.formula)
    membership_instance = membership.instance()
    fixpoint_instance = fixpoint.instance()

    by_evaluation = tuple_in_result(
        membership_instance.tuple, membership.expression(), membership_instance.relation
    )
    by_engine = EngineMembershipDecider().decide(
        membership_instance.tuple, membership.expression(), membership_instance.relation
    )
    by_certificate = (
        CertificateMembershipDecider().decide(
            membership_instance.tuple, membership.expression(), membership_instance.relation
        )
        is not None
    )
    by_sat = SatBackedMembershipDecider().decide(
        membership_instance.tuple, membership.expression(), membership_instance.relation
    )
    fixpoint_holds = ProjectJoinFixpointDecider().holds(
        fixpoint_instance.relation, fixpoint_instance.projection_schemes
    )
    ground_truth = is_satisfiable(membership.construction.formula)
    return {
        "formula": case.label,
        "u_G member (evaluation)": by_evaluation,
        "u_G member (engine)": by_engine,
        "u_G member (certificate)": by_certificate,
        "u_G member (SAT-backed)": by_sat,
        "*pi(R)=R (fixpoint)": fixpoint_holds,
        "G satisfiable": ground_truth,
        "agree": by_evaluation == by_engine == by_certificate == by_sat == ground_truth
        and fixpoint_holds == (not ground_truth),
    }


def test_e8_membership_and_fixpoint(benchmark, emit_result):
    rows = benchmark.pedantic(
        lambda: [_check(case) for case in _cases()], rounds=1, iterations=1
    )
    emit_result(
        "E8",
        "NP membership (u_G ∈ π_Y φ_G(R_G)) and co-NP fixpoint (φ_G(R_G) = R_G)",
        format_table(rows),
    )
    assert all(row["agree"] for row in rows)


def test_e8_certificate_decider_time(benchmark):
    """Time the certificate search on a satisfiable instance."""
    case = satisfiable_family(clause_counts=(4,))[0]
    reduction = MembershipReduction(case.formula)
    instance = reduction.instance()
    decider = CertificateMembershipDecider()
    witness = benchmark(
        decider.decide, instance.tuple, reduction.expression(), instance.relation
    )
    assert witness is not None


def test_e8_sat_backed_decider_time(benchmark):
    """Time the SAT-backed decider on the same instance."""
    case = satisfiable_family(clause_counts=(4,))[0]
    reduction = MembershipReduction(case.formula)
    instance = reduction.instance()
    decider = SatBackedMembershipDecider()
    answer = benchmark(
        decider.decide, instance.tuple, reduction.expression(), instance.relation
    )
    assert answer
