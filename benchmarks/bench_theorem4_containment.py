"""E6 — Theorem 4: query containment/equivalence w.r.t. a fixed relation (Π₂ᵖ).

For planted true and false Q-3SAT instances, builds the fixed relation
``R'_G`` and the two queries ``π_X(φ¹)``, ``π_X(φ²)``, decides containment and
equivalence by evaluation, and checks both against the independent ∀∃
evaluator.  Timing covers the full reduction + decision pipeline.
"""

from repro.analysis import format_table
from repro.decision import ContainmentDecider
from repro.qbf import evaluate_by_expansion
from repro.reductions import Theorem4Reduction
from repro.workloads import qbf_family


def _check(label, instance, planted_truth):
    reduction = Theorem4Reduction(instance)
    comparison = reduction.containment_instance()
    verdict = ContainmentDecider().compare_queries(
        comparison.first, comparison.second, comparison.relation
    )
    qbf_truth = evaluate_by_expansion(reduction.qbf_instance)
    return {
        "instance": label,
        "|R'_G|": len(comparison.relation),
        "|Q1(R)|": verdict.left_cardinality,
        "|Q2(R)|": verdict.right_cardinality,
        "Q1 subset Q2": verdict.left_in_right,
        "Q1 = Q2": verdict.equivalent,
        "forall-exists truth": qbf_truth,
        "planted": planted_truth,
        "agree": verdict.left_in_right == qbf_truth == planted_truth
        and verdict.equivalent == qbf_truth,
    }


def test_e6_containment_reduction(benchmark, emit_result):
    # |X| is kept small: the fixed relation R'_G grows with the clause count
    # and the naive evaluation of φ¹ enumerates every assignment of the
    # formula's variables, so larger universal sets move the benchmark from
    # seconds into minutes without changing the shape of the result.
    cases = qbf_family(universal_counts=(2, 3))
    rows = benchmark.pedantic(
        lambda: [_check(label, inst, truth) for label, inst, truth in cases],
        rounds=1,
        iterations=1,
    )
    emit_result(
        "E6",
        "Theorem 4: Q1(R'_G) ⊆ Q2(R'_G) iff forall X exists X' G",
        format_table(rows),
    )
    assert all(row["agree"] for row in rows)


def test_e6_decision_time(benchmark):
    """Time the containment decision alone on the canonical false gadget."""
    from repro.qbf import canonical_false_q3sat

    reduction = Theorem4Reduction(canonical_false_q3sat())
    comparison = reduction.containment_instance()
    decider = ContainmentDecider()
    verdict = benchmark(
        decider.compare_queries, comparison.first, comparison.second, comparison.relation
    )
    assert not verdict.left_in_right
