"""E3 — Theorem 1: query-result equality (DP-completeness reduction).

Runs the 3SAT-3UNSAT reduction on all four satisfiable/unsatisfiable pair
combinations, reports which side of the "iff" each lands on, and times the
equality decision on the produced instances.
"""

from repro.analysis import format_table
from repro.decision import QueryResultEqualityDecider
from repro.reductions import Theorem1Reduction
from repro.workloads import sat_unsat_pairs


def _check_pair(label, pair):
    reduction = Theorem1Reduction(pair)
    relation, expression, conjectured = reduction.instance()
    verdict = QueryResultEqualityDecider().decide(expression, relation, conjectured)
    return {
        "pair": label,
        "|R|": len(relation),
        "|r| (conjectured)": len(conjectured),
        "|phi(R)|": verdict.result_cardinality,
        "phi(R)=r": verdict.equal,
        "expected (G sat & G' unsat)": reduction.expected_equal(),
        "agree": verdict.equal == reduction.expected_equal(),
    }


def test_e3_equality_reduction(benchmark, emit_result):
    pairs = sat_unsat_pairs()
    rows = benchmark.pedantic(
        lambda: [_check_pair(label, pair) for label, pair in pairs],
        rounds=1,
        iterations=1,
    )
    emit_result("E3", "Theorem 1: phi(R) = r iff G satisfiable and G' unsatisfiable", format_table(rows))
    assert all(row["agree"] for row in rows)
    assert sum(row["phi(R)=r"] for row in rows) == 1


def test_e3_equality_decision_time(benchmark):
    """Time only the equality decision on the yes-instance."""
    label, pair = sat_unsat_pairs()[0]
    reduction = Theorem1Reduction(pair)
    relation, expression, conjectured = reduction.instance()
    decider = QueryResultEqualityDecider()
    verdict = benchmark(decider.decide, expression, relation, conjectured)
    assert verdict.equal
