"""E5 — Theorem 3: #SAT via tuple counting (and the corollary's counter).

Sweeps satisfiable, unsatisfiable, and random formulas; for each one counts
``|φ_G(R_G)|`` by evaluation and by the corollary's project-join counter,
recovers ``#SAT(G)`` through the Theorem 3 identity, and cross-checks against
the DPLL model counter.  The timing compares the relational route against the
dedicated SAT-side counter.
"""

from repro.analysis import format_table
from repro.decision import TupleCounter
from repro.reductions import Theorem3Reduction
from repro.sat import count_models
from repro.workloads import mixed_family, satisfiable_family, unsatisfiable_family


def _cases():
    # The mixed family is kept at a low clause/variable ratio: naive evaluation
    # of φ_G is exponential in the clause count (that is the point of the
    # paper), so the benchmark sweep stays in the regime where it finishes in
    # seconds rather than minutes.
    return (
        satisfiable_family(clause_counts=(3, 4))
        + unsatisfiable_family(extra_clause_counts=(0,))
        + mixed_family(count=2, num_variables=5, clause_ratio=1.4)
    )


def _count_case(case):
    reduction = Theorem3Reduction(case.formula)
    instance = reduction.instance()
    counter = TupleCounter()
    tuple_count = counter.count(instance.expression, instance.relation)
    corollary_count = counter.count_project_join(
        instance.relation, reduction.projection_schemes()
    )
    via_query = reduction.models_from_tuple_count(tuple_count)
    via_sat = count_models(reduction.construction.formula)
    return {
        "formula": case.label,
        "offset 7m+1": reduction.offset(),
        "|phi(R_G)| (evaluation)": tuple_count,
        "|phi(R_G)| (corollary count)": corollary_count,
        "#SAT via query": via_query,
        "#SAT via DPLL": via_sat,
        "agree": via_query == via_sat and tuple_count == corollary_count,
    }


def test_e5_counting_identity(benchmark, emit_result):
    rows = benchmark.pedantic(
        lambda: [_count_case(case) for case in _cases()], rounds=1, iterations=1
    )
    emit_result("E5", "Theorem 3: #SAT(G) = |phi_G(R_G)| - (7m+1)", format_table(rows))
    assert all(row["agree"] for row in rows)


def test_e5_relational_counting_time(benchmark):
    """Time the relational counting route on one satisfiable formula."""
    case = satisfiable_family(clause_counts=(4,))[0]
    reduction = Theorem3Reduction(case.formula)
    instance = reduction.instance()
    counter = TupleCounter()
    count = benchmark(counter.count, instance.expression, instance.relation)
    assert count >= reduction.offset()


def test_e5_sat_counting_time(benchmark):
    """Time the SAT-side counter on the same formula, for comparison."""
    case = satisfiable_family(clause_counts=(4,))[0]
    models = benchmark(count_models, case.formula)
    assert models > 0
