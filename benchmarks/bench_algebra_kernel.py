"""Microbenchmark of the positional algebra kernel vs the seed implementation.

Measures ops/sec for ``natural_join`` and ``project`` across scheme widths
2–16 and cardinalities 10^2–10^4, for both the compiled-plan positional
kernel (:class:`repro.algebra.Relation`) and the retained dict-based seed
reference (:mod:`repro.algebra.reference`), and writes the numbers to
``benchmarks/results/BENCH_algebra.json`` so future PRs have a machine-
readable perf trajectory.  The headline metric is the geometric-mean speedup
of the kernel over the reference on the combined join+project workload; the
kernel is expected to stay >= 5x.

Since PR 2 the document also carries an ``engine`` section comparing the
streaming execution engine (:mod:`repro.engine`) against the materialising
kernel evaluators on the intermediate-blowup workload: the engine's peak
*live* row count must stay strictly below both the optimiser's and the naive
evaluator's peak materialised cardinality, at a steady-state runtime within
``MAX_ENGINE_RUNTIME_RATIO`` of the PR 1 kernel path.  Since the
memory-budget PR it additionally carries ``spill`` and ``parallel``
sections: the m=12 instance run under a ``SPILL_BUDGET_ROWS`` budget
(Grace-hash spilling, output set-equal to the unbudgeted run, every build
table inside the budget) and under a ``PARALLEL_WORKERS``-way partitioned
probe scan (speedup recorded together with the host's CPU count; the
``MIN_PARALLEL_SPEEDUP`` gate applies where >= 2 CPUs exist).  Every section
is *appended* to the existing document — ``BENCH_algebra.json`` is the perf
trajectory anchor and is extended, never replaced.

Run standalone for the full sweep::

    PYTHONPATH=src python benchmarks/bench_algebra_kernel.py

Under pytest a reduced kernel grid runs (cardinalities 10^2-10^3) to keep
the suite fast; the standalone sweep adds the 10^4 points.  The engine
comparison runs the same blowup grid either way (see ``BLOWUP_CLAUSES``).
"""

from __future__ import annotations

import json
import math
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

from repro.algebra import Relation, naive_natural_join, naive_project
from repro.api import Session
from repro.engine import (
    AdaptiveConfig,
    EngineEvaluator,
    MemoryBudget,
    PlannerConfig,
    default_backend,
)
from repro.expressions import (
    InstrumentedEvaluator,
    OptimizedEvaluator,
    Projection,
    evaluate,
)
from repro.expressions.ast import Join, Operand
from repro.perf import kernel_counters, plan_cache_stats
from repro.reductions import RGConstruction
from repro.workloads import (
    actual_greedy_order,
    chain_peak,
    growing_construction_family,
    join_parts,
    planner_join_order,
)

RESULTS_DIRECTORY = Path(__file__).parent / "results"
OUTPUT_PATH = RESULTS_DIRECTORY / "BENCH_algebra.json"

WIDTHS = (2, 4, 8, 16)
QUICK_CARDINALITIES = (100, 1000)
FULL_CARDINALITIES = (100, 1000, 10000)
MIN_EXPECTED_SPEEDUP = 5.0

#: Clause counts for the engine-vs-kernel blowup comparison.  The regime of
#: interest starts around m=10: below that the greedy optimiser's peak is
#: still input-sized and there is nothing for streaming to win; above m=12
#: the naive evaluator (needed as the full-materialisation baseline) takes
#: tens of seconds.
BLOWUP_CLAUSES = (10, 12)
MAX_ENGINE_RUNTIME_RATIO = 1.25

#: Budget/parallel smoke parameters (the m=12 acceptance instance): the
#: build-side row budget the Grace-hash spill must respect, and the probe
#: worker count whose speedup the ``parallel`` section records.
SPILL_BUDGET_ROWS = 256
PARALLEL_WORKERS = 4
#: Required 4-worker speedup — only enforceable where every worker has a
#: core to run on (``cpu_count >= workers``); on smaller hosts the measured
#: number is still recorded (with ``cpu_count``) but the gate is vacuous.
MIN_PARALLEL_SPEEDUP = 1.5

#: Serving parameters: how many distinct prepared queries one Session serves
#: round-robin, and the allowed steady-state per-execute overhead of the
#: facade over calling the pinned backend evaluator directly.
SERVING_QUERIES = 8
SERVING_MAX_OVERHEAD = 1.05

#: Networked serving-tier parameters: concurrent keep-alive clients driven
#: by the load generator, requests each client issues, worker processes
#: behind the HTTP front, and the allowed end-to-end throughput cost of the
#: whole tier (HTTP parse + admission + budget lease + pipe IPC + JSON) vs
#: the same mixed traffic executed directly on one warm in-process Session
#: (measured ~1.2x; gated at 2x so the serving fleet is guaranteed to
#: sustain at least half the raw in-process rate).  The override budget is
#: the per-request engine budget the demonstration leg attaches to every
#: request — small enough that the heavy three-way join must spill.
SERVER_CLIENTS = 8
SERVER_REQUESTS_PER_CLIENT = 25
SERVER_POOL_SIZE = 2
SERVER_MAX_OVERHEAD = 2.0
SERVER_OVERRIDE_BUDGET_ROWS = 64
#: Skew exponent for the Zipf-mix leg: rank-k query weight 1/(k+1)^s.  At
#: s=1.2 over the 8-query mix the hottest query draws ~43% of traffic —
#: realistic serving concentration, served from pinned plans.
SERVER_ZIPF_SKEW = 1.2
#: Scale-out gates for the multiplexing + result-cache legs.  The cached
#: Zipf leg replays the skewed mix against a cache-enabled front after a
#: round-robin warm pass touched every key: at least half the requests
#: must come back from the cache (in practice ~100% — the mix holds 8
#: keys and the cache 256 entries) and its p99 must beat the uncached
#: zipf leg's.  The head-of-line leg pins the tentpole: with one worker
#: running a budget-64 spilling execute of the heavy join, fast-query
#: p99 through the multiplexed pipe (worker_concurrency=4) must be at
#: most a quarter of the serialized (worker_concurrency=1) value, where
#: the first fast request queues behind the whole ~1s spill.
SERVER_CACHE_MIN_HIT_RATE = 0.5
SERVER_HOL_MAX_P99_RATIO = 0.25
SERVER_HOL_FAST_QUERIES = 12

#: Robustness parameters (the total-spill memory model at m=12).  The
#: *gated* budget re-runs the spill scenario with the PR 6 machinery
#: (spilling dedup alongside the Grace joins) and enforces the runtime
#: price of spilling; the *tiny* budget — a sixth of the engine's natural
#: m=12 footprint (~393 live rows) — and the prefer-merge external-sort
#: leg assert the zero-overflow contract where every operator class must
#: spill, with their runtime recorded unguarded (at that scarcity ~10 of
#: 11 joins spill and every sort fragments into budget-sized runs; the
#: differential fuzz grid pushes the same contract down to 4-row budgets).
ROBUSTNESS_GATE_BUDGET_ROWS = 256
ROBUSTNESS_TINY_BUDGET_ROWS = 64
MAX_ROBUSTNESS_RUNTIME_RATIO = 1.5

#: Adaptive-estimation parameters: the clause counts whose
#: greedy-with-sampling ordering is compared against the actual-size greedy
#: oracle (m=14 is the instance the backoff estimator loses), the allowed
#: peak degradation, and the allowed steady-state runtime overhead of
#: adaptive execution (guards + sampling) on well-estimated queries.
ADAPTIVE_CLAUSES = (12, 14)
ADAPTIVE_MAX_PEAK_RATIO = 3.5
ADAPTIVE_MAX_RUNTIME_RATIO = 1.1

#: Plan-store parameters.  The repin leg pins a plan against catastrophic
#: one-row statistics, lets the first execution correct itself mid-stream,
#: and then demands a *corrected steady state*: ``PLANSTORE_ROUNDS``
#: further executions with zero additional re-plans, at a runtime no worse
#: than the store-less adaptive evaluator whose stale pin re-plans
#: mid-stream on every execution (that uncorrected pin *is* the static
#: plan the repin replaces).  The warm-sample leg rebuilds plans
#: repeatedly over unchanged relations: after the first build the sample
#: cache must serve at least ``PLANSTORE_MIN_HIT_RATE`` of catalog lookups
#: and ``sample_builds`` must stop growing.
PLANSTORE_ROUNDS = 20
PLANSTORE_MAX_RUNTIME_RATIO = 1.0
PLANSTORE_MIN_HIT_RATE = 0.9
PLANSTORE_REBUILDS = 10

#: Observability parameters (pay-for-what-you-use, measured at m=12).  An
#: attached-but-trace-off observability layer must stay within 1.05x of a
#: bare evaluator (the disabled path is one attribute check per operator);
#: full span tracing may cost up to 1.25x; and the spans of a traced run
#: must attribute >= 95% of the measured wall time to operator spans —
#: otherwise ``explain_analyze`` is decorating, not explaining.
OBSERVABILITY_CLAUSE_COUNT = 12
MAX_DISABLED_OBSERVE_RATIO = 1.05
MAX_TRACING_OVERHEAD_RATIO = 1.25
MIN_ATTRIBUTED_FRACTION = 0.95


def _merge_into_document(updates: Dict) -> Dict:
    """Merge ``updates`` into BENCH_algebra.json and write it back.

    The document is the perf trajectory anchor: sections owned by other
    benchmark sections (e.g. ``engine`` vs the kernel sweep) must survive a
    partial run, so every writer reads, updates, and rewrites.
    """
    document: Dict = {}
    if OUTPUT_PATH.exists():
        document = json.loads(OUTPUT_PATH.read_text())
    document.update(updates)
    RESULTS_DIRECTORY.mkdir(exist_ok=True)
    OUTPUT_PATH.write_text(json.dumps(document, indent=2) + "\n")
    return document


def _attribute_names(width: int, offset: int = 0) -> List[str]:
    return [f"A{i}" for i in range(offset, offset + width)]


def _join_operands(width: int, cardinality: int):
    """Two width-``width`` relations sharing one near-unique key column.

    The shared column makes the join output size ~``cardinality`` so the
    benchmark measures per-tuple kernel cost, not output blow-up.
    """
    half = max(width // 2, 1)
    left_scheme = ["K"] + _attribute_names(half)
    right_scheme = ["K"] + _attribute_names(half, offset=half)
    left = Relation.from_rows(
        left_scheme,
        [(i,) + tuple((i + j) % 7 for j in range(half)) for i in range(cardinality)],
    )
    right = Relation.from_rows(
        right_scheme,
        [(i,) + tuple((i * 3 + j) % 5 for j in range(half)) for i in range(cardinality)],
    )
    return left, right


def _project_operand(width: int, cardinality: int):
    scheme = _attribute_names(width)
    relation = Relation.from_rows(
        scheme,
        [tuple((i + j) % (cardinality // 2 + 1) for j in range(width)) for i in range(cardinality)],
    )
    target = scheme[: max(width // 2, 1)]
    return relation, target


def _time_op(op: Callable[[], object], min_seconds: float = 0.2, min_rounds: int = 3) -> float:
    """Return ops/sec for ``op``, timing enough rounds to fill ``min_seconds``."""
    # One warmup round (also compiles/caches plans, matching steady state).
    op()
    rounds = 0
    elapsed = 0.0
    while elapsed < min_seconds or rounds < min_rounds:
        start = time.perf_counter()
        op()
        elapsed += time.perf_counter() - start
        rounds += 1
        if rounds >= 200:
            break
    return rounds / elapsed


def run_benchmark(cardinalities=QUICK_CARDINALITIES, widths=WIDTHS) -> Dict:
    """Run the sweep and return the result document (also written to disk)."""
    cases = []
    speedups = []
    for width in widths:
        for cardinality in cardinalities:
            left, right = _join_operands(width, cardinality)
            kernel_join = _time_op(lambda: left.natural_join(right))
            naive_join = _time_op(lambda: naive_natural_join(left, right))

            relation, target = _project_operand(width, cardinality)
            kernel_project = _time_op(lambda: relation.project(target))
            naive_project_ops = _time_op(lambda: naive_project(relation, target))

            join_speedup = kernel_join / naive_join
            project_speedup = kernel_project / naive_project_ops
            speedups.extend([join_speedup, project_speedup])
            cases.append(
                {
                    "width": width,
                    "cardinality": cardinality,
                    "join_kernel_ops_per_sec": round(kernel_join, 3),
                    "join_seed_ops_per_sec": round(naive_join, 3),
                    "join_speedup": round(join_speedup, 2),
                    "project_kernel_ops_per_sec": round(kernel_project, 3),
                    "project_seed_ops_per_sec": round(naive_project_ops, 3),
                    "project_speedup": round(project_speedup, 2),
                }
            )
            print(
                f"width={width:>2} n={cardinality:>5}  "
                f"join {kernel_join:>9.1f}/s vs {naive_join:>8.1f}/s ({join_speedup:>5.1f}x)  "
                f"project {kernel_project:>9.1f}/s vs {naive_project_ops:>8.1f}/s ({project_speedup:>5.1f}x)"
            )

    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    document = _merge_into_document(
        {
            "benchmark": "algebra_kernel",
            "description": "positional kernel vs dict-based seed implementation (ops/sec)",
            "widths": list(widths),
            "cardinalities": list(cardinalities),
            "cases": cases,
            "geomean_speedup": round(geomean, 2),
            "min_expected_speedup": MIN_EXPECTED_SPEEDUP,
            "plan_cache": plan_cache_stats(),
            "kernel_counters": kernel_counters().snapshot(),
        }
    )
    print(f"geomean speedup: {geomean:.2f}x  ->  {OUTPUT_PATH}")
    return document


def _blowup_instances(clause_counts):
    for case in growing_construction_family(clause_counts=tuple(clause_counts)):
        construction = RGConstruction(case.formula)
        query = Projection([construction.s_attribute], construction.expression)
        yield case.label, query, construction.relation


def _best_of_interleaved(
    first: Callable[[], object], second: Callable[[], object], rounds: int = 5
):
    """Best wall-clock seconds for two ops, measured in alternating rounds.

    Interleaving means a load spike on the machine hits both contenders
    rather than biasing whichever happened to run during it.
    """
    first()
    second()
    bests = [math.inf, math.inf]
    for _ in range(rounds):
        for index, op in enumerate((first, second)):
            start = time.perf_counter()
            op()
            elapsed = time.perf_counter() - start
            if elapsed < bests[index]:
                bests[index] = elapsed
    return bests[0], bests[1]


def run_engine_benchmark(clause_counts=BLOWUP_CLAUSES) -> Dict:
    """Engine-vs-kernel comparison on the intermediate-blowup workload.

    Appends an ``engine`` section to the existing ``BENCH_algebra.json``
    document (the perf trajectory anchor is extended, not replaced).
    """
    rows = []
    for label, query, relation in _blowup_instances(clause_counts):
        engine = EngineEvaluator()
        engine_result, engine_trace = engine.evaluate(query, relation)
        optimized_result, optimized_trace = OptimizedEvaluator().evaluate(query, relation)
        naive_result, naive_trace = InstrumentedEvaluator().evaluate(query, relation)
        if engine_result != naive_result or optimized_result != naive_result:
            raise AssertionError(f"evaluator disagreement on {label}")
        # Steady state: the engine re-runs its pinned plan, the optimiser
        # re-runs the PR 1 kernel path.
        engine_seconds, optimized_seconds = _best_of_interleaved(
            lambda: engine.evaluate(query, relation),
            lambda: OptimizedEvaluator().evaluate(query, relation),
        )
        ratio = engine_seconds / optimized_seconds
        rows.append(
            {
                "case": label,
                "input_cardinality": naive_trace.input_cardinality,
                "result_cardinality": naive_trace.result_cardinality,
                "engine_peak_live_rows": engine_trace.peak_live_rows,
                "optimized_peak_materialized": optimized_trace.peak_intermediate_cardinality,
                "naive_peak_materialized": naive_trace.peak_intermediate_cardinality,
                "engine_seconds": round(engine_seconds, 6),
                "optimized_seconds": round(optimized_seconds, 6),
                "runtime_ratio": round(ratio, 3),
            }
        )
        print(
            f"{label:>14}  live {engine_trace.peak_live_rows:>6} vs "
            f"opt peak {optimized_trace.peak_intermediate_cardinality:>6} / "
            f"naive peak {naive_trace.peak_intermediate_cardinality:>6}  "
            f"runtime {engine_seconds * 1e3:,.1f}ms vs {optimized_seconds * 1e3:,.1f}ms "
            f"({ratio:.2f}x)"
        )
    section = {
        "description": (
            "streaming engine peak live rows vs materialising evaluators' peak "
            "cardinality on the R_G blowup workload (output = 1 column)"
        ),
        "clause_counts": list(clause_counts),
        "max_runtime_ratio": MAX_ENGINE_RUNTIME_RATIO,
        "cases": rows,
    }
    _merge_into_document({"engine": section})
    print(f"engine section -> {OUTPUT_PATH}")
    return section


def run_spill_parallel_benchmark(
    clause_count: int = 12,
    budget_rows: int = SPILL_BUDGET_ROWS,
    workers: int = PARALLEL_WORKERS,
) -> Dict:
    """Budgeted (Grace-hash spill) and parallel-probe runs at m=12.

    Appends ``spill`` and ``parallel`` sections to ``BENCH_algebra.json``
    (the perf trajectory anchor is extended, never replaced).  Both runs are
    checked set-equal against the unbudgeted serial engine before anything
    is timed.
    """
    label, query, relation = next(iter(_blowup_instances((clause_count,))))
    bound = {name: relation for name in query.operand_names()}

    serial = EngineEvaluator()
    serial_result, serial_trace = serial.evaluate(query, bound)

    budgeted = EngineEvaluator(budget=budget_rows)
    counters = kernel_counters()
    before = counters.snapshot()
    budgeted_result, budgeted_trace = budgeted.evaluate(query, bound)
    spill_delta = counters.delta_since(before)
    if budgeted_result != serial_result:
        raise AssertionError(f"budgeted engine disagreement on {label}")
    serial_seconds, budgeted_seconds = _best_of_interleaved(
        lambda: serial.evaluate(query, bound),
        lambda: budgeted.evaluate(query, bound),
    )
    spill_section = {
        "description": (
            "Grace-hash spill under a row budget on the R_G blowup workload; "
            "output checked set-equal to the unbudgeted engine"
        ),
        "case": label,
        "budget_rows": budget_rows,
        "peak_live_rows": budgeted_trace.peak_live_rows,
        "peak_build_rows": budgeted_trace.peak_build_rows,
        "unbudgeted_peak_live_rows": serial_trace.peak_live_rows,
        "join_spills": spill_delta["join_spills"],
        "spill_partitions": spill_delta["spill_partitions"],
        "spill_rows": spill_delta["spill_rows"],
        "spill_recursions": spill_delta["spill_recursions"],
        "spill_overflows": spill_delta["spill_overflows"],
        "unbudgeted_seconds": round(serial_seconds, 6),
        "budgeted_seconds": round(budgeted_seconds, 6),
        "spill_runtime_ratio": round(budgeted_seconds / serial_seconds, 3),
    }
    print(
        f"{label:>14}  budget {budget_rows}: live {budgeted_trace.peak_live_rows} "
        f"(unbudgeted {serial_trace.peak_live_rows}), build peak "
        f"{budgeted_trace.peak_build_rows}, {spill_delta['join_spills']} spills / "
        f"{spill_delta['spill_rows']} rows spilled, runtime "
        f"{budgeted_seconds * 1e3:,.1f}ms vs {serial_seconds * 1e3:,.1f}ms"
    )

    parallel = EngineEvaluator(workers=workers)
    try:
        parallel_result, parallel_trace = parallel.evaluate(query, bound)
        if parallel_result != serial_result:
            raise AssertionError(f"parallel engine disagreement on {label}")
        one_worker_seconds, parallel_seconds = _best_of_interleaved(
            lambda: serial.evaluate(query, bound),
            lambda: parallel.evaluate(query, bound),
        )
    finally:
        # Release the persistent fork pool: its daemon workers hold a
        # forked copy of the interpreter and would outlive this benchmark.
        parallel.close()
    speedup = one_worker_seconds / parallel_seconds
    cpu_count = os.cpu_count() or 1
    parallel_section = {
        "description": (
            "parallel probe stage (partitioned probe scan, one pinned plan) "
            "vs the serial engine on the R_G blowup workload"
        ),
        "case": label,
        "workers": workers,
        "backend": default_backend(),
        "cpu_count": cpu_count,
        "workers_1_seconds": round(one_worker_seconds, 6),
        f"workers_{workers}_seconds": round(parallel_seconds, 6),
        "speedup": round(speedup, 3),
        "min_expected_speedup": MIN_PARALLEL_SPEEDUP,
        # The gate needs one core per worker; with fewer, workers time-slice
        # the CPUs and the recorded speedup documents that honestly rather
        # than passing a sham (1 CPU serialises the pool entirely).
        "speedup_gate_active": cpu_count >= workers,
    }
    print(
        f"{label:>14}  probe x{workers} ({parallel_section['backend']}, "
        f"{cpu_count} cpu): {parallel_seconds * 1e3:,.1f}ms vs "
        f"{one_worker_seconds * 1e3:,.1f}ms serial ({speedup:.2f}x)"
    )
    _merge_into_document({"spill": spill_section, "parallel": parallel_section})
    print(f"spill/parallel sections -> {OUTPUT_PATH}")
    return {"spill": spill_section, "parallel": parallel_section}


def _spill_activity(delta: Dict) -> Dict:
    """The spill/robustness counters of one evaluation's delta."""
    names = (
        "join_spills",
        "spill_rows",
        "spill_recursions",
        "spill_overflows",
        "join_chunk_passes",
        "sort_spills",
        "dedup_spills",
        "checkpoint_spills",
        "spill_retries",
    )
    return {name: delta[name] for name in names}


def run_robustness_benchmark(
    clause_count: int = 12,
    gate_budget_rows: int = ROBUSTNESS_GATE_BUDGET_ROWS,
    tiny_budget_rows: int = ROBUSTNESS_TINY_BUDGET_ROWS,
) -> Dict:
    """The total-spill memory model at m=12: zero overflows, priced runtime.

    Appends a ``robustness`` section to ``BENCH_algebra.json`` with three
    legs, each checked set-equal against the unbudgeted engine before
    anything is timed:

    * the **gated** leg re-runs the m=12 spill scenario at
      ``gate_budget_rows`` with the total-spill machinery engaged (the
      dedup seen-sets now spill alongside the Grace joins) and gates its
      runtime at ``MAX_ROBUSTNESS_RUNTIME_RATIO`` of the unbudgeted run;
    * the **tiny** leg squeezes the same query to ``tiny_budget_rows`` —
      a sixth of the engine's natural footprint, where most of the join
      cascade spills — asserting the zero-overflow contract with the
      runtime ratio recorded unguarded (re-streaming nearly every probe
      through disk is the documented price of that scarcity);
    * the **external-sort** leg forces the prefer-merge plan under the
      tiny budget, so every ``Sort`` in the cascade runs externally
      (spilled runs + k-way merge) while sharing one meter.
    """
    counters = kernel_counters()
    label, query, relation = next(iter(_blowup_instances((clause_count,))))
    bound = {name: relation for name in query.operand_names()}

    serial = EngineEvaluator()
    serial_result, serial_trace = serial.evaluate(query, bound)

    def budgeted_run(rows: int, prefer_merge: bool = False):
        budget = MemoryBudget(rows=rows, min_partition_rows=2)
        config = PlannerConfig(prefer_merge=prefer_merge, budget=budget)
        evaluator = EngineEvaluator(config)
        before = counters.snapshot()
        result, trace = evaluator.evaluate(query, bound)
        activity = _spill_activity(counters.delta_since(before))
        if result != serial_result:
            raise AssertionError(
                f"budget={rows} prefer_merge={prefer_merge} engine "
                f"disagreement on {label}"
            )
        return evaluator, trace, activity

    gated, gated_trace, gated_activity = budgeted_run(gate_budget_rows)
    unbudgeted_seconds, gated_seconds = _best_of_interleaved(
        lambda: serial.evaluate(query, bound),
        lambda: gated.evaluate(query, bound),
    )
    gated_leg = {
        "budget_rows": gate_budget_rows,
        "peak_live_rows": gated_trace.peak_live_rows,
        "unbudgeted_peak_live_rows": serial_trace.peak_live_rows,
        "unbudgeted_seconds": round(unbudgeted_seconds, 6),
        "budgeted_seconds": round(gated_seconds, 6),
        "runtime_ratio": round(gated_seconds / unbudgeted_seconds, 3),
        **gated_activity,
    }

    tiny, tiny_trace, tiny_activity = budgeted_run(tiny_budget_rows)
    tiny_serial_seconds, tiny_seconds = _best_of_interleaved(
        lambda: serial.evaluate(query, bound),
        lambda: tiny.evaluate(query, bound),
        rounds=3,
    )
    tiny_leg = {
        "budget_rows": tiny_budget_rows,
        "peak_live_rows": tiny_trace.peak_live_rows,
        "runtime_ratio": round(tiny_seconds / tiny_serial_seconds, 3),
        **tiny_activity,
    }

    _, sort_trace, sort_activity = budgeted_run(tiny_budget_rows, prefer_merge=True)
    sort_leg = {
        "budget_rows": tiny_budget_rows,
        "peak_live_rows": sort_trace.peak_live_rows,
        **sort_activity,
    }

    section = {
        "description": (
            "total-spill memory model on the R_G m=12 workload: gated "
            "runtime at the spill budget, zero-overflow contract down to "
            "a sixth of the engine's natural footprint (hash and "
            "prefer-merge plans; the differential fuzz grid extends the "
            "same contract to 4-row budgets)"
        ),
        "case": label,
        "max_runtime_ratio": MAX_ROBUSTNESS_RUNTIME_RATIO,
        "gated": gated_leg,
        "tiny": tiny_leg,
        "external_sort": sort_leg,
    }
    for name, leg in (("gated", gated_leg), ("tiny", tiny_leg), ("sort", sort_leg)):
        ratio = leg.get("runtime_ratio")
        print(
            f"{label:>14}  {name:>5} budget {leg['budget_rows']:>4}: "
            f"live {leg['peak_live_rows']:>4}, "
            f"{leg['join_spills']} join / {leg['dedup_spills']} dedup / "
            f"{leg['sort_spills']} sort spills, "
            f"{leg['spill_overflows']} overflows"
            + (f", runtime {ratio:.2f}x" if ratio is not None else "")
        )
    _merge_into_document({"robustness": section})
    print(f"robustness section -> {OUTPUT_PATH}")
    return section


def _check_robustness(section: Dict) -> None:
    """The robustness gate shared by pytest and the standalone sweep."""
    for name in ("gated", "tiny", "external_sort"):
        leg = section[name]
        assert leg["spill_overflows"] == 0, (
            f"robustness {name} leg counted {leg['spill_overflows']} "
            "spill overflows — the total-spill contract is broken"
        )
    gated = section["gated"]
    assert gated["join_spills"] > 0 and gated["spill_rows"] > 0
    assert gated["dedup_spills"] >= 1, (
        "the gated leg must exercise the spilling dedup path"
    )
    assert gated["runtime_ratio"] <= section["max_runtime_ratio"], (
        f"total-spill runtime {gated['runtime_ratio']}x exceeds "
        f"{section['max_runtime_ratio']}x of the unbudgeted engine at "
        f"budget {gated['budget_rows']}"
    )
    tiny = section["tiny"]
    assert tiny["join_spills"] >= 5, (
        "the tiny budget must force most of the join cascade to spill"
    )
    sort_leg = section["external_sort"]
    assert sort_leg["sort_spills"] >= 1, (
        "the prefer-merge leg must run at least one external sort"
    )


def _serving_workload(num_queries: int = SERVING_QUERIES):
    """A shared 3-relation database plus ``num_queries`` distinct queries.

    Sized so one execute costs on the order of a millisecond: small enough
    for a tight measurement loop, large enough that the timing reflects the
    engine's work rather than call dispatch alone.
    """
    r = Relation.from_rows(
        "A B", [(i % 40, i % 17) for i in range(600)], name="R"
    )
    s = Relation.from_rows(
        "B C", [(i % 17, i % 23) for i in range(600)], name="S"
    )
    t = Relation.from_rows(
        "C D", [(i % 23, i % 9) for i in range(600)], name="T"
    )
    relations = {"R": r, "S": s, "T": t}
    r_op, s_op, t_op = (
        Operand("R", r.scheme),
        Operand("S", s.scheme),
        Operand("T", t.scheme),
    )
    queries = [
        Projection(["A"], Join((r_op, s_op))),
        Projection(["A", "C"], Join((r_op, s_op))),
        Projection(["B", "D"], Join((s_op, t_op))),
        Projection(["A", "D"], Join((r_op, s_op, t_op))),
        Projection(["D"], Join((r_op, s_op, t_op))),
        Projection(["C"], Join((s_op, t_op))),
        Projection(["A", "B"], Join((r_op, Projection(["B"], s_op)))),
        Projection(["A", "C", "D"], Join((r_op, s_op, t_op))),
    ]
    assert len(queries) >= num_queries
    return relations, queries[:num_queries]


def run_serving_benchmark(num_queries: int = SERVING_QUERIES) -> Dict:
    """Mixed-traffic serving through one Session vs the pinned backend.

    ``num_queries`` prepared queries are executed round-robin through one
    :class:`repro.api.Session` (the serving steady state) and compared with
    calling each query's own pinned ``EngineEvaluator`` directly — the
    facade's per-execute overhead (binding-version check, unified trace,
    counters) must stay within ``SERVING_MAX_OVERHEAD``.  Appends a
    ``serving`` section to ``BENCH_algebra.json`` (the perf trajectory
    anchor is extended, never replaced).
    """
    relations, queries = _serving_workload(num_queries)

    session = Session(relations, backend="engine")
    try:
        prepared = [session.prepare(query) for query in queries]
        direct = []
        for query in queries:
            evaluator = EngineEvaluator()
            bound = {name: relations[name] for name in query.operand_names()}
            evaluator.plan_for(query, bound)  # pin, as the session does
            direct.append((evaluator, query, bound))

        def session_round():
            for query in prepared:
                query.execute()

        def direct_round():
            for evaluator, query, bound in direct:
                evaluator.evaluate(query, bound)

        # Cross-check once before timing anything.
        for query, (evaluator, _, bound) in zip(prepared, direct):
            facade_result = query.execute()
            direct_result, _ = evaluator.evaluate(query.expression, bound)
            if not facade_result.set_equal(direct_result):
                raise AssertionError("facade result diverged from direct backend")

        before = session.stats()
        session_seconds, direct_seconds = _best_of_interleaved(
            session_round, direct_round, rounds=7
        )
        after = session.stats()
    finally:
        session.close()

    overhead = session_seconds / direct_seconds
    executes = after["executes"] - before["executes"]
    section = {
        "description": (
            "N prepared queries round-robin through one Session (engine "
            "backend) vs each query's own pinned evaluator called directly; "
            "overhead is facade cost per execute"
        ),
        "queries": num_queries,
        "session_round_seconds": round(session_seconds, 6),
        "direct_round_seconds": round(direct_seconds, 6),
        "overhead_ratio": round(overhead, 4),
        "max_overhead_ratio": SERVING_MAX_OVERHEAD,
        "plan_builds": after["plan_builds"],
        "plan_cache_hits_delta": after["plan_cache_hits"] - before["plan_cache_hits"],
        "executes_delta": executes,
    }
    print(
        f"serving x{num_queries}: session round {session_seconds * 1e3:,.2f}ms vs "
        f"direct {direct_seconds * 1e3:,.2f}ms ({overhead:.3f}x), "
        f"{after['plan_builds']} plan build(s) for "
        f"{after['executes']} execute(s)"
    )
    _merge_into_document({"serving": section})
    print(f"serving section -> {OUTPUT_PATH}")
    return section


def _hol_fast_p99(relations, queries, concurrency: int) -> float:
    """Fast-query p99 (ms) while one worker runs a budget-64 spill.

    Boots a one-worker, cache-disabled server at the given
    ``worker_concurrency``, warms the fast and heavy-override sessions
    off the clock, launches the heavy three-way join under the
    ``SERVER_OVERRIDE_BUDGET_ROWS`` budget (~1s of Grace spilling at the
    default workload size) on a background connection, waits until the
    pool reports it in flight, then times ``SERVER_HOL_FAST_QUERIES``
    sequential fast queries on a second connection.  At
    ``concurrency=1`` the pipe is the pre-multiplex serialized protocol
    and the first fast query queues behind the whole spill; at the
    default concurrency the dispatcher answers it mid-spill.
    """
    import http.client

    from repro.server import ReproServer
    from repro.server.loadgen import percentile

    fast_query, heavy_query = queries[0], queries[-1]

    def post(connection, payload):
        connection.request(
            "POST",
            "/query",
            body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        body = response.read()
        if response.status != 200:
            raise AssertionError(
                f"HOL probe got HTTP {response.status}: {body!r}"
            )

    heavy_payload = {
        "query": heavy_query,
        "count_only": True,
        "budget": SERVER_OVERRIDE_BUDGET_ROWS,
    }
    fast_payload = {"query": fast_query, "count_only": True}
    with ReproServer(
        relations,
        pool_size=1,
        worker_concurrency=concurrency,
        result_cache_size=0,
    ) as server:
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=120
        )
        slow_connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=120
        )
        try:
            # Warm both sessions (and their pinned plans) off the clock.
            post(connection, fast_payload)
            post(connection, heavy_payload)

            import threading

            def slow():
                post(slow_connection, heavy_payload)

            spill_thread = threading.Thread(target=slow, daemon=True)
            spill_thread.start()
            deadline = time.perf_counter() + 30
            while time.perf_counter() < deadline:
                if sum(server.stats()["pool"]["inflight"]) >= 1:
                    break
                time.sleep(0.002)
            else:
                raise AssertionError("spilling execute never went in flight")

            latencies = []
            for _ in range(SERVER_HOL_FAST_QUERIES):
                start = time.perf_counter()
                post(connection, fast_payload)
                latencies.append((time.perf_counter() - start) * 1000.0)
            spill_thread.join(timeout=120)
        finally:
            connection.close()
            slow_connection.close()
    return percentile(latencies, 99)


def run_server_benchmark(
    clients: int = SERVER_CLIENTS,
    requests_per_client: int = SERVER_REQUESTS_PER_CLIENT,
) -> Dict:
    """The networked serving tier under concurrent mixed load.

    Drives ``clients`` keep-alive HTTP clients through the load generator
    against a :class:`repro.server.ReproServer` worker fleet serving the
    shared mixed-query workload, records exact p50/p99 request latency and
    throughput, and compares end-to-end throughput against the same total
    traffic executed directly on one warm in-process Session (the
    ``SERVER_MAX_OVERHEAD`` gate).  A second load leg attaches a
    ``SERVER_OVERRIDE_BUDGET_ROWS`` per-request budget override to every
    request — the heavy join must spill under it with zero overflows — and
    a third leg replays the mix Zipf(``SERVER_ZIPF_SKEW``)-skewed (the hot
    query dominates, as real serving traffic does) and records its own
    p50/p99; a final ``/metrics`` scrape asserts the merged exposition
    still reports ``repro_spill_overflows_total 0`` across the fleet.
    Those legs run with the result cache disabled so every request pays
    the lease+dispatch path the overhead gate prices.

    Two scale-out legs follow.  ``zipf_cached`` replays the skewed mix
    against a cache-enabled front after a warm pass filled every key:
    hit rate (from the ``/stats`` cache counter deltas) must reach
    ``SERVER_CACHE_MIN_HIT_RATE``, its p99 must beat the uncached zipf
    leg's, and the ``cache_stale_served`` tripwire must read zero.
    ``hol`` prices head-of-line blocking on the worker pipe: fast-query
    p99 while a budget-64 spill is in flight, serialized
    (``worker_concurrency=1``) vs multiplexed, gated at
    ``SERVER_HOL_MAX_P99_RATIO``.  Appends a ``server`` section to
    ``BENCH_algebra.json``.
    """
    import http.client

    from repro.server import ReproServer, ServerConfig, run_load
    from repro.workloads import serving_queries, serving_relations

    relations = serving_relations()
    queries = serving_queries()
    total = clients * requests_per_client

    # Direct baseline: the same number of executes, round-robin over the
    # same prepared queries, on one warm in-process session.
    with Session(relations, backend="engine") as session:
        prepared = [session.prepare(query) for query in queries]
        for query in prepared:
            query.execute()  # warm the pinned plans
        executed = 0
        start = time.perf_counter()
        while executed < total:
            for query in prepared:
                query.execute()
                executed += 1
                if executed >= total:
                    break
        direct_seconds = time.perf_counter() - start
    direct_rps = total / direct_seconds

    # Cache disabled: these legs price the lease+dispatch path itself,
    # and the overhead gate must keep meaning "worker round trip".
    with ReproServer(
        relations, pool_size=SERVER_POOL_SIZE, result_cache_size=0
    ) as server:
        # Warm every worker's sessions and pinned plans off the clock.
        run_load(
            "127.0.0.1", server.port, queries,
            clients=clients, requests_per_client=3,
        )
        report = run_load(
            "127.0.0.1", server.port, queries,
            clients=clients, requests_per_client=requests_per_client,
        )
        override_report = run_load(
            "127.0.0.1", server.port, queries,
            clients=clients,
            requests_per_client=max(2, requests_per_client // 5),
            budget=SERVER_OVERRIDE_BUDGET_ROWS,
        )
        zipf_report = run_load(
            "127.0.0.1", server.port, queries,
            clients=clients, requests_per_client=requests_per_client,
            zipf=SERVER_ZIPF_SKEW,
        )
        # Probe the override's engine behaviour and scrape the fleet.
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=60
        )
        try:
            connection.request(
                "POST",
                "/query",
                body=json.dumps(
                    {
                        "query": queries[-1],
                        "budget": SERVER_OVERRIDE_BUDGET_ROWS,
                        "count_only": True,
                    }
                ),
                headers={"Content-Type": "application/json"},
            )
            probe = json.loads(connection.getresponse().read())
            connection.request("GET", "/metrics")
            exposition = connection.getresponse().read().decode("utf-8")
        finally:
            connection.close()

    # Cached zipf leg: same skewed mix, cache-enabled front.  The
    # round-robin warm pass touches every (query, budget, count_only)
    # key once, so the measured window is served from the cache.
    with ReproServer(relations, pool_size=SERVER_POOL_SIZE) as server:
        run_load(
            "127.0.0.1", server.port, queries,
            clients=clients, requests_per_client=3,
        )
        cache_before = server.stats()["cache"]
        zipf_cached_report = run_load(
            "127.0.0.1", server.port, queries,
            clients=clients, requests_per_client=requests_per_client,
            zipf=SERVER_ZIPF_SKEW,
        )
        cache_after = server.stats()["cache"]
    cache_hits = cache_after["cache_hits"] - cache_before["cache_hits"]
    cache_misses = cache_after["cache_misses"] - cache_before["cache_misses"]
    cache_hit_rate = cache_hits / max(1, cache_hits + cache_misses)

    # Head-of-line leg: serialized pipe vs multiplexed pipe, one worker.
    serialized_fast_p99 = _hol_fast_p99(relations, queries, concurrency=1)
    mux_fast_p99 = _hol_fast_p99(
        relations, queries, concurrency=ServerConfig().worker_concurrency
    )

    overflow_samples = [
        int(line.rsplit(" ", 1)[1])
        for line in exposition.splitlines()
        if line.startswith("repro_spill_overflows_total ")
    ]
    overhead = direct_rps / report.throughput_rps
    summary = report.summary()
    override_summary = override_report.summary()
    zipf_summary = zipf_report.summary()
    zipf_cached_summary = zipf_cached_report.summary()
    section = {
        "description": (
            "concurrent keep-alive clients through the HTTP serving tier "
            "(admission + shared-budget lease + worker-process dispatch) "
            "vs the same mixed traffic on one warm in-process Session; "
            "the override leg forces Grace spilling via a per-request "
            "engine budget"
        ),
        "clients": clients,
        "requests": summary["requests"],
        "pool_size": SERVER_POOL_SIZE,
        "queries": len(queries),
        "ok": summary["ok"],
        "errors": summary["errors"],
        "p50_ms": summary["p50_ms"],
        "p99_ms": summary["p99_ms"],
        "throughput_rps": summary["throughput_rps"],
        "direct_rps": round(direct_rps, 2),
        "overhead_ratio": round(overhead, 4),
        "max_overhead_ratio": SERVER_MAX_OVERHEAD,
        "budget_override": {
            "budget_rows": SERVER_OVERRIDE_BUDGET_ROWS,
            "requests": override_summary["requests"],
            "ok": override_summary["ok"],
            "p50_ms": override_summary["p50_ms"],
            "p99_ms": override_summary["p99_ms"],
            "probe_spilled_rows": probe.get("spilled_rows", 0),
            "probe_spill_overflows": probe.get("spill_overflows", 0),
        },
        "zipf": {
            "skew": SERVER_ZIPF_SKEW,
            "requests": zipf_summary["requests"],
            "ok": zipf_summary["ok"],
            "p50_ms": zipf_summary["p50_ms"],
            "p99_ms": zipf_summary["p99_ms"],
            "throughput_rps": zipf_summary["throughput_rps"],
        },
        "zipf_cached": {
            "skew": SERVER_ZIPF_SKEW,
            "requests": zipf_cached_summary["requests"],
            "ok": zipf_cached_summary["ok"],
            "p50_ms": zipf_cached_summary["p50_ms"],
            "p99_ms": zipf_cached_summary["p99_ms"],
            "throughput_rps": zipf_cached_summary["throughput_rps"],
            "cache_hits": cache_hits,
            "cache_misses": cache_misses,
            "cache_hit_rate": round(cache_hit_rate, 4),
            "min_hit_rate": SERVER_CACHE_MIN_HIT_RATE,
            "uncached_p99_ms": zipf_summary["p99_ms"],
            "stale_served": cache_after["cache_stale_served"],
        },
        "hol": {
            "budget_rows": SERVER_OVERRIDE_BUDGET_ROWS,
            "fast_queries": SERVER_HOL_FAST_QUERIES,
            "serialized_fast_p99_ms": round(serialized_fast_p99, 3),
            "mux_fast_p99_ms": round(mux_fast_p99, 3),
            "p99_ratio": round(mux_fast_p99 / serialized_fast_p99, 4),
            "max_p99_ratio": SERVER_HOL_MAX_P99_RATIO,
            "worker_concurrency": ServerConfig().worker_concurrency,
        },
        "metrics_spill_overflows_total": sum(overflow_samples),
    }
    print(
        f"server x{clients} clients: p50 {summary['p50_ms']:.1f}ms "
        f"p99 {summary['p99_ms']:.1f}ms, {summary['throughput_rps']:.1f} rps "
        f"vs direct {direct_rps:.1f} rps ({overhead:.2f}x); override "
        f"budget {SERVER_OVERRIDE_BUDGET_ROWS}: "
        f"{probe.get('spilled_rows', 0)} row(s) spilled, "
        f"{probe.get('spill_overflows', 0)} overflow(s); "
        f"zipf({SERVER_ZIPF_SKEW}) mix: p50 {zipf_summary['p50_ms']:.1f}ms "
        f"p99 {zipf_summary['p99_ms']:.1f}ms; cached zipf: "
        f"p99 {zipf_cached_summary['p99_ms']:.1f}ms "
        f"({cache_hit_rate:.0%} hit rate); HOL fast p99 "
        f"{mux_fast_p99:.1f}ms mux vs {serialized_fast_p99:.1f}ms serialized"
    )
    _merge_into_document({"server": section})
    print(f"server section -> {OUTPUT_PATH}")
    return section


def _check_server(section: Dict) -> None:
    """The serving-tier gate shared by pytest and the standalone sweep."""
    assert section["ok"] == section["requests"] and section["errors"] == 0, (
        f"load run must serve every request: {section['ok']} ok / "
        f"{section['errors']} error(s) of {section['requests']}"
    )
    assert section["clients"] >= 8, "the gate requires >= 8 concurrent clients"
    assert section["p50_ms"] > 0 and section["p99_ms"] >= section["p50_ms"]
    assert section["overhead_ratio"] <= section["max_overhead_ratio"], (
        f"serving-tier throughput cost {section['overhead_ratio']}x exceeds "
        f"{section['max_overhead_ratio']}x over direct in-process serving"
    )
    override = section["budget_override"]
    assert override["ok"] == override["requests"], (
        "every budget-override request must be served"
    )
    assert override["probe_spilled_rows"] > 0, (
        "the per-request budget override must actually constrain the "
        "engine (expected Grace spilling under the tiny budget)"
    )
    assert override["probe_spill_overflows"] == 0, "overflow tripwire fired"
    zipf = section["zipf"]
    assert zipf["ok"] == zipf["requests"], (
        "every request of the Zipf-skewed mix must be served"
    )
    assert zipf["p50_ms"] > 0 and zipf["p99_ms"] >= zipf["p50_ms"]
    cached = section["zipf_cached"]
    assert cached["ok"] == cached["requests"], (
        "every request of the cached Zipf mix must be served"
    )
    assert cached["cache_hit_rate"] >= cached["min_hit_rate"], (
        f"cached zipf leg hit rate {cached['cache_hit_rate']:.1%} below the "
        f"{cached['min_hit_rate']:.0%} gate"
    )
    assert cached["p99_ms"] < cached["uncached_p99_ms"], (
        f"cache-served p99 {cached['p99_ms']}ms must beat the uncached "
        f"zipf leg's {cached['uncached_p99_ms']}ms"
    )
    assert cached["stale_served"] == 0, (
        "the cache_stale_served tripwire fired during the cached zipf leg"
    )
    hol = section["hol"]
    assert hol["mux_fast_p99_ms"] <= (
        hol["max_p99_ratio"] * hol["serialized_fast_p99_ms"]
    ), (
        f"head-of-line gate: multiplexed fast-query p99 "
        f"{hol['mux_fast_p99_ms']}ms exceeds {hol['max_p99_ratio']}x the "
        f"serialized pipe's {hol['serialized_fast_p99_ms']}ms"
    )
    assert section["metrics_spill_overflows_total"] == 0, (
        "the merged /metrics exposition must report zero spill overflows"
    )


def _replan_demo() -> Dict:
    """A pinned plan whose estimates collapse must correct itself mid-stream."""
    query, big, tiny = _replan_workload()
    evaluator = EngineEvaluator(
        adaptive=AdaptiveConfig(replan_factor=2.0, replan_min_rows=8)
    )
    evaluator.plan_for(query, tiny)
    result, trace = evaluator.evaluate(query, big)
    if result != evaluate(query, big):
        raise AssertionError("adaptive re-plan changed the result")
    return {"replans": trace.replans, "result_cardinality": len(result)}


def run_adaptive_benchmark(clause_counts=ADAPTIVE_CLAUSES) -> Dict:
    """Sampling-quality, re-plan, and overhead numbers for adaptive mode.

    Appends an ``adaptive`` section to ``BENCH_algebra.json`` (the perf
    trajectory anchor is extended, never replaced) with, per clause count,
    the greedy-with-sampling ordering's peak intermediate against the
    actual-size greedy oracle's (the m=14 point is the one the
    exponential-backoff estimator loses); plus a mid-stream re-plan
    demonstration and the steady-state runtime ratio of adaptive over
    static execution on a well-estimated query.
    """
    cases = []
    for label, query, relation in _blowup_instances(clause_counts):
        parts = join_parts(query, relation)
        sampled_order = planner_join_order(
            query, relation, parts, evaluator=EngineEvaluator(adaptive=True)
        )
        sampled_peak = chain_peak(parts, sampled_order)
        actual_peak = chain_peak(parts, actual_greedy_order(parts))
        ratio = sampled_peak / max(actual_peak, 1)
        cases.append(
            {
                "case": label,
                "sampled_peak": sampled_peak,
                "actual_greedy_peak": actual_peak,
                "peak_ratio": round(ratio, 3),
            }
        )
        print(
            f"{label:>14}  sampled-order peak {sampled_peak:>7} vs "
            f"actual-greedy peak {actual_peak:>7}  ({ratio:.2f}x)"
        )

    demo = _replan_demo()
    print(
        f"   replan demo  {demo['replans']} mid-stream re-plan(s), "
        f"{demo['result_cardinality']} result tuples"
    )

    # Steady-state overhead of guards + sampling on a well-estimated query
    # (m=10: estimates hold, so adaptive execution never re-plans and the
    # measured delta is pure guard bookkeeping).
    label, query, relation = next(iter(_blowup_instances((10,))))
    static = EngineEvaluator()
    adaptive = EngineEvaluator(adaptive=True)
    static.evaluate(query, relation)
    adaptive_result, adaptive_trace = adaptive.evaluate(query, relation)
    if adaptive_trace.replans:
        raise AssertionError(f"well-estimated {label} should not re-plan")
    adaptive_seconds, static_seconds = _best_of_interleaved(
        lambda: adaptive.evaluate(query, relation),
        lambda: static.evaluate(query, relation),
    )
    runtime_ratio = adaptive_seconds / static_seconds
    print(
        f"{label:>14}  adaptive {adaptive_seconds * 1e3:,.1f}ms vs "
        f"static {static_seconds * 1e3:,.1f}ms  ({runtime_ratio:.2f}x)"
    )

    section = {
        "description": (
            "sampling-based estimation: greedy-with-sampling ordering peak vs "
            "the actual-size greedy oracle on the R_G family, the mid-stream "
            "re-plan demonstration, and adaptive-vs-static steady-state runtime "
            "on a well-estimated query"
        ),
        "sample_size": AdaptiveConfig().sample_size,
        "sample_join_cap": AdaptiveConfig().sample_join_cap,
        "max_peak_ratio": ADAPTIVE_MAX_PEAK_RATIO,
        "cases": cases,
        "replan_demo": demo,
        "well_estimated_case": label,
        "adaptive_seconds": round(adaptive_seconds, 6),
        "static_seconds": round(static_seconds, 6),
        "runtime_ratio": round(runtime_ratio, 3),
        "max_runtime_ratio": ADAPTIVE_MAX_RUNTIME_RATIO,
    }
    _merge_into_document({"adaptive": section})
    print(f"adaptive section -> {OUTPUT_PATH}")
    return section


def _check_adaptive(section: Dict) -> None:
    """The adaptive gate shared by pytest and the standalone sweep."""
    for case in section["cases"]:
        assert case["peak_ratio"] <= section["max_peak_ratio"], (
            f"{case['case']}: greedy-with-sampling peak {case['sampled_peak']} "
            f"exceeds {section['max_peak_ratio']}x the actual-size oracle's "
            f"{case['actual_greedy_peak']}"
        )
    assert section["replan_demo"]["replans"] >= 1, (
        "the collapsed-estimate demonstration must re-plan mid-stream"
    )
    assert section["runtime_ratio"] <= section["max_runtime_ratio"], (
        f"adaptive steady-state runtime {section['runtime_ratio']}x exceeds "
        f"{section['max_runtime_ratio']}x of static planning"
    )


def _replan_workload():
    """The collapsed-estimate instance shared by the re-plan legs."""
    import random as _random

    rng = _random.Random(20260730)
    big = {
        "R": Relation.from_rows(
            "A B", [(rng.randint(0, 20), rng.randint(0, 8)) for _ in range(300)]
        ),
        "S": Relation.from_rows(
            "B C", [(rng.randint(0, 8), rng.randint(0, 30)) for _ in range(300)]
        ),
        "T": Relation.from_rows(
            "C D", [(rng.randint(0, 30), rng.randint(0, 5)) for _ in range(300)]
        ),
    }
    tiny = {
        name: Relation.from_rows(rel.scheme, [tuple(1 for _ in rel.scheme.names)])
        for name, rel in big.items()
    }
    query = Projection(
        ["A", "D"],
        Operand("R", "A B").join(Operand("S", "B C")).join(Operand("T", "C D")),
    )
    return query, big, tiny


def run_planstore_benchmark(
    rounds: int = PLANSTORE_ROUNDS, rebuilds: int = PLANSTORE_REBUILDS
) -> Dict:
    """The plan store's learning loop, priced and gated.

    Two legs, appended as a ``planstore`` section to ``BENCH_algebra.json``:

    *Repin* — both evaluators pin the collapsed-estimate instance against
    one-row stand-ins.  The store-backed one corrects itself on the first
    execution (one mid-stream re-plan, written back as a ``repin``) and
    must then run ``rounds`` steady-state executions with **zero** further
    re-plans, at a best-of runtime within ``PLANSTORE_MAX_RUNTIME_RATIO``
    of the store-less evaluator — whose stale static pin re-plans
    mid-stream on *every* execution.

    *Warm samples* — ``rebuilds`` forget-then-replan rounds over three
    queries sharing unchanged relations: ``sample_builds`` must stop
    growing after the first round and the sample-cache hit rate must reach
    ``PLANSTORE_MIN_HIT_RATE``.
    """
    adaptive = AdaptiveConfig(replan_factor=2.0, replan_min_rows=8)
    query, big, tiny = _replan_workload()
    reference = evaluate(query, big)

    stale = EngineEvaluator(adaptive=adaptive)
    learned = EngineEvaluator(adaptive=adaptive, planstore=True)
    for evaluator in (stale, learned):
        evaluator.plan_for(query, tiny)
    corrective_result, corrective_trace = learned.evaluate(query, big)
    if corrective_result != reference:
        raise AssertionError("the corrective re-plan changed the result")
    store = learned.planstore
    steady_replans = 0
    for _ in range(rounds):
        result, trace = learned.evaluate(query, big)
        steady_replans += trace.replans
        if result != reference:
            raise AssertionError("a steady-state execution changed the result")
    stale_result, stale_trace = stale.evaluate(query, big)
    if stale_result != reference:
        raise AssertionError("the stale-pin baseline changed the result")
    steady_seconds, stale_seconds = _best_of_interleaved(
        lambda: learned.evaluate(query, big),
        lambda: stale.evaluate(query, big),
    )
    repin_leg = {
        "corrective_replans": corrective_trace.replans,
        "plan_repins": store.repins,
        "steady_rounds": rounds,
        "steady_replans": steady_replans,
        "stale_pin_replans_per_execute": stale_trace.replans,
        "steady_seconds": round(steady_seconds, 6),
        "stale_pin_seconds": round(stale_seconds, 6),
        "runtime_ratio": round(steady_seconds / stale_seconds, 3),
        "max_runtime_ratio": PLANSTORE_MAX_RUNTIME_RATIO,
    }

    warm = EngineEvaluator(adaptive=True, planstore=True)
    queries = [
        Operand("R", "A B").join(Operand("S", "B C")),
        Operand("S", "B C").join(Operand("T", "C D")),
        query,
    ]
    before = kernel_counters().snapshot()
    for expression in queries:
        warm.plan_for(expression, big)
    first_round = kernel_counters().delta_since(before)
    for _ in range(rebuilds):
        for expression in queries:
            warm.forget_plan(expression)
            warm.plan_for(expression, big)
    delta = kernel_counters().delta_since(before)
    lookups = delta["sample_cache_hits"] + delta["sample_cache_misses"]
    hit_rate = delta["sample_cache_hits"] / lookups if lookups else 0.0
    samples_leg = {
        "queries": len(queries),
        "rebuild_rounds": rebuilds,
        "first_round_sample_builds": first_round["sample_builds"],
        "total_sample_builds": delta["sample_builds"],
        "sample_cache_hits": delta["sample_cache_hits"],
        "sample_cache_misses": delta["sample_cache_misses"],
        "hit_rate": round(hit_rate, 4),
        "min_hit_rate": PLANSTORE_MIN_HIT_RATE,
    }

    section = {
        "description": (
            "plan-management learning loop: one corrective mid-stream "
            "re-plan is written back into the pinned plan (zero further "
            "re-plans steady-state, priced against the stale static pin "
            "that re-plans every execution) and repeated plan builds over "
            "unchanged relations run from warm reservoir samples"
        ),
        "repin": repin_leg,
        "warm_samples": samples_leg,
        "store_stats": store.stats(),
    }
    print(
        f"planstore repin: {repin_leg['corrective_replans']} corrective "
        f"re-plan(s), {steady_replans} in {rounds} steady round(s); "
        f"steady {steady_seconds * 1e3:,.2f}ms vs stale pin "
        f"{stale_seconds * 1e3:,.2f}ms ({repin_leg['runtime_ratio']:.2f}x)"
    )
    print(
        f"planstore samples: {delta['sample_builds']} build(s) across "
        f"{rebuilds + 1} round(s), hit rate {hit_rate:.1%}"
    )
    _merge_into_document({"planstore": section})
    print(f"planstore section -> {OUTPUT_PATH}")
    return section


def _check_planstore(section: Dict) -> None:
    """The plan-store gate shared by pytest and the standalone sweep."""
    repin = section["repin"]
    assert repin["corrective_replans"] >= 1, (
        "the collapsed-estimate instance must re-plan mid-stream once"
    )
    assert repin["plan_repins"] == 1, (
        f"exactly one repin expected, got {repin['plan_repins']}"
    )
    assert repin["steady_replans"] == 0, (
        f"the corrected pin must never re-plan again, got "
        f"{repin['steady_replans']} across {repin['steady_rounds']} rounds"
    )
    assert repin["stale_pin_replans_per_execute"] >= 1, (
        "the store-less baseline must keep re-planning mid-stream "
        "(otherwise the runtime comparison prices nothing)"
    )
    assert repin["runtime_ratio"] <= repin["max_runtime_ratio"], (
        f"corrected steady state runs {repin['runtime_ratio']}x the stale "
        f"static pin (gate <= {repin['max_runtime_ratio']}x)"
    )
    samples = section["warm_samples"]
    assert samples["total_sample_builds"] == samples["first_round_sample_builds"], (
        "sample_builds kept growing on rebuilds over unchanged relations"
    )
    assert samples["hit_rate"] >= samples["min_hit_rate"], (
        f"sample-cache hit rate {samples['hit_rate']:.1%} below "
        f"{samples['min_hit_rate']:.0%}"
    )


def run_observability_benchmark(clause_count: int = OBSERVABILITY_CLAUSE_COUNT) -> Dict:
    """Observability overhead + span attribution at m=12.

    Three evaluators run the same pinned plan in interleaved best-of
    rounds: a bare one, one with the observability layer attached but
    tracing off (the production default), and one under full span
    tracing.  A final traced run feeds ``explain_report`` to measure what
    fraction of wall time the operator spans explain.
    """
    from time import perf_counter

    from repro.obs import ObserveConfig, Tracer, explain_report

    label, query, relation = next(_blowup_instances((clause_count,)))
    plain = EngineEvaluator()
    disabled = EngineEvaluator(observe=ObserveConfig(events=True))
    traced = EngineEvaluator(observe=ObserveConfig(trace=True, events=True))

    base_result, _ = plain.evaluate(query, relation)
    for contender in (disabled, traced):
        result, _ = contender.evaluate(query, relation)
        if result != base_result:
            raise AssertionError(f"observed evaluator disagreement on {label}")

    plain_seconds, disabled_seconds = _best_of_interleaved(
        lambda: plain.evaluate(query, relation),
        lambda: disabled.evaluate(query, relation),
    )
    plain_again_seconds, traced_seconds = _best_of_interleaved(
        lambda: plain.evaluate(query, relation),
        lambda: traced.evaluate(query, relation),
    )

    tracer = Tracer()
    start = perf_counter()
    result, trace = plain.evaluate(query, relation, tracer=tracer)
    wall_seconds = perf_counter() - start
    report = explain_report(
        trace.spans, total_seconds=wall_seconds, result_rows=len(result)
    )

    section = {
        "description": (
            "pay-for-what-you-use observability: attached-but-off layer vs "
            "bare evaluator, full span tracing, and explain_analyze span "
            "attribution (R_G m=%d steady state)" % clause_count
        ),
        "case": label,
        "plain_seconds": round(plain_seconds, 6),
        "disabled_seconds": round(disabled_seconds, 6),
        "traced_seconds": round(traced_seconds, 6),
        "disabled_ratio": round(disabled_seconds / plain_seconds, 4),
        "tracing_ratio": round(traced_seconds / plain_again_seconds, 4),
        "max_disabled_ratio": MAX_DISABLED_OBSERVE_RATIO,
        "max_tracing_ratio": MAX_TRACING_OVERHEAD_RATIO,
        "span_count": len(trace.spans),
        "operator_span_count": len(report.operators),
        "attributed_fraction": round(report.attributed_fraction, 4),
        "min_attributed_fraction": MIN_ATTRIBUTED_FRACTION,
    }
    _merge_into_document({"observability": section})
    print(
        f"{label:>14}  plain {plain_seconds * 1e3:,.1f}ms  "
        f"observe-off {disabled_seconds * 1e3:,.1f}ms "
        f"({section['disabled_ratio']:.3f}x)  "
        f"traced {traced_seconds * 1e3:,.1f}ms "
        f"({section['tracing_ratio']:.3f}x)  "
        f"attribution {section['attributed_fraction']:.1%} "
        f"over {section['span_count']} spans"
    )
    print(f"observability section -> {OUTPUT_PATH}")
    return section


def _check_observability(section: Dict) -> None:
    """The observability gate shared by pytest and the standalone sweep."""
    assert section["disabled_ratio"] <= section["max_disabled_ratio"], (
        f"attached-but-off observability costs {section['disabled_ratio']}x, "
        f"exceeding the {section['max_disabled_ratio']}x pay-for-what-you-use "
        "gate"
    )
    assert section["tracing_ratio"] <= section["max_tracing_ratio"], (
        f"span tracing costs {section['tracing_ratio']}x, exceeding the "
        f"{section['max_tracing_ratio']}x gate"
    )
    assert section["attributed_fraction"] >= section["min_attributed_fraction"], (
        f"operator spans attribute only {section['attributed_fraction']:.1%} "
        f"of wall time (gate >= {section['min_attributed_fraction']:.0%}) — "
        "explain_analyze would be decorating, not explaining"
    )


def test_kernel_speedup_over_seed(emit_result):
    """The compiled kernel must beat the seed implementation by >= 5x overall."""
    document = run_benchmark()
    lines = [
        f"width={case['width']:>2} n={case['cardinality']:>5}  "
        f"join {case['join_speedup']:>6.1f}x  project {case['project_speedup']:>6.1f}x"
        for case in document["cases"]
    ]
    lines.append(f"geomean speedup: {document['geomean_speedup']}x")
    emit_result(
        "BENCH-algebra",
        "positional kernel vs seed implementation (join+project ops/sec)",
        "\n".join(lines),
    )
    assert document["geomean_speedup"] >= MIN_EXPECTED_SPEEDUP


def test_engine_streaming_beats_materialisation(emit_result):
    """The streaming engine must bound live rows below both materialised peaks.

    This is the CI smoke gate for the execution engine: on every blowup
    instance the peak number of rows resident in engine state stays strictly
    below the naive evaluator's peak (full materialisation) *and* the
    optimiser's peak, while steady-state runtime stays within
    ``MAX_ENGINE_RUNTIME_RATIO`` of the PR 1 kernel path.
    """
    section = run_engine_benchmark()
    lines = [
        f"{case['case']:>14}  live {case['engine_peak_live_rows']:>6}  "
        f"opt peak {case['optimized_peak_materialized']:>6}  "
        f"naive peak {case['naive_peak_materialized']:>6}  "
        f"runtime ratio {case['runtime_ratio']:>5.2f}x"
        for case in section["cases"]
    ]
    emit_result(
        "BENCH-engine",
        "streaming engine live rows vs materialised peaks (R_G blowup workload)",
        "\n".join(lines),
    )
    for case in section["cases"]:
        assert case["engine_peak_live_rows"] < case["naive_peak_materialized"]
        assert case["engine_peak_live_rows"] < case["optimized_peak_materialized"]
        assert case["runtime_ratio"] <= MAX_ENGINE_RUNTIME_RATIO


def _check_spill_parallel(sections: Dict) -> None:
    """The spill/parallel gate shared by pytest and the standalone sweep."""
    spill = sections["spill"]
    assert spill["join_spills"] > 0 and spill["spill_rows"] > 0
    assert spill["spill_overflows"] == 0
    assert spill["peak_build_rows"] <= spill["budget_rows"]
    assert spill["peak_live_rows"] < spill["unbudgeted_peak_live_rows"]
    parallel = sections["parallel"]
    if os.environ.get("REQUIRE_PARALLEL_GATE") == "1":
        # CI sets this so a too-small runner fails loudly instead of
        # letting the speedup criterion go silently vacuous.
        assert parallel["speedup_gate_active"], (
            f"REQUIRE_PARALLEL_GATE=1 but this host has "
            f"{parallel['cpu_count']} CPU(s) for {parallel['workers']} "
            "workers — the speedup gate would be vacuous; use a runner with "
            "at least one core per worker or unset REQUIRE_PARALLEL_GATE"
        )
    if parallel["speedup_gate_active"]:
        assert parallel["speedup"] >= parallel["min_expected_speedup"], (
            f"{parallel['workers']}-worker probe speedup {parallel['speedup']}x "
            f"below {parallel['min_expected_speedup']}x on "
            f"{parallel['cpu_count']} CPUs"
        )


def _check_serving(section: Dict) -> None:
    """The serving gate shared by pytest and the standalone sweep."""
    assert section["plan_builds"] == section["queries"], (
        "prepare() must compile each query exactly once; got "
        f"{section['plan_builds']} builds for {section['queries']} queries"
    )
    assert section["plan_cache_hits_delta"] == section["executes_delta"], (
        "every timed execute must be a plan-cache hit (no re-planning)"
    )
    assert section["overhead_ratio"] <= section["max_overhead_ratio"], (
        f"session serving overhead {section['overhead_ratio']}x exceeds "
        f"{section['max_overhead_ratio']}x over the pinned backend"
    )


def test_session_serving_overhead(emit_result):
    """One Session serving 8 prepared queries round-robin must stay within
    1.05x of calling each query's pinned evaluator directly, with the
    plan-cache counters proving no execute ever re-planned."""
    section = run_serving_benchmark()
    emit_result(
        "BENCH-serving",
        "prepared-query serving through one Session vs pinned backends",
        f"{section['queries']} queries round-robin  "
        f"session {section['session_round_seconds'] * 1e3:,.2f}ms  "
        f"direct {section['direct_round_seconds'] * 1e3:,.2f}ms  "
        f"overhead {section['overhead_ratio']:.3f}x  "
        f"(plan builds {section['plan_builds']}, "
        f"cache hits {section['plan_cache_hits_delta']}/"
        f"{section['executes_delta']} executes)",
    )
    _check_serving(section)


def test_server_tier_load(emit_result):
    """Eight concurrent clients through the networked serving tier must be
    served completely (p50/p99/throughput recorded) at an end-to-end
    throughput cost within 2x of direct in-process serving, with the
    per-request budget override spilling (zero overflows), the cached
    Zipf leg hitting the result cache at >= 50% with a p99 under the
    uncached leg's, the multiplexed fast-query p99 under a concurrent
    spill at <= 0.25x the serialized pipe's, and the merged /metrics
    exposition confirming both tripwires stayed zero."""
    section = run_server_benchmark()
    override = section["budget_override"]
    cached = section["zipf_cached"]
    hol = section["hol"]
    emit_result(
        "BENCH-server",
        "concurrent mixed load through the HTTP serving tier",
        f"{section['clients']} clients x {SERVER_REQUESTS_PER_CLIENT} reqs "
        f"over {section['pool_size']} workers  "
        f"p50 {section['p50_ms']:.1f}ms  p99 {section['p99_ms']:.1f}ms  "
        f"{section['throughput_rps']:.1f} rps "
        f"(direct {section['direct_rps']:.1f} rps, "
        f"{section['overhead_ratio']:.2f}x)\n"
        f"override budget {override['budget_rows']} rows: "
        f"{override['ok']}/{override['requests']} served, "
        f"p99 {override['p99_ms']:.1f}ms, "
        f"{override['probe_spilled_rows']} row(s) spilled, "
        f"{override['probe_spill_overflows']} overflow(s)\n"
        f"zipf({section['zipf']['skew']}) skewed mix: "
        f"{section['zipf']['ok']}/{section['zipf']['requests']} served, "
        f"p50 {section['zipf']['p50_ms']:.1f}ms  "
        f"p99 {section['zipf']['p99_ms']:.1f}ms  "
        f"{section['zipf']['throughput_rps']:.1f} rps\n"
        f"cached zipf: {cached['ok']}/{cached['requests']} served, "
        f"hit rate {cached['cache_hit_rate']:.0%} "
        f"(gate >= {cached['min_hit_rate']:.0%}), "
        f"p99 {cached['p99_ms']:.2f}ms vs uncached "
        f"{cached['uncached_p99_ms']:.1f}ms, stale served "
        f"{cached['stale_served']}\n"
        f"head-of-line: fast p99 {hol['mux_fast_p99_ms']:.1f}ms multiplexed "
        f"vs {hol['serialized_fast_p99_ms']:.1f}ms serialized "
        f"({hol['p99_ratio']:.3f}x, gate <= {hol['max_p99_ratio']}x); "
        f"fleet spill_overflows_total="
        f"{section['metrics_spill_overflows_total']}",
    )
    _check_server(section)


def test_engine_spill_and_parallel_probe(emit_result):
    """Budget + parallel smoke: at m=12 a 256-row budget must spill while
    matching the unbudgeted output with every build table inside the budget,
    and the 4-worker probe must hit the speedup gate wherever every worker
    has a CPU to run on (the measured number is recorded either way)."""
    sections = run_spill_parallel_benchmark()
    spill, parallel = sections["spill"], sections["parallel"]
    gate = "active" if parallel["speedup_gate_active"] else "inactive (1 cpu)"
    emit_result(
        "BENCH-spill-parallel",
        "memory-budgeted Grace-hash spill + parallel probe (R_G m=12)",
        "\n".join(
            [
                f"{spill['case']:>14}  budget {spill['budget_rows']:>5}  "
                f"live {spill['peak_live_rows']:>6}  build peak "
                f"{spill['peak_build_rows']:>4}  spills {spill['join_spills']:>3}  "
                f"spilled rows {spill['spill_rows']:>6}  "
                f"runtime ratio {spill['spill_runtime_ratio']:>5.2f}x",
                f"{parallel['case']:>14}  probe x{parallel['workers']} "
                f"[{parallel['backend']}]  speedup {parallel['speedup']:>5.2f}x  "
                f"(gate {gate}, {parallel['cpu_count']} cpu)",
            ]
        ),
    )
    _check_spill_parallel(sections)


def test_engine_robustness_total_spill(emit_result):
    """The robustness gate: at m=12 every leg of the total-spill memory
    model — Grace joins + spilling dedup at the gate budget, the whole
    cascade at a sixth of the engine's natural footprint, and the
    prefer-merge plan's external sorts — stays set-equal with zero
    ``spill_overflows``, and the gated leg's runtime stays within 1.5x of
    the unbudgeted engine."""
    section = run_robustness_benchmark()
    lines = []
    for name in ("gated", "tiny", "external_sort"):
        leg = section[name]
        ratio = leg.get("runtime_ratio")
        lines.append(
            f"{name:>13}  budget {leg['budget_rows']:>4}  "
            f"live {leg['peak_live_rows']:>4}  "
            f"spills j{leg['join_spills']}/d{leg['dedup_spills']}/"
            f"s{leg['sort_spills']}  overflows {leg['spill_overflows']}"
            + (f"  runtime {ratio:>5.2f}x" if ratio is not None else "")
        )
    emit_result(
        "BENCH-robustness",
        "total-spill memory model: zero overflows + priced runtime (R_G m=12)",
        "\n".join(lines),
    )
    _check_robustness(section)


def test_observability_overhead(emit_result):
    """The observability gate: at m=12 the attached-but-trace-off layer
    stays within 1.05x of a bare evaluator (tracing is pay-for-what-you-
    use), full span tracing within 1.25x, and the traced run's operator
    spans attribute >= 95% of the measured wall time."""
    section = run_observability_benchmark()
    emit_result(
        "BENCH-observability",
        "span tracing overhead + explain_analyze attribution (R_G m=12)",
        f"{section['case']:>14}  plain {section['plain_seconds'] * 1e3:,.1f}ms  "
        f"observe-off {section['disabled_ratio']:.3f}x "
        f"(gate <= {section['max_disabled_ratio']}x)  "
        f"traced {section['tracing_ratio']:.3f}x "
        f"(gate <= {section['max_tracing_ratio']}x)\n"
        f"{'':>14}  attribution {section['attributed_fraction']:.1%} of wall "
        f"time over {section['operator_span_count']} operator spans "
        f"(gate >= {section['min_attributed_fraction']:.0%})",
    )
    _check_observability(section)


def test_adaptive_estimation_quality(emit_result):
    """The adaptive gate: greedy-with-sampling ordering stays within 3.5x of
    the actual-size oracle at m=12 and m=14 (the instance the backoff
    estimator loses), the collapsed-estimate demonstration re-plans
    mid-stream, and adaptive steady-state execution of a well-estimated
    query stays within 1.1x of static planning."""
    section = run_adaptive_benchmark()
    lines = [
        f"{case['case']:>14}  sampled peak {case['sampled_peak']:>7}  "
        f"oracle peak {case['actual_greedy_peak']:>7}  "
        f"ratio {case['peak_ratio']:>5.2f}x (gate <= {section['max_peak_ratio']}x)"
        for case in section["cases"]
    ]
    lines.append(
        f"   replan demo  {section['replan_demo']['replans']} re-plan(s) "
        f"on the collapsed-estimate instance"
    )
    lines.append(
        f"{section['well_estimated_case']:>14}  adaptive/static runtime "
        f"{section['runtime_ratio']:.3f}x (gate <= {section['max_runtime_ratio']}x)"
    )
    emit_result(
        "BENCH-adaptive",
        "sampling-based estimation + mid-stream re-planning (R_G family)",
        "\n".join(lines),
    )
    _check_adaptive(section)


def test_planstore_learning(emit_result):
    """The plan-store gate: the collapsed-estimate instance corrects itself
    once (the repin), then runs 20 steady-state executions with zero
    further re-plans at <= 1.0x the stale static pin's runtime, and
    repeated plan builds over unchanged relations run from warm samples
    (>= 90% hit rate, sample_builds stops growing)."""
    section = run_planstore_benchmark()
    repin = section["repin"]
    samples = section["warm_samples"]
    emit_result(
        "BENCH-planstore",
        "plan & statistics store: repin steady state + warm sample cache",
        f"repin: {repin['corrective_replans']} corrective re-plan(s), then "
        f"{repin['steady_replans']} in {repin['steady_rounds']} rounds  "
        f"steady {repin['steady_seconds'] * 1e3:,.2f}ms vs stale pin "
        f"{repin['stale_pin_seconds'] * 1e3:,.2f}ms "
        f"({repin['runtime_ratio']:.2f}x, gate <= "
        f"{repin['max_runtime_ratio']}x)\n"
        f"samples: {samples['total_sample_builds']} build(s) across "
        f"{samples['rebuild_rounds'] + 1} rounds of "
        f"{samples['queries']} queries  hit rate {samples['hit_rate']:.1%} "
        f"(gate >= {samples['min_hit_rate']:.0%})",
    )
    _check_planstore(section)


if __name__ == "__main__":
    result = run_benchmark(cardinalities=FULL_CARDINALITIES)
    engine_section = run_engine_benchmark()
    engine_ok = all(
        case["engine_peak_live_rows"] < case["optimized_peak_materialized"]
        and case["engine_peak_live_rows"] < case["naive_peak_materialized"]
        and case["runtime_ratio"] <= MAX_ENGINE_RUNTIME_RATIO
        for case in engine_section["cases"]
    )
    spill_parallel = run_spill_parallel_benchmark()
    try:
        _check_spill_parallel(spill_parallel)
    except AssertionError as failure:
        print(f"spill/parallel gate failed: {failure}")
        engine_ok = False
    robustness_section = run_robustness_benchmark()
    try:
        _check_robustness(robustness_section)
    except AssertionError as failure:
        print(f"robustness gate failed: {failure}")
        engine_ok = False
    serving_section = run_serving_benchmark()
    try:
        _check_serving(serving_section)
    except AssertionError as failure:
        print(f"serving gate failed: {failure}")
        engine_ok = False
    server_section = run_server_benchmark()
    try:
        _check_server(server_section)
    except AssertionError as failure:
        print(f"server gate failed: {failure}")
        engine_ok = False
    adaptive_section = run_adaptive_benchmark()
    try:
        _check_adaptive(adaptive_section)
    except AssertionError as failure:
        print(f"adaptive gate failed: {failure}")
        engine_ok = False
    planstore_section = run_planstore_benchmark()
    try:
        _check_planstore(planstore_section)
    except AssertionError as failure:
        print(f"planstore gate failed: {failure}")
        engine_ok = False
    observability_section = run_observability_benchmark()
    try:
        _check_observability(observability_section)
    except AssertionError as failure:
        print(f"observability gate failed: {failure}")
        engine_ok = False
    sys.exit(0 if result["geomean_speedup"] >= MIN_EXPECTED_SPEEDUP and engine_ok else 1)
