"""Microbenchmark of the positional algebra kernel vs the seed implementation.

Measures ops/sec for ``natural_join`` and ``project`` across scheme widths
2–16 and cardinalities 10^2–10^4, for both the compiled-plan positional
kernel (:class:`repro.algebra.Relation`) and the retained dict-based seed
reference (:mod:`repro.algebra.reference`), and writes the numbers to
``benchmarks/results/BENCH_algebra.json`` so future PRs have a machine-
readable perf trajectory.  The headline metric is the geometric-mean speedup
of the kernel over the reference on the combined join+project workload; the
kernel is expected to stay >= 5x.

Since PR 2 the document also carries an ``engine`` section comparing the
streaming execution engine (:mod:`repro.engine`) against the materialising
kernel evaluators on the intermediate-blowup workload: the engine's peak
*live* row count must stay strictly below both the optimiser's and the naive
evaluator's peak materialised cardinality, at a steady-state runtime within
``MAX_ENGINE_RUNTIME_RATIO`` of the PR 1 kernel path.  The section is
*appended* to the existing document — ``BENCH_algebra.json`` is the perf
trajectory anchor and is extended, never replaced.

Run standalone for the full sweep::

    PYTHONPATH=src python benchmarks/bench_algebra_kernel.py

Under pytest a reduced kernel grid runs (cardinalities 10^2-10^3) to keep
the suite fast; the standalone sweep adds the 10^4 points.  The engine
comparison runs the same blowup grid either way (see ``BLOWUP_CLAUSES``).
"""

from __future__ import annotations

import json
import math
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

from repro.algebra import Relation, naive_natural_join, naive_project
from repro.engine import EngineEvaluator
from repro.expressions import InstrumentedEvaluator, OptimizedEvaluator, Projection
from repro.perf import kernel_counters, plan_cache_stats
from repro.reductions import RGConstruction
from repro.workloads import growing_construction_family

RESULTS_DIRECTORY = Path(__file__).parent / "results"
OUTPUT_PATH = RESULTS_DIRECTORY / "BENCH_algebra.json"

WIDTHS = (2, 4, 8, 16)
QUICK_CARDINALITIES = (100, 1000)
FULL_CARDINALITIES = (100, 1000, 10000)
MIN_EXPECTED_SPEEDUP = 5.0

#: Clause counts for the engine-vs-kernel blowup comparison.  The regime of
#: interest starts around m=10: below that the greedy optimiser's peak is
#: still input-sized and there is nothing for streaming to win; above m=12
#: the naive evaluator (needed as the full-materialisation baseline) takes
#: tens of seconds.
BLOWUP_CLAUSES = (10, 12)
MAX_ENGINE_RUNTIME_RATIO = 1.25


def _merge_into_document(updates: Dict) -> Dict:
    """Merge ``updates`` into BENCH_algebra.json and write it back.

    The document is the perf trajectory anchor: sections owned by other
    benchmark sections (e.g. ``engine`` vs the kernel sweep) must survive a
    partial run, so every writer reads, updates, and rewrites.
    """
    document: Dict = {}
    if OUTPUT_PATH.exists():
        document = json.loads(OUTPUT_PATH.read_text())
    document.update(updates)
    RESULTS_DIRECTORY.mkdir(exist_ok=True)
    OUTPUT_PATH.write_text(json.dumps(document, indent=2) + "\n")
    return document


def _attribute_names(width: int, offset: int = 0) -> List[str]:
    return [f"A{i}" for i in range(offset, offset + width)]


def _join_operands(width: int, cardinality: int):
    """Two width-``width`` relations sharing one near-unique key column.

    The shared column makes the join output size ~``cardinality`` so the
    benchmark measures per-tuple kernel cost, not output blow-up.
    """
    half = max(width // 2, 1)
    left_scheme = ["K"] + _attribute_names(half)
    right_scheme = ["K"] + _attribute_names(half, offset=half)
    left = Relation.from_rows(
        left_scheme,
        [(i,) + tuple((i + j) % 7 for j in range(half)) for i in range(cardinality)],
    )
    right = Relation.from_rows(
        right_scheme,
        [(i,) + tuple((i * 3 + j) % 5 for j in range(half)) for i in range(cardinality)],
    )
    return left, right


def _project_operand(width: int, cardinality: int):
    scheme = _attribute_names(width)
    relation = Relation.from_rows(
        scheme,
        [tuple((i + j) % (cardinality // 2 + 1) for j in range(width)) for i in range(cardinality)],
    )
    target = scheme[: max(width // 2, 1)]
    return relation, target


def _time_op(op: Callable[[], object], min_seconds: float = 0.2, min_rounds: int = 3) -> float:
    """Return ops/sec for ``op``, timing enough rounds to fill ``min_seconds``."""
    # One warmup round (also compiles/caches plans, matching steady state).
    op()
    rounds = 0
    elapsed = 0.0
    while elapsed < min_seconds or rounds < min_rounds:
        start = time.perf_counter()
        op()
        elapsed += time.perf_counter() - start
        rounds += 1
        if rounds >= 200:
            break
    return rounds / elapsed


def run_benchmark(cardinalities=QUICK_CARDINALITIES, widths=WIDTHS) -> Dict:
    """Run the sweep and return the result document (also written to disk)."""
    cases = []
    speedups = []
    for width in widths:
        for cardinality in cardinalities:
            left, right = _join_operands(width, cardinality)
            kernel_join = _time_op(lambda: left.natural_join(right))
            naive_join = _time_op(lambda: naive_natural_join(left, right))

            relation, target = _project_operand(width, cardinality)
            kernel_project = _time_op(lambda: relation.project(target))
            naive_project_ops = _time_op(lambda: naive_project(relation, target))

            join_speedup = kernel_join / naive_join
            project_speedup = kernel_project / naive_project_ops
            speedups.extend([join_speedup, project_speedup])
            cases.append(
                {
                    "width": width,
                    "cardinality": cardinality,
                    "join_kernel_ops_per_sec": round(kernel_join, 3),
                    "join_seed_ops_per_sec": round(naive_join, 3),
                    "join_speedup": round(join_speedup, 2),
                    "project_kernel_ops_per_sec": round(kernel_project, 3),
                    "project_seed_ops_per_sec": round(naive_project_ops, 3),
                    "project_speedup": round(project_speedup, 2),
                }
            )
            print(
                f"width={width:>2} n={cardinality:>5}  "
                f"join {kernel_join:>9.1f}/s vs {naive_join:>8.1f}/s ({join_speedup:>5.1f}x)  "
                f"project {kernel_project:>9.1f}/s vs {naive_project_ops:>8.1f}/s ({project_speedup:>5.1f}x)"
            )

    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    document = _merge_into_document(
        {
            "benchmark": "algebra_kernel",
            "description": "positional kernel vs dict-based seed implementation (ops/sec)",
            "widths": list(widths),
            "cardinalities": list(cardinalities),
            "cases": cases,
            "geomean_speedup": round(geomean, 2),
            "min_expected_speedup": MIN_EXPECTED_SPEEDUP,
            "plan_cache": plan_cache_stats(),
            "kernel_counters": kernel_counters().snapshot(),
        }
    )
    print(f"geomean speedup: {geomean:.2f}x  ->  {OUTPUT_PATH}")
    return document


def _blowup_instances(clause_counts):
    for case in growing_construction_family(clause_counts=tuple(clause_counts)):
        construction = RGConstruction(case.formula)
        query = Projection([construction.s_attribute], construction.expression)
        yield case.label, query, construction.relation


def _best_of_interleaved(
    first: Callable[[], object], second: Callable[[], object], rounds: int = 5
):
    """Best wall-clock seconds for two ops, measured in alternating rounds.

    Interleaving means a load spike on the machine hits both contenders
    rather than biasing whichever happened to run during it.
    """
    first()
    second()
    bests = [math.inf, math.inf]
    for _ in range(rounds):
        for index, op in enumerate((first, second)):
            start = time.perf_counter()
            op()
            elapsed = time.perf_counter() - start
            if elapsed < bests[index]:
                bests[index] = elapsed
    return bests[0], bests[1]


def run_engine_benchmark(clause_counts=BLOWUP_CLAUSES) -> Dict:
    """Engine-vs-kernel comparison on the intermediate-blowup workload.

    Appends an ``engine`` section to the existing ``BENCH_algebra.json``
    document (the perf trajectory anchor is extended, not replaced).
    """
    rows = []
    for label, query, relation in _blowup_instances(clause_counts):
        engine = EngineEvaluator()
        engine_result, engine_trace = engine.evaluate(query, relation)
        optimized_result, optimized_trace = OptimizedEvaluator().evaluate(query, relation)
        naive_result, naive_trace = InstrumentedEvaluator().evaluate(query, relation)
        if engine_result != naive_result or optimized_result != naive_result:
            raise AssertionError(f"evaluator disagreement on {label}")
        # Steady state: the engine re-runs its pinned plan, the optimiser
        # re-runs the PR 1 kernel path.
        engine_seconds, optimized_seconds = _best_of_interleaved(
            lambda: engine.evaluate(query, relation),
            lambda: OptimizedEvaluator().evaluate(query, relation),
        )
        ratio = engine_seconds / optimized_seconds
        rows.append(
            {
                "case": label,
                "input_cardinality": naive_trace.input_cardinality,
                "result_cardinality": naive_trace.result_cardinality,
                "engine_peak_live_rows": engine_trace.peak_live_rows,
                "optimized_peak_materialized": optimized_trace.peak_intermediate_cardinality,
                "naive_peak_materialized": naive_trace.peak_intermediate_cardinality,
                "engine_seconds": round(engine_seconds, 6),
                "optimized_seconds": round(optimized_seconds, 6),
                "runtime_ratio": round(ratio, 3),
            }
        )
        print(
            f"{label:>14}  live {engine_trace.peak_live_rows:>6} vs "
            f"opt peak {optimized_trace.peak_intermediate_cardinality:>6} / "
            f"naive peak {naive_trace.peak_intermediate_cardinality:>6}  "
            f"runtime {engine_seconds * 1e3:,.1f}ms vs {optimized_seconds * 1e3:,.1f}ms "
            f"({ratio:.2f}x)"
        )
    section = {
        "description": (
            "streaming engine peak live rows vs materialising evaluators' peak "
            "cardinality on the R_G blowup workload (output = 1 column)"
        ),
        "clause_counts": list(clause_counts),
        "max_runtime_ratio": MAX_ENGINE_RUNTIME_RATIO,
        "cases": rows,
    }
    _merge_into_document({"engine": section})
    print(f"engine section -> {OUTPUT_PATH}")
    return section


def test_kernel_speedup_over_seed(emit_result):
    """The compiled kernel must beat the seed implementation by >= 5x overall."""
    document = run_benchmark()
    lines = [
        f"width={case['width']:>2} n={case['cardinality']:>5}  "
        f"join {case['join_speedup']:>6.1f}x  project {case['project_speedup']:>6.1f}x"
        for case in document["cases"]
    ]
    lines.append(f"geomean speedup: {document['geomean_speedup']}x")
    emit_result(
        "BENCH-algebra",
        "positional kernel vs seed implementation (join+project ops/sec)",
        "\n".join(lines),
    )
    assert document["geomean_speedup"] >= MIN_EXPECTED_SPEEDUP


def test_engine_streaming_beats_materialisation(emit_result):
    """The streaming engine must bound live rows below both materialised peaks.

    This is the CI smoke gate for the execution engine: on every blowup
    instance the peak number of rows resident in engine state stays strictly
    below the naive evaluator's peak (full materialisation) *and* the
    optimiser's peak, while steady-state runtime stays within
    ``MAX_ENGINE_RUNTIME_RATIO`` of the PR 1 kernel path.
    """
    section = run_engine_benchmark()
    lines = [
        f"{case['case']:>14}  live {case['engine_peak_live_rows']:>6}  "
        f"opt peak {case['optimized_peak_materialized']:>6}  "
        f"naive peak {case['naive_peak_materialized']:>6}  "
        f"runtime ratio {case['runtime_ratio']:>5.2f}x"
        for case in section["cases"]
    ]
    emit_result(
        "BENCH-engine",
        "streaming engine live rows vs materialised peaks (R_G blowup workload)",
        "\n".join(lines),
    )
    for case in section["cases"]:
        assert case["engine_peak_live_rows"] < case["naive_peak_materialized"]
        assert case["engine_peak_live_rows"] < case["optimized_peak_materialized"]
        assert case["runtime_ratio"] <= MAX_ENGINE_RUNTIME_RATIO


if __name__ == "__main__":
    result = run_benchmark(cardinalities=FULL_CARDINALITIES)
    engine_section = run_engine_benchmark()
    engine_ok = all(
        case["engine_peak_live_rows"] < case["optimized_peak_materialized"]
        and case["engine_peak_live_rows"] < case["naive_peak_materialized"]
        and case["runtime_ratio"] <= MAX_ENGINE_RUNTIME_RATIO
        for case in engine_section["cases"]
    )
    sys.exit(0 if result["geomean_speedup"] >= MIN_EXPECTED_SPEEDUP and engine_ok else 1)
