"""Microbenchmark of the positional algebra kernel vs the seed implementation.

Measures ops/sec for ``natural_join`` and ``project`` across scheme widths
2–16 and cardinalities 10^2–10^4, for both the compiled-plan positional
kernel (:class:`repro.algebra.Relation`) and the retained dict-based seed
reference (:mod:`repro.algebra.reference`), and writes the numbers to
``benchmarks/results/BENCH_algebra.json`` so future PRs have a machine-
readable perf trajectory.  The headline metric is the geometric-mean speedup
of the kernel over the reference on the combined join+project workload; the
kernel is expected to stay >= 5x.

Run standalone for the full sweep::

    PYTHONPATH=src python benchmarks/bench_algebra_kernel.py

Under pytest a reduced grid runs (cardinalities 10^2-10^3) to keep the tier-1
suite fast; the standalone sweep adds the 10^4 points.
"""

from __future__ import annotations

import json
import math
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

from repro.algebra import Relation, naive_natural_join, naive_project
from repro.perf import kernel_counters, plan_cache_stats

RESULTS_DIRECTORY = Path(__file__).parent / "results"
OUTPUT_PATH = RESULTS_DIRECTORY / "BENCH_algebra.json"

WIDTHS = (2, 4, 8, 16)
QUICK_CARDINALITIES = (100, 1000)
FULL_CARDINALITIES = (100, 1000, 10000)
MIN_EXPECTED_SPEEDUP = 5.0


def _attribute_names(width: int, offset: int = 0) -> List[str]:
    return [f"A{i}" for i in range(offset, offset + width)]


def _join_operands(width: int, cardinality: int):
    """Two width-``width`` relations sharing one near-unique key column.

    The shared column makes the join output size ~``cardinality`` so the
    benchmark measures per-tuple kernel cost, not output blow-up.
    """
    half = max(width // 2, 1)
    left_scheme = ["K"] + _attribute_names(half)
    right_scheme = ["K"] + _attribute_names(half, offset=half)
    left = Relation.from_rows(
        left_scheme,
        [(i,) + tuple((i + j) % 7 for j in range(half)) for i in range(cardinality)],
    )
    right = Relation.from_rows(
        right_scheme,
        [(i,) + tuple((i * 3 + j) % 5 for j in range(half)) for i in range(cardinality)],
    )
    return left, right


def _project_operand(width: int, cardinality: int):
    scheme = _attribute_names(width)
    relation = Relation.from_rows(
        scheme,
        [tuple((i + j) % (cardinality // 2 + 1) for j in range(width)) for i in range(cardinality)],
    )
    target = scheme[: max(width // 2, 1)]
    return relation, target


def _time_op(op: Callable[[], object], min_seconds: float = 0.2, min_rounds: int = 3) -> float:
    """Return ops/sec for ``op``, timing enough rounds to fill ``min_seconds``."""
    # One warmup round (also compiles/caches plans, matching steady state).
    op()
    rounds = 0
    elapsed = 0.0
    while elapsed < min_seconds or rounds < min_rounds:
        start = time.perf_counter()
        op()
        elapsed += time.perf_counter() - start
        rounds += 1
        if rounds >= 200:
            break
    return rounds / elapsed


def run_benchmark(cardinalities=QUICK_CARDINALITIES, widths=WIDTHS) -> Dict:
    """Run the sweep and return the result document (also written to disk)."""
    cases = []
    speedups = []
    for width in widths:
        for cardinality in cardinalities:
            left, right = _join_operands(width, cardinality)
            kernel_join = _time_op(lambda: left.natural_join(right))
            naive_join = _time_op(lambda: naive_natural_join(left, right))

            relation, target = _project_operand(width, cardinality)
            kernel_project = _time_op(lambda: relation.project(target))
            naive_project_ops = _time_op(lambda: naive_project(relation, target))

            join_speedup = kernel_join / naive_join
            project_speedup = kernel_project / naive_project_ops
            speedups.extend([join_speedup, project_speedup])
            cases.append(
                {
                    "width": width,
                    "cardinality": cardinality,
                    "join_kernel_ops_per_sec": round(kernel_join, 3),
                    "join_seed_ops_per_sec": round(naive_join, 3),
                    "join_speedup": round(join_speedup, 2),
                    "project_kernel_ops_per_sec": round(kernel_project, 3),
                    "project_seed_ops_per_sec": round(naive_project_ops, 3),
                    "project_speedup": round(project_speedup, 2),
                }
            )
            print(
                f"width={width:>2} n={cardinality:>5}  "
                f"join {kernel_join:>9.1f}/s vs {naive_join:>8.1f}/s ({join_speedup:>5.1f}x)  "
                f"project {kernel_project:>9.1f}/s vs {naive_project_ops:>8.1f}/s ({project_speedup:>5.1f}x)"
            )

    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    document = {
        "benchmark": "algebra_kernel",
        "description": "positional kernel vs dict-based seed implementation (ops/sec)",
        "widths": list(widths),
        "cardinalities": list(cardinalities),
        "cases": cases,
        "geomean_speedup": round(geomean, 2),
        "min_expected_speedup": MIN_EXPECTED_SPEEDUP,
        "plan_cache": plan_cache_stats(),
        "kernel_counters": kernel_counters().snapshot(),
    }
    RESULTS_DIRECTORY.mkdir(exist_ok=True)
    OUTPUT_PATH.write_text(json.dumps(document, indent=2) + "\n")
    print(f"geomean speedup: {geomean:.2f}x  ->  {OUTPUT_PATH}")
    return document


def test_kernel_speedup_over_seed(emit_result):
    """The compiled kernel must beat the seed implementation by >= 5x overall."""
    document = run_benchmark()
    lines = [
        f"width={case['width']:>2} n={case['cardinality']:>5}  "
        f"join {case['join_speedup']:>6.1f}x  project {case['project_speedup']:>6.1f}x"
        for case in document["cases"]
    ]
    lines.append(f"geomean speedup: {document['geomean_speedup']}x")
    emit_result(
        "BENCH-algebra",
        "positional kernel vs seed implementation (join+project ops/sec)",
        "\n".join(lines),
    )
    assert document["geomean_speedup"] >= MIN_EXPECTED_SPEEDUP


if __name__ == "__main__":
    result = run_benchmark(cardinalities=FULL_CARDINALITIES)
    sys.exit(0 if result["geomean_speedup"] >= MIN_EXPECTED_SPEEDUP else 1)
