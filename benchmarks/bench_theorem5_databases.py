"""E7 — Theorem 5: comparing databases under a fixed query (Π₂ᵖ).

Same Q-3SAT workload as E6, but now the query ``π_X(φ_G)`` is fixed and the
two compared objects are the databases ``R''_G`` (with falsifying tuples) and
``R_G``.  The benchmark checks the containment/equivalence verdicts against
the ∀∃ evaluator and times the pipeline.
"""

from repro.analysis import format_table
from repro.decision import ContainmentDecider
from repro.qbf import evaluate_by_expansion
from repro.reductions import Theorem5Reduction
from repro.workloads import qbf_family


def _check(label, instance, planted_truth):
    reduction = Theorem5Reduction(instance)
    comparison = reduction.containment_instance()
    verdict = ContainmentDecider().compare_databases(
        comparison.expression, comparison.first, comparison.second
    )
    qbf_truth = evaluate_by_expansion(reduction.qbf_instance)
    return {
        "instance": label,
        "|R''_G|": len(comparison.first),
        "|R_G|": len(comparison.second),
        "|Q(R''_G)|": verdict.left_cardinality,
        "|Q(R_G)|": verdict.right_cardinality,
        "Q(R''_G) subset Q(R_G)": verdict.left_in_right,
        "equal": verdict.equivalent,
        "forall-exists truth": qbf_truth,
        "planted": planted_truth,
        "agree": verdict.left_in_right == qbf_truth == planted_truth
        and verdict.equivalent == qbf_truth,
    }


def test_e7_database_comparison(benchmark, emit_result):
    # Same workload sizing note as E6: small universal sets keep the naive
    # evaluation (intentionally exponential) within a few seconds.
    cases = qbf_family(universal_counts=(2, 3))
    rows = benchmark.pedantic(
        lambda: [_check(label, inst, truth) for label, inst, truth in cases],
        rounds=1,
        iterations=1,
    )
    emit_result(
        "E7",
        "Theorem 5: Q(R''_G) ⊆ Q(R_G) iff forall X exists X' G",
        format_table(rows),
    )
    assert all(row["agree"] for row in rows)


def test_e7_decision_time(benchmark):
    """Time the database-comparison decision on the canonical false gadget."""
    from repro.qbf import canonical_false_q3sat

    reduction = Theorem5Reduction(canonical_false_q3sat())
    comparison = reduction.containment_instance()
    decider = ContainmentDecider()
    verdict = benchmark(
        decider.compare_databases,
        comparison.expression,
        comparison.first,
        comparison.second,
    )
    assert not verdict.left_in_right
