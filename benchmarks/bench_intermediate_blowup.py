"""E9 — intermediate-result blow-up (the introduction's framing claim).

Measures, for the R_G family with growing clause counts and the output kept a
single column wide, the peak intermediate relation size under naive evaluation
versus the projection-push-down + greedy-ordering optimiser, and contrasts the
same measurement on benign random project-join instances.  The paper's claim
is that on the construction the intermediates dwarf both input and output; the
fitted growth base quantifies it.

Since PR 2 each row also reports the streaming engine's peak *live* row count
(:mod:`repro.engine`) — the rows resident in hash tables / dedup sets while
the same query streams — which on the construction must stay below the naive
evaluator's materialised peak.
"""

from repro.analysis import analyze_blowup, fit_exponential_growth, format_table
from repro.expressions import Projection
from repro.reductions import RGConstruction
from repro.workloads import growing_construction_family, random_instance


def _construction_rows():
    rows = []
    points = []
    for case in growing_construction_family(clause_counts=(3, 4, 5, 6)):
        construction = RGConstruction(case.formula)
        query = Projection([construction.s_attribute], construction.expression)
        measurement = analyze_blowup(
            query, construction.relation, label=case.label, compare_engine=True
        )
        rows.append(
            {
                "case": case.label,
                "input": measurement.input_cardinality,
                "output": measurement.output_cardinality,
                "naive peak": measurement.naive_peak,
                "optimized peak": measurement.optimized_peak,
                "engine live": measurement.engine_peak_live,
                "peak/input": round(measurement.naive_blowup_vs_input, 2),
                "peak/output": round(measurement.naive_blowup_vs_output, 2),
            }
        )
        points.append((case.num_clauses, float(measurement.naive_peak)))
    return rows, points


def _random_rows():
    rows = []
    for seed in range(3):
        relation, query = random_instance(
            num_attributes=5, num_tuples=20, domain_size=3, num_factors=3, seed=seed
        )
        measurement = analyze_blowup(
            query, relation, label=f"random #{seed}", compare_engine=True
        )
        rows.append(
            {
                "case": f"random #{seed}",
                "input": measurement.input_cardinality,
                "output": measurement.output_cardinality,
                "naive peak": measurement.naive_peak,
                "optimized peak": measurement.optimized_peak,
                "engine live": measurement.engine_peak_live,
                "peak/input": round(measurement.naive_blowup_vs_input, 2),
                "peak/output": round(measurement.naive_blowup_vs_output, 2),
            }
        )
    return rows


def test_e9_blowup_on_construction(benchmark, emit_result):
    (rows, points) = benchmark.pedantic(_construction_rows, rounds=1, iterations=1)
    fit = fit_exponential_growth(points)
    table = format_table(rows)
    if fit is not None:
        table += (
            f"\nfitted naive peak ~ {fit.prefactor:.2f} * {fit.base:.2f}^m"
            f" (R^2 = {fit.r_squared:.3f})"
        )
    emit_result("E9", "intermediate blow-up on the R_G family (output = 1 column)", table)
    # The headline shape: peak intermediate exceeds both input and output on
    # every construction instance, and the trend grows with m (the individual
    # values wobble with each random formula's model count, so only the
    # end-to-end increase is asserted).
    assert all(row["naive peak"] > row["input"] for row in rows)
    assert all(row["naive peak"] > row["output"] for row in rows)
    peaks = [row["naive peak"] for row in rows]
    assert peaks[-1] > peaks[0]
    # The streaming engine holds fewer rows live than the naive evaluator
    # materialises at its peak, on every construction instance.
    assert all(row["engine live"] < row["naive peak"] for row in rows)


def test_e9_blowup_on_random_instances(benchmark, emit_result):
    rows = benchmark.pedantic(_random_rows, rounds=1, iterations=1)
    emit_result("E9-random", "the same measurement on benign random instances", format_table(rows))
    # Benign instances stay within a small constant of their input size.
    assert all(row["naive peak"] <= 10 * max(row["input"], 1) for row in rows)
