"""Serving mixed query traffic from one Session (the `repro.api` facade).

Run with ``python examples/serving.py``.

A long-lived service evaluates *many different queries, many times each*
against one database.  The facade's shape fits that exactly: prepare each
query once (parse + validate + cost-based plan, pinned), then execute on
every request — the session's counters prove the steady state never
re-plans.  The example serves eight queries round-robin from one session,
mixes backends mid-traffic, mutates a relation (construction-is-
invalidation: exactly the queries reading it re-plan, once), and runs a
budgeted parallel burst, all through the same prepared handles.
"""

from __future__ import annotations

import repro
from repro.algebra import Relation


def build_database():
    """A small star: users, their enrollments, and course assignments."""
    users = Relation.from_rows(
        "UserId Region",
        [(i, ("eu", "us", "apac")[i % 3]) for i in range(60)],
        name="Users",
    )
    enrollments = Relation.from_rows(
        "UserId Course",
        [(i % 60, f"c{i % 7}") for i in range(120)],
        name="Enrollments",
    )
    courses = Relation.from_rows(
        "Course Teacher",
        [(f"c{i}", f"t{i % 3}") for i in range(7)],
        name="Courses",
    )
    return {"Users": users, "Enrollments": enrollments, "Courses": courses}


QUERIES = [
    "project[Region](Users)",
    "project[UserId, Course](Users * Enrollments)",
    "project[Region, Course](Users * Enrollments)",
    "project[Teacher](Enrollments * Courses)",
    "project[UserId, Teacher](Enrollments * Courses)",
    "project[Region, Teacher](Users * Enrollments * Courses)",
    "project[UserId](Users * Enrollments * Courses)",
    "project[Course](Enrollments)",
]


def main() -> None:
    relations = build_database()

    with repro.connect(relations, backend="engine", workers=1) as session:
        # Prepare once per query: each gets a pinned physical plan.
        prepared = [session.prepare(text) for text in QUERIES]
        print(f"prepared {len(prepared)} queries on {session!r}")
        print()
        print("one plan, for example:")
        print(prepared[5].explain())
        print()

        # Steady-state traffic: round-robin executes, zero re-planning.
        for _ in range(25):
            for query in prepared:
                query.execute()
        stats = session.stats()
        print(
            f"served {stats['executes']} executes with "
            f"{stats['plan_builds']} plan builds "
            f"({stats['plan_cache_hits']} plan-cache hits)"
        )

        # Mixed backends against the same session: the materialising
        # evaluators answer identically (differentially tested), just with
        # different traces.
        reference = prepared[2].execute()
        for backend in repro.BACKENDS:
            result = session.prepare(QUERIES[2], backend=backend).execute()
            assert result.set_equal(reference), backend
        print("all four backends agree on", QUERIES[2])

        # Mutation: a new enrollments relation arrives.  Only the queries
        # reading it re-plan (against its freshly computed statistics).
        session.set_relation(
            "Enrollments",
            Relation.from_rows(
                "UserId Course",
                [(i % 60, f"c{i % 5}") for i in range(200)],
                name="Enrollments",
            ),
        )
        for query in prepared:
            query.execute()
        after = session.stats()
        print(
            f"after mutation: {after['invalidation_replans']} of "
            f"{len(prepared)} queries re-planned "
            f"(the rest kept their pinned plans)"
        )

        # A budgeted burst: same prepared queries, different session knobs
        # would need a new session — but traces show the engine's residency
        # per execute either way.
        trace = prepared[6].trace()
        print(
            f"{QUERIES[6]}: {trace.result_cardinality} rows, "
            f"peak {trace.peak_live_rows} live rows "
            f"(input {trace.input_cardinality})"
        )

    assert session.closed
    print("session closed; worker pools torn down")


if __name__ == "__main__":
    main()
