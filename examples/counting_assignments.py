"""Counting satisfying assignments with a query engine (Theorem 3).

Run with ``python examples/counting_assignments.py``.

Theorem 3's identity ``#SAT(G) = |φ_G(R_G)| − (7m + 1)`` turns any engine that
can count query-result tuples into a #SAT solver (which is why counting result
tuples is #P-hard).  The example runs the identity in both directions on a few
formulas and cross-checks three independent counters:

* the relational count ``|φ_G(R_G)|`` minus the offset,
* the corollary's polynomial-space project-join counter, and
* the SAT-side DPLL model counter (plus brute force for tiny formulas).
"""

from __future__ import annotations

from repro.decision import TupleCounter, count_models_via_query
from repro.reductions import Theorem3Reduction
from repro.sat import (
    CNFFormula,
    count_models,
    count_models_bruteforce,
    paper_example_formula,
    random_three_cnf,
)


def count_one(formula: CNFFormula, label: str) -> None:
    """Count one formula's models in every available way and compare."""
    reduction = Theorem3Reduction(formula)
    instance = reduction.instance()
    counter = TupleCounter()

    tuple_count = counter.count(instance.expression, instance.relation)
    via_query = reduction.models_from_tuple_count(tuple_count)
    via_corollary = reduction.models_from_tuple_count(
        counter.count_project_join(instance.relation, reduction.projection_schemes())
    )
    via_dpll = count_models(formula)
    via_bruteforce = count_models_bruteforce(formula)
    via_helper = count_models_via_query(formula)

    print(f"{label}: m={formula.num_clauses}, n={formula.num_variables}")
    print(f"  |phi_G(R_G)|              = {tuple_count}  (offset {reduction.offset()})")
    print(f"  #SAT via query evaluation = {via_query}")
    print(f"  #SAT via corollary count  = {via_corollary}")
    print(f"  #SAT via DPLL counter     = {via_dpll}")
    print(f"  #SAT via brute force      = {via_bruteforce}")
    assert via_query == via_corollary == via_dpll == via_bruteforce == via_helper
    print("  all counters agree\n")


def main() -> None:
    count_one(paper_example_formula(), "paper example")
    count_one(random_three_cnf(6, 7, seed=1), "random (6 vars, 7 clauses)")
    count_one(random_three_cnf(5, 12, seed=2), "random (5 vars, 12 clauses)")


if __name__ == "__main__":
    main()
