"""Query containment and equivalence: fixed database vs all databases.

Run with ``python examples/query_equivalence.py``.

Theorems 4 and 5 concern comparing queries *with respect to a fixed database*
(Π₂ᵖ-complete) — a different, and harder-to-place, question than the classical
Chandra–Merlin containment over *all* databases (NP-complete).  The example:

1. runs the Theorem 4 reduction on a true and a false ∀∃ instance and shows
   that the containment of the two constructed queries on the constructed
   relation tracks the quantified formula's truth value;
2. runs the Theorem 5 reduction, where the query is fixed and the two
   *databases* differ;
3. contrasts with tableau-homomorphism containment of the same query pair,
   which ignores the database entirely.
"""

from __future__ import annotations

from repro.decision import ContainmentDecider, contained_over_all_databases
from repro.qbf import (
    QThreeSatInstance,
    canonical_false_q3sat,
    evaluate_by_expansion,
    planted_true_q3sat,
)
from repro.reductions import Theorem4Reduction, Theorem5Reduction


def show_theorem4(instance: QThreeSatInstance, label: str) -> None:
    """Fixed relation, two queries (Theorem 4)."""
    reduction = Theorem4Reduction(instance)
    comparison = reduction.containment_instance()
    verdict = ContainmentDecider().compare_queries(
        comparison.first, comparison.second, comparison.relation
    )
    truth = evaluate_by_expansion(reduction.qbf_instance)
    print(f"[Theorem 4] {label}: forall-exists formula is {truth}")
    print(
        f"  Q1(R'_G) subset of Q2(R'_G): {verdict.left_in_right}  "
        f"(|Q1| = {verdict.left_cardinality}, |Q2| = {verdict.right_cardinality})"
    )
    if verdict.left_only_witness is not None:
        print(f"  counterexample tuple: {dict(verdict.left_only_witness)}")
    assert verdict.left_in_right == truth
    assert verdict.equivalent == truth

    # The same two queries compared over ALL databases (Chandra-Merlin):
    # Q2 keeps strictly more attributes in its factors, so Q2 ⊆ Q1 always,
    # while Q1 ⊆ Q2 fails in general even when it holds on this database.
    print(
        "  over all databases: Q1 ⊆ Q2 is",
        contained_over_all_databases(comparison.first, comparison.second),
        "| Q2 ⊆ Q1 is",
        contained_over_all_databases(comparison.second, comparison.first),
    )
    print()


def show_theorem5(instance: QThreeSatInstance, label: str) -> None:
    """Fixed query, two databases (Theorem 5)."""
    reduction = Theorem5Reduction(instance)
    comparison = reduction.containment_instance()
    verdict = ContainmentDecider().compare_databases(
        comparison.expression, comparison.first, comparison.second
    )
    truth = evaluate_by_expansion(reduction.qbf_instance)
    print(f"[Theorem 5] {label}: forall-exists formula is {truth}")
    print(
        f"  Q(R''_G) subset of Q(R_G): {verdict.left_in_right}  "
        f"(|left| = {verdict.left_cardinality}, |right| = {verdict.right_cardinality})"
    )
    assert verdict.left_in_right == truth
    assert verdict.equivalent == truth
    print()


def main() -> None:
    true_instance = planted_true_q3sat(2, seed=0)
    false_instance = canonical_false_q3sat()
    print("true instance:", true_instance.describe())
    print("false instance:", false_instance.describe())
    print()
    show_theorem4(true_instance, "planted true")
    show_theorem4(false_instance, "canonical false")
    show_theorem5(true_instance, "planted true")
    show_theorem5(false_instance, "canonical false")


if __name__ == "__main__":
    main()
