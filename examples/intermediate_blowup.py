"""Intermediate-result blow-up: the introduction's headline observation.

Run with ``python examples/intermediate_blowup.py``.

In ordinary (integer) algebra, if an expression's result is small then the
whole evaluation can be kept small.  The paper's point is that relational
algebra is different: there are projection-join expressions whose inputs and
outputs are small but whose *intermediate* results are inherently large.  The
example measures this on the R_G construction (where the effect is built in)
and, for contrast, on random project-join queries over random relations
(where it rarely shows up), and reports what the projection-push-down
optimiser can and cannot recover.
"""

from __future__ import annotations

from repro.analysis import analyze_blowup, fit_exponential_growth, format_table
from repro.expressions import Projection
from repro.workloads import growing_construction_family, random_instance
from repro.reductions import RGConstruction


def construction_blowup() -> None:
    """Measure the blow-up on the R_G family, output kept small by projecting."""
    print("R_G construction family (output kept one column wide):")
    rows = []
    points = []
    for case in growing_construction_family(clause_counts=(3, 4, 5, 6)):
        construction = RGConstruction(case.formula)
        # Keep the *output* tiny (just the S column) so the blow-up is purely
        # an intermediate phenomenon, as in the paper's framing.
        query = Projection([construction.s_attribute], construction.expression)
        measurement = analyze_blowup(query, construction.relation, label=case.label)
        rows.append({"case": case.label, **measurement.as_row()})
        points.append((case.num_clauses, float(measurement.naive_peak)))
    print(format_table(rows))
    fit = fit_exponential_growth(points)
    if fit is not None:
        print(
            f"fitted naive peak ~ {fit.prefactor:.2f} * {fit.base:.2f}^m "
            f"(R^2 = {fit.r_squared:.3f})"
        )
    print()


def random_query_blowup() -> None:
    """The same measurement on benign random instances, for contrast."""
    print("random project-join queries over random relations:")
    rows = []
    for seed in range(4):
        relation, query = random_instance(
            num_attributes=5, num_tuples=20, domain_size=3, num_factors=3, seed=seed
        )
        measurement = analyze_blowup(query, relation, label=f"random #{seed}")
        rows.append({"case": f"random #{seed}", **measurement.as_row()})
    print(format_table(rows))
    print()


def main() -> None:
    construction_blowup()
    random_query_blowup()
    print(
        "Note how the construction family's peak intermediate size grows much\n"
        "faster than both its input (7m + 1 tuples) and its output, while the\n"
        "random instances stay close to their inputs - the contrast the paper\n"
        "draws with ordinary algebra."
    )


if __name__ == "__main__":
    main()
