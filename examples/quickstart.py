"""Quickstart: relations, projection-join queries, and the paper's questions.

Run with ``python examples/quickstart.py``.

The walk-through builds a small relation, writes a projection-join query in
three equivalent ways (fluent API, builder functions, textual syntax),
evaluates it through the unified ``repro.connect`` facade (prepare once,
execute and introspect on any backend — see ``docs/API.md``), and then asks
the questions whose complexity the paper characterises: membership of a
tuple, equality against a conjectured result, cardinality bounds, and
containment of two queries on a fixed database.
"""

from __future__ import annotations

import repro
from repro.algebra import Relation
from repro.decision import (
    CardinalityDecider,
    ContainmentDecider,
    QueryResultEqualityDecider,
)
from repro.expressions import join, operand, parse_expression, project
from repro.algebra.tuples import RelationTuple


def main() -> None:
    # A small "enrollment" relation over (Student, Course, Teacher).
    enrollment = Relation.from_rows(
        "Student Course Teacher",
        [
            ("ann", "db", "codd"),
            ("ann", "logic", "tarski"),
            ("bob", "db", "codd"),
            ("carol", "logic", "tarski"),
            ("carol", "db", "codd"),
        ],
        name="Enrollment",
    )
    print("input relation:")
    print(enrollment.to_table())
    print()

    # The same query three ways: "who could be in the same course as whom?"
    base = operand("Enrollment", enrollment.scheme)
    query_fluent = base.project("Student Course").join(base.project("Course Teacher"))
    query_builder = join(
        project("Student Course", base), project("Course Teacher", base)
    )
    query_text = parse_expression(
        "project[Student, Course](Enrollment) * project[Course, Teacher](Enrollment)",
        {"Enrollment": enrollment.scheme},
    )
    assert query_fluent == query_builder == query_text

    # Evaluation goes through the unified facade: a Session owns the
    # database, prepare() parses/validates/plans exactly once, and the
    # prepared query executes on any backend (the default is the streaming
    # engine — swap backend="naive"/"optimized"/... for the others).
    session = repro.connect({"Enrollment": enrollment})
    prepared = session.prepare(query_fluent)
    result = prepared.execute()
    print(f"query: {query_fluent.to_text()}")
    print("result:")
    print(result.to_table())
    print()
    print("how the engine runs it:")
    print(prepared.explain())
    trace = prepared.trace()
    print(
        f"executed on {trace.backend!r}: {trace.result_cardinality} tuples, "
        f"peak {trace.peak_memory_rows} rows resident"
    )
    print()

    # Question 1 (Proposition 2 / NP): is a given tuple in the result?
    # contains() streams the pinned plan with early exit on the engine.
    candidate = RelationTuple(
        result.scheme, {"Student": "bob", "Course": "db", "Teacher": "codd"}
    )
    print("tuple membership (bob, db, codd):", prepared.contains(candidate))

    # Question 2 (Theorem 1 / DP): does the query equal a conjectured result?
    conjectured = result.relation  # conjecture the right answer first ...
    verdict = QueryResultEqualityDecider().decide(
        query_fluent, {"Enrollment": enrollment}, conjectured
    )
    print("equality against the correct conjecture:", verdict.equal)
    # ... then a wrong one (drop a tuple): the verdict carries the witness.
    wrong = conjectured.remove(candidate)
    verdict = QueryResultEqualityDecider().decide(
        query_fluent, {"Enrollment": enrollment}, wrong
    )
    print(
        "equality against a conjecture missing one tuple:",
        verdict.equal,
        "- extra tuple produced by the query:",
        dict(verdict.extra_tuple) if verdict.extra_tuple else None,
    )

    # Question 3 (Theorem 2 / DP): cardinality bounds.
    bounds = CardinalityDecider().check_bounds(
        query_fluent, {"Enrollment": enrollment}, lower=4, upper=8
    )
    print(
        f"cardinality |phi(R)| = {bounds.cardinality}; bounds 4..8 hold:",
        bounds.holds,
    )

    # Question 4 (Theorem 4 / Pi2p): containment of two queries on this database.
    narrower = project("Student Course", base).join(
        project("Course Teacher", base)
    ).project("Student Teacher")
    broader = join(project("Student", base), project("Teacher", base))
    verdict = ContainmentDecider().compare_queries(
        narrower, broader, {"Enrollment": enrollment}
    )
    print(
        "narrower(R) contained in broader(R):",
        verdict.left_in_right,
        "| equivalent:",
        verdict.equivalent,
    )

    session.close()


if __name__ == "__main__":
    main()
