"""Deciding 3SAT with a relational query engine (the Section 3 construction).

Run with ``python examples/satisfiability_via_queries.py``.

The example builds the paper's relation ``R_G`` and expression ``φ_G`` for a
3CNF formula, evaluates the query, and reads satisfiability off the result in
the three ways the paper's results describe:

* Lemma 1    — the result gains one tuple per satisfying assignment;
* Prop. 1    — the pair-column projection gains the single tuple ``u_G``
               exactly when the formula is satisfiable (the NP-complete
               membership question);
* MSY re-proof — the formula is *unsatisfiable* exactly when ``φ_G(R_G) = R_G``
               (the co-NP-complete fixpoint question).

Every answer is cross-checked against the DPLL solver.
"""

from __future__ import annotations

from repro.decision import ProjectJoinFixpointDecider, tuple_in_result
from repro.expressions import evaluate
from repro.reductions import MembershipReduction, RGConstruction
from repro.sat import CNFFormula, is_satisfiable


def decide_with_queries(formula: CNFFormula) -> None:
    """Print the relational-side view of one formula's satisfiability."""
    construction = RGConstruction(formula)
    relation = construction.relation
    print(f"formula: {formula}")
    print(
        f"R_G: {len(relation)} tuples x {len(relation.scheme)} columns "
        f"(paper predicts {construction.predicted_relation_size()} x "
        f"{construction.predicted_column_count()})"
    )

    result = evaluate(construction.expression, relation)
    extra = len(result) - len(relation)
    print(f"phi_G(R_G): {len(result)} tuples -> {extra} satisfying assignment(s)")

    # Proposition 1 / Yannakakis: membership of u_G in the Y-projection.
    membership = MembershipReduction(formula)
    u_g = construction.u_g_tuple()
    in_projection = tuple_in_result(
        u_g, construction.pair_projection_expression(), relation
    )
    print(f"u_G in pi_Y(phi_G(R_G)) (NP question): {in_projection}")

    # MSY: the co-NP fixpoint question.
    fixpoint = ProjectJoinFixpointDecider().holds(
        relation, construction.projection_schemes()
    )
    print(f"*_i pi_Yi(R_G) = R_G (co-NP question): {fixpoint}")

    ground_truth = is_satisfiable(formula)
    print(f"DPLL ground truth: {'satisfiable' if ground_truth else 'unsatisfiable'}")
    assert in_projection == ground_truth
    assert fixpoint == (not ground_truth)
    assert (extra > 0) == ground_truth
    assert membership.expected_yes() == ground_truth
    print("all three relational answers agree with the solver\n")


def main() -> None:
    satisfiable = CNFFormula.parse(
        "(x1 | x2 | x3) & (~x2 | x3 | ~x4) & (~x3 | ~x4 | ~x5)"
    )
    unsatisfiable = CNFFormula.parse(
        "(p | q | r) & (p | q | ~r) & (p | ~q | r) & (p | ~q | ~r) & "
        "(~p | q | r) & (~p | q | ~r) & (~p | ~q | r) & (~p | ~q | ~r)"
    )
    decide_with_queries(satisfiable)
    decide_with_queries(unsatisfiable)


if __name__ == "__main__":
    main()
