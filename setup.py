"""Setuptools entry point.

The offline environment used for this reproduction has no ``wheel`` package,
so editable installs go through the legacy ``setup.py develop`` path; keeping
an explicit ``setup.py`` (and no ``[build-system]`` table in pyproject.toml)
makes ``pip install -e .`` work without network access.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Cosmadakis (1983): The Complexity of Evaluating Relational Queries"
    ),
    author="Reproduction Team",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
