"""Unit tests for expression evaluation (naive and instrumented)."""

import pytest

from repro.algebra import Database, Relation
from repro.expressions import (
    ExpressionError,
    InstrumentedEvaluator,
    Join,
    Operand,
    Projection,
    bind_arguments,
    evaluate,
)

R_SCHEME = "A B C"
R = Relation.from_rows(R_SCHEME, [(1, 2, 3), (1, 2, 4), (2, 5, 3)], name="R")
S = Relation.from_rows("C D", [(3, "x"), (4, "y")], name="S")

BASE = Operand("R", R_SCHEME)
OTHER = Operand("S", "C D")


class TestBinding:
    def test_bind_bare_relation_to_matching_operands(self):
        bound = bind_arguments(Projection("A", BASE), R)
        assert bound == {"R": R}

    def test_bind_bare_relation_scheme_mismatch_rejected(self):
        with pytest.raises(ExpressionError):
            bind_arguments(Projection("C", OTHER), R)

    def test_bind_mapping(self):
        bound = bind_arguments(Join([BASE, OTHER]), {"R": R, "S": S})
        assert set(bound) == {"R", "S"}

    def test_bind_database(self):
        database = Database({"R": R, "S": S})
        bound = bind_arguments(Join([BASE, OTHER]), database)
        assert bound["S"] == S

    def test_bind_missing_operand_rejected(self):
        with pytest.raises(ExpressionError):
            bind_arguments(Join([BASE, OTHER]), {"R": R})

    def test_bind_wrong_scheme_rejected(self):
        with pytest.raises(ExpressionError):
            bind_arguments(Projection("A", BASE), {"R": S})


class TestEvaluate:
    def test_operand_evaluates_to_bound_relation(self):
        assert evaluate(BASE, R) == R

    def test_projection(self):
        assert evaluate(Projection("A B", BASE), R) == R.project("A B")

    def test_join_of_two_operands(self):
        expression = Join([BASE, OTHER])
        assert evaluate(expression, {"R": R, "S": S}) == R.natural_join(S)

    def test_paper_style_project_join(self):
        expression = Join([Projection("A B", BASE), Projection("B C", BASE)])
        expected = R.project("A B").natural_join(R.project("B C"))
        assert evaluate(expression, R) == expected

    def test_nary_join_matches_pairwise(self):
        expression = Join([Projection("A B", BASE), Projection("B C", BASE), OTHER])
        expected = (
            R.project("A B").natural_join(R.project("B C")).natural_join(S)
        )
        assert evaluate(expression, {"R": R, "S": S}) == expected

    def test_result_scheme_matches_target_scheme(self):
        expression = Projection("A C", Join([BASE, OTHER]))
        result = evaluate(expression, {"R": R, "S": S})
        assert result.scheme == expression.target_scheme()


class TestInstrumentedEvaluator:
    def test_same_result_as_naive(self):
        expression = Projection("A D", Join([BASE, OTHER]))
        result, trace = InstrumentedEvaluator().evaluate(expression, {"R": R, "S": S})
        assert result == evaluate(expression, {"R": R, "S": S})
        assert trace.result_cardinality == len(result)

    def test_trace_records_every_operand_and_operator(self):
        expression = Projection("A", Join([Projection("A B", BASE), Projection("B C", BASE)]))
        _, trace = InstrumentedEvaluator().evaluate(expression, R)
        kinds = [step.node_kind for step in trace.steps]
        assert kinds.count("operand") == 2
        assert kinds.count("projection") == 3
        assert kinds.count("join") == 1

    def test_peak_is_max_of_steps(self):
        expression = Join([Projection("A B", BASE), Projection("B C", BASE)])
        _, trace = InstrumentedEvaluator().evaluate(expression, R)
        assert trace.peak_intermediate_cardinality == max(
            step.cardinality for step in trace.steps
        )

    def test_input_cardinality_counts_bound_relations(self):
        expression = Join([BASE, OTHER])
        _, trace = InstrumentedEvaluator().evaluate(expression, {"R": R, "S": S})
        assert trace.input_cardinality == len(R) + len(S)

    def test_blowup_ratios(self):
        expression = Join([Projection("A", BASE), Projection("B", BASE)])
        _, trace = InstrumentedEvaluator().evaluate(expression, R)
        assert trace.blowup_versus_input() == pytest.approx(
            trace.peak_intermediate_cardinality / trace.input_cardinality
        )
        summary = trace.summary()
        assert summary["peak_intermediate_cardinality"] == float(
            trace.peak_intermediate_cardinality
        )

    def test_empty_result_blowup_is_infinite_marker(self):
        empty = Relation.empty(R.scheme)
        expression = Join([Projection("A B", BASE), Projection("B C", BASE)])
        _, trace = InstrumentedEvaluator().evaluate(expression, empty)
        assert trace.result_cardinality == 0
        assert trace.blowup_versus_output() in (0.0, float("inf"))
