"""Tests for the Theorem 2 reductions (cardinality bounds)."""

import pytest

from repro.decision import CardinalityDecider
from repro.expressions import evaluate
from repro.reductions import (
    SatUnsatPair,
    Theorem2LowerBoundReduction,
    Theorem2TwoSidedReduction,
    Theorem2UpperBoundReduction,
)
from repro.sat import count_models, forced_unsatisfiable, planted_satisfiable


@pytest.fixture(scope="module")
def formulas():
    satisfiable, _ = planted_satisfiable(4, 3, seed=21)
    unsatisfiable = forced_unsatisfiable(4, seed=21)
    return satisfiable, unsatisfiable


class TestTwoSided:
    def test_padding_establishes_beta_strictly_less_than_beta_prime(self, formulas):
        satisfiable, unsatisfiable = formulas
        reduction = Theorem2TwoSidedReduction(SatUnsatPair(satisfiable, unsatisfiable))
        assert reduction.beta < reduction.beta_prime

    def test_padding_preserves_second_formula_satisfiability(self, formulas):
        satisfiable, _ = formulas
        reduction = Theorem2TwoSidedReduction(SatUnsatPair(satisfiable, satisfiable))
        from repro.sat import is_satisfiable

        assert is_satisfiable(reduction.pair.second)

    @pytest.mark.parametrize(
        "combo", ["sat-unsat", "sat-sat", "unsat-unsat", "unsat-sat"]
    )
    def test_cardinality_matches_prediction_and_bounds(self, formulas, combo):
        satisfiable, unsatisfiable = formulas
        first = satisfiable if combo.startswith("sat") else unsatisfiable
        second = unsatisfiable if combo.endswith("unsat") else satisfiable
        reduction = Theorem2TwoSidedReduction(SatUnsatPair(first, second))

        exact = reduction.exact_instance()
        window = reduction.window_instance()
        cardinality = len(evaluate(exact.expression, exact.relation))

        assert cardinality == reduction.predicted_cardinality()
        assert exact.holds_for(cardinality) == reduction.expected_yes()
        assert window.holds_for(cardinality) == reduction.expected_yes()

    def test_exact_instance_has_equal_bounds(self, formulas):
        satisfiable, unsatisfiable = formulas
        reduction = Theorem2TwoSidedReduction(SatUnsatPair(satisfiable, unsatisfiable))
        exact = reduction.exact_instance()
        assert exact.lower == exact.upper == (reduction.beta + 1) * reduction.beta_prime

    def test_window_instance_has_strictly_ordered_bounds(self, formulas):
        satisfiable, unsatisfiable = formulas
        reduction = Theorem2TwoSidedReduction(SatUnsatPair(satisfiable, unsatisfiable))
        window = reduction.window_instance()
        assert window.lower < window.upper

    def test_decider_verdict_agrees(self, formulas):
        satisfiable, unsatisfiable = formulas
        reduction = Theorem2TwoSidedReduction(SatUnsatPair(satisfiable, unsatisfiable))
        instance = reduction.exact_instance()
        verdict = CardinalityDecider().check_bounds(
            instance.expression, instance.relation, instance.lower, instance.upper
        )
        assert verdict.holds == reduction.expected_yes()


class TestOneSided:
    def test_lower_bound_holds_iff_satisfiable(self, formulas):
        satisfiable, unsatisfiable = formulas
        for formula in (satisfiable, unsatisfiable):
            reduction = Theorem2LowerBoundReduction(formula)
            instance = reduction.instance()
            cardinality = len(evaluate(instance.expression, instance.relation))
            assert instance.holds_for(cardinality) == reduction.expected_yes()

    def test_upper_bound_holds_iff_unsatisfiable(self, formulas):
        satisfiable, unsatisfiable = formulas
        for formula in (satisfiable, unsatisfiable):
            reduction = Theorem2UpperBoundReduction(formula)
            instance = reduction.instance()
            cardinality = len(evaluate(instance.expression, instance.relation))
            assert instance.holds_for(cardinality) == reduction.expected_yes()

    def test_lower_bound_threshold_is_7m_plus_2(self, formulas):
        satisfiable, _ = formulas
        reduction = Theorem2LowerBoundReduction(satisfiable)
        assert reduction.instance().lower == 7 * satisfiable.num_clauses + 2

    def test_upper_bound_threshold_is_7m_plus_1(self, formulas):
        _, unsatisfiable = formulas
        reduction = Theorem2UpperBoundReduction(unsatisfiable)
        assert reduction.instance().upper == 7 * unsatisfiable.num_clauses + 1

    def test_exact_cardinality_identity(self, formulas):
        satisfiable, _ = formulas
        reduction = Theorem2LowerBoundReduction(satisfiable)
        instance = reduction.instance()
        cardinality = len(evaluate(instance.expression, instance.relation))
        assert cardinality == 7 * satisfiable.num_clauses + 1 + count_models(satisfiable)

    def test_early_exit_deciders_agree(self, formulas):
        satisfiable, _ = formulas
        reduction = Theorem2LowerBoundReduction(satisfiable)
        instance = reduction.instance()
        decider = CardinalityDecider()
        assert decider.at_least(instance.expression, instance.relation, instance.lower)
        assert not decider.at_most(
            instance.expression, instance.relation, instance.lower - 1
        )


class TestCardinalityBoundInstanceHelper:
    def test_holds_for_with_one_sided_bounds(self, formulas):
        satisfiable, _ = formulas
        lower_only = Theorem2LowerBoundReduction(satisfiable).instance()
        assert lower_only.upper is None
        assert lower_only.holds_for(10**9)
        assert not lower_only.holds_for(0)
        upper_only = Theorem2UpperBoundReduction(satisfiable).instance()
        assert upper_only.lower is None
        assert upper_only.holds_for(0)
