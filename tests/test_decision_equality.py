"""Tests for the query-result equality decider."""

import pytest

from repro.algebra import Relation
from repro.decision import QueryResultEqualityDecider
from repro.expressions import Join, Operand, Projection, evaluate

R = Relation.from_rows("A B C", [(1, 2, 3), (1, 2, 4), (2, 5, 3)], name="R")
BASE = Operand("R", "A B C")
QUERY = Join([Projection("A B", BASE), Projection("B C", BASE)])
DECIDER = QueryResultEqualityDecider()


class TestEqualityVerdict:
    def test_correct_conjecture_is_equal(self):
        correct = evaluate(QUERY, R)
        verdict = DECIDER.decide(QUERY, R, correct)
        assert verdict.equal
        assert verdict.conjectured_subset_of_result
        assert verdict.result_subset_of_conjectured
        assert verdict.missing_tuple is None and verdict.extra_tuple is None
        assert verdict.result_cardinality == len(correct)

    def test_conjecture_missing_a_tuple_fails_conp_half(self):
        correct = evaluate(QUERY, R)
        dropped = next(iter(correct))
        verdict = DECIDER.decide(QUERY, R, correct.remove(dropped))
        assert not verdict.equal
        assert verdict.conjectured_subset_of_result
        assert not verdict.result_subset_of_conjectured
        assert verdict.extra_tuple is not None
        assert verdict.extra_tuple in correct

    def test_conjecture_with_extra_tuple_fails_np_half(self):
        correct = evaluate(QUERY, R)
        inflated = correct.insert({"A": 99, "B": 99, "C": 99})
        verdict = DECIDER.decide(QUERY, R, inflated)
        assert not verdict.equal
        assert not verdict.conjectured_subset_of_result
        assert verdict.result_subset_of_conjectured
        assert verdict.missing_tuple is not None
        assert verdict.missing_tuple not in correct

    def test_conjecture_wrong_in_both_directions(self):
        correct = evaluate(QUERY, R)
        dropped = next(iter(correct))
        mangled = correct.remove(dropped).insert({"A": 99, "B": 99, "C": 99})
        verdict = DECIDER.decide(QUERY, R, mangled)
        assert not verdict.conjectured_subset_of_result
        assert not verdict.result_subset_of_conjectured

    def test_wrong_scheme_conjecture_is_never_equal(self):
        wrong_scheme = Relation.from_rows("A B", [(1, 2)])
        verdict = DECIDER.decide(QUERY, R, wrong_scheme)
        assert not verdict.equal
        assert not verdict.conjectured_subset_of_result
        assert not verdict.result_subset_of_conjectured

    def test_empty_conjecture_against_empty_result(self):
        empty_relation = Relation.empty(R.scheme)
        empty_conjecture = Relation.empty(QUERY.target_scheme())
        verdict = DECIDER.decide(QUERY, empty_relation, empty_conjecture)
        assert verdict.equal
        assert verdict.result_cardinality == 0


class TestConvenienceWrappers:
    def test_equal_wrapper(self):
        correct = evaluate(QUERY, R)
        assert DECIDER.equal(QUERY, R, correct)
        assert not DECIDER.equal(QUERY, R, correct.remove(next(iter(correct))))

    def test_one_sided_wrappers_match_verdict(self):
        correct = evaluate(QUERY, R)
        subset = correct.remove(next(iter(correct)))
        assert DECIDER.conjectured_contained(QUERY, R, subset)
        assert not DECIDER.result_contained(QUERY, R, subset)

    def test_witnesses_are_deterministic(self):
        correct = evaluate(QUERY, R)
        subset = correct.remove(next(iter(correct)))
        first = DECIDER.decide(QUERY, R, subset).extra_tuple
        second = DECIDER.decide(QUERY, R, subset).extra_tuple
        assert first == second
