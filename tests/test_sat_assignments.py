"""Unit tests for truth assignments."""

import pytest

from repro.sat import Assignment, all_assignments


class TestAssignment:
    def test_of_and_getitem(self):
        assignment = Assignment.of(x1=True, x2=False)
        assert assignment["x1"] is True
        assert assignment["x2"] is False

    def test_values_coerced_to_bool(self):
        assignment = Assignment({"x": 1, "y": 0})
        assert assignment["x"] is True and assignment["y"] is False

    def test_from_bits(self):
        assignment = Assignment.from_bits(["a", "b", "c"], [1, 0, 1])
        assert assignment.as_bits(["a", "b", "c"]) == (1, 0, 1)

    def test_from_bits_length_mismatch(self):
        with pytest.raises(ValueError):
            Assignment.from_bits(["a", "b"], [1])

    def test_equality_with_plain_mapping(self):
        assert Assignment.of(x=True) == {"x": True}
        assert Assignment.of(x=True) == Assignment({"x": 1})

    def test_hashable(self):
        assert len({Assignment.of(x=True), Assignment.of(x=True)}) == 1

    def test_restrict(self):
        assignment = Assignment.of(x=True, y=False, z=True)
        assert dict(assignment.restrict(["x", "z"])) == {"x": True, "z": True}

    def test_extend_compatible(self):
        merged = Assignment.of(x=True).extend({"y": False})
        assert dict(merged) == {"x": True, "y": False}

    def test_extend_conflict_rejected(self):
        with pytest.raises(ValueError):
            Assignment.of(x=True).extend({"x": False})

    def test_is_total_for(self):
        assignment = Assignment.of(x=True, y=False)
        assert assignment.is_total_for(["x", "y"])
        assert not assignment.is_total_for(["x", "z"])

    def test_flipped(self):
        assignment = Assignment.of(x=True)
        assert assignment.flipped("x")["x"] is False
        with pytest.raises(KeyError):
            assignment.flipped("missing")

    def test_variables(self):
        assert Assignment.of(x=True, y=False).variables == frozenset({"x", "y"})


class TestAllAssignments:
    def test_count_is_power_of_two(self):
        assert len(list(all_assignments(["a", "b", "c"]))) == 8

    def test_all_distinct(self):
        assignments = list(all_assignments(["a", "b", "c"]))
        assert len(set(assignments)) == 8

    def test_order_most_significant_first(self):
        assignments = list(all_assignments(["a", "b"]))
        bits = [assignment.as_bits(["a", "b"]) for assignment in assignments]
        assert bits == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_empty_variable_list_yields_single_empty_assignment(self):
        assignments = list(all_assignments([]))
        assert len(assignments) == 1
        assert len(assignments[0]) == 0
