"""Tests for the Theorem 4 reduction (fixed-relation query comparison, Π₂ᵖ)."""

import pytest

from repro.decision import ContainmentDecider
from repro.expressions import evaluate
from repro.qbf import (
    QThreeSatInstance,
    canonical_false_q3sat,
    evaluate_by_expansion,
    planted_false_q3sat,
    planted_true_q3sat,
)
from repro.reductions import Theorem4Reduction
from repro.sat import paper_example_formula


@pytest.fixture(scope="module")
def true_reduction():
    return Theorem4Reduction(planted_true_q3sat(2, seed=3))


@pytest.fixture(scope="module")
def false_reduction():
    return Theorem4Reduction(canonical_false_q3sat())


class TestInstanceStructure:
    def test_relation_carries_u_column(self, true_reduction):
        relation = true_reduction.relation()
        assert true_reduction.construction.u_attribute in relation.scheme

    def test_queries_project_onto_universal_columns(self, true_reduction):
        instance = true_reduction.containment_instance()
        assert instance.first.target_scheme() == true_reduction.universal_scheme
        assert instance.second.target_scheme() == true_reduction.universal_scheme

    def test_guard_clauses_applied_when_restriction_one_violated(self):
        # X inside a single clause's variables: the reduction must repair it.
        instance = QThreeSatInstance(paper_example_formula(), ("x1",))
        reduction = Theorem4Reduction(instance)
        assert reduction.qbf_instance.satisfies_proposition4_restrictions()
        assert reduction.source_instance is instance

    def test_trivially_false_instances_map_to_canonical_gadget(self):
        instance = QThreeSatInstance(paper_example_formula(), ("x1", "x2", "x3", "x4"))
        assert instance.universal_contains_some_clause()
        reduction = Theorem4Reduction(instance)
        assert not reduction.expected_yes()
        comparison = reduction.containment_instance()
        verdict = ContainmentDecider().compare_queries(
            comparison.first, comparison.second, comparison.relation
        )
        assert not verdict.left_in_right


class TestReductionCorrectness:
    def test_true_instance_gives_containment_and_equality(self, true_reduction):
        comparison = true_reduction.containment_instance()
        verdict = ContainmentDecider().compare_queries(
            comparison.first, comparison.second, comparison.relation
        )
        assert true_reduction.expected_yes()
        assert verdict.left_in_right
        assert verdict.equivalent

    def test_false_instance_gives_non_containment(self, false_reduction):
        comparison = false_reduction.containment_instance()
        verdict = ContainmentDecider().compare_queries(
            comparison.first, comparison.second, comparison.relation
        )
        assert not false_reduction.expected_yes()
        assert not verdict.left_in_right
        assert not verdict.equivalent
        assert verdict.left_only_witness is not None

    def test_counterexample_tuple_encodes_a_bad_universal_assignment(self, false_reduction):
        comparison = false_reduction.containment_instance()
        verdict = ContainmentDecider().compare_queries(
            comparison.first, comparison.second, comparison.relation
        )
        witness = verdict.left_only_witness
        construction = false_reduction.construction
        instance = false_reduction.qbf_instance
        # The witness is a 0/1 assignment of the universal columns under which
        # the matrix has no satisfying completion.
        assignment = {
            variable: bool(witness[construction.variable_column(variable)])
            for variable in instance.universal
        }
        from repro.sat import is_satisfiable

        assert not is_satisfiable(instance.formula.restrict(assignment))

    def test_second_query_never_exceeds_first(self, true_reduction, false_reduction):
        # π_X φ² ⊆ π_X φ¹ always (φ² is φ¹ with extra join constraints).
        for reduction in (true_reduction, false_reduction):
            comparison = reduction.containment_instance()
            q1 = evaluate(comparison.first, comparison.relation)
            q2 = evaluate(comparison.second, comparison.relation)
            assert q2.is_subset_of(q1)

    @pytest.mark.parametrize("universal", [2, 3])
    def test_agreement_with_qbf_evaluator_on_planted_instances(self, universal):
        for instance, label in [
            (planted_true_q3sat(universal, seed=universal), "true"),
            (planted_false_q3sat(max(universal, 3), seed=universal), "false"),
        ]:
            reduction = Theorem4Reduction(instance)
            comparison = reduction.containment_instance()
            verdict = ContainmentDecider().compare_queries(
                comparison.first, comparison.second, comparison.relation
            )
            expected = evaluate_by_expansion(reduction.qbf_instance)
            assert verdict.left_in_right == expected, label
            assert verdict.equivalent == expected, label


class TestProofIntermediateClaims:
    def test_phi_one_projection_is_all_assignments(self, true_reduction, false_reduction):
        for reduction in (true_reduction, false_reduction):
            comparison = reduction.containment_instance()
            q1 = evaluate(comparison.first, comparison.relation)
            base = comparison.relation.project(reduction.universal_scheme)
            assert q1 == base.union(reduction.all_universal_assignments_relation())

    def test_phi_two_projection_is_satisfying_restrictions(
        self, true_reduction, false_reduction
    ):
        for reduction in (true_reduction, false_reduction):
            comparison = reduction.containment_instance()
            q2 = evaluate(comparison.second, comparison.relation)
            base = comparison.relation.project(reduction.universal_scheme)
            assert q2 == base.union(reduction.satisfying_restrictions_relation())

    def test_base_projection_tuples_contain_a_blank(self, true_reduction):
        # The first Proposition 4 restriction guarantees no single tuple of
        # R'_G restricted to X looks like a full truth assignment.
        from repro.reductions import BLANK

        base = true_reduction.relation().project(true_reduction.universal_scheme)
        assert all(
            any(value == BLANK for value in tup.values_in_order()) for tup in base
        )
