"""Tests for the Theorem 5 reduction (fixed-query database comparison, Π₂ᵖ)."""

import pytest

from repro.decision import ContainmentDecider
from repro.expressions import evaluate
from repro.qbf import (
    QThreeSatInstance,
    canonical_false_q3sat,
    evaluate_by_expansion,
    planted_false_q3sat,
    planted_true_q3sat,
)
from repro.reductions import Theorem5Reduction
from repro.sat import paper_example_formula


@pytest.fixture(scope="module")
def true_reduction():
    return Theorem5Reduction(planted_true_q3sat(2, seed=4))


@pytest.fixture(scope="module")
def false_reduction():
    return Theorem5Reduction(canonical_false_q3sat())


class TestInstanceStructure:
    def test_relations_share_the_plain_scheme(self, true_reduction):
        comparison = true_reduction.containment_instance()
        assert comparison.first.scheme == comparison.second.scheme
        assert true_reduction.construction.u_attribute not in comparison.first.scheme

    def test_first_relation_extends_second_by_falsifying_tuples(self, true_reduction):
        comparison = true_reduction.containment_instance()
        assert comparison.second.is_subset_of(comparison.first)
        extra = len(comparison.first) - len(comparison.second)
        assert extra == true_reduction.construction.formula.num_clauses

    def test_fixed_query_projects_onto_universal_columns(self, true_reduction):
        comparison = true_reduction.containment_instance()
        assert comparison.expression.target_scheme() == true_reduction.universal_scheme

    def test_second_restriction_makes_base_projections_equal(self, true_reduction):
        # π_X(R''_G) = π_X(R_G): the extra falsifying tuples add no new
        # X-projections (each agrees with some satisfying clause tuple on the
        # universal columns, because no clause is fully universal).
        comparison = true_reduction.containment_instance()
        scheme = true_reduction.universal_scheme
        assert comparison.first.project(scheme) == comparison.second.project(scheme)

    def test_trivially_false_instances_map_to_canonical_gadget(self):
        instance = QThreeSatInstance(paper_example_formula(), ("x1", "x2", "x3", "x4"))
        reduction = Theorem5Reduction(instance)
        assert not reduction.expected_yes()
        comparison = reduction.containment_instance()
        verdict = ContainmentDecider().compare_databases(
            comparison.expression, comparison.first, comparison.second
        )
        assert not verdict.left_in_right


class TestReductionCorrectness:
    def test_true_instance_gives_containment_and_equality(self, true_reduction):
        comparison = true_reduction.containment_instance()
        verdict = ContainmentDecider().compare_databases(
            comparison.expression, comparison.first, comparison.second
        )
        assert true_reduction.expected_yes()
        assert verdict.left_in_right and verdict.equivalent

    def test_false_instance_gives_non_containment(self, false_reduction):
        comparison = false_reduction.containment_instance()
        verdict = ContainmentDecider().compare_databases(
            comparison.expression, comparison.first, comparison.second
        )
        assert not false_reduction.expected_yes()
        assert not verdict.left_in_right
        assert verdict.left_only_witness is not None

    def test_right_side_always_contained_in_left(self, true_reduction, false_reduction):
        # Q(R_G) ⊆ Q(R''_G) always, since R_G ⊆ R''_G and the query is monotone.
        for reduction in (true_reduction, false_reduction):
            comparison = reduction.containment_instance()
            left = evaluate(comparison.expression, comparison.first)
            right = evaluate(comparison.expression, comparison.second)
            assert right.is_subset_of(left)

    @pytest.mark.parametrize("universal", [2, 3])
    def test_agreement_with_qbf_evaluator_on_planted_instances(self, universal):
        for instance in (
            planted_true_q3sat(universal, seed=10 + universal),
            planted_false_q3sat(max(universal, 3), seed=10 + universal),
        ):
            reduction = Theorem5Reduction(instance)
            comparison = reduction.containment_instance()
            verdict = ContainmentDecider().compare_databases(
                comparison.expression, comparison.first, comparison.second
            )
            expected = evaluate_by_expansion(reduction.qbf_instance)
            assert verdict.left_in_right == expected
            assert verdict.equivalent == expected

    def test_theorem4_and_theorem5_agree_on_the_same_instance(self):
        from repro.reductions import Theorem4Reduction
        from repro.decision import ContainmentDecider

        for instance in (planted_true_q3sat(2, seed=9), canonical_false_q3sat()):
            four = Theorem4Reduction(instance)
            five = Theorem5Reduction(instance)
            comparison4 = four.containment_instance()
            comparison5 = five.containment_instance()
            decider = ContainmentDecider()
            answer4 = decider.compare_queries(
                comparison4.first, comparison4.second, comparison4.relation
            ).left_in_right
            answer5 = decider.compare_databases(
                comparison5.expression, comparison5.first, comparison5.second
            ).left_in_right
            assert answer4 == answer5 == four.expected_yes() == five.expected_yes()
