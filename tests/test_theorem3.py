"""Tests for the Theorem 3 reduction (#P-hardness of tuple counting)."""

import pytest

from repro.decision import TupleCounter, count_models_via_query
from repro.reductions import Theorem3Reduction
from repro.sat import (
    count_models,
    count_models_bruteforce,
    forced_unsatisfiable,
    paper_example_formula,
    planted_satisfiable,
    random_three_cnf,
)


class TestIdentity:
    def test_paper_example(self):
        reduction = Theorem3Reduction(paper_example_formula())
        instance = reduction.instance()
        tuple_count = TupleCounter().count(instance.expression, instance.relation)
        assert tuple_count == 42
        assert reduction.models_from_tuple_count(tuple_count) == 20
        assert reduction.expected_tuple_count() == 42
        assert reduction.expected_model_count() == 20

    @pytest.mark.parametrize("seed", range(4))
    def test_random_formulas(self, seed):
        formula = random_three_cnf(5, 6, seed=seed)
        reduction = Theorem3Reduction(formula)
        instance = reduction.instance()
        tuple_count = TupleCounter().count(instance.expression, instance.relation)
        # The identity is stated over the variables occurring in the clauses
        # (the construction's own formula presentation).
        assert reduction.models_from_tuple_count(tuple_count) == count_models_bruteforce(
            reduction.construction.formula
        )

    def test_unsatisfiable_formula_counts_zero(self):
        formula = forced_unsatisfiable(4, seed=0)
        reduction = Theorem3Reduction(formula)
        instance = reduction.instance()
        tuple_count = TupleCounter().count(instance.expression, instance.relation)
        assert reduction.models_from_tuple_count(tuple_count) == 0

    def test_offset_is_relation_size(self):
        reduction = Theorem3Reduction(paper_example_formula())
        assert reduction.offset() == 22

    def test_count_below_offset_rejected(self):
        reduction = Theorem3Reduction(paper_example_formula())
        with pytest.raises(ValueError):
            reduction.models_from_tuple_count(3)


class TestCorollaryCounter:
    def test_corollary_counter_matches_evaluation(self):
        formula = paper_example_formula()
        reduction = Theorem3Reduction(formula)
        instance = reduction.instance()
        counter = TupleCounter()
        via_eval = counter.count(instance.expression, instance.relation)
        via_corollary = counter.count_project_join(
            instance.relation, reduction.projection_schemes()
        )
        assert via_eval == via_corollary

    @pytest.mark.parametrize("seed", range(3))
    def test_corollary_counter_on_random_formulas(self, seed):
        formula, _ = planted_satisfiable(5, 4, seed=seed)
        reduction = Theorem3Reduction(formula)
        instance = reduction.instance()
        counter = TupleCounter()
        assert counter.count_project_join(
            instance.relation, reduction.projection_schemes()
        ) == counter.count(instance.expression, instance.relation)

    def test_corollary_counter_on_plain_relations(self):
        from repro.workloads import random_relation

        relation = random_relation(num_attributes=4, num_tuples=15, seed=2)
        schemes = ["A1 A2", "A2 A3", "A3 A4"]
        from repro.algebra import project_join

        counter = TupleCounter()
        assert counter.count_project_join(relation, schemes) == len(
            project_join(relation, schemes)
        )


class TestHighLevelHelper:
    def test_count_models_via_query_matches_sat_counters(self):
        from repro.sat import CNFFormula

        for seed in range(3):
            formula = random_three_cnf(5, 7, seed=50 + seed)
            occurring = CNFFormula(formula.clauses)
            assert count_models_via_query(formula) == count_models(occurring)

    def test_count_models_via_query_on_paper_example(self):
        assert count_models_via_query(paper_example_formula()) == 20
