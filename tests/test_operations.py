"""Unit tests for repro.algebra.operations (free-function algebra)."""

import pytest

from repro.algebra import (
    JoinError,
    Relation,
    RelationScheme,
    cartesian_product,
    difference,
    divide,
    intersection,
    join_all,
    natural_join,
    project,
    project_join,
    rename,
    select,
    semijoin,
    union,
)


@pytest.fixture
def enrollment():
    return Relation.from_rows(
        "Student Course Teacher",
        [
            ("ann", "db", "codd"),
            ("bob", "db", "codd"),
            ("ann", "logic", "tarski"),
        ],
    )


class TestBasicWrappers:
    def test_project(self, enrollment):
        assert project(enrollment, "Student").cardinality() == 2

    def test_natural_join_matches_method(self, enrollment):
        left = project(enrollment, "Student Course")
        right = project(enrollment, "Course Teacher")
        assert natural_join(left, right) == left.natural_join(right)

    def test_select(self, enrollment):
        picked = select(enrollment, lambda t: t["Course"] == "db")
        assert len(picked) == 2

    def test_set_operations(self):
        left = Relation.from_rows("A", [(1,), (2,)])
        right = Relation.from_rows("A", [(2,), (3,)])
        assert len(union(left, right)) == 3
        assert len(difference(left, right)) == 1
        assert len(intersection(left, right)) == 1

    def test_rename(self, enrollment):
        renamed = rename(enrollment, {"Student": "Person"})
        assert "Person" in renamed.scheme


class TestJoinAll:
    def test_join_all_left_associated(self):
        r1 = Relation.from_rows("A B", [(1, 2)])
        r2 = Relation.from_rows("B C", [(2, 3)])
        r3 = Relation.from_rows("C D", [(3, 4)])
        joined = join_all([r1, r2, r3])
        assert joined == Relation.from_rows("A B C D", [(1, 2, 3, 4)])

    def test_join_all_single(self):
        relation = Relation.from_rows("A", [(1,)])
        assert join_all([relation]) == relation

    def test_join_all_empty_rejected(self):
        with pytest.raises(JoinError):
            join_all([])

    def test_join_all_order_invariant_result(self):
        r1 = Relation.from_rows("A B", [(1, 2), (5, 6)])
        r2 = Relation.from_rows("B C", [(2, 3), (6, 7)])
        r3 = Relation.from_rows("A C", [(1, 3)])
        assert join_all([r1, r2, r3]) == join_all([r3, r1, r2])


class TestProjectJoin:
    def test_lossless_decomposition_recovers_relation(self):
        # A relation satisfying the join dependency *(AB, BC): projecting and
        # re-joining gives back exactly the original.
        relation = Relation.from_rows("A B C", [(1, 2, 3), (4, 2, 3)])
        assert project_join(relation, ["A B", "B C"]) == relation

    def test_lossy_decomposition_adds_tuples(self):
        relation = Relation.from_rows("A B C", [(1, 2, 3), (4, 2, 5)])
        joined = project_join(relation, ["A B", "B C"])
        assert relation.is_proper_subset_of(joined)
        assert (1, 2, 5) in joined

    def test_requires_at_least_one_scheme(self):
        with pytest.raises(JoinError):
            project_join(Relation.from_rows("A", [(1,)]), [])


class TestCartesianProduct:
    def test_product_of_disjoint_schemes(self):
        left = Relation.from_rows("A", [(1,), (2,)])
        right = Relation.from_rows("B", [(3,)])
        assert len(cartesian_product(left, right)) == 2

    def test_shared_attribute_rejected(self):
        left = Relation.from_rows("A B", [(1, 2)])
        right = Relation.from_rows("B C", [(2, 3)])
        with pytest.raises(JoinError):
            cartesian_product(left, right)


class TestSemijoinAndDivide:
    def test_semijoin_filters_left(self):
        left = Relation.from_rows("A B", [(1, 2), (3, 4)])
        right = Relation.from_rows("B C", [(2, "x")])
        assert semijoin(left, right) == Relation.from_rows("A B", [(1, 2)])

    def test_semijoin_disjoint_schemes(self):
        left = Relation.from_rows("A", [(1,)])
        non_empty = Relation.from_rows("B", [(2,)])
        empty = Relation.empty(RelationScheme.of("B"))
        assert semijoin(left, non_empty) == left
        assert semijoin(left, empty).is_empty()

    def test_divide_basic(self):
        # Students who take every course listed in the divisor.
        takes = Relation.from_rows(
            "Student Course",
            [("ann", "db"), ("ann", "logic"), ("bob", "db")],
        )
        courses = Relation.from_rows("Course", [("db",), ("logic",)])
        assert divide(takes, courses) == Relation.from_rows("Student", [("ann",)])

    def test_divide_by_empty_returns_all_candidates(self):
        takes = Relation.from_rows("Student Course", [("ann", "db")])
        empty = Relation.empty(RelationScheme.of("Course"))
        assert divide(takes, empty) == Relation.from_rows("Student", [("ann",)])

    def test_divide_requires_shared_attributes(self):
        takes = Relation.from_rows("Student Course", [("ann", "db")])
        unrelated = Relation.from_rows("Room", [("r1",)])
        with pytest.raises(JoinError):
            divide(takes, unrelated)
