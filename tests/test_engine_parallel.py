"""Tests for the parallel probe stage and engine thread-safety.

Three layers:

* **MemoryMeter** — the lock regression.  The pre-lock meter used plain
  ``current += rows`` read-modify-write increments; with several workers
  sharing one meter those lose updates on any interpreter that can preempt
  inside the sequence (CPython 3.9 checks the eval breaker between
  bytecodes; free-threaded builds drop the GIL entirely), leaving
  ``current`` nonzero after balanced acquire/release traffic.  The exactness
  assertions here fail for that implementation wherever preemption is fine
  enough — and always pass for the locked one.

* **Partitioned probe scan** — the slices are a partition of the relation,
  and executing one pinned plan per slice unions to the serial result, on
  both the thread and fork backends.

* **Concurrency stress** — one pinned plan evaluated from 8 threads
  concurrently must produce the serial result every time, and the engine's
  locked counters (probes, spills) must account exactly: 24 concurrent
  evaluations add exactly 24 serial deltas.
"""

import random
import sys
import threading

import pytest

from repro.algebra import Relation, RelationScheme
from repro.engine import (
    EngineEvaluator,
    MemoryBudget,
    MemoryMeter,
    PartitionedScan,
    default_backend,
    execute_parallel,
)
from repro.expressions import Projection, evaluate
from repro.expressions.ast import Operand
from repro.perf import kernel_counters
from repro.workloads import random_instance

ENGINE_COUNTERS = (
    "join_probes",
    "join_spills",
    "spill_partitions",
    "spill_rows",
    "spill_recursions",
    "spill_overflows",
)


def _contend(meter, threads=4, rounds=25_000, amount=3):
    """Balanced acquire/release traffic from several threads at once."""
    switch = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        def work():
            for _ in range(rounds):
                meter.acquire(amount)
                meter.release(amount)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
    finally:
        sys.setswitchinterval(switch)


class TestMemoryMeterThreadSafety:
    def test_balanced_traffic_accounts_exactly_under_contention(self):
        meter = MemoryMeter()
        _contend(meter)
        assert meter.current == 0
        # Peak must be a value some interleaving could produce: at least one
        # thread's worth, at most all threads at once.
        assert 3 <= meter.peak <= 4 * 3

    def test_concurrent_acquires_never_lose_rows(self):
        meter = MemoryMeter()
        rounds = 10_000

        def work():
            for _ in range(rounds):
                meter.acquire(1)

        pool = [threading.Thread(target=work) for _ in range(4)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert meter.current == 4 * rounds
        assert meter.peak == 4 * rounds

    def test_budget_reads_are_consistent_under_contention(self):
        meter = MemoryMeter(budget=100)
        problems = []
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                meter.acquire(10)
                meter.release(10)

        def watch():
            for _ in range(2_000):
                headroom = meter.headroom()
                if headroom is None or not 0 <= headroom <= 100:
                    problems.append(headroom)

        churner = threading.Thread(target=churn)
        watcher = threading.Thread(target=watch)
        churner.start()
        watcher.start()
        watcher.join()
        stop.set()
        churner.join()
        assert problems == []


class TestPartitionedScan:
    def test_slices_partition_the_relation(self):
        relation = Relation.from_rows("A B", [(i, i % 3) for i in range(50)])
        meter = MemoryMeter()
        seen = []
        for index in range(4):
            scan = PartitionedScan(relation, meter, index, 4)
            seen.append([row for block in scan.blocks() for row in block])
        flattened = [row for slice_rows in seen for row in slice_rows]
        assert len(flattened) == len(relation)  # disjoint
        assert set(flattened) == set(relation.rows)  # complete
        assert all(scan.rows_out == len(seen[-1]) for scan in [scan])

    def test_rejects_out_of_range_index(self):
        relation = Relation.from_rows("A", [(1,)])
        with pytest.raises(ValueError):
            PartitionedScan(relation, MemoryMeter(), 4, 4)


def _instance(seed=5):
    relation, query = random_instance(
        num_attributes=5, num_tuples=24, domain_size=3, num_factors=3, seed=seed
    )
    bound = {name: relation for name in query.operand_names()}
    return query, bound


class TestParallelExecution:
    @pytest.mark.parametrize("backend", ["thread", "fork"])
    def test_worker_union_matches_serial(self, backend):
        if backend == "fork" and default_backend() != "fork":
            pytest.skip("fork start method unavailable on this platform")
        query, bound = _instance()
        serial, serial_trace = EngineEvaluator().evaluate(query, bound)
        parallel, trace = EngineEvaluator(
            workers=4, parallel_backend=backend
        ).evaluate(query, bound)
        assert parallel == serial
        assert trace.result_cardinality == serial_trace.result_cardinality
        # Step cardinalities are summed across workers.  Dedup state is per
        # worker, so the streamed totals can only match or exceed the serial
        # counts (the output is set-equal; the stream is not row-identical).
        assert trace.steps[-1].cardinality >= serial_trace.steps[-1].cardinality

    def test_execute_parallel_reports_summed_steps(self):
        query, bound = _instance(seed=11)
        evaluator = EngineEvaluator()
        plan = evaluator.plan_for(query, bound)
        serial_root = plan.executor(bound, MemoryMeter())
        serial_rows = set()
        for block in serial_root.blocks():
            serial_rows.update(block)
        meter = MemoryMeter()
        outcome = execute_parallel(plan, bound, 4, meter, backend="thread")
        assert outcome.rows == serial_rows
        assert outcome.workers == 4 and outcome.backend == "thread"
        # Summed across workers; per-worker dedup means >= the serial count.
        assert outcome.step_rows[-1] >= serial_root.rows_out
        from repro.engine.parallel import operators_in_order

        assert len(outcome.step_rows) == len(operators_in_order(serial_root))

    def test_build_side_steps_are_not_multiplied_by_workers(self):
        # Every worker re-streams the build side in full; the trace must
        # report it once (serial-comparable), not summed across the pool.
        left = Relation.from_rows("A B", [(i, i % 4) for i in range(8)])
        right = Relation.from_rows("B C", [(i, -i) for i in range(4)])
        query = Projection(
            ["A"], Operand("R", left.scheme).join(Operand("S", right.scheme))
        )
        bound = {"R": left, "S": right}
        _, serial_trace = EngineEvaluator().evaluate(query, bound)
        _, trace = EngineEvaluator(workers=4, parallel_backend="thread").evaluate(
            query, bound
        )
        serial_by_label = {s.description: s.cardinality for s in serial_trace.steps}
        parallel_by_label = {s.description: s.cardinality for s in trace.steps}
        assert parallel_by_label["scan S"] == serial_by_label["scan S"]
        # The driving scan is sliced: its per-worker counts partition the
        # relation, so the summed trace equals the serial scan count.
        assert parallel_by_label["scan R [partitioned x4]"] == serial_by_label["scan R"]

    def test_small_inputs_degrade_to_serial(self):
        left = Relation.from_rows("A B", [(1, 2), (3, 4)])
        right = Relation.from_rows("B C", [(2, "x"), (4, "y")])
        query = Operand("R", left.scheme).join(Operand("S", right.scheme))
        bound = {"R": left, "S": right}
        result, _ = EngineEvaluator(workers=16, parallel_backend="thread").evaluate(
            query, bound
        )
        assert result == evaluate(query, bound)

    def test_empty_driving_relation_is_fine(self):
        left = Relation.empty("A B")
        right = Relation.from_rows("B C", [(2, "x")])
        query = Operand("R", left.scheme).join(Operand("S", right.scheme))
        result, _ = EngineEvaluator(workers=4, parallel_backend="thread").evaluate(
            query, {"R": left, "S": right}
        )
        assert result == evaluate(query, {"R": left, "S": right})

    def test_fork_backend_merges_worker_counters(self, tmp_path):
        if default_backend() != "fork":
            pytest.skip("fork start method unavailable on this platform")
        query, bound = _instance(seed=3)
        budget = MemoryBudget(
            rows=4, spill_fanout=2, min_partition_rows=2, spill_dir=str(tmp_path)
        )
        serial, _ = EngineEvaluator().evaluate(query, bound)
        counters = kernel_counters()
        before = counters.snapshot()
        result, trace = EngineEvaluator(
            budget=budget, workers=4, parallel_backend="fork"
        ).evaluate(query, bound)
        delta = counters.delta_since(before)
        assert result == serial
        # The spilling happened in the forked children, but the deltas were
        # folded back into this process (and the trace).
        assert delta["join_spills"] > 0
        assert trace.kernel_activity["join_spills"] > 0
        assert not any(tmp_path.iterdir())


class TestPinnedPlanConcurrencyStress:
    def test_one_pinned_plan_from_eight_threads_matches_serial_counters(self):
        """8 threads x 3 evaluations of one pinned, budgeted plan: every
        result equals the serial one and the engine's locked counters add up
        to exactly 24 serial deltas (lost updates would break equality)."""
        query, bound = _instance(seed=17)
        evaluator = EngineEvaluator(budget=6)
        counters = kernel_counters()
        # Pin the plan, then measure one serial evaluation's counter delta.
        serial, _ = evaluator.evaluate(query, bound)
        before = counters.snapshot()
        serial_again, _ = evaluator.evaluate(query, bound)
        per_evaluation = counters.delta_since(before)
        assert serial_again == serial
        assert per_evaluation["join_probes"] > 0
        assert per_evaluation["join_spills"] > 0  # the budget forces spills

        results = []
        errors = []
        rounds = 3

        def work():
            try:
                for _ in range(rounds):
                    result, trace = evaluator.evaluate(query, bound)
                    results.append((result, trace.peak_live_rows))
            except BaseException as exc:  # surfaced below
                errors.append(exc)

        before = counters.snapshot()
        pool = [threading.Thread(target=work) for _ in range(8)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        delta = counters.delta_since(before)
        assert errors == []
        assert len(results) == 8 * rounds
        assert all(result == serial for result, _ in results)
        assert all(peak > 0 for _, peak in results)
        for name in ENGINE_COUNTERS:
            assert delta[name] == 8 * rounds * per_evaluation[name], name

    def test_concurrent_first_use_pins_exactly_one_plan(self):
        query, bound = _instance(seed=23)
        evaluator = EngineEvaluator()
        plans = []
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            plans.append(evaluator.plan_for(query, bound))

        pool = [threading.Thread(target=work) for _ in range(8)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert len(plans) == 8
        assert all(plan is plans[0] for plan in plans)


class TestForkProbePoolLRU:
    """The multi-plan pool cache: keyed per bound plan, LRU-capped, closeable.

    Before the serving facade, the evaluator kept exactly one warm pool
    pinned to the most recent bound plan, so mixed query traffic re-forked
    on every plan switch (and long-lived evaluators leaked the previous
    pool's children on churn until GC).  These tests pin the new contract:
    distinct bound plans keep distinct warm pools up to ``max_pools``, the
    coldest pool is closed (not leaked) on eviction, and ``close()`` tears
    everything down.
    """

    @staticmethod
    def _queries(count, rows=8):
        """``count`` distinct (query, bindings) pairs large enough to pool."""
        cases = []
        for index in range(count):
            relation = Relation.from_rows(
                "A B", [(i % 3, (i + index) % 4) for i in range(rows)]
            )
            other = Relation.from_rows(
                "B C", [((i + index) % 4, i) for i in range(rows)]
            )
            query = Projection(
                ["A"], Operand("R", relation.scheme).join(Operand("S", other.scheme))
            )
            cases.append((query, {"R": relation, "S": other}))
        return cases

    @staticmethod
    def _pool_processes(evaluator):
        return [
            process
            for entry in evaluator._pools.values()
            for process in entry[-1]._processes
        ]

    def test_distinct_bound_plans_keep_distinct_warm_pools(self):
        if default_backend() != "fork":
            pytest.skip("fork start method unavailable on this platform")
        evaluator = EngineEvaluator(workers=2, max_pools=4)
        try:
            cases = self._queries(3)
            expected = [evaluate(query, bound) for query, bound in cases]
            for _ in range(2):  # the second sweep must reuse every pool
                for (query, bound), reference in zip(cases, expected):
                    result, _ = evaluator.evaluate(query, bound)
                    assert result == reference
            assert evaluator.open_pools == 3
            processes = self._pool_processes(evaluator)
            assert len(processes) == 3 * 2
            assert all(process.is_alive() for process in processes)
        finally:
            evaluator.close()
        assert evaluator.open_pools == 0
        for process in processes:
            process.join(timeout=5.0)
        assert not any(process.is_alive() for process in processes)

    def test_eviction_closes_the_coldest_pool(self):
        if default_backend() != "fork":
            pytest.skip("fork start method unavailable on this platform")
        evaluator = EngineEvaluator(workers=2, max_pools=2)
        try:
            cases = self._queries(3)
            evaluator.evaluate(*cases[0])
            first = self._pool_processes(evaluator)
            evaluator.evaluate(*cases[1])
            # Touch case 0 so case 1 is now the coldest.
            evaluator.evaluate(*cases[0])
            evaluator.evaluate(*cases[2])
            assert evaluator.open_pools == 2
            # Case 0's pool survived the eviction (case 1's was closed).
            assert all(process.is_alive() for process in first)
            result, _ = evaluator.evaluate(*cases[0])
            assert result == evaluate(*cases[0])
        finally:
            evaluator.close()

    def test_rebinding_a_relation_forks_a_fresh_pool(self):
        if default_backend() != "fork":
            pytest.skip("fork start method unavailable on this platform")
        evaluator = EngineEvaluator(workers=2, max_pools=4)
        try:
            query, bound = self._queries(1)[0]
            evaluator.evaluate(query, bound)
            assert evaluator.open_pools == 1
            # An equal-but-distinct relation object must not reuse the pool:
            # the forked children's inherited copies are the *old* objects.
            rebound = {
                name: Relation.from_rows(rel.scheme, list(rel.rows))
                for name, rel in bound.items()
            }
            result, _ = evaluator.evaluate(query, rebound)
            assert evaluator.open_pools == 2
            assert result == evaluate(query, bound)
        finally:
            evaluator.close()
