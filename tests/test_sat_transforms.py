"""Unit tests for formula transformations (3CNF normalisation, padding, guards)."""

import pytest

from repro.sat import (
    CNFFormula,
    add_universal_guard_clauses,
    count_models_bruteforce,
    ensure_minimum_clauses,
    fresh_variable,
    is_satisfiable,
    pad_with_trivial_clauses,
    paper_example_formula,
    random_three_cnf,
    to_strict_three_cnf,
)


class TestFreshVariable:
    def test_avoids_used_names(self):
        used = {"aux0", "aux1"}
        name = fresh_variable(used)
        assert name not in {"aux0", "aux1"}
        assert name in used  # registered for the next call

    def test_successive_calls_are_distinct(self):
        used = set()
        names = {fresh_variable(used) for _ in range(5)}
        assert len(names) == 5


class TestToStrictThreeCnf:
    def test_already_strict_is_unchanged(self):
        formula = paper_example_formula()
        assert to_strict_three_cnf(formula) == formula

    def test_result_is_strict(self):
        messy = CNFFormula.of("x1", "x1 | x2", "x1 | ~x1 | x2", "a | b | c | d | e")
        strict = to_strict_three_cnf(messy)
        assert strict.is_three_cnf()

    @pytest.mark.parametrize(
        "clauses",
        [
            ("x1",),
            ("x1 | x2",),
            ("x1 | x2 | x3 | x4",),
            ("x1 | x2 | x3 | x4 | x5 | x6",),
            ("x1 | ~x1",),
            ("x1", "~x1 | x2 | x3 | x4", "~x2"),
        ],
    )
    def test_equisatisfiability(self, clauses):
        original = CNFFormula.of(*clauses)
        converted = to_strict_three_cnf(original)
        assert is_satisfiable(original) == is_satisfiable(converted)

    def test_unsatisfiable_stays_unsatisfiable(self):
        original = CNFFormula.of("x1", "~x1")
        converted = to_strict_three_cnf(original)
        assert not is_satisfiable(converted)

    def test_long_clause_chain_preserves_satisfiability_per_assignment(self):
        # A single long clause: satisfiable, and the conversion must not make
        # the all-false assignment (extended somehow) satisfiable.
        original = CNFFormula.of("x1 | x2 | x3 | x4 | x5")
        converted = to_strict_three_cnf(original)
        assert is_satisfiable(converted)
        all_false = {v: False for v in converted.variables}
        assert not converted.evaluate(all_false)


class TestEnsureMinimumClauses:
    def test_no_change_when_enough(self):
        formula = paper_example_formula()
        assert ensure_minimum_clauses(formula, 3) is formula

    def test_padding_added_when_short(self):
        formula = CNFFormula.of("x1 | x2 | x3")
        padded = ensure_minimum_clauses(formula, 3)
        assert padded.num_clauses == 3
        assert padded.is_three_cnf()

    def test_padding_preserves_satisfiability_and_original_models(self):
        formula = CNFFormula.of("x1 | x2 | x3")
        padded = ensure_minimum_clauses(formula, 4)
        assert is_satisfiable(padded)
        # The original variables' satisfying patterns are unchanged: for any
        # model of the padded formula, its restriction satisfies the original.
        assert count_models_bruteforce(formula) == 7


class TestPadWithTrivialClauses:
    def test_clause_count_grows(self):
        formula = paper_example_formula()
        padded = pad_with_trivial_clauses(formula, 2)
        assert padded.num_clauses == formula.num_clauses + 2

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            pad_with_trivial_clauses(paper_example_formula(), -1)

    def test_satisfiability_preserved(self):
        satisfiable = paper_example_formula()
        assert is_satisfiable(pad_with_trivial_clauses(satisfiable, 3))
        unsatisfiable = CNFFormula.of("x1", "~x1")
        assert not is_satisfiable(pad_with_trivial_clauses(unsatisfiable, 3))

    def test_padding_variables_are_fresh(self):
        formula = paper_example_formula()
        padded = pad_with_trivial_clauses(formula, 1)
        new_variables = set(padded.variables) - set(formula.variables)
        assert len(new_variables) == 3

    def test_model_count_multiplies_by_seven_per_clause(self):
        formula = random_three_cnf(4, 5, seed=1)
        padded = pad_with_trivial_clauses(formula, 1)
        assert count_models_bruteforce(padded) == 7 * count_models_bruteforce(formula)


class TestGuardClauses:
    def test_two_clauses_and_two_universal_variables_added(self):
        formula = paper_example_formula()
        extended, universal = add_universal_guard_clauses(formula, ["x1"])
        assert extended.num_clauses == formula.num_clauses + 2
        assert len(universal) == 3
        assert universal[0] == "x1"

    def test_first_restriction_fixed_by_guards(self):
        from repro.qbf import QThreeSatInstance

        formula = paper_example_formula()
        # X = {x1} is contained in the first clause's variable set; the guard
        # clauses add universal variables outside every original clause, which
        # repairs exactly that restriction.
        assert QThreeSatInstance(formula, ("x1",)).universal_inside_some_clause()
        extended, universal = add_universal_guard_clauses(formula, ["x1"])
        instance = QThreeSatInstance(extended, universal)
        assert instance.satisfies_proposition4_restrictions()

    def test_second_restriction_is_not_affected_by_guards(self):
        from repro.qbf import QThreeSatInstance

        # X covering a whole clause stays trivially false; guards cannot (and
        # per Proposition 4 need not) repair that.
        formula = paper_example_formula()
        extended, universal = add_universal_guard_clauses(formula, ["x1", "x2", "x3"])
        assert QThreeSatInstance(extended, universal).universal_contains_some_clause()

    def test_truth_value_preserved(self):
        from repro.qbf import QThreeSatInstance, evaluate_by_expansion

        formula = paper_example_formula()
        original = QThreeSatInstance(formula, ("x1",))
        extended, universal = add_universal_guard_clauses(formula, ("x1",))
        transformed = QThreeSatInstance(extended, universal)
        assert evaluate_by_expansion(original) == evaluate_by_expansion(transformed)
