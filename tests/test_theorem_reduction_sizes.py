"""Polynomial-size checks for every reduction (the "polynomial time" half of each proof).

Hardness proofs require the produced instance to be polynomial in the source
instance.  These tests pin the exact size formulas of each reduction's output,
so an accidental change that blows the construction up (or shrinks it into
incorrectness) is caught immediately.
"""

import pytest

from repro.qbf import canonical_false_q3sat, planted_true_q3sat
from repro.reductions import (
    MembershipReduction,
    RGConstruction,
    SatUnsatPair,
    Theorem1Reduction,
    Theorem3Reduction,
    Theorem4Reduction,
    Theorem5Reduction,
)
from repro.sat import forced_unsatisfiable, planted_satisfiable


@pytest.fixture(scope="module")
def formulas():
    satisfiable, _ = planted_satisfiable(5, 4, seed=3)
    unsatisfiable = forced_unsatisfiable(4, seed=3)
    return satisfiable, unsatisfiable


def columns_of(formula):
    m, n = formula.num_clauses, formula.num_variables
    return m + n + m * (m - 1) // 2 + 1


class TestConstructionSizes:
    def test_rg_sizes(self, formulas):
        for formula in formulas:
            construction = RGConstruction(formula)
            m = construction.formula.num_clauses
            assert len(construction.relation) == 7 * m + 1
            assert len(construction.scheme) == columns_of(construction.formula)
            assert construction.expression.size() == 2 * (m + 1) + 1

    def test_theorem1_instance_sizes(self, formulas):
        satisfiable, unsatisfiable = formulas
        reduction = Theorem1Reduction(SatUnsatPair(satisfiable, unsatisfiable))
        relation, expression, conjectured = reduction.instance()
        first, second = reduction.first_construction, reduction.second_construction
        assert len(relation) == len(first.relation) * len(second.relation)
        assert len(relation.scheme) == len(first.scheme) + len(second.scheme)
        # The conjectured result is (m+2) x (m'+1) pair-pattern combinations.
        assert len(conjectured) == (first.pair_projection_size() + 1) * (
            second.pair_projection_size()
        )
        # The combined expression contains both copies' factors.
        assert expression.count_projections() == (
            first.formula.num_clauses + 1 + second.formula.num_clauses + 1 + 2
        )

    def test_theorem3_instance_is_just_the_construction(self, formulas):
        satisfiable, _ = formulas
        reduction = Theorem3Reduction(satisfiable)
        instance = reduction.instance()
        assert len(instance.relation) == 7 * reduction.construction.formula.num_clauses + 1

    def test_theorem4_relation_sizes(self):
        for instance in (planted_true_q3sat(2, seed=1), canonical_false_q3sat()):
            reduction = Theorem4Reduction(instance)
            m = reduction.construction.formula.num_clauses
            relation = reduction.relation()
            # R'_G = R_G plus one falsifying tuple per clause, one extra column (U).
            assert len(relation) == 7 * m + 1 + m
            assert len(relation.scheme) == columns_of(reduction.construction.formula) + 1

    def test_theorem5_relation_sizes(self):
        for instance in (planted_true_q3sat(2, seed=2), canonical_false_q3sat()):
            reduction = Theorem5Reduction(instance)
            m = reduction.construction.formula.num_clauses
            comparison = reduction.containment_instance()
            assert len(comparison.first) == 7 * m + 1 + m
            assert len(comparison.second) == 7 * m + 1
            assert comparison.first.scheme == comparison.second.scheme

    def test_membership_instance_sizes(self, formulas):
        satisfiable, _ = formulas
        reduction = MembershipReduction(satisfiable)
        instance = reduction.instance()
        m = reduction.construction.formula.num_clauses
        assert len(instance.projection_schemes) == m + 1
        # The target tuple ranges over the m(m-1)/2 pair columns.
        assert len(instance.tuple) == m * (m - 1) // 2
