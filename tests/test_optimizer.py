"""Unit tests for projection push-down and the optimising evaluator."""

import pytest

from repro.algebra import Relation
from repro.expressions import (
    Join,
    Operand,
    OptimizedEvaluator,
    Projection,
    evaluate,
    push_down_projections,
)
from repro.workloads import random_instance

R = Relation.from_rows(
    "A B C D",
    [(1, 2, 3, 4), (1, 2, 5, 6), (7, 2, 3, 8), (7, 9, 5, 4)],
    name="R",
)
BASE = Operand("R", "A B C D")


class TestPushDownRewrite:
    def test_preserves_target_scheme(self):
        expression = Projection("A", Join([Projection("A B", BASE), Projection("B C", BASE)]))
        rewritten = push_down_projections(expression)
        assert rewritten.target_scheme() == expression.target_scheme()

    def test_preserves_value(self):
        expression = Projection("A C", Join([Projection("A B", BASE), Projection("B C", BASE)]))
        rewritten = push_down_projections(expression)
        assert evaluate(rewritten, R) == evaluate(expression, R)

    def test_operand_projected_to_needed_attributes(self):
        expression = Projection("A", BASE)
        rewritten = push_down_projections(expression)
        assert isinstance(rewritten, Projection)
        assert rewritten.target.names == ("A",)
        assert isinstance(rewritten.child, Operand)

    def test_identity_projection_is_removed(self):
        expression = Projection("A B C D", BASE)
        assert push_down_projections(expression) == BASE

    def test_nested_projections_collapse(self):
        expression = Projection("A", Projection("A B", Projection("A B C", BASE)))
        rewritten = push_down_projections(expression)
        assert rewritten.target_scheme().names == ("A",)
        # Exactly one projection above the operand remains.
        assert rewritten.count_projections() == 1

    def test_join_attributes_are_kept_below_join(self):
        # B joins the two factors, so it must survive below the join even
        # though the outer projection discards it.
        expression = Projection("A C", Join([Projection("A B", BASE), Projection("B C", BASE)]))
        rewritten = push_down_projections(expression)
        join_node = next(node for node in rewritten.walk() if isinstance(node, Join))
        for part in join_node.parts:
            assert "B" in part.target_scheme()

    def test_value_preserved_on_random_instances(self):
        for seed in range(8):
            relation, query = random_instance(seed=seed)
            rewritten = push_down_projections(query)
            assert evaluate(rewritten, relation) == evaluate(query, relation)


class TestOptimizedEvaluator:
    def test_matches_naive_on_random_instances(self):
        evaluator = OptimizedEvaluator()
        for seed in range(8):
            relation, query = random_instance(seed=100 + seed)
            optimized, _ = evaluator.evaluate(query, relation)
            assert optimized == evaluate(query, relation)

    def test_peak_not_larger_on_wide_projection_case(self):
        # Joining two one-column projections of a wide relation: push-down
        # cannot help (nothing extra to project away), but the optimiser must
        # never be *worse* than naive on this shape.
        from repro.expressions import InstrumentedEvaluator

        expression = Projection("A D", Join([Projection("A B", BASE), Projection("B D", BASE)]))
        _, naive_trace = InstrumentedEvaluator().evaluate(expression, R)
        _, optimized_trace = OptimizedEvaluator().evaluate(expression, R)
        assert (
            optimized_trace.peak_intermediate_cardinality
            <= naive_trace.peak_intermediate_cardinality
        )

    def test_greedy_ordering_reduces_peak_on_skewed_join(self):
        # Three factors where joining the two selective ones first is much
        # cheaper than the left-to-right order.
        wide = Relation.from_rows(
            "A B",
            [(i, j) for i in range(6) for j in range(6)],
        )
        narrow_one = Relation.from_rows("B C", [(0, 1)])
        narrow_two = Relation.from_rows("C D", [(1, 2)])
        expression = Join(
            [Operand("Wide", "A B"), Operand("N1", "B C"), Operand("N2", "C D")]
        )
        arguments = {"Wide": wide, "N1": narrow_one, "N2": narrow_two}
        from repro.expressions import InstrumentedEvaluator

        naive_result, naive_trace = InstrumentedEvaluator().evaluate(expression, arguments)
        optimized_result, optimized_trace = OptimizedEvaluator().evaluate(
            expression, arguments
        )
        assert optimized_result == naive_result
        assert (
            optimized_trace.peak_intermediate_cardinality
            <= naive_trace.peak_intermediate_cardinality
        )
