"""Tests for the cardinality decider."""

import pytest

from repro.algebra import Relation
from repro.decision import CardinalityDecider
from repro.expressions import Join, Operand, Projection, evaluate

R = Relation.from_rows("A B C", [(1, 2, 3), (1, 2, 4), (2, 5, 3), (4, 5, 6)], name="R")
BASE = Operand("R", "A B C")
QUERY = Join([Projection("A B", BASE), Projection("B C", BASE)])
DECIDER = CardinalityDecider()
TRUE_CARDINALITY = len(evaluate(QUERY, R))


class TestExactCount:
    def test_cardinality_matches_evaluation(self):
        assert DECIDER.cardinality(QUERY, R) == TRUE_CARDINALITY

    def test_cardinality_of_empty_input(self):
        assert DECIDER.cardinality(QUERY, Relation.empty(R.scheme)) == 0


class TestBoundChecks:
    def test_two_sided_bounds(self):
        verdict = DECIDER.check_bounds(
            QUERY, R, lower=TRUE_CARDINALITY, upper=TRUE_CARDINALITY
        )
        assert verdict.holds and verdict.lower_holds and verdict.upper_holds
        assert verdict.cardinality == TRUE_CARDINALITY

    def test_lower_bound_violation(self):
        verdict = DECIDER.check_bounds(QUERY, R, lower=TRUE_CARDINALITY + 1)
        assert not verdict.lower_holds
        assert verdict.upper_holds  # no upper bound given
        assert not verdict.holds

    def test_upper_bound_violation(self):
        verdict = DECIDER.check_bounds(QUERY, R, upper=TRUE_CARDINALITY - 1)
        assert not verdict.upper_holds
        assert verdict.lower_holds
        assert not verdict.holds

    def test_missing_bounds_always_hold(self):
        verdict = DECIDER.check_bounds(QUERY, R)
        assert verdict.holds

    def test_window_containing_value(self):
        verdict = DECIDER.check_bounds(
            QUERY, R, lower=TRUE_CARDINALITY - 1, upper=TRUE_CARDINALITY + 1
        )
        assert verdict.holds


class TestEarlyExitVariants:
    def test_at_least(self):
        assert DECIDER.at_least(QUERY, R, 0)
        assert DECIDER.at_least(QUERY, R, TRUE_CARDINALITY)
        assert not DECIDER.at_least(QUERY, R, TRUE_CARDINALITY + 1)

    def test_at_most(self):
        assert DECIDER.at_most(QUERY, R, TRUE_CARDINALITY)
        assert DECIDER.at_most(QUERY, R, TRUE_CARDINALITY + 5)
        assert not DECIDER.at_most(QUERY, R, TRUE_CARDINALITY - 1)

    def test_consistency_between_variants(self):
        for bound in range(0, TRUE_CARDINALITY + 2):
            assert DECIDER.at_least(QUERY, R, bound) == (TRUE_CARDINALITY >= bound)
            assert DECIDER.at_most(QUERY, R, bound) == (TRUE_CARDINALITY <= bound)
