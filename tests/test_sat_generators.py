"""Unit tests for the formula generators."""

import pytest

from repro.sat import (
    count_models_bruteforce,
    forced_unsatisfiable,
    is_satisfiable,
    paper_example_formula,
    pigeonhole_formula,
    planted_satisfiable,
    random_three_cnf,
)


class TestRandomThreeCnf:
    def test_shape(self):
        formula = random_three_cnf(6, 10, seed=0)
        assert formula.num_clauses == 10
        assert formula.num_variables == 6
        assert formula.is_three_cnf()

    def test_deterministic_for_fixed_seed(self):
        assert random_three_cnf(6, 10, seed=42) == random_three_cnf(6, 10, seed=42)

    def test_different_seeds_differ(self):
        assert random_three_cnf(6, 10, seed=1) != random_three_cnf(6, 10, seed=2)

    def test_needs_three_variables(self):
        with pytest.raises(ValueError):
            random_three_cnf(2, 5)

    def test_custom_prefix(self):
        formula = random_three_cnf(4, 3, seed=0, prefix="v")
        assert all(v.startswith("v") for v in formula.variables)


class TestPlantedSatisfiable:
    @pytest.mark.parametrize("seed", range(5))
    def test_planted_model_satisfies(self, seed):
        formula, model = planted_satisfiable(6, 20, seed=seed)
        assert formula.evaluate(model)
        assert formula.num_clauses == 20
        assert formula.is_three_cnf()

    def test_needs_three_variables(self):
        with pytest.raises(ValueError):
            planted_satisfiable(2, 5)


class TestForcedUnsatisfiable:
    def test_core_block_is_unsatisfiable(self):
        formula = forced_unsatisfiable(3)
        assert formula.num_clauses == 8
        assert not is_satisfiable(formula)
        assert formula.is_three_cnf()

    def test_extra_clauses_keep_it_unsatisfiable(self):
        formula = forced_unsatisfiable(6, extra_random_clauses=5, seed=1)
        assert formula.num_clauses == 13
        assert not is_satisfiable(formula)

    def test_needs_three_variables(self):
        with pytest.raises(ValueError):
            forced_unsatisfiable(2)


class TestPigeonhole:
    def test_unsatisfiable_and_three_cnf(self):
        formula = pigeonhole_formula(2)
        assert formula.is_three_cnf()
        assert not is_satisfiable(formula)

    def test_raw_form_keeps_binary_clauses(self):
        raw = pigeonhole_formula(2, as_three_cnf=False)
        assert any(len(clause) == 2 for clause in raw.clauses)
        assert not is_satisfiable(raw)

    def test_needs_a_hole(self):
        with pytest.raises(ValueError):
            pigeonhole_formula(0)


class TestPaperExample:
    def test_shape_matches_paper(self):
        formula = paper_example_formula()
        assert formula.num_clauses == 3
        assert formula.num_variables == 5
        assert formula.variables == ("x1", "x2", "x3", "x4", "x5")

    def test_model_count_is_twenty(self):
        # Twenty satisfying assignments; the Lemma 1 tests rely on it.
        assert count_models_bruteforce(paper_example_formula()) == 20
