"""Tests for :mod:`repro.obs`: tracer, metrics, events, exporters, wiring.

Covers the observability contracts end to end — span nesting and stream
timing semantics, the span cap, the disabled tracer's no-op guarantee,
exact-total thread-safety of the metrics registry, parent propagation
into the process registry, the event log's JSONL mirroring, Prometheus
rendering, and the ``Session``/``PreparedQuery`` integration
(``UnifiedTrace.spans``, ``explain_analyze()``, ``Session.metrics()``,
``Session.events()``), plus the ``peak_memory_rows`` backend-dispatch
regression and copy/pickle behaviour of the trace shim.
"""

import copy
import json
import pickle
import threading
import warnings

import pytest

import repro
from repro import BackendConfig, ObserveConfig
from repro.algebra import Relation
from repro.api import SessionError, UnifiedTrace
from repro.obs import (
    NULL_TRACER,
    EventLog,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Span,
    Tracer,
    events_to_jsonl,
    explain_report,
    process_metrics,
    render_prometheus,
    span_tree,
)


def _database():
    r = Relation.from_rows("A B", [(i, i % 7) for i in range(80)], name="R")
    s = Relation.from_rows("B C", [(i % 7, i) for i in range(80)], name="S")
    return {"R": r, "S": s}


QUERY = "project[A, C](R * S)"


class TestTracerSpans:
    def test_with_span_records_kind_label_and_duration(self):
        tracer = Tracer()
        with tracer.span("plan", "plan_for") as handle:
            handle.rows = 3
        (span,) = tracer.finish()
        assert span.kind == "plan"
        assert span.label == "plan_for"
        assert span.rows == 3
        assert span.seconds >= 0.0
        assert span.parent_id is None

    def test_nested_spans_record_parentage(self):
        tracer = Tracer()
        with tracer.span("execute", "outer"):
            with tracer.span("plan", "inner"):
                pass
        spans = tracer.finish()
        by_label = {span.label: span for span in spans}
        assert by_label["inner"].parent_id == by_label["outer"].span_id
        assert by_label["outer"].parent_id is None

    def test_stream_opens_lazily_inside_the_pulling_span(self):
        tracer = Tracer()

        def blocks():
            yield [1]
            yield [2]

        wrapped = tracer.stream("spill-read", "part-0", blocks())
        assert tracer.finish() == []  # nothing opened until the first pull
        with tracer.span("materialize", "drain"):
            assert list(wrapped) == [[1], [2]]
        spans = {span.label: span for span in tracer.finish()}
        assert spans["part-0"].parent_id == spans["drain"].span_id

    def test_stream_counts_only_time_inside_the_generator(self):
        import time

        tracer = Tracer()

        def fast_blocks():
            yield [1]
            yield [2]

        wrapped = tracer.stream("operator", "fast", fast_blocks())
        for _ in wrapped:
            time.sleep(0.02)  # consumer-held time must NOT be charged
        (span,) = tracer.finish()
        assert span.seconds < 0.02

    def test_stream_close_cascade_closes_children_before_parents(self):
        # Mirrors how operators actually chain: the inner traced stream is
        # owned by the outer generator's frame, exactly like
        # ``child.blocks()`` inside a parent operator's ``_blocks()``.
        tracer = Tracer()

        def inner():
            yield [1]
            yield [2]

        def outer(source):
            for block in source:
                yield block

        wrapped_outer = tracer.stream(
            "operator", "outer", outer(tracer.stream("operator", "inner", inner()))
        )
        next(wrapped_outer)
        wrapped_outer.close()  # early exit: both spans must still close
        spans = {span.label: span for span in tracer.finish()}
        assert set(spans) == {"inner", "outer"}
        assert spans["inner"].parent_id == spans["outer"].span_id

    def test_span_counters_record_only_nonzero_deltas(self):
        from repro.perf import kernel_counters

        tracer = Tracer()
        with tracer.span("operator", "worker"):
            kernel_counters().add(join_probes=5)
        (span,) = tracer.finish()
        assert span.counters["join_probes"] == 5
        assert all(value != 0 for value in span.counters.values())

    def test_span_cap_drops_and_counts_excess(self, monkeypatch):
        import repro.obs.tracer as tracer_module

        monkeypatch.setattr(tracer_module, "MAX_SPANS", 3)
        tracer = Tracer()
        for index in range(5):
            with tracer.span("operator", f"op-{index}"):
                pass
        assert len(tracer.finish()) == 3
        assert tracer.dropped == 2

    def test_finish_orders_spans_by_start_time(self):
        tracer = Tracer()
        with tracer.span("execute", "first"):
            pass
        with tracer.span("execute", "second"):
            pass
        labels = [span.label for span in tracer.finish()]
        assert labels == ["first", "second"]

    def test_span_summary_is_json_serialisable(self):
        tracer = Tracer()
        with tracer.span("plan", "p"):
            pass
        (span,) = tracer.finish()
        assert json.loads(json.dumps(span.summary()))["kind"] == "plan"


class TestNullTracer:
    def test_stream_returns_the_iterator_untouched(self):
        def blocks():
            yield [1]

        iterator = blocks()
        assert NULL_TRACER.stream("operator", "x", iterator) is iterator
        assert NULL_TRACER.operator_stream(object(), iterator) is iterator

    def test_span_is_a_noop_context_manager(self):
        with NULL_TRACER.span("execute", "e") as handle:
            handle.rows = 99  # silently ignored
        assert NULL_TRACER.finish() == []
        assert NullTracer.enabled is False
        assert Tracer.enabled is True


class TestSpanTree:
    def test_roots_and_children_reassemble_the_hierarchy(self):
        spans = [
            Span(span_id=1, parent_id=None, kind="execute", label="e", start=0.0, seconds=1.0),
            Span(span_id=2, parent_id=1, kind="operator", label="join", start=0.1, seconds=0.5),
            Span(span_id=3, parent_id=2, kind="operator", label="scan", start=0.2, seconds=0.1),
        ]
        roots, children = span_tree(spans)
        assert [span.span_id for span in roots] == [1]
        assert [span.span_id for span in children[1]] == [2]
        assert [span.span_id for span in children[2]] == [3]

    def test_orphaned_spans_are_promoted_to_roots(self):
        spans = [
            Span(span_id=7, parent_id=99, kind="operator", label="lost", start=0.0, seconds=0.1)
        ]
        roots, _ = span_tree(spans)
        assert [span.label for span in roots] == ["lost"]


class TestExplainReport:
    def _spans(self):
        return [
            Span(span_id=1, parent_id=None, kind="operator", label="join", start=0.0,
                 seconds=0.8, rows=10),
            Span(span_id=2, parent_id=1, kind="operator", label="scan", start=0.01,
                 seconds=0.3, rows=100),
            Span(span_id=3, parent_id=None, kind="plan", label="plan_for", start=0.0,
                 seconds=0.05),
        ]

    def test_inclusive_self_and_attribution(self):
        report = explain_report(self._spans(), total_seconds=1.0, result_rows=10)
        join, scan = report.operators
        assert join.seconds == pytest.approx(0.8)
        assert join.self_seconds == pytest.approx(0.5)
        assert scan.depth == join.depth + 1
        assert report.attributed_seconds == pytest.approx(0.8)
        assert report.attributed_fraction == pytest.approx(0.8)
        assert report.others["plan"]["count"] == 1

    def test_attribution_recurses_through_non_operator_roots(self):
        spans = [
            Span(span_id=1, parent_id=None, kind="materialize", label="drain",
                 start=0.0, seconds=0.9),
            Span(span_id=2, parent_id=1, kind="operator", label="join", start=0.0,
                 seconds=0.7, rows=5),
        ]
        report = explain_report(spans, total_seconds=1.0)
        assert report.attributed_seconds == pytest.approx(0.7)

    def test_str_renders_the_tree_and_headline(self):
        text = str(explain_report(self._spans(), total_seconds=1.0, result_rows=10))
        assert "EXPLAIN ANALYZE (engine)" in text
        assert "join" in text and "scan" in text
        assert "80.0% attributed" in text

    def test_empty_spans_render_the_engine_only_note(self):
        report = explain_report([], total_seconds=0.5, backend="naive")
        assert report.attributed_fraction == 0.0
        assert "engine-backend only" in str(report)


class TestMetrics:
    def test_counter_monotonic_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(7.0)
        gauge.set(2.5)
        assert gauge.value == 2.5

    def test_histogram_exact_count_sum_max(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 3.0, 10.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(15.0)
        assert summary["max"] == pytest.approx(10.0)

    def test_histogram_percentiles_are_bucket_upper_bounds(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 0.6, 0.7, 1.5):
            histogram.observe(value)
        assert histogram.percentile(0.50) == 1.0
        assert histogram.percentile(0.95) == 2.0
        histogram.observe(100.0)
        assert histogram.percentile(0.99) == float("inf")

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_summary_since_reports_only_the_window(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 5.0))
        histogram.observe(0.5)
        snapshot = histogram.snapshot()
        histogram.observe(1.5)
        histogram.observe(1.7)
        window = histogram.summary_since(snapshot)
        assert window["count"] == 2
        assert window["sum"] == pytest.approx(3.2)
        assert window["p50"] == 2.0  # bucket-resolution
        assert window["max"] == 2.0  # upper bound of the hottest new bucket

    def test_registry_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_registry_rejects_bucket_redefinition(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_child_observations_propagate_to_the_parent(self):
        parent = MetricsRegistry()
        child = MetricsRegistry(parent=parent)
        child.counter("hits").inc(3)
        child.histogram("lat", buckets=(1.0,)).observe(0.5)
        child.gauge("level").set(9.0)
        assert parent.counter("hits").value == 3
        assert parent.histogram("lat", buckets=(1.0,)).count == 1
        assert parent.gauge("level").value == 9.0

    def test_eight_threads_of_histogram_observes_account_exactly(self):
        """Concurrent observes must never lose an update (satellite 3)."""
        parent = MetricsRegistry()
        child = MetricsRegistry(parent=parent)
        histogram = child.histogram("h", buckets=(0.25, 0.5, 1.0))
        rounds = 2_000

        def hammer(offset):
            for index in range(rounds):
                histogram.observe(((index + offset) % 4) * 0.25)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = 8 * rounds
        assert histogram.count == total
        assert sum(histogram.bucket_counts) == total
        expected_sum = 8 * sum(((i + 0) % 4) * 0.25 for i in range(rounds))
        assert histogram.sum == pytest.approx(expected_sum)
        # The parent saw every observation exactly once too.
        assert parent.histogram("h", buckets=(0.25, 0.5, 1.0)).count == total

    def test_process_registry_is_a_stable_singleton(self):
        assert process_metrics() is process_metrics()


class TestEventLog:
    def test_emit_assigns_sequence_and_timestamp(self):
        log = EventLog(clock=lambda: 123.0)
        first = log.emit("spill", operator="dedup", rows=10)
        second = log.emit("replan")
        assert first["seq"] == 1 and second["seq"] == 2
        assert first["ts"] == 123.0
        assert first["operator"] == "dedup"

    def test_filtering_counts_and_clear(self):
        log = EventLog()
        log.emit("spill")
        log.emit("fault", site="spill-write")
        log.emit("spill")
        assert len(log) == 3
        assert [event["kind"] for event in log.events("fault")] == ["fault"]
        assert log.counts() == {"spill": 2, "fault": 1}
        log.clear()
        assert len(log) == 0

    def test_jsonl_mirroring_appends_one_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=str(path))
        log.emit("spill", rows=5)
        log.emit("replan", trigger="guard")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "spill"
        assert json.loads(lines[1])["trigger"] == "guard"

    def test_events_to_jsonl_round_trips(self):
        log = EventLog(clock=lambda: 1.0)
        log.emit("fault", site="spill-read")
        text = events_to_jsonl(log.events())
        assert json.loads(text.strip())["site"] == "spill-read"

    def test_concurrent_emitters_mirror_in_seq_order(self, tmp_path):
        # Regression: the JSONL write used to happen outside the mutation
        # lock, so two threads could assign seq 1 and 2 but reach open()
        # in the other order (and interleave partial lines under enough
        # contention).  The mirror must be a line-atomic replica of the
        # in-memory sequence.
        path = tmp_path / "events.jsonl"
        log = EventLog(path=str(path))
        emits_per_thread = 200
        threads = [
            threading.Thread(
                target=lambda worker=worker: [
                    log.emit("spill", worker=worker, i=i)
                    for i in range(emits_per_thread)
                ]
            )
            for worker in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 8 * emits_per_thread
        seqs = [json.loads(line)["seq"] for line in lines]
        assert seqs == list(range(1, 8 * emits_per_thread + 1))


class TestRenderPrometheus:
    def test_counter_gauge_and_histogram_series(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", help="served requests").inc(3)
        registry.gauge("level").set(1.5)
        histogram = registry.histogram("lat", buckets=(0.1, 1.0), help="latency")
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = render_prometheus(registry)
        assert "# HELP requests_total served requests" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 3" in text
        assert "level 1.5" in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1.0"} 2' in text  # cumulative
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_gauge_extremes_render_valid_exposition(self):
        # Regression: only +inf was special-cased — -inf rendered as
        # "-inf" and NaN as "nan", both invalid in the text exposition
        # format (Prometheus requires "-Inf" / "NaN").
        registry = MetricsRegistry()
        registry.gauge("pos_edge").set(float("inf"))
        registry.gauge("neg_edge").set(float("-inf"))
        registry.gauge("nan_edge").set(float("nan"))
        text = render_prometheus(registry)
        assert "pos_edge +Inf" in text
        assert "neg_edge -Inf" in text
        assert "nan_edge NaN" in text
        values = [
            line.split()[-1]
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert set(values) == {"+Inf", "-Inf", "NaN"}  # never -inf / nan / inf

    def test_gauge_extremes_round_trip_through_merge(self):
        registry = MetricsRegistry()
        registry.gauge("edge", help="extreme values").set(float("-inf"))
        merged = repro.obs.merge_collected([registry.collect()])
        assert "edge -Inf" in render_prometheus(merged)

    def test_help_text_is_escaped_per_exposition_spec(self):
        # Regression: HELP text was emitted raw, so a newline in a help
        # string injected a bogus exposition line and a backslash made
        # scrapers un-escape garbage.
        registry = MetricsRegistry()
        registry.counter(
            "tricky_total", help="line one\nline two with a \\ backslash"
        ).inc()
        text = render_prometheus(registry)
        assert (
            "# HELP tricky_total line one\\nline two with a \\\\ backslash" in text
        )
        # One logical line: the raw newline must not survive.
        help_lines = [line for line in text.splitlines() if line.startswith("# HELP")]
        assert len(help_lines) == 1

    def test_render_accepts_a_collected_mapping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", help="c").inc(2)
        assert render_prometheus(registry.collect()) == render_prometheus(registry)


class TestMergeCollected:
    def _snapshot(self, executes, latency):
        registry = MetricsRegistry()
        registry.counter("requests_total", help="requests").inc(executes)
        registry.gauge("last_peak").set(latency * 10)
        histogram = registry.histogram("lat", buckets=(0.1, 1.0), help="latency")
        histogram.observe(latency)
        return registry.collect()

    def test_counters_and_histograms_sum_across_workers(self):
        merged = repro.obs.merge_collected(
            [self._snapshot(3, 0.05), self._snapshot(4, 5.0)]
        )
        assert merged["requests_total"]["value"] == 7
        assert merged["lat"]["count"] == 2
        assert merged["lat"]["bucket_counts"][0] == 1  # the 0.05 observation
        assert merged["lat"]["bucket_counts"][-1] == 1  # the 5.0 tail
        assert merged["lat"]["max"] == 5.0
        assert merged["last_peak"]["value"] == 50.0  # last snapshot wins

    def test_merge_does_not_mutate_the_input_snapshots(self):
        first = self._snapshot(1, 0.05)
        before = [tuple(first["lat"]["bucket_counts"]), first["requests_total"]["value"]]
        repro.obs.merge_collected([first, self._snapshot(2, 0.5)])
        assert [tuple(first["lat"]["bucket_counts"]), first["requests_total"]["value"]] == before

    def test_type_conflicts_raise(self):
        counter_side = MetricsRegistry()
        counter_side.counter("x").inc()
        gauge_side = MetricsRegistry()
        gauge_side.gauge("x").set(1)
        with pytest.raises(ValueError):
            repro.obs.merge_collected([counter_side.collect(), gauge_side.collect()])

    def test_bucket_conflicts_raise(self):
        one = MetricsRegistry()
        one.histogram("h", buckets=(0.1, 1.0)).observe(0.2)
        two = MetricsRegistry()
        two.histogram("h", buckets=(0.5,)).observe(0.2)
        with pytest.raises(ValueError):
            repro.obs.merge_collected([one.collect(), two.collect()])


class TestSessionObservability:
    def test_trace_spans_populated_when_tracing_is_on(self):
        config = BackendConfig(observe=ObserveConfig(trace=True))
        with repro.connect(_database(), config=config) as session:
            trace = session.prepare(QUERY).trace()
        assert trace.spans, "tracing on but no spans recorded"
        kinds = {span.kind for span in trace.spans}
        assert "operator" in kinds and "plan" in kinds
        roots, children = span_tree(trace.spans)
        assert roots and children

    def test_trace_spans_empty_when_observability_is_off(self):
        with repro.connect(_database()) as session:
            trace = session.prepare(QUERY).trace()
        assert trace.spans == []

    def test_explain_analyze_reports_per_operator_runtime(self):
        with repro.connect(_database()) as session:
            query = session.prepare(QUERY)
            expected_rows = len(query.execute())
            report = query.explain_analyze()
            assert report.backend == "engine"
            assert report.operators, "engine run must emit operator spans"
            assert report.result_rows == expected_rows
            assert 0.0 < report.attributed_fraction <= 1.0
            assert query.last_trace().spans  # traced run is the last trace

    def test_explain_analyze_on_materialising_backend_has_no_operators(self):
        with repro.connect(_database(), backend="optimized") as session:
            report = session.prepare(QUERY).explain_analyze()
        assert report.operators == []
        assert report.total_seconds > 0.0

    def test_spill_events_recorded_on_budgeted_run(self):
        config = BackendConfig(observe=True, budget=16)
        with repro.connect(_database(), config=config) as session:
            session.prepare(QUERY).execute()
            events = session.events()
            assert events is not None
            assert events.events("spill"), "budgeted run must log spill events"

    def test_session_metrics_observe_executions(self):
        with repro.connect(_database()) as session:
            query = session.prepare(QUERY)
            result = query.execute()
            query.execute()
            metrics = session.metrics()
        assert metrics.counter("repro_executes_total").value == 2
        assert metrics.counter("repro_rows_total").value == 2 * len(result)
        assert metrics.histogram("repro_query_seconds").count == 2

    def test_metrics_disabled_raises_a_session_error(self):
        config = BackendConfig(observe=ObserveConfig(metrics=False))
        with repro.connect(_database(), config=config) as session:
            session.prepare(QUERY).execute()
            with pytest.raises(SessionError):
                session.metrics()
            assert session.events() is None

    def test_events_none_without_observe_config(self):
        with repro.connect(_database()) as session:
            assert session.events() is None


class TestPeakMemoryRowsDispatch:
    """``peak_memory_rows`` branches on the backend, not on truthiness."""

    def test_engine_zero_residency_stays_zero(self):
        # Regression: an engine trace with peak_live_rows == 0 used to fall
        # through to the streamed step cardinalities (throughput, not
        # residency) and report a bogus nonzero peak.
        from repro.expressions.evaluator import TraceStep

        trace = UnifiedTrace(
            backend="engine",
            steps=[
                TraceStep(
                    description="scan",
                    node_kind="operand",
                    cardinality=500,
                    scheme_width=2,
                    cell_count=1000,
                )
            ],
            peak_live_rows=0,
        )
        assert trace.peak_memory_rows == 0

    def test_engine_reports_live_rows(self):
        trace = UnifiedTrace(backend="engine", peak_live_rows=42)
        assert trace.peak_memory_rows == 42

    def test_materialising_backends_report_largest_step(self):
        from repro.expressions.evaluator import TraceStep

        trace = UnifiedTrace(
            backend="instrumented",
            steps=[
                TraceStep(
                    description="join",
                    node_kind="join",
                    cardinality=900,
                    scheme_width=3,
                    cell_count=2700,
                ),
                TraceStep(
                    description="project",
                    node_kind="projection",
                    cardinality=30,
                    scheme_width=1,
                    cell_count=30,
                ),
            ],
        )
        assert trace.peak_memory_rows == 900

    def test_live_engine_trace_still_reports_positive_peak(self):
        with repro.connect(_database()) as session:
            trace = session.prepare(QUERY).trace()
        assert trace.backend == "engine"
        assert trace.peak_memory_rows == trace.peak_live_rows > 0


class TestTraceShimCopies:
    """The ``__getattr__`` shim must survive deepcopy and pickle (satellite 3)."""

    def _trace(self):
        with repro.connect(_database()) as session:
            return session.prepare(QUERY).trace()

    def test_deepcopy_preserves_fields_and_shim(self):
        trace = self._trace()
        clone = copy.deepcopy(trace)
        assert clone is not trace
        assert clone.backend == trace.backend
        assert clone.result_cardinality == trace.result_cardinality
        assert clone.raw is not trace.raw
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            clone.kernel_activity  # legacy name -> shim, still warns
        assert any(w.category is DeprecationWarning for w in caught)

    def test_pickle_round_trip_preserves_fields_and_shim(self):
        trace = self._trace()
        clone = pickle.loads(pickle.dumps(trace))
        assert clone.backend == trace.backend
        assert clone.summary() == trace.summary()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            clone.kernel_activity
        assert any(w.category is DeprecationWarning for w in caught)

    def test_copy_of_rawless_trace_raises_clean_attribute_errors(self):
        clone = copy.deepcopy(UnifiedTrace.minimal("naive", 10, 5))
        with pytest.raises(AttributeError):
            clone.kernel_activity
