"""Tests for :mod:`repro.server`: the networked serving tier.

Covers the tier's contracts layer by layer — the budget scheduler's
lease/wait/reject semantics, the worker pool's warm-session dispatch,
per-request budget overrides, and crash respawn, the HTTP front's
routes, admission shedding, typed error mapping, and merged ``/metrics``
exposition, the load generator's exact percentiles — plus the shutdown
satellite: a session closed concurrently with in-flight executes leaks
no pools or spill directories and answers post-close requests with the
typed :class:`~repro.api.SessionClosedError`.
"""

import json
import http.client
import os
import threading
import time

import pytest

from repro.api import Session, SessionClosedError
from repro.api.config import BackendConfig
from repro.engine.physical import _ACTIVE_SPILL_DIRS
from repro.server import (
    BudgetExhaustedError,
    BudgetScheduler,
    ReproServer,
    ServerClosedError,
    ServerConfig,
    WorkerPool,
    percentile,
    run_load,
)
from repro.workloads import serving_queries, serving_relations

RELATIONS = serving_relations(rows=200)
QUERIES = serving_queries()
HEAVY_QUERY = "project[A, C, D](R * S * T)"


def _post(conn, body):
    conn.request(
        "POST",
        "/query",
        body=json.dumps(body),
        headers={"Content-Type": "application/json"},
    )
    response = conn.getresponse()
    return response.status, json.loads(response.read())


def _get(conn, path):
    conn.request("GET", path)
    response = conn.getresponse()
    return response.status, response.read()


@pytest.fixture(scope="module")
def server():
    with ReproServer(
        RELATIONS, pool_size=2, total_budget_rows=50_000, session_budget=10_000
    ) as running:
        yield running


@pytest.fixture()
def connection(server):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    yield conn
    conn.close()


class TestBudgetScheduler:
    def test_unlimited_pool_grants_immediately(self):
        scheduler = BudgetScheduler()
        with scheduler.acquire() as lease:
            assert lease.rows is None
        with scheduler.acquire(rows=500) as lease:
            assert lease.rows == 500
        assert scheduler.stats()["grants"] == 2

    def test_finite_pool_defaults_to_a_quarter_slice(self):
        scheduler = BudgetScheduler(total_rows=1000)
        assert scheduler.default_request_rows == 250
        with scheduler.acquire() as lease:
            assert lease.rows == 250

    def test_request_larger_than_pool_rejects_immediately(self):
        scheduler = BudgetScheduler(total_rows=100, max_wait_seconds=30.0)
        start = time.perf_counter()
        with pytest.raises(BudgetExhaustedError):
            scheduler.acquire(rows=101)
        assert time.perf_counter() - start < 1.0
        assert scheduler.stats()["rejections"] == 1

    def test_concurrent_leases_never_exceed_the_pool(self):
        scheduler = BudgetScheduler(total_rows=100, max_wait_seconds=5.0)
        first = scheduler.acquire(rows=60)
        # A second 60-row lease must wait; release on a timer unblocks it.
        timer = threading.Timer(0.05, first.release)
        timer.start()
        second = scheduler.acquire(rows=60)
        assert second.rows == 60
        assert scheduler.stats()["waits"] == 1
        assert scheduler.stats()["peak_leased_rows"] <= 100
        second.release()
        timer.join()

    def test_wait_deadline_raises_the_typed_rejection(self):
        scheduler = BudgetScheduler(total_rows=100, max_wait_seconds=0.05)
        held = scheduler.acquire(rows=80)
        with pytest.raises(BudgetExhaustedError):
            scheduler.acquire(rows=80)
        assert scheduler.stats()["rejections"] == 1
        held.release()
        assert scheduler.stats()["leased_rows"] == 0

    def test_release_is_idempotent(self):
        scheduler = BudgetScheduler(total_rows=100)
        lease = scheduler.acquire(rows=40)
        lease.release()
        lease.release()
        assert scheduler.stats()["leased_rows"] == 0
        assert scheduler.stats()["active_leases"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BudgetScheduler(total_rows=0)
        with pytest.raises(ValueError):
            BudgetScheduler(total_rows=100, default_request_rows=200)
        with pytest.raises(ValueError):
            BudgetScheduler().acquire(rows=0)


class TestWorkerPool:
    def test_dispatch_matches_direct_session(self):
        pool = WorkerPool(RELATIONS, BackendConfig(), size=2)
        try:
            with Session(RELATIONS) as session:
                for query in QUERIES:
                    response = pool.dispatch(
                        {"op": "query", "query": query, "count_only": True}
                    )
                    assert response["ok"], response
                    assert response["rowcount"] == len(session.execute(query))
        finally:
            pool.close()

    def test_rows_are_sorted_and_match(self):
        pool = WorkerPool(RELATIONS, BackendConfig(), size=1)
        try:
            response = pool.dispatch({"op": "query", "query": "project[A](R * S)"})
            with Session(RELATIONS) as session:
                expected = session.execute("project[A](R * S)")
            assert response["columns"] == list(expected.scheme.names)
            assert response["rows"] == [
                list(row) for row in expected.relation.sorted_rows()
            ]
        finally:
            pool.close()

    def test_budget_override_selects_a_spilling_session(self):
        pool = WorkerPool(RELATIONS, BackendConfig(budget=50_000), size=1)
        try:
            roomy = pool.dispatch(
                {"op": "query", "query": HEAVY_QUERY, "count_only": True}
            )
            tight = pool.dispatch(
                {"op": "query", "query": HEAVY_QUERY, "budget": 64,
                 "count_only": True}
            )
            assert roomy["ok"] and tight["ok"]
            assert roomy["rowcount"] == tight["rowcount"]
            assert roomy["budget"] == 50_000 and tight["budget"] == 64
            assert roomy["spilled_rows"] == 0
            assert tight["spilled_rows"] > 0
            assert tight["spill_overflows"] == 0
            assert tight["peak_memory_rows"] < roomy["peak_memory_rows"]
        finally:
            pool.close()

    def test_typed_errors_cross_the_pipe(self):
        pool = WorkerPool(RELATIONS, BackendConfig(), size=1)
        try:
            response = pool.dispatch({"op": "query", "query": "project[Z](R)"})
            assert not response["ok"]
            assert response["error"] == "ExpressionError"
            # The worker survives a bad query and keeps serving.
            again = pool.dispatch(
                {"op": "query", "query": QUERIES[0], "count_only": True}
            )
            assert again["ok"]
        finally:
            pool.close()

    def test_crashed_worker_is_respawned_and_the_request_retried(self):
        pool = WorkerPool(RELATIONS, BackendConfig(), size=1)
        if pool.backend != "fork":
            pool.close()
            pytest.skip("crash recovery needs process workers")
        try:
            assert pool.dispatch(
                {"op": "query", "query": QUERIES[0], "count_only": True}
            )["ok"]
            pool._workers[0].kill()
            response = pool.dispatch(
                {"op": "query", "query": QUERIES[0], "count_only": True}
            )
            assert response["ok"]
            assert pool.worker_restarts == 1
        finally:
            pool.close()

    def test_learned_plans_survive_a_worker_respawn(self):
        # A worker's plan store (warm samples, observed-cardinality
        # ledger, pinned plans) lives in the worker process.  Killing the
        # worker loses that state by construction — the contract is that
        # the respawned worker serves the same traffic correctly and
        # *re-learns*: its fresh store pins and observes again.
        config = BackendConfig(adaptive=True, planstore=True)
        pool = WorkerPool(RELATIONS, config, size=1)
        if pool.backend != "fork":
            pool.close()
            pytest.skip("crash recovery needs process workers")

        def planstore_stats():
            sessions = pool.stats()["workers"][0]["sessions"]
            (stats,) = sessions.values()
            return stats["planstore"]

        try:
            for _ in range(2):
                before = pool.dispatch(
                    {"op": "query", "query": HEAVY_QUERY, "count_only": True}
                )
                assert before["ok"]
            learned = planstore_stats()
            assert learned["ledger_entries"] > 0
            assert learned["cached_samples"] > 0
            pool._workers[0].kill()
            after = pool.dispatch(
                {"op": "query", "query": HEAVY_QUERY, "count_only": True}
            )
            assert after["ok"]
            assert after["rowcount"] == before["rowcount"]
            assert pool.worker_restarts == 1
            relearned = planstore_stats()
            assert relearned["ledger_entries"] > 0
            assert relearned["cached_samples"] > 0
        finally:
            pool.close()

    def test_closed_pool_raises_the_typed_error(self):
        pool = WorkerPool(RELATIONS, BackendConfig(), size=1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ServerClosedError):
            pool.dispatch({"op": "query", "query": QUERIES[0]})

    def test_thread_backend_serves_too(self):
        pool = WorkerPool(RELATIONS, BackendConfig(), size=1, worker_backend="thread")
        try:
            response = pool.dispatch(
                {"op": "query", "query": QUERIES[0], "count_only": True}
            )
            assert response["ok"]
        finally:
            pool.close()


class TestHttpFront:
    def test_query_round_trip(self, connection):
        status, body = _post(connection, {"query": "project[A](R * S)"})
        assert status == 200
        assert body["ok"]
        with Session(RELATIONS) as session:
            expected = session.execute("project[A](R * S)")
        assert body["rowcount"] == len(expected)
        assert body["rows"] == [list(row) for row in expected.relation.sorted_rows()]

    def test_keep_alive_serves_many_requests_on_one_connection(self, connection):
        for query in QUERIES:
            status, body = _post(connection, {"query": query, "count_only": True})
            assert status == 200 and body["ok"]

    def test_per_request_budget_override_under_http(self, connection):
        status, body = _post(
            connection,
            {"query": HEAVY_QUERY, "budget": 64, "count_only": True, "trace": True},
        )
        assert status == 200
        assert body["budget"] == 64
        assert body["spilled_rows"] > 0
        assert body["spill_overflows"] == 0
        labels = [span["label"] for span in body["front_spans"]]
        assert labels == ["lease", "dispatch"]

    def test_client_faults_map_to_400(self, connection):
        for payload in (
            {"query": "project[Z](R)"},
            {"query": ""},
            {"query": 42},
            {"query": QUERIES[0], "backend": "nope"},
            {"query": QUERIES[0], "budget": -5},
            {"query": QUERIES[0], "workers": 0},
        ):
            status, body = _post(connection, payload)
            assert status == 400, payload
            assert not body["ok"]

    def test_non_json_body_maps_to_400(self, connection):
        connection.request("POST", "/query", body=b"not json{")
        response = connection.getresponse()
        assert response.status == 400
        assert not json.loads(response.read())["ok"]

    def test_budget_beyond_the_pool_maps_to_503(self, connection):
        status, body = _post(
            connection, {"query": QUERIES[0], "budget": 10_000_000}
        )
        assert status == 503
        assert body["error"] == "BudgetExhaustedError"

    def test_unknown_route_and_wrong_method(self, connection):
        status, _body = _get(connection, "/nope")
        assert status == 404
        connection.request("GET", "/query")
        assert connection.getresponse().read() and True
        # methods are checked per route
        conn2 = http.client.HTTPConnection(
            "127.0.0.1", connection.port, timeout=30
        )
        try:
            conn2.request("POST", "/metrics")
            assert conn2.getresponse().status == 405
        finally:
            conn2.close()

    def test_healthz(self, connection):
        status, body = _get(connection, "/healthz")
        assert status == 200
        decoded = json.loads(body)
        assert decoded["ok"] and decoded["workers"] == 2

    def test_metrics_merges_front_and_workers(self, server, connection):
        # Serve at least one query so both layers have samples.
        status, _ = _post(connection, {"query": QUERIES[0], "count_only": True})
        assert status == 200
        status, body = _get(connection, "/metrics")
        assert status == 200
        text = body.decode("utf-8")
        samples = {}
        for line in text.splitlines():
            assert line, "exposition must not contain blank lines"
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            name, _, value = line.rpartition(" ")
            samples[name.split("{")[0]] = value
        # Front-side and worker-side metric families in one exposition.
        assert "repro_http_requests_total" in samples
        assert "repro_executes_total" in samples
        assert samples["repro_spill_overflows_total"] == "0"

    def test_stats_exposes_all_three_layers(self, connection):
        status, body = _get(connection, "/stats")
        assert status == 200
        decoded = json.loads(body)
        assert decoded["front"]["requests"] >= 1
        assert decoded["budget"]["total_rows"] == 50_000
        assert decoded["pool"]["size"] == 2
        assert len(decoded["pool"]["workers"]) == 2

    def test_admission_control_sheds_with_503(self):
        with ReproServer(RELATIONS, pool_size=1, max_inflight=1) as tight:
            barrier = threading.Barrier(6)
            statuses = []
            lock = threading.Lock()

            def fire():
                conn = http.client.HTTPConnection(
                    "127.0.0.1", tight.port, timeout=30
                )
                try:
                    barrier.wait(timeout=10)
                    status, _body = _post(
                        conn, {"query": HEAVY_QUERY, "count_only": True}
                    )
                    with lock:
                        statuses.append(status)
                finally:
                    conn.close()

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert 200 in statuses
            assert 503 in statuses
            assert tight.stats()["front"]["shed_overload"] >= 1

    def test_worker_events_are_mirrored_to_jsonl(self, tmp_path):
        events_dir = str(tmp_path / "events")
        with ReproServer(
            RELATIONS, pool_size=1, events_dir=events_dir
        ) as observed:
            conn = http.client.HTTPConnection(
                "127.0.0.1", observed.port, timeout=30
            )
            try:
                status, body = _post(
                    conn, {"query": HEAVY_QUERY, "budget": 64, "count_only": True}
                )
                assert status == 200 and body["spilled_rows"] > 0
            finally:
                conn.close()
        mirror = os.path.join(events_dir, "worker-0.jsonl")
        assert os.path.exists(mirror)
        with open(mirror, encoding="utf-8") as handle:
            events = [json.loads(line) for line in handle]
        assert events, "spilling under budget 64 must emit events"
        assert [event["seq"] for event in events] == list(
            range(1, len(events) + 1)
        )

    def test_server_close_is_idempotent_and_post_close_requests_fail(self):
        server = ReproServer(RELATIONS, pool_size=1).start()
        port = server.port
        server.close()
        server.close()
        with pytest.raises((ConnectionRefusedError, OSError)):
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=2)
            _post(conn, {"query": QUERIES[0]})


class TestLoadGenerator:
    def test_percentile_is_exact_nearest_rank(self):
        sample = list(range(1, 101))
        assert percentile(sample, 50) == 50
        assert percentile(sample, 99) == 99
        assert percentile(sample, 100) == 100
        assert percentile([7.0], 99) == 7.0
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_run_load_reports_latency_and_throughput(self, server):
        report = run_load(
            "127.0.0.1",
            server.port,
            QUERIES,
            clients=8,
            requests_per_client=3,
        )
        assert report.clients == 8
        assert report.requests == 24
        assert report.ok == 24
        assert report.errors == 0
        summary = report.summary()
        assert summary["p50_ms"] > 0
        assert summary["p99_ms"] >= summary["p50_ms"]
        assert summary["throughput_rps"] > 0
        assert summary["status_counts"] == {"200": 24}


class TestServerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(pool_size=0)
        with pytest.raises(ValueError):
            ServerConfig(max_inflight=0)

    def test_override(self):
        config = ServerConfig().override(pool_size=4)
        assert config.pool_size == 4


class TestSessionShutdownUnderLoad:
    """The shutdown satellite: close() racing in-flight executes."""

    def test_concurrent_close_leaks_no_pools_or_spill_dirs(self):
        for _round in range(3):
            session = Session(
                RELATIONS, backend="engine", budget=64, workers=2
            )
            prepared = session.prepare(HEAVY_QUERY)
            errors = []
            done = threading.Event()

            def hammer():
                try:
                    while not done.is_set():
                        prepared.execute()
                except SessionClosedError:
                    pass
                except Exception as error:  # noqa: BLE001 - recorded for assert
                    errors.append(error)

            threads = [threading.Thread(target=hammer) for _ in range(3)]
            for thread in threads:
                thread.start()
            time.sleep(0.05)  # let executes get in flight
            session.close()
            done.set()
            for thread in threads:
                thread.join(timeout=30)
            assert not any(thread.is_alive() for thread in threads)
            # In-flight executes either finished or raised the typed
            # closed error recorded above; nothing else may escape.
            assert errors == [], errors
            assert session.stats()["open_pools"] == 0
        assert _ACTIVE_SPILL_DIRS == set()

    def test_post_close_requests_raise_the_typed_error(self):
        session = Session(RELATIONS, backend="engine", budget=64)
        prepared = session.prepare(HEAVY_QUERY)
        prepared.execute()
        session.close()
        with pytest.raises(SessionClosedError):
            session.prepare("project[A](R * S)")
        with pytest.raises(SessionClosedError):
            prepared.execute()
