"""Tests for :mod:`repro.server`: the networked serving tier.

Covers the tier's contracts layer by layer — the budget scheduler's
lease/wait/reject semantics, the worker pool's warm-session dispatch,
per-request budget overrides, and crash respawn, the HTTP front's
routes, admission shedding, typed error mapping, and merged ``/metrics``
exposition, the load generator's exact percentiles — plus the shutdown
satellite: a session closed concurrently with in-flight executes leaks
no pools or spill directories and answers post-close requests with the
typed :class:`~repro.api.SessionClosedError`.
"""

import json
import http.client
import os
import threading
import time

import pytest

from repro.api import Session, SessionClosedError
from repro.api.config import BackendConfig
from repro.engine.physical import _ACTIVE_SPILL_DIRS
from repro.server import (
    BudgetExhaustedError,
    BudgetScheduler,
    LoadReport,
    ReproServer,
    RequestTimeoutError,
    ResultCache,
    ServerClosedError,
    ServerConfig,
    WorkerPool,
    percentile,
    run_load,
)
from repro.workloads import serving_queries, serving_relations

RELATIONS = serving_relations(rows=200)
QUERIES = serving_queries()
HEAVY_QUERY = "project[A, C, D](R * S * T)"
#: Larger relations for the timing-sensitive multiplexing tests: the
#: budget-64 spilling execute takes ~1s here while warm fast queries
#: stay under 10ms, so "the slow query is still running" assertions
#: have two orders of magnitude of margin.
HEAVY_RELATIONS = serving_relations(rows=600)


def _post(conn, body):
    conn.request(
        "POST",
        "/query",
        body=json.dumps(body),
        headers={"Content-Type": "application/json"},
    )
    response = conn.getresponse()
    return response.status, json.loads(response.read())


def _get(conn, path):
    conn.request("GET", path)
    response = conn.getresponse()
    return response.status, response.read()


@pytest.fixture(scope="module")
def server():
    with ReproServer(
        RELATIONS, pool_size=2, total_budget_rows=50_000, session_budget=10_000
    ) as running:
        yield running


@pytest.fixture()
def connection(server):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    yield conn
    conn.close()


class TestBudgetScheduler:
    def test_unlimited_pool_grants_immediately(self):
        scheduler = BudgetScheduler()
        with scheduler.acquire() as lease:
            assert lease.rows is None
        with scheduler.acquire(rows=500) as lease:
            assert lease.rows == 500
        assert scheduler.stats()["grants"] == 2

    def test_finite_pool_defaults_to_a_quarter_slice(self):
        scheduler = BudgetScheduler(total_rows=1000)
        assert scheduler.default_request_rows == 250
        with scheduler.acquire() as lease:
            assert lease.rows == 250

    def test_request_larger_than_pool_rejects_immediately(self):
        scheduler = BudgetScheduler(total_rows=100, max_wait_seconds=30.0)
        start = time.perf_counter()
        with pytest.raises(BudgetExhaustedError):
            scheduler.acquire(rows=101)
        assert time.perf_counter() - start < 1.0
        assert scheduler.stats()["rejections"] == 1

    def test_concurrent_leases_never_exceed_the_pool(self):
        scheduler = BudgetScheduler(total_rows=100, max_wait_seconds=5.0)
        first = scheduler.acquire(rows=60)
        # A second 60-row lease must wait; release on a timer unblocks it.
        timer = threading.Timer(0.05, first.release)
        timer.start()
        second = scheduler.acquire(rows=60)
        assert second.rows == 60
        assert scheduler.stats()["waits"] == 1
        assert scheduler.stats()["peak_leased_rows"] <= 100
        second.release()
        timer.join()

    def test_wait_deadline_raises_the_typed_rejection(self):
        scheduler = BudgetScheduler(total_rows=100, max_wait_seconds=0.05)
        held = scheduler.acquire(rows=80)
        with pytest.raises(BudgetExhaustedError):
            scheduler.acquire(rows=80)
        assert scheduler.stats()["rejections"] == 1
        held.release()
        assert scheduler.stats()["leased_rows"] == 0

    def test_release_is_idempotent(self):
        scheduler = BudgetScheduler(total_rows=100)
        lease = scheduler.acquire(rows=40)
        lease.release()
        lease.release()
        assert scheduler.stats()["leased_rows"] == 0
        assert scheduler.stats()["active_leases"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BudgetScheduler(total_rows=0)
        with pytest.raises(ValueError):
            BudgetScheduler(total_rows=100, default_request_rows=200)
        with pytest.raises(ValueError):
            BudgetScheduler().acquire(rows=0)


class TestWorkerPool:
    def test_dispatch_matches_direct_session(self):
        pool = WorkerPool(RELATIONS, BackendConfig(), size=2)
        try:
            with Session(RELATIONS) as session:
                for query in QUERIES:
                    response = pool.dispatch(
                        {"op": "query", "query": query, "count_only": True}
                    )
                    assert response["ok"], response
                    assert response["rowcount"] == len(session.execute(query))
        finally:
            pool.close()

    def test_rows_are_sorted_and_match(self):
        pool = WorkerPool(RELATIONS, BackendConfig(), size=1)
        try:
            response = pool.dispatch({"op": "query", "query": "project[A](R * S)"})
            with Session(RELATIONS) as session:
                expected = session.execute("project[A](R * S)")
            assert response["columns"] == list(expected.scheme.names)
            assert response["rows"] == [
                list(row) for row in expected.relation.sorted_rows()
            ]
        finally:
            pool.close()

    def test_budget_override_selects_a_spilling_session(self):
        pool = WorkerPool(RELATIONS, BackendConfig(budget=50_000), size=1)
        try:
            roomy = pool.dispatch(
                {"op": "query", "query": HEAVY_QUERY, "count_only": True}
            )
            tight = pool.dispatch(
                {"op": "query", "query": HEAVY_QUERY, "budget": 64,
                 "count_only": True}
            )
            assert roomy["ok"] and tight["ok"]
            assert roomy["rowcount"] == tight["rowcount"]
            assert roomy["budget"] == 50_000 and tight["budget"] == 64
            assert roomy["spilled_rows"] == 0
            assert tight["spilled_rows"] > 0
            assert tight["spill_overflows"] == 0
            assert tight["peak_memory_rows"] < roomy["peak_memory_rows"]
        finally:
            pool.close()

    def test_typed_errors_cross_the_pipe(self):
        pool = WorkerPool(RELATIONS, BackendConfig(), size=1)
        try:
            response = pool.dispatch({"op": "query", "query": "project[Z](R)"})
            assert not response["ok"]
            assert response["error"] == "ExpressionError"
            # The worker survives a bad query and keeps serving.
            again = pool.dispatch(
                {"op": "query", "query": QUERIES[0], "count_only": True}
            )
            assert again["ok"]
        finally:
            pool.close()

    def test_crashed_worker_is_respawned_and_the_request_retried(self):
        pool = WorkerPool(RELATIONS, BackendConfig(), size=1)
        if pool.backend != "fork":
            pool.close()
            pytest.skip("crash recovery needs process workers")
        try:
            assert pool.dispatch(
                {"op": "query", "query": QUERIES[0], "count_only": True}
            )["ok"]
            pool._workers[0].kill()
            response = pool.dispatch(
                {"op": "query", "query": QUERIES[0], "count_only": True}
            )
            assert response["ok"]
            assert pool.worker_restarts == 1
        finally:
            pool.close()

    def test_learned_plans_survive_a_worker_respawn(self):
        # A worker's plan store (warm samples, observed-cardinality
        # ledger, pinned plans) lives in the worker process.  Killing the
        # worker loses that state by construction — the contract is that
        # the respawned worker serves the same traffic correctly and
        # *re-learns*: its fresh store pins and observes again.
        config = BackendConfig(adaptive=True, planstore=True)
        pool = WorkerPool(RELATIONS, config, size=1)
        if pool.backend != "fork":
            pool.close()
            pytest.skip("crash recovery needs process workers")

        def planstore_stats():
            sessions = pool.stats()["workers"][0]["sessions"]
            (stats,) = sessions.values()
            return stats["planstore"]

        try:
            for _ in range(2):
                before = pool.dispatch(
                    {"op": "query", "query": HEAVY_QUERY, "count_only": True}
                )
                assert before["ok"]
            learned = planstore_stats()
            assert learned["ledger_entries"] > 0
            assert learned["cached_samples"] > 0
            pool._workers[0].kill()
            after = pool.dispatch(
                {"op": "query", "query": HEAVY_QUERY, "count_only": True}
            )
            assert after["ok"]
            assert after["rowcount"] == before["rowcount"]
            assert pool.worker_restarts == 1
            relearned = planstore_stats()
            assert relearned["ledger_entries"] > 0
            assert relearned["cached_samples"] > 0
        finally:
            pool.close()

    def test_closed_pool_raises_the_typed_error(self):
        pool = WorkerPool(RELATIONS, BackendConfig(), size=1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ServerClosedError):
            pool.dispatch({"op": "query", "query": QUERIES[0]})

    def test_thread_backend_serves_too(self):
        pool = WorkerPool(RELATIONS, BackendConfig(), size=1, worker_backend="thread")
        try:
            response = pool.dispatch(
                {"op": "query", "query": QUERIES[0], "count_only": True}
            )
            assert response["ok"]
        finally:
            pool.close()


class TestHttpFront:
    def test_query_round_trip(self, connection):
        status, body = _post(connection, {"query": "project[A](R * S)"})
        assert status == 200
        assert body["ok"]
        with Session(RELATIONS) as session:
            expected = session.execute("project[A](R * S)")
        assert body["rowcount"] == len(expected)
        assert body["rows"] == [list(row) for row in expected.relation.sorted_rows()]

    def test_keep_alive_serves_many_requests_on_one_connection(self, connection):
        for query in QUERIES:
            status, body = _post(connection, {"query": query, "count_only": True})
            assert status == 200 and body["ok"]

    def test_per_request_budget_override_under_http(self, connection):
        status, body = _post(
            connection,
            {"query": HEAVY_QUERY, "budget": 64, "count_only": True, "trace": True},
        )
        assert status == 200
        assert body["budget"] == 64
        assert body["spilled_rows"] > 0
        assert body["spill_overflows"] == 0
        labels = [span["label"] for span in body["front_spans"]]
        assert labels == ["lease", "dispatch"]

    def test_client_faults_map_to_400(self, connection):
        for payload in (
            {"query": "project[Z](R)"},
            {"query": ""},
            {"query": 42},
            {"query": QUERIES[0], "backend": "nope"},
            {"query": QUERIES[0], "budget": -5},
            {"query": QUERIES[0], "workers": 0},
        ):
            status, body = _post(connection, payload)
            assert status == 400, payload
            assert not body["ok"]

    def test_non_json_body_maps_to_400(self, connection):
        connection.request("POST", "/query", body=b"not json{")
        response = connection.getresponse()
        assert response.status == 400
        assert not json.loads(response.read())["ok"]

    def test_budget_beyond_the_pool_maps_to_503(self, connection):
        status, body = _post(
            connection, {"query": QUERIES[0], "budget": 10_000_000}
        )
        assert status == 503
        assert body["error"] == "BudgetExhaustedError"

    def test_unknown_route_and_wrong_method(self, connection):
        status, _body = _get(connection, "/nope")
        assert status == 404
        connection.request("GET", "/query")
        assert connection.getresponse().read() and True
        # methods are checked per route
        conn2 = http.client.HTTPConnection(
            "127.0.0.1", connection.port, timeout=30
        )
        try:
            conn2.request("POST", "/metrics")
            assert conn2.getresponse().status == 405
        finally:
            conn2.close()

    def test_healthz(self, connection):
        status, body = _get(connection, "/healthz")
        assert status == 200
        decoded = json.loads(body)
        assert decoded["ok"] and decoded["workers"] == 2

    def test_metrics_merges_front_and_workers(self, server, connection):
        # Serve at least one query so both layers have samples.
        status, _ = _post(connection, {"query": QUERIES[0], "count_only": True})
        assert status == 200
        status, body = _get(connection, "/metrics")
        assert status == 200
        text = body.decode("utf-8")
        samples = {}
        for line in text.splitlines():
            assert line, "exposition must not contain blank lines"
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            name, _, value = line.rpartition(" ")
            samples[name.split("{")[0]] = value
        # Front-side and worker-side metric families in one exposition.
        assert "repro_http_requests_total" in samples
        assert "repro_executes_total" in samples
        assert samples["repro_spill_overflows_total"] == "0"

    def test_stats_exposes_all_three_layers(self, connection):
        status, body = _get(connection, "/stats")
        assert status == 200
        decoded = json.loads(body)
        assert decoded["front"]["requests"] >= 1
        assert decoded["budget"]["total_rows"] == 50_000
        assert decoded["pool"]["size"] == 2
        assert len(decoded["pool"]["workers"]) == 2

    def test_admission_control_sheds_with_503(self):
        with ReproServer(RELATIONS, pool_size=1, max_inflight=1) as tight:
            barrier = threading.Barrier(6)
            statuses = []
            lock = threading.Lock()

            def fire():
                conn = http.client.HTTPConnection(
                    "127.0.0.1", tight.port, timeout=30
                )
                try:
                    barrier.wait(timeout=10)
                    status, _body = _post(
                        conn, {"query": HEAVY_QUERY, "count_only": True}
                    )
                    with lock:
                        statuses.append(status)
                finally:
                    conn.close()

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert 200 in statuses
            assert 503 in statuses
            assert tight.stats()["front"]["shed_overload"] >= 1

    def test_worker_events_are_mirrored_to_jsonl(self, tmp_path):
        events_dir = str(tmp_path / "events")
        with ReproServer(
            RELATIONS, pool_size=1, events_dir=events_dir
        ) as observed:
            conn = http.client.HTTPConnection(
                "127.0.0.1", observed.port, timeout=30
            )
            try:
                status, body = _post(
                    conn, {"query": HEAVY_QUERY, "budget": 64, "count_only": True}
                )
                assert status == 200 and body["spilled_rows"] > 0
            finally:
                conn.close()
        mirror = os.path.join(events_dir, "worker-0.jsonl")
        assert os.path.exists(mirror)
        with open(mirror, encoding="utf-8") as handle:
            events = [json.loads(line) for line in handle]
        assert events, "spilling under budget 64 must emit events"
        assert [event["seq"] for event in events] == list(
            range(1, len(events) + 1)
        )

    def test_server_close_is_idempotent_and_post_close_requests_fail(self):
        server = ReproServer(RELATIONS, pool_size=1).start()
        port = server.port
        server.close()
        server.close()
        with pytest.raises((ConnectionRefusedError, OSError)):
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=2)
            _post(conn, {"query": QUERIES[0]})


class TestLoadGenerator:
    def test_percentile_is_exact_nearest_rank(self):
        sample = list(range(1, 101))
        assert percentile(sample, 50) == 50
        assert percentile(sample, 99) == 99
        assert percentile(sample, 100) == 100
        assert percentile([7.0], 99) == 7.0
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_run_load_reports_latency_and_throughput(self, server):
        report = run_load(
            "127.0.0.1",
            server.port,
            QUERIES,
            clients=8,
            requests_per_client=3,
        )
        assert report.clients == 8
        assert report.requests == 24
        assert report.ok == 24
        assert report.errors == 0
        summary = report.summary()
        assert summary["p50_ms"] > 0
        assert summary["p99_ms"] >= summary["p50_ms"]
        assert summary["throughput_rps"] > 0
        assert summary["status_counts"] == {"200": 24}


class TestServerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(pool_size=0)
        with pytest.raises(ValueError):
            ServerConfig(max_inflight=0)

    def test_override(self):
        config = ServerConfig().override(pool_size=4)
        assert config.pool_size == 4


class TestSessionShutdownUnderLoad:
    """The shutdown satellite: close() racing in-flight executes."""

    def test_concurrent_close_leaks_no_pools_or_spill_dirs(self):
        for _round in range(3):
            session = Session(
                RELATIONS, backend="engine", budget=64, workers=2
            )
            prepared = session.prepare(HEAVY_QUERY)
            errors = []
            done = threading.Event()

            def hammer():
                try:
                    while not done.is_set():
                        prepared.execute()
                except SessionClosedError:
                    pass
                except Exception as error:  # noqa: BLE001 - recorded for assert
                    errors.append(error)

            threads = [threading.Thread(target=hammer) for _ in range(3)]
            for thread in threads:
                thread.start()
            time.sleep(0.05)  # let executes get in flight
            session.close()
            done.set()
            for thread in threads:
                thread.join(timeout=30)
            assert not any(thread.is_alive() for thread in threads)
            # In-flight executes either finished or raised the typed
            # closed error recorded above; nothing else may escape.
            assert errors == [], errors
            assert session.stats()["open_pools"] == 0
        assert _ACTIVE_SPILL_DIRS == set()

    def test_post_close_requests_raise_the_typed_error(self):
        session = Session(RELATIONS, backend="engine", budget=64)
        prepared = session.prepare(HEAVY_QUERY)
        prepared.execute()
        session.close()
        with pytest.raises(SessionClosedError):
            session.prepare("project[A](R * S)")
        with pytest.raises(SessionClosedError):
            prepared.execute()


class TestMultiplexedWorkers:
    """The tentpole pin: one worker serves many requests over one pipe."""

    def test_fast_queries_complete_while_a_slow_spill_is_in_flight(self):
        # The head-of-line regression: a single worker (pool of one)
        # chewing on a budget-64 spilling execute must keep answering
        # fast queries on its other dispatcher threads.  Pre-multiplex,
        # the fast queries queued behind the slow one on the pipe.
        pool = WorkerPool(
            HEAVY_RELATIONS, BackendConfig(budget=50_000), size=1, concurrency=4
        )
        try:
            # Warm both sessions so timings reflect serving, not setup:
            # the default-budget session for the fast mix, the budget-64
            # session for the slow spilling execute.
            fast = pool.dispatch(
                {"op": "query", "query": QUERIES[0], "count_only": True}
            )
            warm = pool.dispatch(
                {"op": "query", "query": HEAVY_QUERY, "budget": 64,
                 "count_only": True}
            )
            assert fast["ok"] and warm["ok"] and warm["spilled_rows"] > 0

            slow_done = threading.Event()
            slow_box = {}

            def run_slow():
                slow_box["response"] = pool.dispatch(
                    {"op": "query", "query": HEAVY_QUERY, "budget": 64,
                     "count_only": True}
                )
                slow_done.set()

            slow = threading.Thread(target=run_slow)
            slow.start()
            deadline = time.perf_counter() + 10.0
            while (
                pool._workers[0].inflight < 1
                and not slow_done.is_set()
                and time.perf_counter() < deadline
            ):
                time.sleep(0.001)
            assert not slow_done.is_set(), "slow query must still be running"

            # Five fast queries against the SAME worker, all while the
            # spilling execute holds one dispatcher thread.
            for _ in range(5):
                response = pool.dispatch(
                    {"op": "query", "query": QUERIES[0], "count_only": True}
                )
                assert response["ok"], response
            assert not slow_done.is_set(), (
                "all five fast queries finished, yet the slow spilling "
                "execute must still be in flight — head-of-line blocking "
                "would have serialised them behind it"
            )
            slow.join(timeout=30)
            assert slow_box["response"]["ok"]
            assert slow_box["response"]["rowcount"] == warm["rowcount"]
        finally:
            pool.close()

    def test_control_frames_answer_during_a_slow_query(self):
        # ping/stats/metrics are handled inline on the worker's recv
        # loop, so telemetry stays live even with every dispatcher
        # thread busy.
        pool = WorkerPool(
            HEAVY_RELATIONS, BackendConfig(budget=50_000), size=1, concurrency=1
        )
        try:
            warm = pool.dispatch(
                {"op": "query", "query": HEAVY_QUERY, "budget": 64,
                 "count_only": True}
            )
            assert warm["ok"]
            slow_done = threading.Event()
            slow = threading.Thread(
                target=lambda: (
                    pool.dispatch(
                        {"op": "query", "query": HEAVY_QUERY, "budget": 64,
                         "count_only": True}
                    ),
                    slow_done.set(),
                )
            )
            slow.start()
            deadline = time.perf_counter() + 10.0
            while (
                pool._workers[0].inflight < 1
                and not slow_done.is_set()
                and time.perf_counter() < deadline
            ):
                time.sleep(0.001)
            ping = pool._workers[0].request({"op": "ping"})
            assert ping["ok"]
            assert not slow_done.is_set(), (
                "the ping answered inline must not wait for the query"
            )
            slow.join(timeout=30)
        finally:
            pool.close()

    def test_dispatch_prefers_the_least_loaded_worker(self):
        pool = WorkerPool(
            HEAVY_RELATIONS, BackendConfig(budget=50_000), size=2, concurrency=4
        )
        try:
            for index in range(2):
                warm = pool._workers[index].request(
                    {"op": "query", "query": HEAVY_QUERY, "budget": 64,
                     "count_only": True}
                )
                assert warm["ok"]
            slow_done = threading.Event()

            def run_slow():
                pool.dispatch(
                    {"op": "query", "query": HEAVY_QUERY, "budget": 64,
                     "count_only": True}
                )
                slow_done.set()

            slow = threading.Thread(target=run_slow)
            slow.start()
            deadline = time.perf_counter() + 10.0
            while (
                max(w.inflight for w in pool._workers) < 1
                and not slow_done.is_set()
                and time.perf_counter() < deadline
            ):
                time.sleep(0.001)
            busy = max(range(2), key=lambda i: pool._workers[i].inflight)
            if not slow_done.is_set():
                # While one worker is busy, dispatch must route to the
                # idle one.
                assert pool._pick() != busy
            slow.join(timeout=30)
        finally:
            pool.close()


class TestLeaseLifecycleUnderMultiplexing:
    """Every request outcome returns its budget lease — no leaks."""

    def _budget(self, server):
        return server.stats()["budget"]

    def test_completed_requests_return_their_leases(self):
        with ReproServer(
            RELATIONS, pool_size=1, total_budget_rows=10_000
        ) as running:
            conn = http.client.HTTPConnection(
                "127.0.0.1", running.port, timeout=30
            )
            try:
                for query in QUERIES[:3]:
                    status, _body = _post(
                        conn, {"query": query, "count_only": True}
                    )
                    assert status == 200
            finally:
                conn.close()
            budget = self._budget(running)
            assert budget["leased_rows"] == 0
            assert budget["active_leases"] == 0
            assert budget["grants"] >= 3

    def test_timed_out_request_releases_its_lease_and_worker_survives(self):
        with ReproServer(
            HEAVY_RELATIONS,
            pool_size=1,
            total_budget_rows=10_000,
            request_timeout_seconds=0.25,
            result_cache_size=0,
        ) as running:
            conn = http.client.HTTPConnection(
                "127.0.0.1", running.port, timeout=30
            )
            try:
                # Warm the fast path first so its later requests beat the
                # 250ms deadline comfortably.
                status, _body = _post(
                    conn, {"query": QUERIES[0], "count_only": True}
                )
                assert status == 200
                # The budget-64 spilling execute takes hundreds of ms —
                # far past the deadline.
                status, body = _post(
                    conn,
                    {"query": HEAVY_QUERY, "budget": 64, "count_only": True},
                )
                assert status == 504
                assert body["error"] == "RequestTimeoutError"
                budget = self._budget(running)
                assert budget["leased_rows"] == 0, budget
                assert budget["active_leases"] == 0, budget
                # The pipe stayed healthy: the same worker keeps serving
                # (the late response for the abandoned id is dropped).
                status, body = _post(
                    conn, {"query": QUERIES[0], "count_only": True}
                )
                assert status == 200 and body["ok"]
                assert running.stats()["pool"]["worker_restarts"] == 0
            finally:
                conn.close()

    def test_mid_flight_worker_kill_with_two_outstanding_ids(self):
        with ReproServer(
            RELATIONS,
            pool_size=1,
            total_budget_rows=10_000,
            result_cache_size=0,
        ) as running:
            if running._pool.backend != "fork":
                pytest.skip("crash recovery needs process workers")
            # Warm the spilling session so both requests are mid-execute
            # when the kill lands.
            conn = http.client.HTTPConnection(
                "127.0.0.1", running.port, timeout=60
            )
            try:
                status, _body = _post(
                    conn,
                    {"query": HEAVY_QUERY, "budget": 64, "count_only": True},
                )
                assert status == 200
            finally:
                conn.close()

            results = []
            lock = threading.Lock()
            barrier = threading.Barrier(3)

            def fire():
                inner = http.client.HTTPConnection(
                    "127.0.0.1", running.port, timeout=60
                )
                try:
                    barrier.wait(timeout=10)
                    status, body = _post(
                        inner,
                        {"query": HEAVY_QUERY, "budget": 64,
                         "count_only": True},
                    )
                    with lock:
                        results.append((status, body))
                finally:
                    inner.close()

            threads = [threading.Thread(target=fire) for _ in range(2)]
            for thread in threads:
                thread.start()
            barrier.wait(timeout=10)
            worker = running._pool._workers[0]
            deadline = time.perf_counter() + 10.0
            while worker.inflight < 2 and time.perf_counter() < deadline:
                time.sleep(0.001)
            assert worker.inflight >= 2, "two ids must be in flight"
            worker.kill()
            for thread in threads:
                thread.join(timeout=60)
            assert len(results) == 2
            for status, body in results:
                # Each in-flight id failed over: the pool respawned the
                # worker and retried (200), or surfaced the typed error.
                assert status in (200, 500, 503), (status, body)
                if status != 200:
                    assert body["error"] in (
                        "WorkerCrashedError",
                        "ServerClosedError",
                    ), body
            stats = running.stats()
            assert stats["pool"]["worker_restarts"] >= 1
            # The linchpin: both leases came back, whatever the outcome.
            assert stats["budget"]["leased_rows"] == 0, stats["budget"]
            assert stats["budget"]["active_leases"] == 0, stats["budget"]

    def test_pool_close_fails_inflight_requests_typed(self):
        pool = WorkerPool(
            RELATIONS, BackendConfig(budget=50_000), size=1, concurrency=4
        )
        warm = pool.dispatch(
            {"op": "query", "query": HEAVY_QUERY, "budget": 64,
             "count_only": True}
        )
        assert warm["ok"]
        outcome = {}
        started = threading.Event()

        def run_slow():
            started.set()
            try:
                outcome["response"] = pool.dispatch(
                    {"op": "query", "query": HEAVY_QUERY, "budget": 64,
                     "count_only": True}
                )
            except ServerClosedError as error:
                outcome["raised"] = error

        slow = threading.Thread(target=run_slow)
        slow.start()
        started.wait(timeout=10)
        deadline = time.perf_counter() + 10.0
        while pool._workers[0].inflight < 1 and time.perf_counter() < deadline:
            time.sleep(0.001)
        pool.close()
        slow.join(timeout=30)
        assert not slow.is_alive()
        if "raised" not in outcome:
            # The worker may have finished (or typed-failed) the execute
            # before the shutdown frame closed its sessions; either way
            # the outcome is typed, never a hang.
            response = outcome["response"]
            assert response["ok"] or response["error"] in (
                "SessionClosedError",
                "ServerClosedError",
                "WorkerCrashedError",
            ), response


class TestResultCache:
    """Unit contracts of the front's invalidating LRU."""

    KEY = ("project[A](R * S)", None, 2500, None, True)

    def _response(self, rowcount=40):
        return {"ok": True, "rowcount": rowcount, "relations": ["R", "S"]}

    def test_miss_then_fill_then_hit(self):
        cache = ResultCache(4)
        hit, snapshot = cache.lookup(self.KEY)
        assert hit is None
        assert cache.fill(self.KEY, ["R", "S"], self._response(), snapshot)
        hit, _snapshot = cache.lookup(self.KEY)
        assert hit is not None and hit["rowcount"] == 40
        stats = cache.stats()
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 1
        assert stats["entries"] == 1

    def test_hit_returns_a_copy(self):
        cache = ResultCache(4)
        _miss, snapshot = cache.lookup(self.KEY)
        cache.fill(self.KEY, ["R", "S"], self._response(), snapshot)
        first, _ = cache.lookup(self.KEY)
        first["rowcount"] = -1
        second, _ = cache.lookup(self.KEY)
        assert second["rowcount"] == 40

    def test_lru_eviction_at_capacity(self):
        cache = ResultCache(2)
        for index in range(3):
            key = (f"q{index}", None, None, None, True)
            _miss, snapshot = cache.lookup(key)
            cache.fill(key, ["R"], self._response(index), snapshot)
        assert len(cache) == 2
        gone, _ = cache.lookup(("q0", None, None, None, True))
        assert gone is None
        kept, _ = cache.lookup(("q2", None, None, None, True))
        assert kept is not None
        assert cache.stats()["cache_evictions"] == 1

    def test_invalidate_evicts_only_entries_reading_the_name(self):
        cache = ResultCache(8)
        key_rs = ("a", None, None, None, True)
        key_t = ("b", None, None, None, True)
        _m, snap = cache.lookup(key_rs)
        cache.fill(key_rs, ["R", "S"], self._response(), snap)
        _m, snap = cache.lookup(key_t)
        cache.fill(key_t, ["T"], self._response(7), snap)
        assert cache.invalidate("R") == 1
        assert cache.lookup(key_rs)[0] is None
        assert cache.lookup(key_t)[0] is not None
        assert cache.stats()["cache_invalidations"] == 1
        assert cache.stats()["cache_stale_served"] == 0

    def test_stale_fill_is_dropped_when_invalidation_races_the_miss(self):
        # The generational race: lookup misses, the execute runs against
        # pre-mutation data, the mutation lands, THEN the fill arrives.
        # Accepting it would cache a stale result forever.
        cache = ResultCache(4)
        _miss, snapshot = cache.lookup(self.KEY)
        cache.invalidate("R")
        assert not cache.fill(self.KEY, ["R", "S"], self._response(), snapshot)
        assert cache.lookup(self.KEY)[0] is None
        assert cache.stats()["cache_stale_fill_drops"] == 1

    def test_fill_after_the_invalidation_is_accepted(self):
        # The other half of the race's contract: a miss whose lookup
        # happened AT the invalidation's generation executed against the
        # new data (the pool is mutated before the cache invalidates),
        # so its fill must be accepted — the cache recovers immediately.
        cache = ResultCache(4)
        cache.invalidate("R")
        _miss, snapshot = cache.lookup(self.KEY)
        assert cache.fill(self.KEY, ["R", "S"], self._response(1), snapshot)
        hit, _ = cache.lookup(self.KEY)
        assert hit is not None and hit["rowcount"] == 1
        assert cache.stats()["cache_stale_fill_drops"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ResultCache(0)


class TestResultCacheOverHttp:
    """The cache and ``POST /mutate`` end to end through the front."""

    @pytest.fixture()
    def cached_server(self):
        with ReproServer(
            RELATIONS,
            pool_size=2,
            total_budget_rows=50_000,
            session_budget=10_000,
        ) as running:
            yield running

    def _conn(self, running):
        return http.client.HTTPConnection(
            "127.0.0.1", running.port, timeout=30
        )

    def _mutate(self, conn, name, rows):
        conn.request(
            "POST",
            "/mutate",
            body=json.dumps({"name": name, "rows": rows}),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())

    def test_repeat_query_is_served_from_the_cache(self, cached_server):
        conn = self._conn(cached_server)
        try:
            status, first = _post(conn, {"query": QUERIES[1]})
            assert status == 200 and first["cached"] is False
            status, second = _post(conn, {"query": QUERIES[1]})
            assert status == 200 and second["cached"] is True
            assert second["rowcount"] == first["rowcount"]
            assert second["rows"] == first["rows"]
            stats = json.loads(_get(conn, "/stats")[1])
            assert stats["cache"]["cache_hits"] == 1
            assert stats["cache"]["cache_misses"] == 1
            # A hit leases no budget: exactly one grant for two queries.
            assert stats["budget"]["grants"] == 1
        finally:
            conn.close()

    def test_cache_key_separates_budget_backend_and_count_only(
        self, cached_server
    ):
        conn = self._conn(cached_server)
        try:
            base = {"query": HEAVY_QUERY, "count_only": True}
            _post(conn, base)
            status, tight = _post(conn, dict(base, budget=64))
            assert status == 200 and tight["cached"] is False
            status, optimized = _post(conn, dict(base, backend="optimized"))
            assert status == 200 and optimized["cached"] is False
            status, rows = _post(conn, {"query": HEAVY_QUERY})
            assert status == 200 and rows["cached"] is False
            # ... but each exact shape repeats from the cache.
            status, again = _post(conn, dict(base, budget=64))
            assert status == 200 and again["cached"] is True
        finally:
            conn.close()

    def test_traced_requests_bypass_the_cache(self, cached_server):
        conn = self._conn(cached_server)
        try:
            _post(conn, {"query": QUERIES[2], "count_only": True})
            status, traced = _post(
                conn, {"query": QUERIES[2], "count_only": True, "trace": True}
            )
            assert status == 200
            assert "cached" not in traced
            labels = [span["label"] for span in traced["front_spans"]]
            assert labels == ["lease", "dispatch"]
        finally:
            conn.close()

    def test_mutate_invalidates_and_requeries_see_new_data(self, cached_server):
        conn = self._conn(cached_server)
        try:
            query = "project[A, B](R)"
            status, before = _post(conn, {"query": query})
            assert status == 200
            status, hit = _post(conn, {"query": query})
            assert hit["cached"] is True

            status, ack = self._mutate(conn, "R", [[1, 2], [3, 4]])
            assert status == 200, ack
            assert ack["ok"] and ack["rowcount"] == 2
            assert ack["workers_updated"] == 2
            assert ack["cache_evicted"] >= 1

            status, after = _post(conn, {"query": query})
            assert status == 200
            assert after["cached"] is False
            assert after["rows"] == [[1, 2], [3, 4]]
            assert after["rows"] != before["rows"]

            stats = json.loads(_get(conn, "/stats")[1])
            assert stats["front"]["mutations"] == 1
            assert stats["cache"]["cache_invalidations"] == 1
            assert stats["cache"]["cache_stale_served"] == 0
        finally:
            conn.close()

    def test_mutate_rejects_unknown_names_and_bad_rows(self, cached_server):
        conn = self._conn(cached_server)
        try:
            status, body = self._mutate(conn, "NOPE", [[1, 2]])
            assert status == 400 and body["error"] == "BadRequestError"
            status, body = self._mutate(conn, "R", [[1, 2, 3]])
            assert status == 400 and body["error"] == "BadRequestError"
            status, body = self._mutate(conn, "R", "not rows")
            assert status == 400
            conn.request("GET", "/mutate")
            assert conn.getresponse().status == 405
        finally:
            conn.close()

    def test_cache_metrics_render_in_the_exposition(self, cached_server):
        conn = self._conn(cached_server)
        try:
            _post(conn, {"query": QUERIES[0], "count_only": True})
            _post(conn, {"query": QUERIES[0], "count_only": True})
            text = _get(conn, "/metrics")[1].decode("utf-8")
            samples = {}
            for line in text.splitlines():
                if not line.startswith("#"):
                    name, _, value = line.rpartition(" ")
                    samples[name.split("{")[0]] = value
            assert samples["repro_server_cache_hits_total"] == "1"
            assert samples["repro_server_cache_misses_total"] == "1"
            assert samples["repro_server_cache_stale_served_total"] == "0"
            assert samples["repro_server_cache_entries"] == "1"
        finally:
            conn.close()

    def test_cache_events_are_emitted(self, cached_server):
        conn = self._conn(cached_server)
        try:
            _post(conn, {"query": QUERIES[3], "count_only": True})
            _post(conn, {"query": QUERIES[3], "count_only": True})
            self._mutate(conn, "T", [[1, 2]])
        finally:
            conn.close()
        events = cached_server._observer.events
        assert events is not None
        assert len(events.events("cache_hit")) == 1
        invalidations = events.events("cache_invalidate")
        assert [event["name"] for event in invalidations] == ["T"]

    def test_disabled_cache_never_marks_responses(self):
        with ReproServer(
            RELATIONS, pool_size=1, result_cache_size=0
        ) as plain:
            conn = self._conn(plain)
            try:
                for _ in range(2):
                    status, body = _post(
                        conn, {"query": QUERIES[0], "count_only": True}
                    )
                    assert status == 200
                    assert "cached" not in body
                stats = json.loads(_get(conn, "/stats")[1])
                assert stats["cache"] == {"enabled": False}
            finally:
                conn.close()


class TestLoadReportRejections:
    """The loadgen fix: rejections are reported, never sampled."""

    def test_rejected_is_separate_and_percentiles_ignore_it(self):
        completed = [100.0, 110.0, 120.0, 130.0, 140.0]
        clean = LoadReport(
            clients=1, requests=5, ok=5, errors=0, rejected=0,
            seconds=1.0, latencies_ms=list(completed),
            status_counts={200: 5},
        )
        shed_heavy = LoadReport(
            clients=1, requests=10, ok=5, errors=0, rejected=5,
            seconds=1.0, latencies_ms=list(completed),
            status_counts={200: 5, 503: 5},
        )
        # Adding rejections must not move the latency percentiles: a
        # 503 turns around in microseconds, and folding those samples
        # in would make an overloaded server look *faster*.
        assert shed_heavy.p50_ms() == clean.p50_ms()
        assert shed_heavy.p99_ms() == clean.p99_ms()
        summary = shed_heavy.summary()
        assert summary["rejected"] == 5
        assert summary["shed"] == 5  # the pre-PR-10 alias stays
        assert summary["ok"] == 5 and summary["errors"] == 0
        assert shed_heavy.shed == 5
        # Throughput counts completed requests only.
        assert shed_heavy.throughput_rps == clean.throughput_rps

    def test_run_load_counts_rejections_under_real_shedding(self):
        with ReproServer(
            RELATIONS,
            pool_size=1,
            max_inflight=1,
            result_cache_size=0,
        ) as tight:
            report = run_load(
                "127.0.0.1",
                tight.port,
                [HEAVY_QUERY],
                clients=6,
                requests_per_client=2,
                budget=64,
                timeout=120.0,
            )
        assert report.requests == 12
        assert report.ok + report.rejected + report.errors == report.requests
        assert report.errors == 0, report.summary()
        assert report.rejected > 0, "max_inflight=1 under 6 clients must shed"
        # Every latency sample belongs to a completed request.
        assert len(report.latencies_ms) == report.ok
        assert report.status_counts.get(503, 0) == report.rejected
