"""End-to-end integration tests across the whole pipeline.

Each test exercises a full path: SAT/QBF instance -> paper construction ->
relational evaluation -> decision procedure -> comparison against the
independent solver, mirroring the experiments of EXPERIMENTS.md at a size
small enough for the unit-test suite.
"""

import pytest

from repro.complexity import ReductionCheck, verify_reduction
from repro.decision import (
    CardinalityDecider,
    ContainmentDecider,
    QueryResultEqualityDecider,
    TupleCounter,
)
from repro.expressions import evaluate, parse_expression
from repro.qbf import canonical_false_q3sat, evaluate_by_expansion, planted_true_q3sat
from repro.reductions import (
    SatUnsatPair,
    Theorem1Reduction,
    Theorem2TwoSidedReduction,
    Theorem3Reduction,
    Theorem4Reduction,
    Theorem5Reduction,
)
from repro.sat import count_models, is_satisfiable
from repro.workloads import (
    mixed_family,
    qbf_family,
    sat_unsat_pairs,
    satisfiable_family,
    unsatisfiable_family,
)


class TestTheorem1EndToEnd:
    def test_reduction_agrees_with_solver_on_all_pair_kinds(self):
        check = ReductionCheck(
            name="Theorem 1",
            source_answer=lambda pair: pair.is_yes_instance(),
            target_answer=lambda pair: QueryResultEqualityDecider().equal(
                *_reorder(Theorem1Reduction(pair).instance())
            ),
        )
        report = verify_reduction(check, [pair for _, pair in sat_unsat_pairs()])
        assert report.all_agree
        assert report.yes_instances == 1


def _reorder(instance):
    relation, expression, conjectured = instance
    return expression, relation, conjectured


class TestTheorem2EndToEnd:
    def test_exact_and_window_instances_agree_with_solver(self):
        decider = CardinalityDecider()
        for _, pair in sat_unsat_pairs():
            reduction = Theorem2TwoSidedReduction(pair)
            for instance in (reduction.exact_instance(), reduction.window_instance()):
                verdict = decider.check_bounds(
                    instance.expression, instance.relation, instance.lower, instance.upper
                )
                assert verdict.holds == reduction.expected_yes()


class TestTheorem3EndToEnd:
    def test_counting_matches_sat_counter_across_families(self):
        counter = TupleCounter()
        cases = satisfiable_family(clause_counts=(3, 4)) + unsatisfiable_family(
            extra_clause_counts=(0,)
        )
        for case in cases:
            reduction = Theorem3Reduction(case.formula)
            instance = reduction.instance()
            tuple_count = counter.count(instance.expression, instance.relation)
            assert reduction.models_from_tuple_count(tuple_count) == count_models(
                reduction.construction.formula
            )


class TestTheorems4And5EndToEnd:
    def test_containment_tracks_qbf_truth(self):
        decider = ContainmentDecider()
        for label, instance, planted_truth in qbf_family(universal_counts=(3,)):
            four = Theorem4Reduction(instance)
            comparison4 = four.containment_instance()
            answer4 = decider.compare_queries(
                comparison4.first, comparison4.second, comparison4.relation
            ).left_in_right
            five = Theorem5Reduction(instance)
            comparison5 = five.containment_instance()
            answer5 = decider.compare_databases(
                comparison5.expression, comparison5.first, comparison5.second
            ).left_in_right
            assert answer4 == answer5 == planted_truth == evaluate_by_expansion(instance)


class TestTextualRoundTrips:
    def test_constructed_expressions_survive_parsing(self):
        from repro.workloads import paper_example_construction

        construction = paper_example_construction()
        for expression in (
            construction.expression,
            construction.pair_projection_expression(),
            construction.phi_one_expression(),
            construction.phi_two_expression(),
        ):
            schemes = expression.operand_schemes()
            parsed = parse_expression(expression.to_text(), schemes)
            assert parsed == expression

    def test_reduction_expressions_survive_parsing(self):
        pair = [pair for _, pair in sat_unsat_pairs()][0]
        reduction = Theorem1Reduction(pair)
        expression = reduction.expression()
        parsed = parse_expression(expression.to_text(), expression.operand_schemes())
        assert parsed == expression


class TestSolverRelationalAgreementOnRandomFormulas:
    def test_relational_satisfiability_matches_dpll_on_mixed_family(self):
        from repro.reductions import MembershipReduction
        from repro.decision import tuple_in_result

        # The clause/variable ratio is kept low: naive evaluation of φ_G is
        # exponential in the clause count, and this test only needs agreement,
        # not a hard instance.
        for case in mixed_family(count=4, num_variables=5, clause_ratio=1.6):
            reduction = MembershipReduction(case.formula)
            instance = reduction.instance()
            relational_answer = tuple_in_result(
                instance.tuple, reduction.expression(), instance.relation
            )
            assert relational_answer == is_satisfiable(reduction.construction.formula)
