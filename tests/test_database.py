"""Unit tests for repro.algebra.database."""

import pytest

from repro.algebra import Database, DatabaseScheme, DatabaseSchemeError, Relation


@pytest.fixture
def relations():
    return {
        "R": Relation.from_rows("A B", [(1, 2), (3, 4)]),
        "S": Relation.from_rows("B C", [(2, "x")]),
    }


class TestDatabase:
    def test_mapping_protocol(self, relations):
        database = Database(relations)
        assert len(database) == 2
        assert set(database) == {"R", "S"}
        assert database["R"].cardinality() == 2

    def test_missing_relation_raises(self, relations):
        with pytest.raises(KeyError):
            Database(relations)["T"]

    def test_relations_get_their_names(self, relations):
        database = Database(relations)
        assert database["R"].name == "R"

    def test_single(self):
        database = Database.single(Relation.from_rows("A", [(1,)]), name="Only")
        assert set(database) == {"Only"}

    def test_scheme_is_derived_when_absent(self, relations):
        database = Database(relations)
        assert database.scheme.scheme_of("R") == relations["R"].scheme

    def test_validation_against_declared_scheme(self, relations):
        declared = DatabaseScheme({"R": "A B", "S": "B C"})
        Database(relations, scheme=declared)  # must not raise

    def test_validation_missing_relation(self, relations):
        declared = DatabaseScheme({"R": "A B", "S": "B C", "T": "C D"})
        with pytest.raises(DatabaseSchemeError):
            Database(relations, scheme=declared)

    def test_validation_wrong_scheme(self, relations):
        declared = DatabaseScheme({"R": "A B", "S": "B D"})
        with pytest.raises(DatabaseSchemeError):
            Database(relations, scheme=declared)

    def test_with_relation_returns_new_database(self, relations):
        database = Database(relations)
        updated = database.with_relation("T", Relation.from_rows("C D", [(1, 2)]))
        assert "T" in updated and "T" not in database

    def test_total_tuples(self, relations):
        assert Database(relations).total_tuples() == 3

    def test_equality_and_items_sorted(self, relations):
        assert Database(relations) == Database(dict(relations))
        names = [name for name, _ in Database(relations).items_sorted()]
        assert names == sorted(names)

    def test_relation_schemes(self, relations):
        schemes = Database(relations).relation_schemes()
        assert set(schemes) == {"R", "S"}
