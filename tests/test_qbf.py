"""Unit tests for Q-3SAT instances, evaluators, and generators."""

import pytest

from repro.qbf import (
    QThreeSatInstance,
    canonical_false_q3sat,
    evaluate_by_expansion,
    evaluate_with_pruning,
    find_universal_counterexample,
    paper_style_partition,
    planted_false_q3sat,
    planted_true_q3sat,
    random_q3sat,
)
from repro.sat import CNFFormula, forced_unsatisfiable, paper_example_formula


class TestInstance:
    def test_partition(self):
        instance = QThreeSatInstance(paper_example_formula(), ("x1", "x2"))
        assert instance.universal == ("x1", "x2")
        assert instance.existential == ("x3", "x4", "x5")

    def test_unknown_universal_variable_rejected(self):
        with pytest.raises(ValueError):
            QThreeSatInstance(paper_example_formula(), ("zzz",))

    def test_duplicate_universal_rejected(self):
        with pytest.raises(ValueError):
            QThreeSatInstance(paper_example_formula(), ("x1", "x1"))

    def test_describe_mentions_both_blocks(self):
        text = QThreeSatInstance(paper_example_formula(), ("x1",)).describe()
        assert "forall" in text and "exists" in text

    def test_restriction_predicates(self):
        formula = paper_example_formula()
        inside_clause = QThreeSatInstance(formula, ("x1",))
        assert inside_clause.universal_inside_some_clause()
        covers_clause = QThreeSatInstance(formula, ("x1", "x2", "x3", "x5"))
        assert covers_clause.universal_contains_some_clause()
        good = canonical_false_q3sat()
        assert good.satisfies_proposition4_restrictions()

    def test_guard_clauses_fix_first_restriction(self):
        instance = QThreeSatInstance(paper_example_formula(), ("x1",))
        repaired = instance.with_guard_clauses()
        assert not repaired.universal_inside_some_clause()
        assert evaluate_by_expansion(instance) == evaluate_by_expansion(repaired)


class TestEvaluators:
    def test_empty_universal_set_reduces_to_sat(self):
        satisfiable = QThreeSatInstance(paper_example_formula(), ())
        assert evaluate_by_expansion(satisfiable)
        unsatisfiable = QThreeSatInstance(forced_unsatisfiable(3), ())
        assert not evaluate_by_expansion(unsatisfiable)

    def test_all_variables_universal_means_tautology_check(self):
        formula = CNFFormula.of("x | y | z")
        instance = QThreeSatInstance(formula, tuple(formula.variables))
        assert not evaluate_by_expansion(instance)  # all-false falsifies it

    def test_counterexample_is_a_real_counterexample(self):
        instance = canonical_false_q3sat()
        counterexample = find_universal_counterexample(instance)
        assert counterexample is not None
        from repro.sat import is_satisfiable

        assert not is_satisfiable(instance.formula.restrict(counterexample))

    def test_true_instance_has_no_counterexample(self):
        assert find_universal_counterexample(planted_true_q3sat(2, seed=1)) is None

    @pytest.mark.parametrize("seed", range(6))
    def test_pruning_evaluator_agrees_with_expansion(self, seed):
        instance = random_q3sat(5, 8, 2, seed=seed)
        assert evaluate_with_pruning(instance) == evaluate_by_expansion(instance)

    def test_pruning_evaluator_on_planted_instances(self):
        assert evaluate_with_pruning(planted_true_q3sat(3, seed=2))
        assert not evaluate_with_pruning(planted_false_q3sat(3, seed=2))


class TestGenerators:
    def test_planted_true_is_true(self):
        for universal in (1, 2, 4):
            instance = planted_true_q3sat(universal, seed=universal)
            assert evaluate_by_expansion(instance)
            assert len(instance.universal) == universal

    def test_planted_false_is_false(self):
        for universal in (3, 4, 5):
            instance = planted_false_q3sat(universal, seed=universal)
            assert not evaluate_by_expansion(instance)
            assert len(instance.universal) == universal

    def test_planted_false_needs_three_universal(self):
        with pytest.raises(ValueError):
            planted_false_q3sat(2)

    def test_planted_true_needs_one_universal(self):
        with pytest.raises(ValueError):
            planted_true_q3sat(0)

    def test_canonical_false_shape(self):
        instance = canonical_false_q3sat()
        assert instance.formula.num_clauses == 4
        assert instance.formula.num_variables == 4
        assert not evaluate_by_expansion(instance)
        assert instance.satisfies_proposition4_restrictions()

    def test_extra_clauses_do_not_change_truth(self):
        assert evaluate_by_expansion(planted_true_q3sat(2, extra_clauses=3, seed=0))
        assert not evaluate_by_expansion(planted_false_q3sat(3, extra_clauses=3, seed=0))

    def test_random_q3sat_shape(self):
        instance = random_q3sat(6, 9, 3, seed=5)
        assert instance.formula.num_clauses == 9
        assert len(instance.universal) == 3

    def test_random_q3sat_too_many_universal_rejected(self):
        with pytest.raises(ValueError):
            random_q3sat(4, 5, 6)

    def test_paper_style_partition(self):
        instance = paper_style_partition(paper_example_formula(), 2, seed=3)
        assert len(instance.universal) == 2
        assert set(instance.universal) <= set(paper_example_formula().variables)
        with pytest.raises(ValueError):
            paper_style_partition(paper_example_formula(), 99)
