"""Experiment E1: the worked example of the paper (p. 106), reproduced exactly."""

import pytest

from repro.expressions import evaluate, parse_expression
from repro.workloads import (
    PAPER_EXAMPLE_EXPRESSION_TEXT,
    PAPER_EXAMPLE_ROWS,
    paper_example_construction,
    paper_example_formula,
    paper_example_relation,
    paper_example_scheme,
)


class TestPrintedTable:
    def test_has_22_rows_and_12_columns(self):
        relation = paper_example_relation()
        assert len(relation) == 22
        assert len(relation.scheme) == 12

    def test_transcription_has_no_duplicate_rows(self):
        assert len(set(PAPER_EXAMPLE_ROWS)) == len(PAPER_EXAMPLE_ROWS)

    def test_column_order_matches_paper(self):
        assert paper_example_scheme().names == (
            "F1", "F2", "F3",
            "X1", "X2", "X3", "X4", "X5",
            "Y_1_2", "Y_1_3", "Y_2_3",
            "S",
        )

    def test_construction_reproduces_the_printed_table(self):
        construction = paper_example_construction()
        assert construction.relation == paper_example_relation()

    def test_constructed_scheme_matches_printed_scheme(self):
        construction = paper_example_construction()
        assert construction.scheme == paper_example_scheme()


class TestPrintedExpression:
    def test_generated_expression_text_matches_paper(self):
        construction = paper_example_construction()
        assert construction.expression.to_text() == PAPER_EXAMPLE_EXPRESSION_TEXT

    def test_printed_expression_parses_back_to_the_construction(self):
        construction = paper_example_construction()
        parsed = parse_expression(
            PAPER_EXAMPLE_EXPRESSION_TEXT, {"R": construction.scheme}
        )
        assert parsed == construction.expression


class TestExampleSemantics:
    def test_formula_matches_paper(self):
        formula = paper_example_formula()
        assert str(formula.clauses[0]) == "(x1 | x2 | x3)"
        assert formula.num_clauses == 3 and formula.num_variables == 5

    def test_evaluation_on_printed_table_matches_lemma1(self):
        construction = paper_example_construction()
        result = evaluate(construction.expression, paper_example_relation())
        assert result == construction.expected_result()
        # The example formula has 20 satisfying assignments.
        assert len(result) == 42
