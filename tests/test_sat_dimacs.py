"""Unit tests for DIMACS parsing and serialisation."""

import pytest

from repro.sat import (
    CNFFormula,
    count_models_bruteforce,
    parse_dimacs,
    random_three_cnf,
    to_dimacs,
)


SAMPLE = """c a comment
p cnf 3 2
1 -2 3 0
-1 2 -3 0
"""


class TestParse:
    def test_basic_parse(self):
        formula = parse_dimacs(SAMPLE)
        assert formula.num_clauses == 2
        assert formula.num_variables == 3
        assert formula.variables == ("x1", "x2", "x3")

    def test_polarity(self):
        formula = parse_dimacs(SAMPLE)
        first = formula.clauses[0]
        literals = {(l.variable, l.positive) for l in first}
        assert ("x2", False) in literals and ("x1", True) in literals

    def test_clause_spanning_multiple_lines(self):
        text = "p cnf 3 1\n1 2\n3 0\n"
        formula = parse_dimacs(text)
        assert formula.num_clauses == 1
        assert len(formula.clauses[0]) == 3

    def test_declared_variables_beyond_used(self):
        text = "p cnf 5 1\n1 2 3 0\n"
        assert parse_dimacs(text).num_variables == 5

    def test_comments_and_percent_lines_ignored(self):
        text = "c hi\n% ignored\np cnf 3 1\n1 2 3 0\n%\n0\n"
        assert parse_dimacs(text).num_clauses == 1

    def test_custom_prefix(self):
        formula = parse_dimacs(SAMPLE, variable_prefix="v")
        assert formula.variables == ("v1", "v2", "v3")


class TestRoundTrip:
    def test_emit_contains_problem_line(self):
        formula = parse_dimacs(SAMPLE)
        text = to_dimacs(formula, comments=["round trip"])
        assert "p cnf 3 2" in text
        assert "c round trip" in text

    @pytest.mark.parametrize("seed", range(5))
    def test_round_trip_preserves_model_count(self, seed):
        formula = random_three_cnf(5, 8, seed=seed)
        recovered = parse_dimacs(to_dimacs(formula))
        assert recovered.num_clauses == formula.num_clauses
        assert count_models_bruteforce(recovered) == count_models_bruteforce(formula)

    def test_round_trip_preserves_clause_structure(self):
        formula = CNFFormula.of("a | ~b | c", "~a | b | ~c")
        recovered = parse_dimacs(to_dimacs(formula))
        # Variable names change (x1, x2, ...) but widths and signs survive.
        assert [len(c) for c in recovered.clauses] == [3, 3]
