"""Randomized property tests: positional kernel vs the naive reference.

The kernel rewrite (compiled join/projection plans, trusted tuple
constructor) must be observationally identical to the seed's dict-based
implementation, which is retained verbatim in :mod:`repro.algebra.reference`.
These tests generate random schemes and relations and assert set-equality of
the two implementations' results for ``natural_join``, ``project``, and
``rename``, plus the tuple-level invariants the kernel relies on.
"""

import random

from hypothesis import assume, given, settings, strategies as st

import pytest

from repro.algebra import (
    Attribute,
    Domain,
    DomainError,
    Relation,
    RelationScheme,
    RelationTuple,
    naive_natural_join,
    naive_project,
    naive_rename,
)
from repro.perf import join_plan_cache, kernel_counters, project_plan_cache

NAME_POOL = tuple("ABCDEFGHIJ")
VALUE_POOL = st.one_of(st.integers(min_value=0, max_value=4), st.sampled_from("xyz"))


@st.composite
def schemes(draw, min_width=1, max_width=5):
    width = draw(st.integers(min_value=min_width, max_value=max_width))
    names = draw(
        st.permutations(NAME_POOL).map(lambda p: tuple(p[:width]))
    )
    return RelationScheme(names)


@st.composite
def relations(draw, scheme=None, max_rows=12):
    if scheme is None:
        scheme = draw(schemes())
    n_rows = draw(st.integers(min_value=0, max_value=max_rows))
    rows = draw(
        st.lists(
            st.tuples(*([VALUE_POOL] * len(scheme))),
            min_size=n_rows,
            max_size=n_rows,
        )
    )
    return Relation.from_rows(scheme, rows)


@st.composite
def joinable_pairs(draw):
    """Two relations whose schemes overlap on a random (possibly empty) set."""
    left_scheme = draw(schemes(max_width=4))
    overlap = draw(
        st.lists(st.sampled_from(left_scheme.names), unique=True, max_size=2)
    )
    fresh = [n for n in NAME_POOL if n not in left_scheme.name_set]
    extra_width = draw(st.integers(min_value=0, max_value=2))
    right_names = tuple(overlap) + tuple(fresh[:extra_width])
    if not right_names:
        right_names = (fresh[0],)
    right_scheme = RelationScheme(right_names)
    return draw(relations(scheme=left_scheme)), draw(relations(scheme=right_scheme))


class TestKernelEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(joinable_pairs())
    def test_natural_join_matches_reference(self, pair):
        left, right = pair
        kernel = left.natural_join(right)
        reference = naive_natural_join(left, right)
        assert kernel.scheme == reference.scheme
        assert kernel.tuples == reference.tuples

    @settings(max_examples=60, deadline=None)
    @given(relations(), st.randoms(use_true_random=False))
    def test_project_matches_reference(self, relation, rng):
        width = rng.randint(1, len(relation.scheme))
        target = rng.sample(relation.scheme.names, width)
        kernel = relation.project(target)
        reference = naive_project(relation, target)
        assert kernel.scheme == reference.scheme
        assert kernel.tuples == reference.tuples

    @settings(max_examples=60, deadline=None)
    @given(relations(), st.randoms(use_true_random=False))
    def test_rename_matches_reference(self, relation, rng):
        fresh = [n for n in "PQRSTUVW"]
        mapping = {
            name: fresh.pop()
            for name in relation.scheme.names
            if rng.random() < 0.5
        }
        kernel = relation.rename(mapping)
        reference = naive_rename(relation, mapping)
        assert kernel.scheme == reference.scheme
        assert kernel.tuples == reference.tuples

    @settings(max_examples=40, deadline=None)
    @given(joinable_pairs())
    def test_join_commutes(self, pair):
        left, right = pair
        assert left.natural_join(right) == right.natural_join(left)

    @settings(max_examples=40, deadline=None)
    @given(relations())
    def test_project_join_restrictions(self, relation):
        # Every joined tuple restricts to a tuple of each operand (paper, 2.1).
        assume(len(relation.scheme) >= 2)
        half = len(relation.scheme) // 2
        left = relation.project(relation.scheme.names[:half])
        right = relation.project(relation.scheme.names[half:])
        joined = left.natural_join(right)
        for tup in joined:
            assert tup.project(left.scheme) in left
            assert tup.project(right.scheme) in right


class TestTupleInvariants:
    @settings(max_examples=40, deadline=None)
    @given(relations())
    def test_reordered_scheme_presentation_is_equal(self, relation):
        names = list(relation.scheme.names)
        random.Random(0).shuffle(names)
        reordered = RelationScheme(names)
        for tup in relation:
            twin = RelationTuple(reordered, tup.as_dict())
            assert twin == tup
            assert hash(twin) == hash(tup)

    @settings(max_examples=40, deadline=None)
    @given(relations())
    def test_trusted_constructor_agrees_with_validating(self, relation):
        for tup in relation:
            rebuilt = RelationTuple(tup.scheme, tup.as_dict())
            assert rebuilt == tup
            assert hash(rebuilt) == hash(tup)
            assert rebuilt.values_in_order() == tup.values_in_order()


class TestPlanCacheBehaviour:
    def test_repeated_joins_hit_the_plan_cache(self):
        left = Relation.from_rows("A B", [(i, i + 1) for i in range(20)])
        right = Relation.from_rows("B C", [(i, i % 3) for i in range(20)])
        counters = kernel_counters()
        left.natural_join(right)
        before = counters.snapshot()
        left.natural_join(right)
        delta = counters.delta_since(before)
        assert delta["join_plan_misses"] == 0
        assert delta["join_plan_hits"] == 1

    def test_plan_caches_stay_bounded(self):
        cache = join_plan_cache()
        assert len(cache) <= cache.maxsize
        cache = project_plan_cache()
        assert len(cache) <= cache.maxsize

    def test_plans_do_not_leak_domains_across_same_named_schemes(self):
        # Attribute equality ignores domains, so the plan caches must key on
        # domains too: warming the cache with an undomained "A B" scheme must
        # not strip the domain from a later same-named scheme's results.
        plain = RelationScheme.of("A", "B")
        Relation.from_rows(plain, [(1, 2)]).project("A")
        constrained = RelationScheme(
            [Attribute("A", Domain.of("small", [1, 2])), Attribute("B")]
        )
        projected = Relation.from_rows(constrained, [(1, 2)]).project("A")
        with pytest.raises(DomainError):
            projected.insert({"A": 999})
        joined = Relation.from_rows(constrained, [(1, 2)]).natural_join(
            Relation.from_rows("B C", [(2, 3)])
        )
        with pytest.raises(DomainError):
            joined.insert({"A": 999, "B": 2, "C": 3})
