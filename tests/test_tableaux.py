"""Unit tests for tableau construction and semantics."""

import pytest

from repro.algebra import Relation, RelationTuple
from repro.expressions import Join, Operand, Projection, evaluate
from repro.tableaux import (
    Constant,
    DistinguishedVariable,
    NondistinguishedVariable,
    Tableau,
    TableauRow,
    tableau_of_expression,
)
from repro.workloads import random_instance

R = Relation.from_rows("A B C", [(1, 2, 3), (1, 2, 4), (2, 5, 3)], name="R")
BASE = Operand("R", "A B C")


class TestTranslation:
    def test_operand_tableau_has_one_row(self):
        tableau = tableau_of_expression(BASE)
        assert len(tableau.rows) == 1
        assert tableau.rows[0].operand == "R"

    def test_distinguished_cells_follow_target_scheme(self):
        expression = Projection("A B", BASE)
        tableau = tableau_of_expression(expression)
        assert set(tableau.summary) == {"A", "B"}
        assert all(
            isinstance(cell, DistinguishedVariable) for cell in tableau.summary.values()
        )

    def test_projected_away_attributes_become_nondistinguished(self):
        expression = Projection("A", BASE)
        tableau = tableau_of_expression(expression)
        row = tableau.rows[0]
        assert isinstance(row.cell("A"), DistinguishedVariable)
        assert isinstance(row.cell("B"), NondistinguishedVariable)
        assert isinstance(row.cell("C"), NondistinguishedVariable)

    def test_join_produces_one_row_per_operand_occurrence(self):
        expression = Join([Projection("A B", BASE), Projection("B C", BASE)])
        tableau = tableau_of_expression(expression)
        assert len(tableau.rows) == 2

    def test_shared_visible_attribute_uses_same_cell(self):
        expression = Join([Projection("A B", BASE), Projection("B C", BASE)])
        tableau = tableau_of_expression(expression)
        first, second = tableau.rows
        assert first.cell("B") == second.cell("B")

    def test_shared_hidden_attribute_still_identified(self):
        # B is shared by the two factors but projected away above the join:
        # both rows must still use the same (nondistinguished) variable for it.
        expression = Projection("A C", Join([Projection("A B", BASE), Projection("B C", BASE)]))
        tableau = tableau_of_expression(expression)
        first, second = tableau.rows
        assert first.cell("B") == second.cell("B")
        assert isinstance(first.cell("B"), NondistinguishedVariable)

    def test_row_count_equals_operand_occurrences(self):
        expression = Join(
            [Projection("A B", BASE), Projection("B C", BASE), Projection("A C", BASE)]
        )
        assert len(tableau_of_expression(expression).rows) == 3

    def test_to_text_mentions_rows(self):
        text = tableau_of_expression(Projection("A", BASE)).to_text()
        assert "summary" in text and "row 0" in text


class TestSemantics:
    def test_tableau_evaluation_matches_expression_evaluation(self):
        expression = Projection("A C", Join([Projection("A B", BASE), Projection("B C", BASE)]))
        tableau = tableau_of_expression(expression)
        assert tableau.evaluate({"R": R}) == evaluate(expression, R)

    def test_tableau_evaluation_matches_on_random_instances(self):
        for seed in range(6):
            relation, query = random_instance(seed=200 + seed, num_tuples=8)
            tableau = tableau_of_expression(query)
            assert tableau.evaluate({"R": relation}) == evaluate(query, relation)

    def test_produces_tuple_finds_witness_for_member(self):
        expression = Join([Projection("A B", BASE), Projection("B C", BASE)])
        tableau = tableau_of_expression(expression)
        result = evaluate(expression, R)
        member = next(iter(result))
        assert tableau.produces_tuple(member, {"R": R}) is not None

    def test_produces_tuple_rejects_non_member(self):
        expression = Join([Projection("A B", BASE), Projection("B C", BASE)])
        tableau = tableau_of_expression(expression)
        outsider = RelationTuple(expression.target_scheme(), {"A": 99, "B": 99, "C": 99})
        assert tableau.produces_tuple(outsider, {"R": R}) is None

    def test_produces_tuple_rejects_wrong_scheme(self):
        expression = Projection("A", BASE)
        tableau = tableau_of_expression(expression)
        wrong = RelationTuple("A B", {"A": 1, "B": 2})
        assert tableau.produces_tuple(wrong, {"R": R}) is None

    def test_constant_cells_respected(self):
        scheme = BASE.scheme
        summary = {"A": Constant(1), "B": DistinguishedVariable("B"), "C": DistinguishedVariable("C")}
        row = TableauRow(
            "R",
            (("A", Constant(1)), ("B", summary["B"]), ("C", summary["C"])),
        )
        tableau = Tableau(summary, [row], scheme)
        result = tableau.evaluate({"R": R})
        assert all(t["A"] == 1 for t in result)
        assert len(result) == 2

    def test_all_variables_collects_summary_and_rows(self):
        expression = Projection("A", Join([Projection("A B", BASE), Projection("B C", BASE)]))
        tableau = tableau_of_expression(expression)
        variables = tableau.all_variables()
        assert tableau.summary["A"] in variables
        assert len(variables) >= 3
