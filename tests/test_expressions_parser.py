"""Unit tests for the textual expression syntax."""

import pytest

from repro.expressions import (
    Join,
    Operand,
    ParseError,
    Projection,
    parse_expression,
)

SCHEMES = {"R": "A B C", "S": "C D"}


class TestParsing:
    def test_bare_operand(self):
        assert parse_expression("R", SCHEMES) == Operand("R", "A B C")

    def test_projection(self):
        parsed = parse_expression("project[A, B](R)", SCHEMES)
        assert parsed == Projection("A B", Operand("R", "A B C"))

    def test_join(self):
        parsed = parse_expression("R * S", SCHEMES)
        assert parsed == Join([Operand("R", "A B C"), Operand("S", "C D")])

    def test_nested(self):
        text = "project[A, D](project[A, C](R) * S)"
        parsed = parse_expression(text, SCHEMES)
        assert isinstance(parsed, Projection)
        assert parsed.target.names == ("A", "D")

    def test_parentheses(self):
        parsed = parse_expression("(R * S)", SCHEMES)
        assert isinstance(parsed, Join)

    def test_whitespace_insensitivity(self):
        compact = parse_expression("project[A,B](R)*S", SCHEMES)
        spaced = parse_expression("  project[ A , B ] ( R )  *  S ", SCHEMES)
        assert compact == spaced

    def test_pi_keyword_alias(self):
        assert parse_expression("pi[A](R)", SCHEMES) == Projection("A", Operand("R", "A B C"))


class TestRoundTrip:
    def test_operand_round_trip(self):
        expression = Operand("R", "A B C")
        assert parse_expression(expression.to_text(), SCHEMES) == expression

    def test_projection_join_round_trip(self):
        expression = Join(
            [
                Projection("A B", Operand("R", "A B C")),
                Projection("C D", Operand("S", "C D")),
            ]
        )
        assert parse_expression(expression.to_text(), SCHEMES) == expression

    def test_outer_projection_round_trip(self):
        expression = Projection(
            "A D",
            Join([Operand("R", "A B C"), Operand("S", "C D")]),
        )
        assert parse_expression(expression.to_text(), SCHEMES) == expression


class TestErrors:
    def test_unknown_operand(self):
        with pytest.raises(ParseError):
            parse_expression("T", SCHEMES)

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_expression("   ", SCHEMES)

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_expression("R )", SCHEMES)

    def test_unclosed_projection(self):
        with pytest.raises(ParseError):
            parse_expression("project[A](R", SCHEMES)

    def test_bad_projection_list(self):
        with pytest.raises(ParseError):
            parse_expression("project[A,](R)", SCHEMES)

    def test_projection_of_missing_attribute(self):
        # Parsing succeeds syntactically but the AST constructor rejects the
        # out-of-scheme attribute.
        with pytest.raises(Exception):
            parse_expression("project[Z](R)", SCHEMES)

    def test_unexpected_symbol(self):
        with pytest.raises(ParseError):
            parse_expression("R @ S", SCHEMES)
