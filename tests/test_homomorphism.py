"""Unit tests for tableau homomorphisms and Chandra-Merlin containment."""

import pytest

from repro.algebra import Relation
from repro.expressions import Join, Operand, Projection, evaluate
from repro.tableaux import (
    find_homomorphism,
    minimize_tableau,
    query_contained_in,
    query_equivalent,
    tableau_of_expression,
)
from repro.workloads import random_instance, random_relation

BASE = Operand("R", "A B C")


class TestHomomorphism:
    def test_identity_homomorphism_exists(self):
        expression = Join([Projection("A B", BASE), Projection("B C", BASE)])
        tableau = tableau_of_expression(expression)
        assert find_homomorphism(tableau, tableau) is not None

    def test_no_homomorphism_across_different_target_schemes(self):
        first = tableau_of_expression(Projection("A", BASE))
        second = tableau_of_expression(Projection("A B", BASE))
        assert find_homomorphism(first, second) is None

    def test_homomorphism_from_more_constrained_to_less(self):
        # project[A,C](R) has a single row covering A and C together, while the
        # join of the two binary projections splits them: the split query is
        # less constrained, so the single-row tableau maps into it... and not
        # conversely.
        tight = Projection("A C", BASE)
        loose = Projection("A C", Join([Projection("A B", BASE), Projection("B C", BASE)]))
        tight_tableau = tableau_of_expression(tight)
        loose_tableau = tableau_of_expression(loose)
        assert find_homomorphism(tight_tableau, loose_tableau) is None
        assert find_homomorphism(loose_tableau, tight_tableau) is not None


class TestChandraMerlinContainment:
    def test_tight_query_contained_in_loose(self):
        tight = Projection("A C", BASE)
        loose = Projection("A C", Join([Projection("A B", BASE), Projection("B C", BASE)]))
        assert query_contained_in(tight, loose)
        assert not query_contained_in(loose, tight)
        assert not query_equivalent(tight, loose)

    def test_equivalent_reorderings(self):
        one = Join([Projection("A B", BASE), Projection("B C", BASE)])
        other = Join([Projection("B C", BASE), Projection("A B", BASE)])
        assert query_equivalent(one, other)

    def test_redundant_factor_is_equivalent(self):
        # Adding a copy of an existing factor never changes the query.
        lean = Join([Projection("A B", BASE), Projection("B C", BASE)])
        redundant = Join(
            [Projection("A B", BASE), Projection("B C", BASE), Projection("A B", BASE)]
        )
        assert query_equivalent(lean, redundant)

    def test_containment_is_sound_on_data(self):
        # Whenever the homomorphism test says contained, evaluation must agree
        # on every database we try.
        tight = Projection("A C", BASE)
        loose = Projection("A C", Join([Projection("A B", BASE), Projection("B C", BASE)]))
        assert query_contained_in(tight, loose)
        for seed in range(5):
            relation = random_relation(num_attributes=3, num_tuples=10, seed=seed, attribute_prefix="")
            relation = relation.rename({"1": "A", "2": "B", "3": "C"})
            left = evaluate(tight, relation)
            right = evaluate(loose, relation)
            assert left.is_subset_of(right)

    def test_fixed_database_containment_does_not_imply_general_containment(self):
        # On an empty database every query is contained in every other; the
        # homomorphism test correctly refuses the general claim.
        loose = Projection("A C", Join([Projection("A B", BASE), Projection("B C", BASE)]))
        tight = Projection("A C", BASE)
        empty = Relation.empty(BASE.scheme)
        assert evaluate(loose, empty).is_subset_of(evaluate(tight, empty))
        assert not query_contained_in(loose, tight)


class TestMinimization:
    def test_redundant_row_is_removed(self):
        redundant = Join(
            [Projection("A B", BASE), Projection("B C", BASE), Projection("A B", BASE)]
        )
        tableau = tableau_of_expression(redundant)
        minimized = minimize_tableau(tableau)
        assert len(minimized.rows) == 2

    def test_minimal_tableau_unchanged(self):
        lean = Join([Projection("A B", BASE), Projection("B C", BASE)])
        tableau = tableau_of_expression(lean)
        assert len(minimize_tableau(tableau).rows) == 2

    def test_minimization_preserves_semantics(self):
        redundant = Join(
            [Projection("A B", BASE), Projection("B C", BASE), Projection("A B", BASE)]
        )
        tableau = tableau_of_expression(redundant)
        minimized = minimize_tableau(tableau)
        for seed in range(4):
            relation, _ = random_instance(num_attributes=3, seed=300 + seed)
            relation = relation.rename(
                {name: new for name, new in zip(relation.scheme.names, ["A", "B", "C"])}
            )
            assert tableau.evaluate({"R": relation}) == minimized.evaluate({"R": relation})
