"""Estimate-quality coverage for the statistics catalog (``engine/stats``).

Two kinds of pinning:

* **Spill estimates** — :func:`estimate_partition_count` /
  :func:`estimate_spill_depth` drive the Grace-hash fan-out; their
  arithmetic contract is pinned directly.

* **Join-ordering quality on the R_G family** — the planner orders n-ary
  joins greedily by :func:`estimate_join_cardinality` (exponential-backoff
  selectivities).  The ground truth to compare against is the *actual-size
  greedy* ordering: at every step pick the operand whose real (streamed,
  capped) join cardinality with the accumulated chain is smallest.

  Measured on the family (2026-07, seed 13): the estimate-driven ordering
  is *not* step-wise actually-optimal at any m — real sizes and backoff
  estimates disagree from m=4 on — but its damage is bounded: the peak
  intermediate along the estimate-driven chain stays within 3.5x of the
  actual-greedy chain's peak through m=12 (ratios 1.00, 1.00, 1.21, 3.07,
  1.56 for m = 4, 6, 8, 10, 12), while the naive evaluation's peak is
  orders of magnitude above both.  That bounded-degradation property is
  what the tests below assert.

  The ROADMAP's m~14 follow-up landed as ``repro.engine.sampling``:
  under ``EngineEvaluator(adaptive=True)`` the planner costs the greedy
  ordering against reservoir samples (sample-join estimates, no
  independence assumption), and the m=14 instance — formerly an xfail
  documenting the backoff estimator's step-wise divergence — now holds the
  same ≤3.5× peak bound the backoff estimator only manages through m=12
  (measured ratio: 1.00).
"""

import pytest

from repro.engine import (
    EngineEvaluator,
    estimate_partition_count,
    estimate_spill_depth,
)
from repro.expressions import Projection
from repro.reductions import RGConstruction
from repro.workloads import (
    actual_greedy_order,
    chain_peak,
    growing_construction_family,
    join_parts,
    planner_join_order,
)

#: Peak-degradation bound measured through m=12 (worst observed: 3.07 at
#: m=10); a regression in the backoff estimator shows up as a blown ratio.
MAX_PEAK_RATIO = 3.5


class TestSpillEstimates:
    def test_no_partitions_needed_when_build_fits_half_budget(self):
        assert estimate_partition_count(100, 256) == 1
        assert estimate_spill_depth(100, 256, 8) == 0

    def test_power_of_two_fanout_scales_with_build_size(self):
        # Target is half the budget: 1000 rows / (256/2) -> 8 partitions.
        assert estimate_partition_count(1_000, 256) == 8
        assert estimate_partition_count(2_000, 256) == 16
        assert estimate_partition_count(129, 256) == 2

    def test_fanout_is_clamped_to_the_cap(self):
        assert estimate_partition_count(10**9, 16, cap=64) == 64
        assert estimate_partition_count(10**9, 0) == 64

    def test_depth_counts_levels_until_partitions_fit(self):
        # 10_000 rows, budget 256 (target 128), fanout 8: 10_000 -> 1_250
        # -> 156 -> 19.5: three levels.
        assert estimate_spill_depth(10_000, 256, 8) == 3
        assert estimate_spill_depth(10_000, 256, 2) == 7

    def test_planner_records_fanout_on_grace_nodes(self):
        from repro.engine import MemoryBudget, RelationStats, plan_expression
        from repro.expressions.ast import Operand

        stats = {
            "R": RelationStats.assumed(("A", "B"), 10_000),
            "S": RelationStats.assumed(("B", "C"), 10_000),
        }
        query = Operand("R", "A B").join(Operand("S", "B C"))
        plan = plan_expression(
            query, stats, config=None
        )
        assert "grace" not in plan.explain()
        from repro.engine import PlannerConfig

        budgeted = plan_expression(
            query, stats, PlannerConfig(budget=MemoryBudget(rows=64))
        )
        text = budgeted.explain()
        assert "grace hash join" in text and "budget=64" in text
        assert "est_partitions=" in text


# -- R_G ordering quality ----------------------------------------------
# The oracle and plan-reading helpers live in repro.workloads.ordering,
# shared with the BENCH_algebra.json `adaptive` gate so the CI benchmark
# and this tier-1 test can never assert against diverging oracles.


def _family_instance(m):
    case = [c for c in growing_construction_family(clause_counts=(m,))][0]
    construction = RGConstruction(case.formula)
    query = Projection([construction.s_attribute], construction.expression)
    return query, construction.relation


@pytest.mark.parametrize("m", [4, 6, 8, 10, 12])
def test_estimate_ordering_peak_tracks_actual_size_ordering(m):
    """Through m=12 the estimate-driven ordering's peak intermediate stays
    within :data:`MAX_PEAK_RATIO` of the actual-size greedy ordering's."""
    query, relation = _family_instance(m)
    part_relations = join_parts(query, relation)
    sequence = planner_join_order(query, relation, part_relations)
    assert sorted(sequence) == list(range(len(part_relations)))
    estimate_peak = chain_peak(part_relations, sequence)
    actual_peak = chain_peak(part_relations, actual_greedy_order(part_relations))
    assert actual_peak > 0
    assert estimate_peak <= MAX_PEAK_RATIO * actual_peak, (
        f"m={m}: estimate-ordered peak {estimate_peak} vs "
        f"actual-greedy peak {actual_peak}"
    )


def test_sampled_ordering_peak_tracks_actual_at_m14():
    """The formerly-xfailed m=14 instance, under ``adaptive=True``.

    The backoff estimator's greedy ordering diverges step-wise from the
    actual-size greedy ordering at m≈14 (this test pinned that divergence
    as an xfail through PR 4).  With sampling-based estimation the planner
    scores candidate joins by joining reservoir samples — the R_G parts fit
    inside the default sample size, so pairwise estimates are exact and
    chain-extension estimates are measured on propagated (capped) samples —
    and the greedy-with-sampling ordering's peak intermediate holds the
    same :data:`MAX_PEAK_RATIO` bound the unsampled estimator only manages
    through m=12 (measured ratio at m=14: 1.00).
    """
    query, relation = _family_instance(14)
    part_relations = join_parts(query, relation)
    sequence = planner_join_order(
        query, relation, part_relations, evaluator=EngineEvaluator(adaptive=True)
    )
    assert sorted(sequence) == list(range(len(part_relations)))
    sampled_peak = chain_peak(part_relations, sequence)
    actual_peak = chain_peak(part_relations, actual_greedy_order(part_relations))
    assert actual_peak > 0
    assert sampled_peak <= MAX_PEAK_RATIO * actual_peak, (
        f"m=14: sampled-ordering peak {sampled_peak} vs "
        f"actual-greedy peak {actual_peak}"
    )
