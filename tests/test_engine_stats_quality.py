"""Estimate-quality coverage for the statistics catalog (``engine/stats``).

Two kinds of pinning:

* **Spill estimates** — :func:`estimate_partition_count` /
  :func:`estimate_spill_depth` drive the Grace-hash fan-out; their
  arithmetic contract is pinned directly.

* **Join-ordering quality on the R_G family** — the planner orders n-ary
  joins greedily by :func:`estimate_join_cardinality` (exponential-backoff
  selectivities).  The ground truth to compare against is the *actual-size
  greedy* ordering: at every step pick the operand whose real (streamed,
  capped) join cardinality with the accumulated chain is smallest.

  Measured on the family (2026-07, seed 13): the estimate-driven ordering
  is *not* step-wise actually-optimal at any m — real sizes and backoff
  estimates disagree from m=4 on — but its damage is bounded: the peak
  intermediate along the estimate-driven chain stays within 3.5x of the
  actual-greedy chain's peak through m=12 (ratios 1.00, 1.00, 1.21, 3.07,
  1.56 for m = 4, 6, 8, 10, 12), while the naive evaluation's peak is
  orders of magnitude above both.  That bounded-degradation property is
  what the tests below assert.

  The ROADMAP's m~14 follow-up (sampling-based / adaptive cardinality
  estimation) targets the stronger step-wise property; the xfail test
  documents exactly where today's estimator loses it.
"""

import itertools

import pytest

from repro.algebra.relation import _join_plan
from repro.engine import (
    EngineEvaluator,
    HashJoin,
    MemoryMeter,
    TableScan,
    estimate_partition_count,
    estimate_spill_depth,
)
from repro.expressions import Projection, evaluate
from repro.expressions.ast import Join
from repro.expressions.ast import Projection as ProjectionNode
from repro.reductions import RGConstruction
from repro.workloads import growing_construction_family

#: Streamed-count cap: candidate joins larger than this can never be the
#: greedy minimum on these instances, so counting is cut off there.
SIZE_CAP = 120_000

#: Peak-degradation bound measured through m=12 (worst observed: 3.07 at
#: m=10); a regression in the backoff estimator shows up as a blown ratio.
MAX_PEAK_RATIO = 3.5


class TestSpillEstimates:
    def test_no_partitions_needed_when_build_fits_half_budget(self):
        assert estimate_partition_count(100, 256) == 1
        assert estimate_spill_depth(100, 256, 8) == 0

    def test_power_of_two_fanout_scales_with_build_size(self):
        # Target is half the budget: 1000 rows / (256/2) -> 8 partitions.
        assert estimate_partition_count(1_000, 256) == 8
        assert estimate_partition_count(2_000, 256) == 16
        assert estimate_partition_count(129, 256) == 2

    def test_fanout_is_clamped_to_the_cap(self):
        assert estimate_partition_count(10**9, 16, cap=64) == 64
        assert estimate_partition_count(10**9, 0) == 64

    def test_depth_counts_levels_until_partitions_fit(self):
        # 10_000 rows, budget 256 (target 128), fanout 8: 10_000 -> 1_250
        # -> 156 -> 19.5: three levels.
        assert estimate_spill_depth(10_000, 256, 8) == 3
        assert estimate_spill_depth(10_000, 256, 2) == 7

    def test_planner_records_fanout_on_grace_nodes(self):
        from repro.engine import MemoryBudget, RelationStats, plan_expression
        from repro.expressions.ast import Operand

        stats = {
            "R": RelationStats.assumed(("A", "B"), 10_000),
            "S": RelationStats.assumed(("B", "C"), 10_000),
        }
        query = Operand("R", "A B").join(Operand("S", "B C"))
        plan = plan_expression(
            query, stats, config=None
        )
        assert "grace" not in plan.explain()
        from repro.engine import PlannerConfig

        budgeted = plan_expression(
            query, stats, PlannerConfig(budget=MemoryBudget(rows=64))
        )
        text = budgeted.explain()
        assert "grace hash join" in text and "budget=64" in text
        assert "est_partitions=" in text


# -- R_G ordering quality ----------------------------------------------


def _capped_join_size(left, right, cap=SIZE_CAP):
    """The real join cardinality, streamed (never materialised), capped."""
    meter = MemoryMeter()
    operator = HashJoin(
        TableScan(left, meter),
        TableScan(right, meter),
        _join_plan(left.scheme, right.scheme),
        meter,
        build_side="left" if len(left) <= len(right) else "right",
    )
    count = 0
    generator = operator.blocks()
    for block in generator:
        count += len(block)
        if count >= cap:
            generator.close()
            return cap
    return count


def _family_instance(m):
    case = [c for c in growing_construction_family(clause_counts=(m,))][0]
    construction = RGConstruction(case.formula)
    query = Projection([construction.s_attribute], construction.expression)
    return query, construction.relation


def _join_parts(query, relation):
    node = query
    while isinstance(node, ProjectionNode):
        node = node.child
    assert isinstance(node, Join)
    return [
        evaluate(part, {name: relation for name in part.operand_names()})
        for part in node.parts
    ]


def _planner_sequence(query, relation, part_relations):
    """The planner's greedy join order, read off the pinned plan's chain."""
    evaluator = EngineEvaluator()
    bound = {name: relation for name in query.operand_names()}
    plan = evaluator.plan_for(query, bound)
    node = plan.root
    while node.kind == "project":
        node = node.children[0]
    by_scheme = {
        tuple(sorted(rel.scheme.names)): index
        for index, rel in enumerate(part_relations)
    }

    def descend(chain_node):
        if chain_node.kind != "hash-join":
            return [chain_node]
        probe_index = chain_node.probe_child_index()
        probe = chain_node.children[probe_index]
        build = chain_node.children[1 - probe_index]
        return descend(probe) + [build]

    return [by_scheme[tuple(sorted(n.scheme.names))] for n in descend(node)]


def _chain_peak(part_relations, order):
    accumulated = part_relations[order[0]].natural_join(part_relations[order[1]])
    peak = len(accumulated)
    for index in order[2:]:
        accumulated = accumulated.natural_join(part_relations[index])
        peak = max(peak, len(accumulated))
    return peak


def _actual_greedy_order(part_relations):
    """Greedy ordering by *actual* (streamed, capped) join cardinalities."""
    count = len(part_relations)
    best, best_pair = None, None
    for i, j in itertools.combinations(range(count), 2):
        size = _capped_join_size(part_relations[i], part_relations[j])
        if best is None or size < best:
            best, best_pair = size, (i, j)
    order = list(best_pair)
    accumulated = part_relations[best_pair[0]].natural_join(part_relations[best_pair[1]])
    remaining = [i for i in range(count) if i not in best_pair]
    while remaining:
        sizes = {
            i: _capped_join_size(accumulated, part_relations[i]) for i in remaining
        }
        nxt = min(sizes, key=sizes.get)
        order.append(nxt)
        accumulated = accumulated.natural_join(part_relations[nxt])
        remaining.remove(nxt)
    return order


@pytest.mark.parametrize("m", [4, 6, 8, 10, 12])
def test_estimate_ordering_peak_tracks_actual_size_ordering(m):
    """Through m=12 the estimate-driven ordering's peak intermediate stays
    within :data:`MAX_PEAK_RATIO` of the actual-size greedy ordering's."""
    query, relation = _family_instance(m)
    part_relations = _join_parts(query, relation)
    sequence = _planner_sequence(query, relation, part_relations)
    assert sorted(sequence) == list(range(len(part_relations)))
    estimate_peak = _chain_peak(part_relations, sequence)
    actual_peak = _chain_peak(part_relations, _actual_greedy_order(part_relations))
    assert actual_peak > 0
    assert estimate_peak <= MAX_PEAK_RATIO * actual_peak, (
        f"m={m}: estimate-ordered peak {estimate_peak} vs "
        f"actual-greedy peak {actual_peak}"
    )


@pytest.mark.xfail(
    reason=(
        "ROADMAP m~14 follow-up: the backoff estimator's greedy ordering is "
        "not step-wise actual-size optimal — sampling-based or adaptive "
        "(re-plan mid-stream) cardinality estimation is queued to close this"
    ),
    strict=False,
)
def test_estimate_ordering_is_stepwise_actual_optimal_at_m14():
    """The stronger ideal the adaptive-estimation follow-up targets: every
    greedy step picks an operand whose *actual* join size is the minimum
    (ties allowed).  Documents the known m~14 divergence; the comparison
    stops at the first divergent step, so the xfail stays cheap."""
    query, relation = _family_instance(14)
    part_relations = _join_parts(query, relation)
    sequence = _planner_sequence(query, relation, part_relations)

    chosen_pair_size = _capped_join_size(
        part_relations[sequence[0]], part_relations[sequence[1]]
    )
    best_pair_size = min(
        _capped_join_size(part_relations[i], part_relations[j])
        for i, j in itertools.combinations(range(len(part_relations)), 2)
    )
    assert chosen_pair_size <= best_pair_size, (
        f"first pair: chosen actual size {chosen_pair_size} vs "
        f"best actual size {best_pair_size}"
    )
    accumulated = part_relations[sequence[0]].natural_join(part_relations[sequence[1]])
    remaining = [i for i in range(len(part_relations)) if i not in sequence[:2]]
    for nxt in sequence[2:]:
        sizes = {
            i: _capped_join_size(accumulated, part_relations[i]) for i in remaining
        }
        assert sizes[nxt] <= min(sizes.values()), (
            f"step chose actual size {sizes[nxt]} vs minimum {min(sizes.values())}"
        )
        accumulated = accumulated.natural_join(part_relations[nxt])
        remaining.remove(nxt)
