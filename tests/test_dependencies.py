"""Tests for functional / join dependencies and the chase."""

import pytest

from repro.algebra import (
    FunctionalDependency,
    JoinDependency,
    Relation,
    chase_lossless_join,
    closure,
    implies_fd,
    project_join_satisfies,
)


FD = FunctionalDependency.of


class TestFunctionalDependency:
    def test_holds_in_satisfying_instance(self):
        relation = Relation.from_rows("A B C", [(1, 2, 3), (1, 2, 4), (2, 5, 6)])
        assert FD("A", "B").holds_in(relation)

    def test_violated_in_conflicting_instance(self):
        relation = Relation.from_rows("A B C", [(1, 2, 3), (1, 9, 4)])
        assert not FD("A", "B").holds_in(relation)

    def test_composite_determinant(self):
        relation = Relation.from_rows("A B C", [(1, 2, 3), (1, 5, 4)])
        assert FD("A B", "C").holds_in(relation)
        assert not FD("A", "C").holds_in(relation)

    def test_trivial_dependency_always_holds(self):
        relation = Relation.from_rows("A B", [(1, 2), (1, 3)])
        assert FD("A B", "A").holds_in(relation)

    def test_attributes_and_str(self):
        dependency = FD("A B", "C")
        assert dependency.attributes() == frozenset({"A", "B", "C"})
        assert "->" in str(dependency)


class TestClosureAndImplication:
    def test_closure_reaches_transitively(self):
        dependencies = [FD("A", "B"), FD("B", "C")]
        assert closure("A", dependencies) == frozenset({"A", "B", "C"})

    def test_closure_respects_composite_determinants(self):
        dependencies = [FD("A B", "C")]
        assert closure("A", dependencies) == frozenset({"A"})
        assert closure("A B", dependencies) == frozenset({"A", "B", "C"})

    def test_implies_fd(self):
        dependencies = [FD("A", "B"), FD("B", "C")]
        assert implies_fd(dependencies, FD("A", "C"))
        assert not implies_fd(dependencies, FD("C", "A"))

    def test_reflexive_fd_always_implied(self):
        assert implies_fd([], FD("A B", "A"))


class TestJoinDependency:
    def test_satisfied_on_lossless_instance(self):
        relation = Relation.from_rows("A B C", [(1, 2, 3), (4, 2, 3)])
        assert JoinDependency.of("A B", "B C").holds_in(relation)
        assert project_join_satisfies(relation, ["A B", "B C"])

    def test_violated_on_lossy_instance(self):
        relation = Relation.from_rows("A B C", [(1, 2, 3), (4, 2, 5)])
        assert not JoinDependency.of("A B", "B C").holds_in(relation)

    def test_components_must_cover_scheme(self):
        relation = Relation.from_rows("A B C", [(1, 2, 3)])
        assert not JoinDependency.of("A B").holds_in(relation)

    def test_scheme_and_str(self):
        dependency = JoinDependency.of("A B", "B C")
        assert set(dependency.scheme().names) == {"A", "B", "C"}
        assert str(dependency).startswith("*[")

    def test_matches_paper_fixpoint_semantics(self):
        # On the R_G construction the join dependency over the projection
        # schemes holds exactly when the formula is unsatisfiable.
        from repro.reductions import RGConstruction
        from repro.sat import forced_unsatisfiable, paper_example_formula

        satisfiable = RGConstruction(paper_example_formula())
        unsatisfiable = RGConstruction(forced_unsatisfiable(3))
        assert not JoinDependency.of(*satisfiable.projection_schemes()).holds_in(
            satisfiable.relation
        )
        assert JoinDependency.of(*unsatisfiable.projection_schemes()).holds_in(
            unsatisfiable.relation
        )


class TestChase:
    def test_classic_lossless_decomposition(self):
        # R(A, B, C) with A -> B decomposed into (A B) and (A C) is lossless.
        assert chase_lossless_join("A B C", ["A B", "A C"], [FD("A", "B")])

    def test_lossy_without_dependencies(self):
        assert not chase_lossless_join("A B C", ["A B", "B C"], [])

    def test_becomes_lossless_with_key_dependency(self):
        # With B -> C, the decomposition (A B), (B C) is lossless.
        assert chase_lossless_join("A B C", ["A B", "B C"], [FD("B", "C")])

    def test_component_covering_scheme_is_trivially_lossless(self):
        assert chase_lossless_join("A B C", ["A B C", "A B"], [])

    def test_chain_of_dependencies(self):
        # R(A,B,C,D): A->B, B->C, C->D; decomposition (A B), (B C), (C D).
        dependencies = [FD("A", "B"), FD("B", "C"), FD("C", "D")]
        assert chase_lossless_join("A B C D", ["A B", "B C", "C D"], dependencies)

    def test_chase_soundness_against_instances(self):
        # If the chase certifies losslessness under the FDs, then every
        # instance satisfying the FDs satisfies the join dependency.
        dependencies = [FD("B", "C")]
        components = ["A B", "B C"]
        relation = Relation.from_rows("A B C", [(1, 2, 3), (4, 2, 3), (5, 6, 7)])
        assert all(dep.holds_in(relation) for dep in dependencies)
        assert chase_lossless_join("A B C", components, dependencies)
        assert project_join_satisfies(relation, components)
