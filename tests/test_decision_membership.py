"""Tests for the membership deciders (evaluation, certificate, SAT-backed)."""

import pytest

from repro.algebra import Relation, RelationTuple
from repro.decision import (
    CertificateMembershipDecider,
    SatBackedMembershipDecider,
    tuple_in_result,
)
from repro.expressions import Join, Operand, Projection, evaluate
from repro.workloads import random_instance

R = Relation.from_rows("A B C", [(1, 2, 3), (1, 2, 4), (2, 5, 3)], name="R")
BASE = Operand("R", "A B C")
QUERY = Projection("A C", Join([Projection("A B", BASE), Projection("B C", BASE)]))


def members_and_non_members(query, relation):
    result = evaluate(query, relation)
    members = list(result)[:3]
    scheme = query.target_scheme()
    non_member = RelationTuple(scheme, {name: "zz" for name in scheme.names})
    return members, non_member


class TestEvaluationDecider:
    def test_member_is_found(self):
        members, _ = members_and_non_members(QUERY, R)
        for member in members:
            assert tuple_in_result(member, QUERY, R)

    def test_non_member_is_rejected(self):
        _, non_member = members_and_non_members(QUERY, R)
        assert not tuple_in_result(non_member, QUERY, R)


class TestCertificateDecider:
    def test_witness_found_for_every_member(self):
        decider = CertificateMembershipDecider()
        members, _ = members_and_non_members(QUERY, R)
        for member in members:
            witness = decider.decide(member, QUERY, R)
            assert witness is not None
            assert decider.verify(member, QUERY, R, witness)

    def test_no_witness_for_non_member(self):
        _, non_member = members_and_non_members(QUERY, R)
        assert CertificateMembershipDecider().decide(non_member, QUERY, R) is None

    def test_witness_rows_come_from_the_relation(self):
        decider = CertificateMembershipDecider()
        members, _ = members_and_non_members(QUERY, R)
        witness = decider.decide(members[0], QUERY, R)
        for source in witness.row_sources:
            assert source in R

    def test_verify_rejects_tampered_witness(self):
        from repro.decision.membership import MembershipWitness

        decider = CertificateMembershipDecider()
        members, _ = members_and_non_members(QUERY, R)
        witness = decider.decide(members[0], QUERY, R)
        fake_source = RelationTuple(R.scheme, {"A": 9, "B": 9, "C": 9})
        tampered = MembershipWitness(
            valuation=witness.valuation,
            row_sources=(fake_source,) * len(witness.row_sources),
        )
        assert not decider.verify(members[0], QUERY, R, tampered)

    def test_verify_rejects_wrong_length_witness(self):
        from repro.decision.membership import MembershipWitness

        decider = CertificateMembershipDecider()
        members, _ = members_and_non_members(QUERY, R)
        witness = decider.decide(members[0], QUERY, R)
        short = MembershipWitness(valuation=witness.valuation, row_sources=())
        assert not decider.verify(members[0], QUERY, R, short)

    def test_agreement_with_evaluation_on_random_instances(self):
        decider = CertificateMembershipDecider()
        for seed in range(5):
            relation, query = random_instance(seed=400 + seed, num_tuples=8)
            result = evaluate(query, relation)
            scheme = query.target_scheme()
            # Check every produced tuple plus one synthetic outsider.
            for tup in list(result)[:5]:
                assert decider.decide(tup, query, relation) is not None
            outsider = RelationTuple(scheme, {name: "none" for name in scheme.names})
            assert (outsider in result) == (
                decider.decide(outsider, query, relation) is not None
            )


class TestSatBackedDecider:
    def test_members_are_satisfiable_encodings(self):
        decider = SatBackedMembershipDecider()
        members, non_member = members_and_non_members(QUERY, R)
        for member in members:
            assert decider.decide(member, QUERY, R)
        assert not decider.decide(non_member, QUERY, R)

    def test_agreement_with_evaluation_on_random_instances(self):
        decider = SatBackedMembershipDecider()
        for seed in range(4):
            relation, query = random_instance(seed=500 + seed, num_tuples=6)
            result = evaluate(query, relation)
            scheme = query.target_scheme()
            candidates = list(result)[:3]
            candidates.append(
                RelationTuple(scheme, {name: "outside" for name in scheme.names})
            )
            for candidate in candidates:
                assert decider.decide(candidate, query, relation) == (
                    candidate in result
                )

    def test_encoding_of_impossible_candidate_is_unsatisfiable_formula(self):
        from repro.sat import is_satisfiable

        decider = SatBackedMembershipDecider()
        _, non_member = members_and_non_members(QUERY, R)
        formula = decider.encode(non_member, QUERY, R)
        assert not is_satisfiable(formula)

    def test_paper_reduction_round_trip(self):
        # 3SAT -> membership -> SAT: the composition must agree with DPLL.
        from repro.reductions import MembershipReduction
        from repro.sat import is_satisfiable, paper_example_formula, forced_unsatisfiable

        decider = SatBackedMembershipDecider()
        for formula in (paper_example_formula(), forced_unsatisfiable(3)):
            reduction = MembershipReduction(formula)
            instance = reduction.instance()
            answer = decider.decide(
                instance.tuple, reduction.expression(), instance.relation
            )
            assert answer == is_satisfiable(formula)
