"""Unit tests for repro.algebra.schema."""

import pytest

from repro.algebra import (
    Attribute,
    DatabaseScheme,
    RelationScheme,
    SchemeError,
    as_scheme,
)


class TestRelationSchemeConstruction:
    def test_of_builds_ordered_scheme(self):
        scheme = RelationScheme.of("A", "B", "C")
        assert scheme.names == ("A", "B", "C")

    def test_from_string_whitespace(self):
        assert RelationScheme.from_string("A B C").names == ("A", "B", "C")

    def test_from_string_commas(self):
        assert RelationScheme.from_string("A, B, C").names == ("A", "B", "C")

    def test_from_string_custom_separator(self):
        assert RelationScheme.from_string("A;B;C", separator=";").names == ("A", "B", "C")

    def test_from_string_empty_rejected(self):
        with pytest.raises(SchemeError):
            RelationScheme.from_string("   ")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemeError):
            RelationScheme.of("A", "B", "A")

    def test_accepts_attribute_objects(self):
        scheme = RelationScheme([Attribute("A"), "B"])
        assert scheme.names == ("A", "B")


class TestRelationSchemeSetSemantics:
    def test_equality_ignores_order(self):
        assert RelationScheme.of("A", "B") == RelationScheme.of("B", "A")

    def test_hash_ignores_order(self):
        assert hash(RelationScheme.of("A", "B")) == hash(RelationScheme.of("B", "A"))

    def test_len_and_iteration(self):
        scheme = RelationScheme.of("A", "B", "C")
        assert len(scheme) == 3
        assert [a.name for a in scheme] == ["A", "B", "C"]

    def test_contains_string_and_attribute(self):
        scheme = RelationScheme.of("A", "B")
        assert "A" in scheme
        assert Attribute("B") in scheme
        assert "C" not in scheme

    def test_attribute_lookup(self):
        scheme = RelationScheme.of("A", "B")
        assert scheme.attribute("A").name == "A"
        with pytest.raises(SchemeError):
            scheme.attribute("Z")


class TestRelationSchemeAlgebra:
    def test_union_preserves_left_order(self):
        union = RelationScheme.of("A", "B").union(RelationScheme.of("B", "C"))
        assert union.names == ("A", "B", "C")

    def test_intersection(self):
        left = RelationScheme.of("A", "B", "C")
        assert left.intersection(RelationScheme.of("B", "C", "D")).names == ("B", "C")

    def test_difference(self):
        left = RelationScheme.of("A", "B", "C")
        assert left.difference(RelationScheme.of("B")).names == ("A", "C")

    def test_is_subscheme_of(self):
        assert RelationScheme.of("A").is_subscheme_of(RelationScheme.of("A", "B"))
        assert not RelationScheme.of("A", "Z").is_subscheme_of(RelationScheme.of("A", "B"))

    def test_restrict_keeps_requested_order(self):
        scheme = RelationScheme.of("A", "B", "C")
        assert scheme.restrict(["C", "A"]).names == ("C", "A")

    def test_restrict_missing_attribute_rejected(self):
        with pytest.raises(SchemeError):
            RelationScheme.of("A").restrict(["B"])

    def test_renamed(self):
        scheme = RelationScheme.of("A", "B").renamed({"A": "Z"})
        assert scheme.names == ("Z", "B")

    def test_renamed_missing_source_rejected(self):
        with pytest.raises(SchemeError):
            RelationScheme.of("A").renamed({"Q": "Z"})

    def test_is_disjoint_from(self):
        assert RelationScheme.of("A").is_disjoint_from(RelationScheme.of("B"))
        assert not RelationScheme.of("A", "B").is_disjoint_from(RelationScheme.of("B"))

    def test_as_scheme_coercions(self):
        scheme = RelationScheme.of("A", "B")
        assert as_scheme(scheme) is scheme
        assert as_scheme("A B") == scheme
        assert as_scheme(["A", "B"]) == scheme


class TestDatabaseScheme:
    def test_lookup_and_len(self):
        database_scheme = DatabaseScheme({"R": "A B", "S": "B C"})
        assert len(database_scheme) == 2
        assert database_scheme.scheme_of("R") == RelationScheme.of("A", "B")

    def test_missing_relation_rejected(self):
        with pytest.raises(SchemeError):
            DatabaseScheme({"R": "A B"}).scheme_of("T")

    def test_contains_and_names(self):
        database_scheme = DatabaseScheme({"R": "A B", "S": "B C"})
        assert "R" in database_scheme
        assert database_scheme.relation_names == ("R", "S")

    def test_all_attributes_union(self):
        database_scheme = DatabaseScheme({"R": "A B", "S": "B C"})
        assert database_scheme.all_attributes() == RelationScheme.of("A", "B", "C")

    def test_equality(self):
        assert DatabaseScheme({"R": "A B"}) == DatabaseScheme({"R": "B A"})
