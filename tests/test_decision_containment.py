"""Tests for the containment/equivalence decider (fixed relation or fixed query)."""

import pytest

from repro.algebra import Relation
from repro.decision import ContainmentDecider, contained_over_all_databases
from repro.expressions import Join, Operand, Projection, evaluate

R = Relation.from_rows("A B C", [(1, 2, 3), (1, 2, 4), (2, 5, 3)], name="R")
BASE = Operand("R", "A B C")
TIGHT = Projection("A C", BASE)
LOOSE = Projection("A C", Join([Projection("A B", BASE), Projection("B C", BASE)]))
DECIDER = ContainmentDecider()


class TestCompareQueries:
    def test_containment_on_fixed_database(self):
        verdict = DECIDER.compare_queries(TIGHT, LOOSE, R)
        assert verdict.left_in_right
        assert verdict.left_only_witness is None
        assert verdict.left_cardinality == len(evaluate(TIGHT, R))
        assert verdict.right_cardinality == len(evaluate(LOOSE, R))

    def test_non_containment_reports_witness(self):
        verdict = DECIDER.compare_queries(LOOSE, TIGHT, R)
        if verdict.left_in_right:
            pytest.skip("chosen data happens to make the queries equal")
        assert verdict.left_only_witness is not None
        left = evaluate(LOOSE, R)
        right = evaluate(TIGHT, R)
        assert verdict.left_only_witness in left
        assert verdict.left_only_witness not in right

    def test_equivalence_of_identical_queries(self):
        verdict = DECIDER.compare_queries(TIGHT, TIGHT, R)
        assert verdict.equivalent

    def test_different_target_schemes_are_never_comparable(self):
        other = Projection("A B", BASE)
        verdict = DECIDER.compare_queries(TIGHT, other, R)
        assert not verdict.left_in_right and not verdict.right_in_left

    def test_two_databases_for_two_queries(self):
        # The general form phi1(R1) vs phi2(R2) from the introduction.
        smaller = Relation.from_rows("A B C", [(1, 2, 3)])
        verdict = DECIDER.compare_queries(TIGHT, TIGHT, smaller, second_arguments=R)
        assert verdict.left_in_right
        assert not verdict.right_in_left

    def test_convenience_wrappers(self):
        assert DECIDER.contained(TIGHT, LOOSE, R)
        assert DECIDER.equivalent(TIGHT, TIGHT, R)


class TestCompareDatabases:
    def test_monotonicity_of_project_join_queries(self):
        smaller = Relation.from_rows("A B C", [(1, 2, 3)])
        verdict = DECIDER.compare_databases(LOOSE, smaller, R)
        assert verdict.left_in_right
        assert not verdict.equivalent

    def test_equal_databases_give_equivalence(self):
        verdict = DECIDER.compare_databases(LOOSE, R, R)
        assert verdict.equivalent

    def test_witness_for_database_difference(self):
        extended = R.insert((9, 9, 9))
        verdict = DECIDER.compare_databases(LOOSE, extended, R)
        assert not verdict.left_in_right
        assert verdict.left_only_witness is not None


class TestChandraMerlinContrast:
    def test_general_containment_implies_fixed_database_containment(self):
        assert contained_over_all_databases(TIGHT, LOOSE)
        assert DECIDER.contained(TIGHT, LOOSE, R)

    def test_fixed_database_containment_does_not_imply_general(self):
        empty = Relation.empty(R.scheme)
        assert DECIDER.contained(LOOSE, TIGHT, empty)
        assert not contained_over_all_databases(LOOSE, TIGHT)
