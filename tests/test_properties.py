"""Property-based tests (hypothesis) for the core data structures and invariants.

These cover the algebraic identities the rest of the reproduction leans on:
projection/join laws, evaluator agreement (naive vs optimised vs tableau),
Lemma 1 as a property of random 3CNF formulas, and the Theorem 3 counting
identity against the independent SAT-side counters.
"""

from typing import List

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import Relation, RelationScheme, project_join
from repro.expressions import Join, Operand, Projection, evaluate
from repro.expressions.optimizer import OptimizedEvaluator, push_down_projections
from repro.sat import (
    Assignment,
    CNFFormula,
    Clause,
    Literal,
    count_models,
    count_models_bruteforce,
    is_satisfiable,
    to_strict_three_cnf,
)
from repro.tableaux import tableau_of_expression

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

ATTRIBUTES = ["A", "B", "C", "D"]

values = st.integers(min_value=0, max_value=3)


@st.composite
def relations(draw, attributes=tuple(ATTRIBUTES), max_tuples=8):
    """A small random relation over a fixed scheme."""
    scheme = RelationScheme(attributes)
    rows = draw(
        st.lists(
            st.tuples(*[values for _ in attributes]),
            min_size=0,
            max_size=max_tuples,
        )
    )
    return Relation.from_rows(scheme, rows)


@st.composite
def projection_schemes(draw, attributes=tuple(ATTRIBUTES)):
    subset = draw(
        st.lists(st.sampled_from(list(attributes)), min_size=1, max_size=len(attributes), unique=True)
    )
    return RelationScheme(subset)


@st.composite
def project_join_queries(draw, attributes=tuple(ATTRIBUTES)):
    base = Operand("R", RelationScheme(attributes))
    factor_count = draw(st.integers(min_value=1, max_value=3))
    factors = [Projection(draw(projection_schemes(attributes)), base) for _ in range(factor_count)]
    query = factors[0] if len(factors) == 1 else Join(factors)
    if draw(st.booleans()):
        target = query.target_scheme()
        keep = draw(
            st.lists(
                st.sampled_from(list(target.names)),
                min_size=1,
                max_size=len(target),
                unique=True,
            )
        )
        query = Projection(RelationScheme(keep), query)
    return query


@st.composite
def three_cnf_formulas(draw, variable_pool=("x1", "x2", "x3", "x4", "x5"), max_clauses=5):
    clause_count = draw(st.integers(min_value=3, max_value=max_clauses))
    clauses = []
    for _ in range(clause_count):
        chosen = draw(
            st.lists(
                st.sampled_from(list(variable_pool)), min_size=3, max_size=3, unique=True
            )
        )
        signs = draw(st.tuples(st.booleans(), st.booleans(), st.booleans()))
        clauses.append(Clause(Literal(v, s) for v, s in zip(chosen, signs)))
    return CNFFormula(clauses)


COMMON_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ---------------------------------------------------------------------------
# Relational algebra laws
# ---------------------------------------------------------------------------


class TestAlgebraProperties:
    @COMMON_SETTINGS
    @given(relations(), projection_schemes())
    def test_projection_is_idempotent(self, relation, scheme):
        once = relation.project(scheme)
        assert once.project(scheme) == once

    @COMMON_SETTINGS
    @given(relations(), projection_schemes(), projection_schemes())
    def test_nested_projection_collapses_to_intersection(self, relation, outer, inner):
        combined = inner.intersection(outer)
        if len(combined) == 0:
            return
        assert relation.project(outer).project(combined) == relation.project(combined)

    @COMMON_SETTINGS
    @given(relations(), relations())
    def test_join_is_commutative(self, left, right):
        assert left.natural_join(right) == right.natural_join(left)

    @COMMON_SETTINGS
    @given(relations(), relations(), relations())
    def test_join_is_associative(self, first, second, third):
        left_first = first.natural_join(second).natural_join(third)
        right_first = first.natural_join(second.natural_join(third))
        assert left_first == right_first

    @COMMON_SETTINGS
    @given(relations())
    def test_join_with_itself_is_identity(self, relation):
        assert relation.natural_join(relation) == relation

    @COMMON_SETTINGS
    @given(relations(), projection_schemes(), projection_schemes())
    def test_project_join_contains_original_when_schemes_cover(self, relation, first, second):
        union = first.union(second)
        if union != relation.scheme:
            return
        joined = project_join(relation, [first, second])
        assert relation.is_subset_of(joined)

    @COMMON_SETTINGS
    @given(relations(), relations())
    def test_join_tuples_restrict_into_operands(self, left, right):
        joined = left.natural_join(right)
        for tup in joined:
            assert tup.project(left.scheme) in left
            assert tup.project(right.scheme) in right


# ---------------------------------------------------------------------------
# Evaluator agreement
# ---------------------------------------------------------------------------


class TestEvaluatorProperties:
    @COMMON_SETTINGS
    @given(relations(), project_join_queries())
    def test_push_down_preserves_value(self, relation, query):
        rewritten = push_down_projections(query)
        assert evaluate(rewritten, relation) == evaluate(query, relation)

    @COMMON_SETTINGS
    @given(relations(), project_join_queries())
    def test_optimized_evaluator_matches_naive(self, relation, query):
        optimized, _ = OptimizedEvaluator().evaluate(query, relation)
        assert optimized == evaluate(query, relation)

    @COMMON_SETTINGS
    @given(relations(max_tuples=6), project_join_queries())
    def test_tableau_evaluation_matches_expression(self, relation, query):
        tableau = tableau_of_expression(query)
        assert tableau.evaluate({"R": relation}) == evaluate(query, relation)

    @COMMON_SETTINGS
    @given(relations(), project_join_queries())
    def test_result_scheme_is_target_scheme(self, relation, query):
        assert evaluate(query, relation).scheme == query.target_scheme()

    @COMMON_SETTINGS
    @given(relations(), relations(), project_join_queries())
    def test_monotonicity_of_project_join_queries(self, small, extra, query):
        large = small.union(extra)
        assert evaluate(query, small).is_subset_of(evaluate(query, large))


# ---------------------------------------------------------------------------
# SAT substrate invariants
# ---------------------------------------------------------------------------


class TestSatProperties:
    @COMMON_SETTINGS
    @given(three_cnf_formulas())
    def test_dpll_agrees_with_bruteforce(self, formula):
        assert is_satisfiable(formula) == (count_models_bruteforce(formula) > 0)

    @COMMON_SETTINGS
    @given(three_cnf_formulas())
    def test_counting_dpll_agrees_with_bruteforce(self, formula):
        assert count_models(formula) == count_models_bruteforce(formula)

    @COMMON_SETTINGS
    @given(three_cnf_formulas())
    def test_strict_three_cnf_conversion_is_identity_on_strict_input(self, formula):
        assert to_strict_three_cnf(formula) == formula

    @COMMON_SETTINGS
    @given(st.lists(st.tuples(st.sampled_from(["p", "q", "r", "s"]), st.booleans()), min_size=1, max_size=4))
    def test_clause_satisfying_assignments_are_exactly_the_models(self, raw_literals):
        clause = Clause(Literal(v, s) for v, s in raw_literals)
        if not clause.has_distinct_variables():
            return
        satisfying = clause.satisfying_assignments()
        assert len(satisfying) == 2 ** len(clause.variable_tuple()) - 1
        for assignment in satisfying:
            assert clause.evaluate(assignment)


# ---------------------------------------------------------------------------
# Paper-level invariants (Lemma 1 and Theorem 3 as properties)
# ---------------------------------------------------------------------------


class TestConstructionProperties:
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(three_cnf_formulas(max_clauses=4))
    def test_lemma1_holds_for_random_formulas(self, formula):
        from repro.reductions import RGConstruction

        construction = RGConstruction(formula)
        result = evaluate(construction.expression, construction.relation)
        assert result == construction.expected_result()

    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(three_cnf_formulas(max_clauses=4))
    def test_theorem3_identity_holds_for_random_formulas(self, formula):
        from repro.reductions import Theorem3Reduction

        reduction = Theorem3Reduction(formula)
        instance = reduction.instance()
        tuple_count = len(evaluate(instance.expression, instance.relation))
        assert reduction.models_from_tuple_count(tuple_count) == count_models(
            reduction.construction.formula
        )

    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(three_cnf_formulas(max_clauses=4))
    def test_proposition1_membership_iff_satisfiable(self, formula):
        from repro.reductions import MembershipReduction
        from repro.decision import tuple_in_result

        reduction = MembershipReduction(formula)
        instance = reduction.instance()
        member = tuple_in_result(instance.tuple, reduction.expression(), instance.relation)
        assert member == is_satisfiable(reduction.construction.formula)
