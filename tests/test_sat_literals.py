"""Unit tests for literals and clauses."""

import pytest

from repro.sat import Clause, Literal


class TestLiteral:
    def test_negation(self):
        literal = Literal("x1")
        assert (-literal).positive is False
        assert -(-literal) == literal
        assert literal.negated() == -literal

    def test_empty_variable_rejected(self):
        with pytest.raises(ValueError):
            Literal("")

    def test_evaluate(self):
        assert Literal("x").evaluate({"x": True})
        assert not Literal("x", False).evaluate({"x": True})
        with pytest.raises(KeyError):
            Literal("x").evaluate({})

    def test_satisfied_by_partial(self):
        assert Literal("x").satisfied_by({}) is None
        assert Literal("x").satisfied_by({"x": True}) is True
        assert Literal("x", False).satisfied_by({"x": True}) is False

    def test_parse(self):
        assert Literal.parse("x1") == Literal("x1")
        assert Literal.parse("~x1") == Literal("x1", False)
        assert Literal.parse("-x1") == Literal("x1", False)
        assert Literal.parse("¬x1") == Literal("x1", False)
        with pytest.raises(ValueError):
            Literal.parse("  ")

    def test_str(self):
        assert str(Literal("x")) == "x"
        assert str(Literal("x", False)) == "~x"

    def test_ordering_is_stable(self):
        assert sorted([Literal("y"), Literal("x")])[0].variable == "x"


class TestClause:
    def test_of_and_parse(self):
        via_of = Clause.of("x1", "~x2", "x3")
        via_parse = Clause.parse("x1 | ~x2 | x3")
        assert via_of == via_parse

    def test_parse_alternative_separators(self):
        assert Clause.parse("x1 + ~x2 + x3") == Clause.of("x1", "~x2", "x3")
        assert Clause.parse("x1 v x2 v x3") == Clause.of("x1", "x2", "x3")

    def test_parse_empty_rejected(self):
        with pytest.raises(ValueError):
            Clause.parse("  ")

    def test_duplicate_literals_removed(self):
        clause = Clause.of("x1", "x1", "x2")
        assert len(clause) == 2

    def test_equality_ignores_order(self):
        assert Clause.of("x1", "x2") == Clause.of("x2", "x1")
        assert hash(Clause.of("x1", "x2")) == hash(Clause.of("x2", "x1"))

    def test_non_literal_rejected(self):
        with pytest.raises(TypeError):
            Clause(["x1"])

    def test_variables_and_variable_tuple(self):
        clause = Clause.of("x2", "~x1", "x3")
        assert clause.variables == frozenset({"x1", "x2", "x3"})
        assert clause.variable_tuple() == ("x2", "x1", "x3")

    def test_tautology_and_distinct_variables(self):
        assert Clause.of("x1", "~x1").is_tautological()
        assert not Clause.of("x1", "x2").is_tautological()
        assert Clause.of("x1", "x2", "x3").has_distinct_variables()
        assert not Clause.of("x1", "~x1", "x2").has_distinct_variables()

    def test_evaluate_and_status(self):
        clause = Clause.of("x1", "~x2")
        assert clause.evaluate({"x1": False, "x2": False})
        assert not clause.evaluate({"x1": False, "x2": True})
        assert clause.status({}) is None
        assert clause.status({"x1": True}) is True
        assert clause.status({"x1": False, "x2": True}) is False

    def test_seven_satisfying_assignments_for_three_distinct_variables(self):
        clause = Clause.of("x1", "~x2", "x3")
        satisfying = clause.satisfying_assignments()
        assert len(satisfying) == 7
        for assignment in satisfying:
            assert clause.evaluate(assignment)

    def test_falsifying_assignment_is_unique_complement(self):
        clause = Clause.of("x1", "~x2", "x3")
        falsifying = clause.falsifying_assignment()
        assert falsifying == {"x1": False, "x2": True, "x3": False}
        assert not clause.evaluate(falsifying)

    def test_falsifying_assignment_needs_distinct_variables(self):
        with pytest.raises(ValueError):
            Clause.of("x1", "~x1", "x2").falsifying_assignment()
