"""Differential fuzz harness: the engine pinned to the seed reference.

The spill and parallel paths introduce exactly the kind of machinery —
partition routing, re-salted recursion, worker merges — whose bugs hide in
degenerate inputs, so correctness is pinned the same way the positional
kernel's is: every randomly generated relation/expression pair is evaluated
by :class:`~repro.engine.evaluator.EngineEvaluator` under **every** (budget,
workers) combination in {unbudgeted, tiny} x {1, 4} and the result must be
set-equal to a recursive evaluation with the retained seed implementations
(:mod:`repro.algebra.reference`).

The generator deliberately over-samples the degenerate corners the issue
calls out: empty relations, single-row relations, single-attribute schemes,
and duplicate-heavy columns (domain {0, 1}) that make every hash bucket and
spill partition collide.  The tiny budget (4 rows, fan-out 2, recursion
allowed down to 2-row partitions) forces constant spilling and re-splitting
on even the smallest instances.

Every grid point additionally pins the complete memory model: zero
``spill_overflows`` (sort, dedup, checkpoints, and unsplittable join
partitions all spill or chunk within the budget) and zero leaked spill
files.  A *chaos axis* re-runs the cases under random
:class:`~repro.engine.faults.FaultPlan` schedules — injected spill I/O
failures and worker kills may cost an evaluation its answer (the typed
``EngineFaultError``) but never corrupt it.

Seeding: cases derive from ``--fuzz-seed`` (see ``tests/conftest.py``), so a
CI matrix leg can explore a different instance family per run — including
under ``PYTHONHASHSEED=random``, which perturbs partition routing — while
any failure stays replayable by rerunning with the printed seed.
"""

import random
import warnings

import pytest

from repro.algebra import (
    Relation,
    RelationScheme,
    naive_natural_join,
    naive_project,
)
from repro.api import BACKENDS, Session
from repro.engine import (
    EngineEvaluator,
    EngineFaultError,
    FaultPlan,
    MemoryBudget,
    default_backend,
)
from repro.expressions.ast import Expression, Join, Operand, Projection
from repro.perf import kernel_counters

ATTRIBUTE_POOL = tuple("ABCDEFGH")
TINY_BUDGET_ROWS = 4
FUZZ_CASES = 30

#: The (budget rows, workers) grid every case must survive.
CONFIG_GRID = ((None, 1), (None, 4), (TINY_BUDGET_ROWS, 1), (TINY_BUDGET_ROWS, 4))


def _reference_evaluate(node: Expression, bound):
    """Evaluate an expression with the retained seed implementations."""
    if isinstance(node, Operand):
        return bound[node.name]
    if isinstance(node, Projection):
        return naive_project(_reference_evaluate(node.child, bound), node.target)
    if isinstance(node, Join):
        parts = [_reference_evaluate(part, bound) for part in node.parts]
        result = parts[0]
        for part in parts[1:]:
            result = naive_natural_join(result, part)
        return result
    raise AssertionError(f"unknown node {node!r}")


def _random_relation(rng: random.Random, scheme: RelationScheme) -> Relation:
    """A relation over ``scheme`` biased towards the degenerate corners."""
    shape = rng.choices(
        ("empty", "single", "duplicate-heavy", "general"),
        weights=(15, 15, 40, 30),
    )[0]
    if shape == "empty":
        return Relation.empty(scheme)
    if shape == "single":
        row = tuple(rng.randint(0, 2) for _ in scheme.names)
        return Relation.from_rows(scheme, [row])
    if shape == "duplicate-heavy":
        # Domain {0, 1}: every column repeats constantly, every hash join
        # bucket and spill partition collides.
        count = rng.randint(2, 14)
        rows = [tuple(rng.randint(0, 1) for _ in scheme.names) for _ in range(count)]
        return Relation.from_rows(scheme, rows)
    count = rng.randint(1, 14)
    values = lambda: rng.choice((rng.randint(0, 4), rng.choice("xyz")))
    rows = [tuple(values() for _ in scheme.names) for _ in range(count)]
    return Relation.from_rows(scheme, rows)


def _random_case(rng: random.Random):
    """One (expression, bindings) pair with overlapping operand schemes."""
    num_operands = rng.randint(2, 4)
    used = []
    parts = []
    bindings = {}
    for index in range(num_operands):
        width = rng.choice((1, 1, 2, 3, 4))
        overlap = []
        if used and rng.random() < 0.85:
            overlap = rng.sample(used, min(len(used), rng.randint(1, min(width, 2))))
        fresh_pool = [name for name in ATTRIBUTE_POOL if name not in overlap]
        names = overlap + rng.sample(fresh_pool, max(width - len(overlap), 0))
        rng.shuffle(names)
        scheme = RelationScheme(tuple(names))
        for name in names:
            if name not in used:
                used.append(name)
        operand = Operand(f"R{index}", scheme)
        part: Expression = operand
        if rng.random() < 0.3:
            keep = rng.sample(list(scheme.names), rng.randint(1, len(scheme.names)))
            part = Projection(keep, operand)
        parts.append(part)
        bindings[operand.name] = _random_relation(rng, scheme)
    expression: Expression = parts[0] if len(parts) == 1 else Join(tuple(parts))
    if rng.random() < 0.7:
        target_names = expression.target_scheme().names
        keep = rng.sample(list(target_names), rng.randint(1, len(target_names)))
        expression = Projection(keep, expression)
    return expression, bindings


def _tiny_budget(spill_dir) -> MemoryBudget:
    """Four resident rows, 2-way fan-out, recursion down to 2-row partitions:
    constant spilling and re-splitting on even the smallest instances."""
    return MemoryBudget(
        rows=TINY_BUDGET_ROWS,
        spill_fanout=2,
        max_recursion=3,
        min_partition_rows=2,
        spill_dir=str(spill_dir),
    )


def _assert_engine_matches_reference(
    expression, bindings, reference, budget_rows, workers, backend, spill_dir, context
):
    budget = _tiny_budget(spill_dir) if budget_rows is not None else None
    evaluator = EngineEvaluator(
        budget=budget, workers=workers, parallel_backend=backend
    )
    before = kernel_counters().snapshot()
    result, trace = evaluator.evaluate(expression, bindings)
    detail = (
        f"{context} budget={budget_rows} workers={workers} backend={backend}\n"
        f"expression: {expression.to_text()}\n"
        f"bindings: { {name: len(rel) for name, rel in bindings.items()} }"
    )
    # The complete-memory-model contract: with sort, dedup, checkpoints, and
    # unsplittable join partitions all spilling (or chunking), no grid point
    # may overrun the budget — a nonzero overflow here is a regression.
    overflows = kernel_counters().delta_since(before)["spill_overflows"]
    assert overflows == 0, f"spill_overflows={overflows}\n{detail}"
    assert result.scheme.name_set == reference.scheme.name_set, detail
    realigned = (
        result
        if result.scheme.names == reference.scheme.names
        else result.project(reference.scheme.names)
    )
    assert realigned == reference, detail
    assert trace.result_cardinality == len(reference), detail
    leftovers = [str(path) for path in spill_dir.iterdir()]
    assert not leftovers, f"spill files leaked: {leftovers}\n{detail}"


def test_differential_fuzz_against_reference(fuzz_seed, tmp_path):
    """Every random case, on every (budget, workers) grid point, must be
    set-equal to the seed reference implementation."""
    rng = random.Random(fuzz_seed)
    for case_index in range(FUZZ_CASES):
        expression, bindings = _random_case(rng)
        reference = _reference_evaluate(expression, bindings)
        for budget_rows, workers in CONFIG_GRID:
            _assert_engine_matches_reference(
                expression,
                bindings,
                reference,
                budget_rows,
                workers,
                "thread",
                tmp_path,
                context=f"seed={fuzz_seed} case={case_index}",
            )


def test_differential_fuzz_fork_backend(fuzz_seed, tmp_path):
    """A smaller sweep through the fork (multi-process) pool: worker results
    cross a pickle boundary and budgets apply per process, so the merge path
    is genuinely different from the thread backend's."""
    if default_backend() != "fork":
        pytest.skip("fork start method unavailable on this platform")
    rng = random.Random(fuzz_seed + 1)
    for case_index in range(6):
        expression, bindings = _random_case(rng)
        reference = _reference_evaluate(expression, bindings)
        for budget_rows in (None, TINY_BUDGET_ROWS):
            _assert_engine_matches_reference(
                expression,
                bindings,
                reference,
                budget_rows,
                4,
                "fork",
                tmp_path,
                context=f"seed={fuzz_seed}+1 case={case_index}",
            )


def test_degenerate_shapes_survive_every_config(tmp_path):
    """Deterministic corner cases, independent of the fuzz seed."""
    a_empty = Relation.empty("A B")
    single = Relation.from_rows("B C", [(1, "x")])
    heavy = Relation.from_rows("A B", [(i % 2, i % 2) for i in range(12)])
    wide = Relation.from_rows("B D", [(i % 2, i) for i in range(10)])
    one_column = Relation.from_rows("E", [(0,), (1,)])
    cases = [
        # Empty build and probe sides.
        (
            Operand("R", a_empty.scheme).join(Operand("S", single.scheme)),
            {"R": a_empty, "S": single},
        ),
        # Duplicate-heavy self-join through a projection.
        (
            Projection(
                ["A"],
                Operand("R", heavy.scheme).join(Operand("S", wide.scheme)),
            ),
            {"R": heavy, "S": wide},
        ),
        # Disjoint schemes: the keyless product cannot be split by any
        # partitioning and must take the chunked block-nested-loop path
        # under a tiny budget (bounded memory, zero overflows).
        (
            Operand("R", one_column.scheme).join(Operand("S", wide.scheme)),
            {"R": one_column, "S": wide},
        ),
        # Single-attribute scheme joined on its only column.
        (
            Projection(
                ["E"],
                Operand("R", one_column.scheme).join(
                    Operand("S", RelationScheme(("E", "F")))
                ),
            ),
            {
                "R": one_column,
                "S": Relation.from_rows("E F", [(0, 0), (0, 1), (1, 0), (1, 1)]),
            },
        ),
    ]
    for case_index, (expression, bindings) in enumerate(cases):
        reference = _reference_evaluate(expression, bindings)
        for budget_rows, workers in CONFIG_GRID:
            _assert_engine_matches_reference(
                expression,
                bindings,
                reference,
                budget_rows,
                workers,
                "thread",
                tmp_path,
                context=f"degenerate case={case_index}",
            )


def test_chaos_fuzz_faults_never_corrupt_results(fuzz_seed, tmp_path):
    """The chaos axis: every random case runs under a random
    :class:`~repro.engine.faults.FaultPlan` on every grid point.  Each
    evaluation must either complete set-equal to the reference (the fault
    was absorbed by retries, a pool rebuild, or a loud serial fallback) or
    raise the typed :class:`EngineFaultError` — an injected fault may cost
    the answer, never corrupt it — and must leak no spill files either way."""
    rng = random.Random(fuzz_seed ^ 0xFA017)
    for case_index in range(12):
        expression, bindings = _random_case(rng)
        reference = _reference_evaluate(expression, bindings)
        for budget_rows, workers in CONFIG_GRID:
            plan = FaultPlan.random_plan(rng, workers=workers)
            budget = _tiny_budget(tmp_path) if budget_rows is not None else None
            evaluator = EngineEvaluator(
                budget=budget,
                workers=workers,
                parallel_backend="thread",
                faults=plan,
            )
            detail = (
                f"seed={fuzz_seed} case={case_index} plan={plan!r} "
                f"budget={budget_rows} workers={workers}\n"
                f"expression: {expression.to_text()}"
            )
            result = None
            with warnings.catch_warnings():
                # Serial fallbacks warn by contract; the chaos sweep
                # schedules them on purpose.
                warnings.simplefilter("ignore", RuntimeWarning)
                try:
                    result, _ = evaluator.evaluate(expression, bindings)
                except EngineFaultError:
                    result = None  # a typed failure is an allowed outcome
            if result is not None:
                assert result.scheme.name_set == reference.scheme.name_set, detail
                realigned = (
                    result
                    if result.scheme.names == reference.scheme.names
                    else result.project(reference.scheme.names)
                )
                assert realigned == reference, detail
            leftovers = [str(path) for path in tmp_path.iterdir()]
            assert not leftovers, f"spill files leaked: {leftovers}\n{detail}"


def test_planstore_fuzz_learning_never_changes_results(fuzz_seed, tmp_path):
    """The plan-store axis: an evaluator that learns (warm samples, the
    observed-cardinality ledger, repin, drift re-plans) must stay set-equal
    to the seed reference on every (budget, workers, fault) grid point.
    Each case executes *twice* on one evaluator — the second run is costed
    against measured truth (and may drift-replan), which is exactly the
    path that could silently corrupt results if learning leaked into
    semantics."""
    rng = random.Random(fuzz_seed ^ 0x9147)
    for case_index in range(10):
        expression, bindings = _random_case(rng)
        reference = _reference_evaluate(expression, bindings)
        for budget_rows, workers in CONFIG_GRID:
            for faulty in (False, True):
                plan = FaultPlan.random_plan(rng, workers=workers) if faulty else None
                budget = _tiny_budget(tmp_path) if budget_rows is not None else None
                evaluator = EngineEvaluator(
                    budget=budget,
                    workers=workers,
                    parallel_backend="thread",
                    adaptive=True,
                    planstore=True,
                    faults=plan,
                )
                detail = (
                    f"seed={fuzz_seed}^0x9147 case={case_index} "
                    f"budget={budget_rows} workers={workers} faults={plan!r}\n"
                    f"expression: {expression.to_text()}"
                )
                for _round in range(2):
                    result = None
                    with warnings.catch_warnings():
                        warnings.simplefilter("ignore", RuntimeWarning)
                        try:
                            result, _trace = evaluator.evaluate(expression, bindings)
                        except EngineFaultError:
                            if not faulty:
                                raise
                            result = None  # a typed loss is allowed under faults
                    if result is not None:
                        assert result.scheme.name_set == reference.scheme.name_set, detail
                        realigned = (
                            result
                            if result.scheme.names == reference.scheme.names
                            else result.project(reference.scheme.names)
                        )
                        assert realigned == reference, detail
                leftovers = [str(path) for path in tmp_path.iterdir()]
                assert not leftovers, f"spill files leaked: {leftovers}\n{detail}"


def test_session_facade_fuzz_every_backend_matches_reference(fuzz_seed, tmp_path):
    """The serving facade, differentially pinned: every random case prepared
    through one mixed-backend :class:`repro.api.Session` must be set-equal to
    the seed reference on **all four** backends, under the same budget/worker
    grid the raw engine is pinned on — plus the prepared-statement contract
    (one plan build per query, plan-cache hits on repeated execute)."""
    rng = random.Random(fuzz_seed + 2)
    for case_index in range(10):
        expression, bindings = _random_case(rng)
        reference = _reference_evaluate(expression, bindings)
        for budget_rows, workers in CONFIG_GRID:
            budget = _tiny_budget(tmp_path) if budget_rows is not None else None
            with Session(
                bindings,
                budget=budget,
                workers=workers,
                parallel_backend="thread",
            ) as session:
                for backend in BACKENDS:
                    prepared = session.prepare(expression, backend=backend)
                    for _ in range(2):  # repeat: the second run is pure cache
                        result = prepared.execute()
                        detail = (
                            f"seed={fuzz_seed}+2 case={case_index} "
                            f"backend={backend} budget={budget_rows} "
                            f"workers={workers}\n"
                            f"expression: {expression.to_text()}"
                        )
                        assert result.set_equal(reference), detail
                stats = session.stats()
                assert stats["plan_builds"] == len(BACKENDS)
                assert stats["executes"] == 2 * len(BACKENDS)
                assert stats["plan_cache_hits"] == 2 * len(BACKENDS)
            leftovers = [str(path) for path in tmp_path.iterdir()]
            assert not leftovers, f"spill files leaked: {leftovers}"
