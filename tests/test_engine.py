"""Tests for the streaming query-execution engine (``repro.engine``).

The engine must be observationally identical to the seed's dict-based
reference implementation (:mod:`repro.algebra.reference`): randomized
property tests pin operator-level and whole-expression results set-equal to
the reference, and the memory meter's accounting is checked against the
invariant that every operator releases what it acquires.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra import (
    Relation,
    RelationScheme,
    naive_natural_join,
    naive_project,
)
from repro.decision import EngineMembershipDecider, tuple_in_result
from repro.engine import (
    EngineEvaluator,
    HashJoin,
    MemoryMeter,
    MergeJoin,
    PlannerConfig,
    RelationStats,
    Sort,
    StreamingDifference,
    StreamingProject,
    StreamingUnion,
    TableScan,
    plan_expression,
)
from repro.engine.stats import join_stats, project_stats
from repro.expressions import Projection, evaluate
from repro.expressions.ast import Expression, Join, Operand
from repro.reductions import RGConstruction
from repro.workloads import growing_construction_family, random_instance

NAME_POOL = tuple("ABCDEFGHIJ")
VALUE_POOL = st.one_of(st.integers(min_value=0, max_value=4), st.sampled_from("xyz"))


@st.composite
def schemes(draw, min_width=1, max_width=5):
    width = draw(st.integers(min_value=min_width, max_value=max_width))
    names = draw(st.permutations(NAME_POOL).map(lambda p: tuple(p[:width])))
    return RelationScheme(names)


@st.composite
def relations(draw, scheme=None, max_rows=12):
    if scheme is None:
        scheme = draw(schemes())
    n_rows = draw(st.integers(min_value=0, max_value=max_rows))
    rows = draw(
        st.lists(
            st.tuples(*([VALUE_POOL] * len(scheme))), min_size=n_rows, max_size=n_rows
        )
    )
    return Relation.from_rows(scheme, rows)


@st.composite
def joinable_pairs(draw):
    left_scheme = draw(schemes(max_width=4))
    overlap = draw(st.lists(st.sampled_from(left_scheme.names), unique=True, max_size=2))
    fresh = [n for n in NAME_POOL if n not in left_scheme.name_set]
    extra_width = draw(st.integers(min_value=0, max_value=2))
    right_names = tuple(overlap) + tuple(fresh[:extra_width])
    if not right_names:
        right_names = (fresh[0],)
    right_scheme = RelationScheme(right_names)
    return draw(relations(scheme=left_scheme)), draw(relations(scheme=right_scheme))


def _drain(operator):
    """Collect an operator's streamed output into a relation."""
    rows = set()
    for block in operator.blocks():
        rows.update(block)
    return Relation._from_trusted(operator.scheme, frozenset(rows))


def _join_plan_for(left, right):
    from repro.algebra.relation import _join_plan

    return _join_plan(left.scheme, right.scheme)


def _reference_evaluate(node: Expression, bound):
    """Evaluate an expression with the retained seed implementations."""
    if isinstance(node, Operand):
        return bound[node.name]
    if isinstance(node, Projection):
        return naive_project(_reference_evaluate(node.child, bound), node.target)
    if isinstance(node, Join):
        parts = [_reference_evaluate(part, bound) for part in node.parts]
        result = parts[0]
        for part in parts[1:]:
            result = naive_natural_join(result, part)
        return result
    raise AssertionError(f"unknown node {node!r}")


class TestStatsCatalog:
    def test_stats_match_column_values(self):
        relation = Relation.from_rows("A B C", [(i % 3, i % 2, "x") for i in range(10)])
        stats = relation.stats()
        assert stats.cardinality == len(relation)
        for name in relation.scheme.names:
            assert stats.distinct(name) == len(relation.column_values(name))

    def test_stats_cached_per_relation(self):
        relation = Relation.from_rows("A B", [(1, 2), (3, 4)])
        assert relation.stats() is relation.stats()
        # A derived relation gets a fresh entry (construction = invalidation).
        assert relation.project("A").stats() is not relation.stats()

    def test_min_max_bounds(self):
        relation = Relation.from_rows("A", [(3,), (1,), (7,)])
        column = relation.stats().column("A")
        assert (column.minimum, column.maximum) == (1, 7)

    def test_min_max_none_for_incomparable_values(self):
        relation = Relation.from_rows("A", [(1,), ("x",)])
        column = relation.stats().column("A")
        assert column.distinct_count == 2
        assert column.minimum is None and column.maximum is None

    def test_empty_relation_stats(self):
        stats = Relation.empty("A B").stats()
        assert stats.cardinality == 0
        assert stats.distinct("A") == 0

    def test_assumed_stats(self):
        stats = RelationStats.assumed(("A", "B"), 50, distinct={"B": 5})
        assert stats.cardinality == 50
        assert stats.distinct("A") == 50
        assert stats.distinct("B") == 5

    def test_join_and_project_propagation(self):
        left = RelationStats.assumed(("A", "B"), 100, distinct={"B": 10})
        right = RelationStats.assumed(("B", "C"), 100, distinct={"B": 20})
        joined = join_stats(left, right, ("A", "B", "C"), ("B",))
        assert joined.cardinality == 100 * 100 // 20
        assert joined.distinct("B") == 10
        projected = project_stats(joined, ("B",))
        assert projected.cardinality == 10

    @settings(max_examples=30, deadline=None)
    @given(relations())
    def test_stats_distinct_counts_property(self, relation):
        stats = relation.stats()
        for name in relation.scheme.names:
            assert stats.distinct(name) == len(relation.column_values(name))


class TestPhysicalOperators:
    @settings(max_examples=50, deadline=None)
    @given(joinable_pairs(), st.sampled_from(["left", "right"]))
    def test_hash_join_matches_reference(self, pair, build_side):
        left, right = pair
        meter = MemoryMeter()
        operator = HashJoin(
            TableScan(left, meter),
            TableScan(right, meter),
            _join_plan_for(left, right),
            meter,
            build_side=build_side,
        )
        result = _drain(operator)
        reference = naive_natural_join(left, right)
        assert result.scheme == reference.scheme
        assert result == reference
        assert meter.current == 0  # everything acquired was released

    @settings(max_examples=50, deadline=None)
    @given(joinable_pairs())
    def test_sorted_merge_join_matches_reference(self, pair):
        left, right = pair
        plan = _join_plan_for(left, right)
        if not plan.common_names:
            return  # merge join requires a shared attribute
        meter = MemoryMeter()
        operator = MergeJoin(
            Sort(TableScan(left, meter), plan.common_names, meter),
            Sort(TableScan(right, meter), plan.common_names, meter),
            plan,
            meter,
        )
        result = _drain(operator)
        assert result == naive_natural_join(left, right)
        assert meter.current == 0

    @settings(max_examples=50, deadline=None)
    @given(relations(), st.randoms(use_true_random=False))
    def test_streaming_project_matches_reference(self, relation, rng):
        width = rng.randint(1, len(relation.scheme))
        target = RelationScheme(rng.sample(relation.scheme.names, width))
        from repro.algebra.tuples import _project_plan

        plan = _project_plan(relation.scheme, target)
        meter = MemoryMeter()
        operator = StreamingProject(
            TableScan(relation, meter), plan.pick, plan.target_scheme, meter
        )
        result = _drain(operator)
        assert result == naive_project(relation, target)
        assert meter.current == 0

    @settings(max_examples=40, deadline=None)
    @given(schemes(max_width=3), st.data())
    def test_union_difference_match_relation_ops(self, scheme, data):
        left = data.draw(relations(scheme=scheme))
        right = data.draw(relations(scheme=scheme))
        meter = MemoryMeter()
        union = _drain(
            StreamingUnion(TableScan(left, meter), TableScan(right, meter), meter)
        )
        assert union == left.union(right)
        difference = _drain(
            StreamingDifference(TableScan(left, meter), TableScan(right, meter), meter)
        )
        assert difference == left.difference(right)
        assert meter.current == 0

    def test_sort_establishes_order(self):
        relation = Relation.from_rows("A B", [(3, 1), (1, 2), (2, 0)])
        meter = MemoryMeter()
        operator = Sort(TableScan(relation, meter), ("A",), meter)
        rows = [row for block in operator.blocks() for row in block]
        assert [row[0] for row in rows] == [1, 2, 3]
        assert operator.output_order == ("A",)

    def test_merge_join_handles_mixed_type_keys(self):
        # Sort and MergeJoin must order keys identically: a repr fallback on
        # the sort side paired with native comparison on the advance side
        # silently skipped matching key groups (e.g. 9/10/'a' keys).
        left = Relation.from_rows("K A", [(9, "x"), (10, "y"), ("a", "z")])
        right = Relation.from_rows("K B", [(9, "p"), (10, "q")])
        meter = MemoryMeter()
        plan = _join_plan_for(left, right)
        operator = MergeJoin(
            Sort(TableScan(left, meter), plan.common_names, meter),
            Sort(TableScan(right, meter), plan.common_names, meter),
            plan,
            meter,
        )
        assert _drain(operator) == naive_natural_join(left, right)
        # And end-to-end through the planner's forced-merge path.
        query = Operand("R", left.scheme).join(Operand("S", right.scheme))
        result, _ = EngineEvaluator(PlannerConfig(prefer_merge=True)).evaluate(
            query, {"R": left, "S": right}
        )
        assert result == naive_natural_join(left, right)

    def test_merge_join_handles_partially_ordered_keys(self):
        # frozenset answers `<` with False in both directions without
        # raising; the shared total preorder must still keep the two sorts
        # consistent so no key group is skipped.
        keys = [frozenset({1}), frozenset({2}), frozenset({1, 2})]
        left = Relation.from_rows("K A", [(k, i) for i, k in enumerate(keys)])
        right = Relation.from_rows("K B", [(k, "b") for k in keys])
        meter = MemoryMeter()
        plan = _join_plan_for(left, right)
        operator = MergeJoin(
            Sort(TableScan(left, meter), plan.common_names, meter),
            Sort(TableScan(right, meter), plan.common_names, meter),
            plan,
            meter,
        )
        assert _drain(operator) == naive_natural_join(left, right)

    def test_merge_join_rejects_unsorted_inputs(self):
        left = Relation.from_rows("A B", [(1, 2)])
        right = Relation.from_rows("B C", [(2, 3)])
        meter = MemoryMeter()
        with pytest.raises(ValueError):
            MergeJoin(
                TableScan(left, meter),
                TableScan(right, meter),
                _join_plan_for(left, right),
                meter,
            )

    def test_meter_counts_overlapping_build_state(self):
        # A stateful build-side subtree (dedup projection) holds its seen-set
        # until its drain completes; the consuming hash join must meter its
        # own buckets *while* that state is still resident, so the peak sees
        # both at once rather than only the larger.
        from repro.algebra.tuples import _project_plan

        base = Relation.from_rows("A B", [(i, i) for i in range(100)])
        probe = Relation.from_rows("A C", [(i, "c") for i in range(100)])
        meter = MemoryMeter()
        plan = _project_plan(base.scheme, RelationScheme.of("A"))
        build = StreamingProject(TableScan(base, meter), plan.pick, plan.target_scheme, meter)
        join = HashJoin(
            build,
            TableScan(probe, meter),
            _join_plan_for(base.project("A"), probe),
            meter,
            build_side="left",
        )
        _drain(join)
        # While the build drain runs, the projection's 100-entry seen-set and
        # the join's growing 100-entry table are live together.
        assert meter.peak >= 2 * len(base) - 2
        assert meter.current == 0

    def test_meter_tracks_build_side_residency(self):
        left = Relation.from_rows("A B", [(i, i % 3) for i in range(10)])
        right = Relation.from_rows("B C", [(i % 3, i) for i in range(30)])
        meter = MemoryMeter()
        operator = HashJoin(
            TableScan(left, meter),
            TableScan(right, meter),
            _join_plan_for(left, right),
            meter,
            build_side="left",
        )
        _drain(operator)
        assert meter.peak >= len(left)
        assert meter.current == 0


class TestEngineEvaluator:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_engine_matches_reference_on_random_instances(self, seed):
        relation, query = random_instance(
            num_attributes=5, num_tuples=15, domain_size=3, num_factors=3, seed=seed
        )
        bound = {name: relation for name in query.operand_names()}
        reference = _reference_evaluate(query, bound)
        result, trace = EngineEvaluator().evaluate(query, relation)
        assert result.scheme == reference.scheme
        assert result.tuples == reference.tuples
        assert trace.result_cardinality == len(reference)

    @pytest.mark.parametrize("prefer_merge", [False, True])
    def test_engine_matches_reference_on_construction(self, prefer_merge):
        construction = RGConstruction(
            next(iter(growing_construction_family(clause_counts=(4,)))).formula
        )
        query = Projection([construction.s_attribute], construction.expression)
        bound = {name: construction.relation for name in query.operand_names()}
        reference = _reference_evaluate(query, bound)
        evaluator = EngineEvaluator(PlannerConfig(prefer_merge=prefer_merge))
        result, trace = evaluator.evaluate(query, construction.relation)
        assert result == reference
        assert trace.peak_live_rows > 0
        assert trace.steps  # per-operator cardinalities were recorded

    def test_peak_live_rows_beats_materialised_peak_on_blowup(self):
        from repro.expressions import InstrumentedEvaluator, OptimizedEvaluator

        case = next(iter(growing_construction_family(clause_counts=(10,))))
        construction = RGConstruction(case.formula)
        query = Projection([construction.s_attribute], construction.expression)
        relation = construction.relation
        result, trace = EngineEvaluator().evaluate(query, relation)
        naive_result, naive_trace = InstrumentedEvaluator().evaluate(query, relation)
        _, optimized_trace = OptimizedEvaluator().evaluate(query, relation)
        assert result == naive_result
        assert trace.peak_live_rows < naive_trace.peak_intermediate_cardinality
        assert trace.peak_live_rows < optimized_trace.peak_intermediate_cardinality

    def test_plans_are_pinned_per_expression(self):
        relation = Relation.from_rows("A B", [(i, i % 4) for i in range(12)])
        other = Relation.from_rows("B C", [(i % 4, i) for i in range(12)])
        query = Operand("R", relation.scheme).join(Operand("S", other.scheme)).project("A C")
        evaluator = EngineEvaluator()
        bound = {"R": relation, "S": other}
        first = evaluator.plan_for(query, bound)
        second = evaluator.plan_for(query, bound)
        assert first is second
        evaluator.clear_plans()
        assert evaluator.plan_for(query, bound) is not first

    def test_pinned_plan_skips_global_plan_cache(self):
        from repro.perf import kernel_counters

        relation = Relation.from_rows("A B", [(i, i % 4) for i in range(12)])
        other = Relation.from_rows("B C", [(i % 4, i) for i in range(12)])
        query = Operand("R", relation.scheme).join(Operand("S", other.scheme)).project("A")
        evaluator = EngineEvaluator()
        bound = {"R": relation, "S": other}
        expected, _ = evaluator.evaluate(query, bound)
        counters = kernel_counters()
        before = counters.snapshot()
        result, _ = evaluator.evaluate(query, bound)
        delta = counters.delta_since(before)
        assert result == expected
        assert delta["join_plan_hits"] == 0 and delta["join_plan_misses"] == 0
        assert delta["project_plan_hits"] == 0 and delta["project_plan_misses"] == 0

    def test_rebinding_a_reordered_presentation_realigns(self):
        scheme = RelationScheme.of("A", "B")
        reordered = RelationScheme.of("B", "A")
        query = Projection(["A"], Operand("R", scheme).join(Operand("S", "B C")))
        evaluator = EngineEvaluator()
        first = {
            "R": Relation.from_rows(scheme, [(1, 2), (3, 4)]),
            "S": Relation.from_rows("B C", [(2, "x")]),
        }
        result, _ = evaluator.evaluate(query, first)
        assert result == evaluate(query, first)
        # Same scheme *set*, different presentation order: the pinned plan
        # must realign the rows rather than misread the columns.
        second = {
            "R": Relation.from_rows(reordered, [(2, 1), (9, 8)]),
            "S": Relation.from_rows("B C", [(2, "y")]),
        }
        result, _ = evaluator.evaluate(query, second)
        assert result == evaluate(query, second)

    def test_trace_reports_kernel_activity_and_input(self):
        relation, query = random_instance(seed=5)
        _, trace = EngineEvaluator().evaluate(query, relation)
        assert trace.input_cardinality == len(relation) * len(query.operand_names())
        assert isinstance(trace.kernel_activity, dict)
        summary = trace.summary()
        assert summary["peak_live_rows"] == float(trace.peak_live_rows)


class TestPlanner:
    def test_explain_names_operators_and_estimates(self):
        stats = {
            "R": RelationStats.assumed(("A", "B"), 1000),
            "S": RelationStats.assumed(("B", "C"), 10),
        }
        query = Projection(["A"], Operand("R", "A B").join(Operand("S", "B C")))
        plan = plan_expression(query, stats)
        text = plan.explain()
        assert "hash join" in text and "scan R" in text and "est_rows=" in text
        # The tiny side is the build side.
        assert "[build=" in text

    def test_prefer_merge_plans_sorts_and_merge_joins(self):
        stats = {
            "R": RelationStats.assumed(("A", "B"), 100),
            "S": RelationStats.assumed(("B", "C"), 100),
        }
        query = Operand("R", "A B").join(Operand("S", "B C"))
        plan = plan_expression(query, stats, PlannerConfig(prefer_merge=True))
        text = plan.explain()
        assert "merge join" in text and "sort by" in text

    def test_product_join_is_planned_as_hash_join(self):
        stats = {
            "R": RelationStats.assumed(("A",), 4),
            "S": RelationStats.assumed(("B",), 5),
        }
        plan = plan_expression(Operand("R", "A").join(Operand("S", "B")), stats)
        assert plan.est_rows == 20.0
        left = Relation.from_rows("A", [(1,), (2,)])
        right = Relation.from_rows("B", [("x",), ("y",)])
        result, _ = EngineEvaluator().evaluate(
            Operand("R", "A").join(Operand("S", "B")), {"R": left, "S": right}
        )
        assert result == left.natural_join(right)

    def test_missing_operand_stats_raise(self):
        from repro.expressions import ExpressionError

        with pytest.raises(ExpressionError):
            plan_expression(Operand("R", "A B").join(Operand("S", "B C")), {})


class TestEngineMembership:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_engine_membership_agrees_with_evaluation(self, seed):
        relation, query = random_instance(
            num_attributes=4, num_tuples=10, domain_size=3, num_factors=2, seed=seed
        )
        result = evaluate(query, relation)
        decider = EngineMembershipDecider()
        rng = random.Random(seed)
        candidates = list(result)[:3]
        for candidate in candidates:
            assert decider.decide(candidate, query, relation)
            assert tuple_in_result(candidate, query, relation)
        # A mutated tuple that is (almost surely) absent.
        if candidates:
            absent = {
                name: f"missing-{rng.random()}" for name in result.scheme.names
            }
            from repro.algebra import RelationTuple

            ghost = RelationTuple(result.scheme, absent)
            assert decider.decide(ghost, query, relation) == tuple_in_result(
                ghost, query, relation
            )

    def test_raw_sequence_candidates_use_the_expression_scheme_order(self):
        # A plain value sequence means "in the expression's result scheme
        # order" (what tuple_in_result uses) — not the physical plan's
        # output order, which follows the greedy join order.
        r = Relation.from_rows("E D", [(1, 1), (2, 5)])
        s = Relation.from_rows("B E A", [(0, 1, 0), (7, 2, 7)])
        t = Relation.from_rows("E", [(1,)])
        query = Operand("R", r.scheme).join(Operand("S", s.scheme), Operand("T", t.scheme))
        bound = {"R": r, "S": s, "T": t}
        decider = EngineMembershipDecider()
        result = evaluate(query, bound)
        assert len(result) > 0
        for member in result:
            raw = tuple(member[name] for name in query.target_scheme().names)
            assert tuple_in_result(raw, query, bound) is True
            assert decider.decide(raw, query, bound) is True
