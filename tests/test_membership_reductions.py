"""Tests for the NP / co-NP side reductions (tuple membership and the fixpoint test)."""

import pytest

from repro.decision import (
    CertificateMembershipDecider,
    ProjectJoinFixpointDecider,
    tuple_in_result,
)
from repro.reductions import FixpointReduction, MembershipReduction
from repro.sat import forced_unsatisfiable, paper_example_formula, planted_satisfiable


@pytest.fixture(scope="module")
def satisfiable():
    formula, _ = planted_satisfiable(4, 3, seed=31)
    return formula


@pytest.fixture(scope="module")
def unsatisfiable():
    return forced_unsatisfiable(4, seed=31)


class TestMembershipReduction:
    def test_instance_shape(self, satisfiable):
        reduction = MembershipReduction(satisfiable)
        instance = reduction.instance()
        assert instance.tuple.scheme == instance.target_scheme
        assert len(instance.projection_schemes) == satisfiable.num_clauses + 1

    def test_membership_holds_iff_satisfiable(self, satisfiable, unsatisfiable):
        for formula in (satisfiable, unsatisfiable):
            reduction = MembershipReduction(formula)
            instance = reduction.instance()
            member = tuple_in_result(
                instance.tuple, reduction.expression(), instance.relation
            )
            assert member == reduction.expected_yes()

    def test_certificate_decider_agrees(self, satisfiable, unsatisfiable):
        decider = CertificateMembershipDecider()
        for formula in (satisfiable, unsatisfiable):
            reduction = MembershipReduction(formula)
            instance = reduction.instance()
            witness = decider.decide(
                instance.tuple, reduction.expression(), instance.relation
            )
            assert (witness is not None) == reduction.expected_yes()

    def test_certificate_verifies_in_polynomial_time_path(self, satisfiable):
        decider = CertificateMembershipDecider()
        reduction = MembershipReduction(satisfiable)
        instance = reduction.instance()
        expression = reduction.expression()
        witness = decider.decide(instance.tuple, expression, instance.relation)
        assert witness is not None
        assert decider.verify(instance.tuple, expression, instance.relation, witness)

    def test_paper_example_membership(self):
        reduction = MembershipReduction(paper_example_formula())
        instance = reduction.instance()
        assert tuple_in_result(
            instance.tuple, reduction.expression(), instance.relation
        )


class TestFixpointReduction:
    def test_fixpoint_holds_iff_unsatisfiable(self, satisfiable, unsatisfiable):
        decider = ProjectJoinFixpointDecider()
        for formula in (satisfiable, unsatisfiable):
            reduction = FixpointReduction(formula)
            instance = reduction.instance()
            holds = decider.holds(instance.relation, instance.projection_schemes)
            assert holds == reduction.expected_yes()

    def test_violation_witness_is_a_satisfying_assignment_tuple(self, satisfiable):
        reduction = FixpointReduction(satisfiable)
        instance = reduction.instance()
        verdict = ProjectJoinFixpointDecider().decide(
            instance.relation, instance.projection_schemes
        )
        assert not verdict.holds
        assert verdict.extra_tuple is not None
        assignment = reduction.construction.assignment_of_tuple(verdict.extra_tuple)
        assert assignment is not None
        assert satisfiable.evaluate(assignment)

    def test_join_never_loses_tuples(self, satisfiable, unsatisfiable):
        for formula in (satisfiable, unsatisfiable):
            reduction = FixpointReduction(formula)
            instance = reduction.instance()
            verdict = ProjectJoinFixpointDecider().decide(
                instance.relation, instance.projection_schemes
            )
            assert verdict.join_cardinality >= verdict.relation_cardinality

    def test_expression_matches_projection_schemes(self, satisfiable):
        from repro.expressions import evaluate
        from repro.algebra import project_join

        reduction = FixpointReduction(satisfiable)
        instance = reduction.instance()
        via_expression = evaluate(reduction.expression(), instance.relation)
        via_operations = project_join(instance.relation, instance.projection_schemes)
        assert via_expression == via_operations
