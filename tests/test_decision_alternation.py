"""Tests for the Proposition 3 style guess-and-verify containment decider."""

import pytest

from repro.algebra import Relation
from repro.decision import AlternationContainmentDecider, ContainmentDecider
from repro.expressions import Join, Operand, Projection

R = Relation.from_rows("A B C", [(1, 2, 3), (1, 2, 4), (2, 5, 3)], name="R")
BASE = Operand("R", "A B C")
TIGHT = Projection("A C", BASE)
LOOSE = Projection("A C", Join([Projection("A B", BASE), Projection("B C", BASE)]))
DECIDER = AlternationContainmentDecider()
REFERENCE = ContainmentDecider()


class TestAgainstEvaluationDecider:
    def test_containment_direction_that_holds(self):
        verdict = DECIDER.decide(TIGHT, LOOSE, R)
        assert verdict.contained
        assert verdict.counterexample is None
        assert verdict.candidates_checked > 0

    def test_containment_direction_that_may_fail(self):
        reference = REFERENCE.compare_queries(LOOSE, TIGHT, R)
        verdict = DECIDER.decide(LOOSE, TIGHT, R)
        assert verdict.contained == reference.left_in_right
        if not verdict.contained:
            assert verdict.counterexample is not None
            assert verdict.counterexample == reference.left_only_witness or True

    def test_counterexample_is_genuine(self):
        extended = R.insert((9, 9, 9))
        verdict = DECIDER.decide(LOOSE, LOOSE, extended, second_arguments=R)
        if verdict.contained:
            pytest.skip("no counterexample exists for this data")
        from repro.expressions import evaluate

        left = evaluate(LOOSE, extended)
        right = evaluate(LOOSE, R)
        assert verdict.counterexample in left
        assert verdict.counterexample not in right

    def test_mismatched_schemes_are_not_contained(self):
        other = Projection("A B", BASE)
        assert not DECIDER.contained(TIGHT, other, R)

    def test_equivalent_wrapper(self):
        assert DECIDER.equivalent(TIGHT, TIGHT, R)
        assert DECIDER.equivalent(LOOSE, LOOSE, R)

    @pytest.mark.parametrize("seed", range(4))
    def test_agreement_with_evaluation_on_random_instances(self, seed):
        from repro.workloads import random_instance, random_project_join_query

        relation, first = random_instance(seed=700 + seed, num_tuples=6, num_attributes=3)
        second = random_project_join_query(
            relation.scheme, num_factors=2, seed=800 + seed, outer_projection=False
        )
        if first.target_scheme() != second.target_scheme():
            second = Projection(first.target_scheme(), Operand("R", relation.scheme)) \
                if first.target_scheme().is_subscheme_of(relation.scheme) else second
        if first.target_scheme() != second.target_scheme():
            pytest.skip("schemes do not line up for this seed")
        reference = REFERENCE.compare_queries(first, second, relation)
        assert DECIDER.contained(first, second, relation) == reference.left_in_right


class TestOnPaperReductions:
    def test_theorem4_instances(self):
        from repro.qbf import canonical_false_q3sat, planted_true_q3sat
        from repro.reductions import Theorem4Reduction

        for instance in (planted_true_q3sat(2, seed=6), canonical_false_q3sat()):
            reduction = Theorem4Reduction(instance)
            comparison = reduction.containment_instance()
            verdict = DECIDER.decide(
                comparison.first, comparison.second, comparison.relation
            )
            assert verdict.contained == reduction.expected_yes()
            if not verdict.contained:
                # The counterexample decodes to a universal assignment with no
                # satisfying completion, exactly as the proof of Theorem 4 says.
                construction = reduction.construction
                qbf = reduction.qbf_instance
                assignment = {
                    variable: bool(
                        verdict.counterexample[construction.variable_column(variable)]
                    )
                    for variable in qbf.universal
                }
                from repro.sat import is_satisfiable

                assert not is_satisfiable(qbf.formula.restrict(assignment))

    def test_theorem5_instances(self):
        from repro.qbf import canonical_false_q3sat, planted_true_q3sat
        from repro.reductions import Theorem5Reduction

        for instance in (planted_true_q3sat(2, seed=7), canonical_false_q3sat()):
            reduction = Theorem5Reduction(instance)
            comparison = reduction.containment_instance()
            contained = DECIDER.contained(
                comparison.expression,
                comparison.expression,
                comparison.first,
                second_arguments=comparison.second,
            )
            assert contained == reduction.expected_yes()
