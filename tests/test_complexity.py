"""Tests for the complexity-class registry, problem catalogue, and reduction checks."""

import pytest

from repro.complexity import (
    CLASSES,
    PROBLEMS,
    ReductionCheck,
    class_named,
    is_contained_in,
    problem_named,
    verify_reduction,
)


class TestClassRegistry:
    def test_all_paper_classes_present(self):
        for name in ("NP", "co-NP", "DP", "Sigma2P", "Pi2P", "#P"):
            assert name in CLASSES

    def test_lookup_by_name(self):
        assert class_named("DP").name == "DP"
        with pytest.raises(KeyError):
            class_named("EXP")

    def test_counting_vs_decision_kinds(self):
        assert class_named("#P").kind == "counting"
        assert class_named("NP").kind == "decision"

    def test_paper_inclusions(self):
        assert is_contained_in("NP", "DP")
        assert is_contained_in("co-NP", "DP")
        assert is_contained_in("DP", "Pi2P")
        assert is_contained_in("NP", "PSPACE")
        assert is_contained_in("NP", "NP")

    def test_non_inclusions_not_claimed(self):
        assert not is_contained_in("Pi2P", "NP")
        assert not is_contained_in("DP", "P")


class TestProblemCatalogue:
    def test_every_theorem_has_a_problem(self):
        references = {problem.paper_reference for problem in PROBLEMS.values()}
        assert any("Theorem 1" in ref for ref in references)
        assert any("Theorem 2" in ref for ref in references)
        assert any("Theorem 3" in ref for ref in references)
        assert any("Theorem 4" in ref for ref in references)
        assert any("Theorem 5" in ref for ref in references)

    def test_problem_lookup(self):
        problem = problem_named("query-result-equality")
        assert problem.completeness == "DP"
        with pytest.raises(KeyError):
            problem_named("unknown-problem")

    def test_every_problem_references_a_known_class(self):
        for problem in PROBLEMS.values():
            assert problem.complexity_class().name == problem.completeness

    def test_reduction_and_decider_modules_are_importable(self):
        import importlib

        for problem in PROBLEMS.values():
            module_path = problem.decider_module
            importlib.import_module(module_path)
            reduction_module = problem.reduction_module.rsplit(".", 1)[0]
            module = importlib.import_module(reduction_module)
            class_name = problem.reduction_module.rsplit(".", 1)[1]
            assert hasattr(module, class_name)

    def test_experiment_ids_match_design_document(self):
        experiment_ids = {problem.experiment_id for problem in PROBLEMS.values()}
        assert experiment_ids <= {f"E{i}" for i in range(1, 11)}


class TestReductionCheckFramework:
    def test_agreeing_reduction_reports_full_agreement(self):
        check = ReductionCheck(
            name="parity (identity reduction)",
            source_answer=lambda n: n % 2 == 0,
            target_answer=lambda n: (n + 2) % 2 == 0,
        )
        report = verify_reduction(check, list(range(10)))
        assert report.all_agree
        assert report.total == 10
        assert report.yes_instances == 5
        assert report.agreement_rate == 1.0
        assert "10/10" in report.summary()

    def test_disagreeing_reduction_reports_indices(self):
        check = ReductionCheck(
            name="broken",
            source_answer=lambda n: n % 2 == 0,
            target_answer=lambda n: True,
        )
        report = verify_reduction(check, [0, 1, 2, 3])
        assert not report.all_agree
        assert report.disagreements == [1, 3]
        assert report.agreement_rate == pytest.approx(0.5)

    def test_agrees_on_single_instance(self):
        check = ReductionCheck(
            name="id", source_answer=bool, target_answer=lambda x: bool(x)
        )
        assert check.agrees_on(1)
        assert check.agrees_on(0)

    def test_empty_batch(self):
        check = ReductionCheck(name="id", source_answer=bool, target_answer=bool)
        report = verify_reduction(check, [])
        assert report.all_agree and report.agreement_rate == 1.0
