"""Fault-injection tests: the engine's failure paths, reached on purpose.

`repro.engine.faults` makes the paths ordinary tests never execute — spill
I/O failures, fork-pool worker death, checkpoint-cap pressure — reachable
deterministically, and this module pins their contract:

* a *transient* spill failure (fewer consecutive failures than the retry
  budget) is absorbed by retry-with-backoff and the evaluation completes
  with the correct result, the retries and injections visible in counters;
* a *persistent* failure ends in a typed
  :class:`~repro.engine.faults.EngineFaultError` with the cleanup
  guarantees: no leaked spill files or temp dirs, the shared meter drained
  back to zero;
* a killed parallel probe worker is recovered by rebuilding the fork pool
  (``pool_recoveries``) or degrades *loudly* to serial execution
  (``serial_fallbacks`` + ``RuntimeWarning`` + trace degradation events) —
  never a silent wrong answer;
* forced checkpoint-cap pressure under a budget spills the checkpoint
  (``checkpoint_spills``) instead of abandoning the re-plan
  (``adaptive_giveups``);
* spill temp directories are removed at interpreter shutdown even when an
  execution was abandoned mid-stream (the ``atexit`` registry).
"""

import glob
import os
import subprocess
import sys
import warnings

import pytest

from repro.algebra.relation import Relation
from repro.api import BackendConfig, Session, SessionError
from repro.engine import (
    SPILL_BLOCK_ROWS,
    SPILL_IO_RETRIES,
    EngineEvaluator,
    EngineFaultError,
    FaultInjector,
    FaultPlan,
    InjectedFaultError,
    MemoryBudget,
    MemoryMeter,
    Sort,
    SpillFile,
    TableScan,
    default_backend,
)
from repro.engine.sampling import AdaptiveConfig
from repro.expressions.ast import Operand, Projection
from repro.expressions.evaluator import evaluate
from repro.perf import kernel_counters, reset_kernel_counters

import random


def _join_case(seed=11, rows=400):
    """A two-join projection whose spill keys split cleanly under a budget."""
    rng = random.Random(seed)
    r = Relation.from_rows(
        "A B", [(rng.randrange(30), i) for i in range(rows)], name="R"
    )
    s = Relation.from_rows(
        "B C", [(i, rng.randrange(30)) for i in range(rows)], name="S"
    )
    query = Projection(["A", "C"], Operand("R", "A B").join(Operand("S", "B C")))
    return query, {"R": r, "S": s}


def _budget(tmp_path, rows=8):
    # min_partition_rows below the budget so replay recursion can always
    # split a partition down to fitting size (the default 16-row floor
    # above an 8-row budget would invite partition-allowance overruns).
    return MemoryBudget(rows=rows, min_partition_rows=2, spill_dir=str(tmp_path))


def _delta(before):
    return kernel_counters().delta_since(before)


class TestFaultPlan:
    def test_validates_one_based_positions(self):
        with pytest.raises(ValueError):
            FaultPlan(fail_spill_write_at=0)
        with pytest.raises(ValueError):
            FaultPlan(fail_spill_read_at=-1)
        with pytest.raises(ValueError):
            FaultPlan(spill_failures=0)

    def test_injects_anything(self):
        assert not FaultPlan().injects_anything
        assert FaultPlan(fail_spill_write_at=1).injects_anything
        assert FaultPlan(fail_spill_read_at=2).injects_anything
        assert FaultPlan(kill_worker=0).injects_anything
        assert FaultPlan(checkpoint_cap_rows=4).injects_anything

    def test_random_plan_is_replayable(self):
        plans = [FaultPlan.random_plan(random.Random(7)) for _ in range(10)]
        again = [FaultPlan.random_plan(random.Random(7)) for _ in range(10)]
        assert plans == again
        assert all(plan.injects_anything for plan in plans)

    def test_evaluator_rejects_non_plan(self):
        with pytest.raises(TypeError):
            EngineEvaluator(faults="chaos")

    def test_config_rejects_non_plan(self):
        with pytest.raises(SessionError):
            BackendConfig(faults=3)


class TestSpillFileRetry:
    def _spill(self, tmp_path, plan):
        return SpillFile(
            str(tmp_path / "fault.spill"), faults=FaultInjector(plan)
        )

    def test_transient_write_fault_is_retried(self, tmp_path):
        reset_kernel_counters()
        spill = self._spill(
            tmp_path, FaultPlan(fail_spill_write_at=1, spill_failures=1)
        )
        rows = [(i,) for i in range(SPILL_BLOCK_ROWS + 5)]
        for row in rows:
            spill.append(row)
        spill.finish()
        assert [row for block in spill.blocks() for row in block] == rows
        snapshot = kernel_counters().snapshot()
        assert snapshot["fault_injected"] >= 1
        assert snapshot["spill_retries"] >= 1
        spill.delete()

    def test_persistent_write_fault_raises_typed_error(self, tmp_path):
        spill = self._spill(
            tmp_path, FaultPlan(fail_spill_write_at=1, persistent=True)
        )
        for i in range(SPILL_BLOCK_ROWS - 1):
            spill.append((i,))
        with pytest.raises(EngineFaultError) as info:
            spill.finish()  # the first flush happens here and fails forever
        assert isinstance(info.value.__cause__, InjectedFaultError)
        spill.delete()
        assert not list(tmp_path.iterdir())

    def test_transient_read_fault_is_retried(self, tmp_path):
        spill = self._spill(
            tmp_path, FaultPlan(fail_spill_read_at=2, spill_failures=1)
        )
        rows = [(i,) for i in range(SPILL_BLOCK_ROWS * 2)]
        for row in rows:
            spill.append(row)
        spill.finish()
        assert [row for block in spill.blocks() for row in block] == rows
        spill.delete()

    def test_persistent_read_fault_raises_typed_error(self, tmp_path):
        spill = self._spill(
            tmp_path, FaultPlan(fail_spill_read_at=1, persistent=True)
        )
        spill.append((1,))
        spill.finish()
        with pytest.raises(EngineFaultError):
            list(spill.blocks())
        spill.delete()

    def test_retry_budget_bounds_the_attempts(self, tmp_path):
        # Exactly SPILL_IO_RETRIES - 1 failures: the last attempt succeeds.
        reset_kernel_counters()
        spill = self._spill(
            tmp_path,
            FaultPlan(fail_spill_write_at=1, spill_failures=SPILL_IO_RETRIES - 1),
        )
        for i in range(SPILL_BLOCK_ROWS):
            spill.append((i,))
        spill.finish()
        assert spill.rows == SPILL_BLOCK_ROWS
        assert kernel_counters().snapshot()["spill_retries"] == SPILL_IO_RETRIES - 1
        spill.delete()


class TestEvaluatorSpillFaults:
    def test_transient_fault_recovers_with_correct_result(self, tmp_path):
        query, bound = _join_case()
        expected = evaluate(query, bound)
        reset_kernel_counters()
        before = kernel_counters().snapshot()
        evaluator = EngineEvaluator(
            budget=_budget(tmp_path),
            faults=FaultPlan(fail_spill_write_at=2, spill_failures=1),
        )
        result, _ = evaluator.evaluate(query, bound)
        delta = _delta(before)
        assert result == expected
        assert delta["fault_injected"] >= 1
        assert delta["spill_retries"] >= 1
        assert delta["spill_overflows"] == 0
        assert not list(tmp_path.iterdir()), "spill files leaked"

    def test_persistent_fault_raises_typed_error_and_leaks_nothing(self, tmp_path):
        query, bound = _join_case()
        evaluator = EngineEvaluator(
            budget=_budget(tmp_path),
            faults=FaultPlan(fail_spill_write_at=1, persistent=True),
        )
        with pytest.raises(EngineFaultError):
            evaluator.evaluate(query, bound)
        assert not list(tmp_path.iterdir()), "spill files leaked"
        # The evaluator stays usable: a fresh, unfaulted evaluation of the
        # same query completes (no inherited state from the failure).
        clean = EngineEvaluator(budget=_budget(tmp_path))
        result, _ = clean.evaluate(query, bound)
        assert result == evaluate(query, bound)
        assert not list(tmp_path.iterdir())

    def test_read_fault_on_merge_raises_typed_error(self, tmp_path):
        query, bound = _join_case()
        evaluator = EngineEvaluator(
            budget=_budget(tmp_path),
            faults=FaultPlan(fail_spill_read_at=1, persistent=True),
        )
        with pytest.raises(EngineFaultError):
            evaluator.evaluate(query, bound)
        assert not list(tmp_path.iterdir()), "spill files leaked"

    def test_operator_meter_drains_to_zero_on_fault(self, tmp_path):
        # Direct operator check: the evaluator hides its meter, a bare
        # external sort does not — a mid-merge fault must balance it.
        rows = [(i % 7, i) for i in range(200)]
        relation = Relation.from_rows("A B", rows, name="R")
        budget = _budget(tmp_path, rows=16)
        injector = FaultInjector(FaultPlan(fail_spill_read_at=1, persistent=True))
        meter = MemoryMeter(budget.rows, faults=injector)
        sort = Sort(TableScan(relation, meter), ["A", "B"], meter, budget=budget)
        with pytest.raises(EngineFaultError):
            for _ in sort.blocks():
                pass
        assert meter.current == 0
        assert not list(tmp_path.iterdir()), "spill files leaked"


class TestWorkerKill:
    def test_thread_worker_kill_degrades_loudly_to_serial(self):
        query, bound = _join_case()
        expected = evaluate(query, bound)
        reset_kernel_counters()
        before = kernel_counters().snapshot()
        evaluator = EngineEvaluator(
            workers=4, parallel_backend="thread", faults=FaultPlan(kill_worker=1)
        )
        with pytest.warns(RuntimeWarning, match="degraded to serial"):
            result, trace = evaluator.evaluate(query, bound)
        delta = _delta(before)
        assert result == expected
        assert delta["serial_fallbacks"] == 1
        assert delta["fault_injected"] >= 1
        assert trace.serial_fallbacks == 1
        assert trace.degradations and "serial-fallback" in trace.degradations[0]

    def test_fork_worker_kill_recovers_via_pool_rebuild(self):
        if default_backend() != "fork":
            pytest.skip("fork start method unavailable on this platform")
        query, bound = _join_case()
        expected = evaluate(query, bound)
        reset_kernel_counters()
        before = kernel_counters().snapshot()
        evaluator = EngineEvaluator(
            workers=4, parallel_backend="fork", faults=FaultPlan(kill_worker=2)
        )
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                result, trace = evaluator.evaluate(query, bound)
        finally:
            evaluator.close()
        delta = _delta(before)
        assert result == expected
        assert delta["pool_recoveries"] == 1
        assert delta["serial_fallbacks"] == 0
        assert trace.serial_fallbacks == 0

    def test_unfaulted_parallel_run_does_not_degrade(self):
        query, bound = _join_case()
        evaluator = EngineEvaluator(workers=4, parallel_backend="thread")
        reset_kernel_counters()
        before = kernel_counters().snapshot()
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            result, trace = evaluator.evaluate(query, bound)
        assert result == evaluate(query, bound)
        assert _delta(before)["serial_fallbacks"] == 0
        assert trace.serial_fallbacks == 0
        assert trace.degradations == []


def _three_way_case(seed):
    """A three-way join that triggers an adaptive re-plan when its plan was
    pinned against 1-row relations (borrowed from the sampling tests)."""
    rng = random.Random(seed)
    r = Relation.from_rows(
        "A B", [(rng.randint(0, 20), rng.randint(0, 8)) for _ in range(300)], name="R"
    )
    s = Relation.from_rows(
        "B C", [(rng.randint(0, 8), rng.randint(0, 30)) for _ in range(300)], name="S"
    )
    t = Relation.from_rows(
        "C D", [(rng.randint(0, 30), rng.randint(0, 5)) for _ in range(300)], name="T"
    )
    query = Projection(
        ["A", "D"],
        Operand("R", "A B").join(Operand("S", "B C")).join(Operand("T", "C D")),
    )
    return query, {"R": r, "S": s, "T": t}


def _tiny_bindings(bound):
    return {
        name: Relation.from_rows(
            relation.scheme, [tuple(1 for _ in relation.scheme.names)], name=name
        )
        for name, relation in bound.items()
    }


class TestCheckpointPressure:
    def test_forced_cap_spills_checkpoint_instead_of_giving_up(self, tmp_path):
        query, bound = _three_way_case(11)
        expected = evaluate(query, bound)
        reset_kernel_counters()
        before = kernel_counters().snapshot()
        evaluator = EngineEvaluator(
            budget=_budget(tmp_path, rows=64),
            adaptive=AdaptiveConfig(replan_factor=2.0, replan_min_rows=8),
            faults=FaultPlan(checkpoint_cap_rows=2),
        )
        evaluator.plan_for(query, _tiny_bindings(bound))
        result, trace = evaluator.evaluate(query, bound)
        delta = _delta(before)
        assert result == expected
        assert trace.replans >= 1
        assert delta["checkpoint_spills"] >= 1
        assert delta["adaptive_giveups"] == 0
        assert delta["fault_injected"] >= 1
        assert not list(tmp_path.iterdir()), "spill files leaked"

    def test_unbudgeted_cap_pressure_keeps_the_giveup_path(self):
        query, bound = _three_way_case(13)
        expected = evaluate(query, bound)
        reset_kernel_counters()
        before = kernel_counters().snapshot()
        evaluator = EngineEvaluator(
            adaptive=AdaptiveConfig(replan_factor=2.0, replan_min_rows=8),
            faults=FaultPlan(checkpoint_cap_rows=2),
        )
        evaluator.plan_for(query, _tiny_bindings(bound))
        result, trace = evaluator.evaluate(query, bound)
        delta = _delta(before)
        assert result == expected
        assert trace.replans == 0
        assert delta["adaptive_giveups"] >= 1
        assert delta["checkpoint_spills"] == 0


class TestSessionSurfacing:
    def test_serial_fallback_reaches_stats_and_unified_trace(self):
        query, bound = _join_case()
        expected = evaluate(query, bound)
        config = BackendConfig(
            workers=4, parallel_backend="thread", faults=FaultPlan(kill_worker=0)
        )
        with Session(bound, config=config) as session:
            prepared = session.prepare(query)
            with pytest.warns(RuntimeWarning, match="degraded to serial"):
                result = prepared.execute()
            assert result.set_equal(expected)
            trace = prepared.last_trace()
            assert trace.serial_fallbacks == 1
            assert trace.degradations and "serial-fallback" in trace.degradations[0]
            assert trace.summary()["serial_fallbacks"] == 1.0
            assert session.stats()["serial_fallbacks"] == 1

    def test_clean_sessions_report_zero_fallbacks(self):
        query, bound = _join_case()
        with Session(bound, workers=2, parallel_backend="thread") as session:
            prepared = session.prepare(query)
            prepared.execute()
            assert session.stats()["serial_fallbacks"] == 0
            assert prepared.last_trace().serial_fallbacks == 0


class TestFaultEventCrossCheck:
    """Every in-process injected fault must produce a matching ``fault`` event.

    The chaos layer's no-silent-degradation contract extends to the
    observability layer: the ``fault_injected`` kernel-counter delta and
    the event log's ``fault`` count must agree for every in-process
    injection site (serial spill I/O, thread-backend worker kill,
    checkpoint-cap pressure).  Fork-pool children are excluded by
    construction — their counters merge back but their event logs die
    with the child process, which is why these scenarios pin the serial
    and thread paths.
    """

    def _events(self, observer):
        return observer.events

    def test_serial_spill_faults_match_fault_events(self, tmp_path):
        from repro.obs import ObserveConfig

        query, bound = _join_case()
        reset_kernel_counters()
        before = kernel_counters().snapshot()
        evaluator = EngineEvaluator(
            budget=_budget(tmp_path),
            faults=FaultPlan(fail_spill_write_at=2, spill_failures=2),
            observe=ObserveConfig(events=True, metrics=False),
        )
        result, _ = evaluator.evaluate(query, bound)
        assert result == evaluate(query, bound)
        delta = _delta(before)
        events = evaluator.observer.events
        assert delta["fault_injected"] >= 1
        assert len(events.events("fault")) == delta["fault_injected"]
        assert all(
            event["site"].startswith("spill-") for event in events.events("fault")
        )
        # Retries are events too: each spill_retries increment logged one.
        assert len(events.events("spill-retry")) == delta["spill_retries"]

    def test_persistent_fault_logs_every_injection_before_raising(self, tmp_path):
        from repro.obs import ObserveConfig

        query, bound = _join_case()
        reset_kernel_counters()
        before = kernel_counters().snapshot()
        evaluator = EngineEvaluator(
            budget=_budget(tmp_path),
            faults=FaultPlan(fail_spill_write_at=1, persistent=True),
            observe=ObserveConfig(events=True, metrics=False),
        )
        with pytest.raises(EngineFaultError):
            evaluator.evaluate(query, bound)
        delta = _delta(before)
        events = evaluator.observer.events
        assert delta["fault_injected"] >= 1
        assert len(events.events("fault")) == delta["fault_injected"]

    def test_thread_worker_kill_logs_fault_and_fallback_events(self):
        query, bound = _join_case()
        reset_kernel_counters()
        before = kernel_counters().snapshot()
        config = BackendConfig(
            workers=4,
            parallel_backend="thread",
            faults=FaultPlan(kill_worker=1),
            observe=True,
        )
        with Session(bound, config=config) as session:
            with pytest.warns(RuntimeWarning, match="degraded to serial"):
                session.prepare(query).execute()
            events = session.events()
            delta = _delta(before)
            faults = events.events("fault")
            assert delta["fault_injected"] >= 1
            assert len(faults) == delta["fault_injected"]
            assert any(event["site"] == "worker-kill" for event in faults)
            assert len(events.events("serial-fallback")) == delta["serial_fallbacks"]

    def test_checkpoint_cap_pressure_logs_fault_and_checkpoint_events(self, tmp_path):
        from repro.obs import ObserveConfig

        query, bound = _three_way_case(11)
        reset_kernel_counters()
        before = kernel_counters().snapshot()
        evaluator = EngineEvaluator(
            budget=_budget(tmp_path, rows=64),
            adaptive=AdaptiveConfig(replan_factor=2.0, replan_min_rows=8),
            faults=FaultPlan(checkpoint_cap_rows=2),
            observe=ObserveConfig(events=True, metrics=False),
        )
        evaluator.plan_for(query, _tiny_bindings(bound))
        result, trace = evaluator.evaluate(query, bound)
        assert result == evaluate(query, bound)
        delta = _delta(before)
        events = evaluator.observer.events
        assert delta["fault_injected"] >= 1
        assert len(events.events("fault")) == delta["fault_injected"]
        assert any(
            event["site"] == "checkpoint-cap" for event in events.events("fault")
        )
        assert len(events.events("replan")) == trace.replans >= 1
        assert events.events("checkpoint-spill"), "cap pressure must spill"

    def test_unfaulted_run_logs_no_fault_events(self, tmp_path):
        from repro.obs import ObserveConfig

        query, bound = _join_case()
        evaluator = EngineEvaluator(
            budget=_budget(tmp_path),
            observe=ObserveConfig(events=True, metrics=False),
        )
        evaluator.evaluate(query, bound)
        assert evaluator.observer.events.events("fault") == []


_SHUTDOWN_SCRIPT = """
import glob, os, sys
from repro.engine import MemoryBudget, MemoryMeter, SpillingSeenSet

spill_dir = sys.argv[1]
budget = MemoryBudget(rows=4, spill_fanout=2, spill_dir=spill_dir)
meter = MemoryMeter(budget.rows)

# An abandoned spilled seen-set: it switched to partition files, and close()
# is never called — only the atexit registry can remove its directory.
seen = SpillingSeenSet(meter, budget)
seen.filter_block([(i,) for i in range(50)])
assert seen.spilled, "the 50-row block must overflow the 4-row budget"
left = sorted(glob.glob(os.path.join(spill_dir, "*")))
assert left, "the spilled set must own a live temp directory"
print("LEFT-BEHIND:" + ";".join(left))
"""


class TestShutdownCleanup:
    def test_spill_dirs_are_removed_at_interpreter_shutdown(self, tmp_path):
        """Abandoned and faulted executions leave no temp dirs after exit:
        the ``atexit`` registry sweeps whatever a ``finally`` never reached."""
        env = dict(os.environ, PYTHONPATH="src")
        process = subprocess.run(
            [sys.executable, "-c", _SHUTDOWN_SCRIPT, str(tmp_path)],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            timeout=120,
        )
        assert process.returncode == 0, process.stderr
        assert not list(tmp_path.iterdir()), (
            f"spill dirs survived interpreter shutdown: {list(tmp_path.iterdir())}\n"
            f"stdout: {process.stdout}"
        )

    def test_fault_cleanup_needs_no_shutdown(self, tmp_path):
        """The typed-error path cleans up immediately — shutdown is only the
        backstop for abandoned iterators."""
        query, bound = _join_case()
        evaluator = EngineEvaluator(
            budget=_budget(tmp_path),
            faults=FaultPlan(fail_spill_write_at=1, persistent=True),
        )
        with pytest.raises(EngineFaultError):
            evaluator.evaluate(query, bound)
        assert not glob.glob(str(tmp_path / "*"))
