"""Smoke tests for the example scripts.

The faster examples are executed end-to-end in a subprocess (they contain
their own assertions); the heavier ones are only checked for importability of
the functions they use, keeping the unit-test suite quick.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "serving.py",
    "satisfiability_via_queries.py",
    "query_equivalence.py",
]

ALL_EXAMPLES = FAST_EXAMPLES + ["counting_assignments.py", "intermediate_blowup.py"]


class TestExampleScripts:
    def test_all_examples_exist(self):
        for name in ALL_EXAMPLES:
            assert (EXAMPLES_DIR / name).is_file(), name

    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_fast_examples_run_cleanly(self, name):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / name)],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.strip(), "example produced no output"

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_examples_compile(self, name):
        source = (EXAMPLES_DIR / name).read_text()
        compile(source, name, "exec")

    def test_examples_have_module_docstrings(self):
        for name in ALL_EXAMPLES:
            source = (EXAMPLES_DIR / name).read_text()
            assert source.lstrip().startswith('"""'), f"{name} lacks a docstring"
