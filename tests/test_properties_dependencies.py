"""Property-based tests for dependencies, DIMACS round-trips, and scheme algebra."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import (
    FunctionalDependency,
    Relation,
    RelationScheme,
    closure,
    implies_fd,
    project_join_satisfies,
)
from repro.sat import CNFFormula, count_models_bruteforce, parse_dimacs, to_dimacs
from repro.sat.literals import Clause, Literal

ATTRIBUTES = ("A", "B", "C", "D")

COMMON_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def functional_dependencies(draw):
    determinant = draw(
        st.lists(st.sampled_from(ATTRIBUTES), min_size=1, max_size=3, unique=True)
    )
    dependent = draw(
        st.lists(st.sampled_from(ATTRIBUTES), min_size=1, max_size=3, unique=True)
    )
    return FunctionalDependency.of(determinant, dependent)


@st.composite
def attribute_subsets(draw, min_size=1):
    return draw(
        st.lists(st.sampled_from(ATTRIBUTES), min_size=min_size, max_size=4, unique=True)
    )


@st.composite
def small_relations(draw):
    rows = draw(
        st.lists(
            st.tuples(*[st.integers(0, 2) for _ in ATTRIBUTES]), min_size=0, max_size=8
        )
    )
    return Relation.from_rows(RelationScheme(ATTRIBUTES), rows)


class TestClosureProperties:
    @COMMON_SETTINGS
    @given(attribute_subsets(), st.lists(functional_dependencies(), max_size=5))
    def test_closure_is_extensive(self, attributes, dependencies):
        assert set(attributes) <= closure(attributes, dependencies)

    @COMMON_SETTINGS
    @given(attribute_subsets(), st.lists(functional_dependencies(), max_size=5))
    def test_closure_is_idempotent(self, attributes, dependencies):
        once = closure(attributes, dependencies)
        assert closure(sorted(once), dependencies) == once

    @COMMON_SETTINGS
    @given(attribute_subsets(), attribute_subsets(), st.lists(functional_dependencies(), max_size=5))
    def test_closure_is_monotone(self, smaller, larger, dependencies):
        union = sorted(set(smaller) | set(larger))
        assert closure(smaller, dependencies) <= closure(union, dependencies)

    @COMMON_SETTINGS
    @given(st.lists(functional_dependencies(), max_size=5), functional_dependencies())
    def test_implied_fds_hold_in_every_satisfying_instance(self, dependencies, candidate):
        # Soundness of the closure-based implication test, checked on a fixed
        # small instance that satisfies the premise dependencies.
        relation = Relation.from_rows(RelationScheme(ATTRIBUTES), [(0, 0, 0, 0), (1, 1, 1, 1)])
        if not all(dep.holds_in(relation) for dep in dependencies):
            return
        if implies_fd(dependencies, candidate):
            assert candidate.holds_in(relation)


class TestJoinDependencyProperties:
    @COMMON_SETTINGS
    @given(small_relations())
    def test_full_scheme_component_always_satisfied(self, relation):
        assert project_join_satisfies(relation, [RelationScheme(ATTRIBUTES)])

    @COMMON_SETTINGS
    @given(small_relations(), attribute_subsets(), attribute_subsets())
    def test_satisfaction_matches_direct_definition(self, relation, first, second):
        from repro.algebra import project_join

        components = [RelationScheme(first), RelationScheme(second)]
        union = components[0].union(components[1])
        expected = (
            union == relation.scheme
            and project_join(relation, components) == relation
        )
        assert project_join_satisfies(relation, components) == expected


class TestDimacsRoundTripProperties:
    @COMMON_SETTINGS
    @given(
        st.lists(
            st.lists(
                st.tuples(st.integers(1, 5), st.booleans()), min_size=1, max_size=4
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_model_count_survives_round_trip(self, raw_clauses):
        clauses = [
            Clause(Literal(f"x{index}", positive) for index, positive in raw)
            for raw in raw_clauses
        ]
        formula = CNFFormula(clauses)
        # Present the formula over x1..x5 so unused variables are preserved by
        # the DIMACS header and the model counts stay comparable.
        formula = formula.with_variables([f"x{i}" for i in range(1, 6)])
        recovered = parse_dimacs(to_dimacs(formula))
        assert recovered.num_variables == formula.num_variables
        assert count_models_bruteforce(recovered) == count_models_bruteforce(formula)
