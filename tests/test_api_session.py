"""Tests of the unified Session / PreparedQuery facade (`repro.api`).

Four layers:

* **Contract** — prepare parses/validates/compiles once (registry hits on
  re-prepare, plan-cache hits on re-execute), every backend serves the same
  results behind one ``QueryResult`` / ``UnifiedTrace`` shape, and the
  config/binding error paths fail loudly.
* **Invalidation** — replacing a relation (construction-is-invalidation)
  makes exactly the prepared queries that read it re-bind and re-plan on
  their next execution; everything else keeps its pinned plan.
* **Serving** — one session serves >= 8 distinct prepared queries
  concurrently across a shared budget/worker configuration, with per-query
  results pinned to the seed reference implementation and the counters
  proving no re-planning happened in the steady state.
* **Traces** — the unified trace satisfies the protocol on every backend,
  and legacy field pokes go through the deprecation shim.
"""

import threading
import warnings
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro
from repro.algebra import Relation, naive_natural_join, naive_project
from repro.algebra.database import Database
from repro.api import (
    BACKENDS,
    BackendConfig,
    PreparedQuery,
    QueryResult,
    Session,
    SessionClosedError,
    SessionError,
    TraceLike,
    UnifiedTrace,
    UnknownBackendError,
    connect,
)
from repro.engine.physical import MemoryBudget
from repro.expressions import EvaluationTrace
from repro.expressions.ast import ExpressionError, Join, Operand, Projection


def _reference(expression, bound):
    """Evaluate with the retained seed implementations (the ground truth)."""
    if isinstance(expression, Operand):
        return bound[expression.name]
    if isinstance(expression, Projection):
        return naive_project(_reference(expression.child, bound), expression.target)
    parts = [_reference(part, bound) for part in expression.parts]
    result = parts[0]
    for part in parts[1:]:
        result = naive_natural_join(result, part)
    return result


@pytest.fixture
def relations():
    r = Relation.from_rows(
        "A B", [(1, "x"), (2, "y"), (2, "z"), (3, "x")], name="R"
    )
    s = Relation.from_rows("B C", [("x", 10), ("y", 20), ("z", 20)], name="S")
    return {"R": r, "S": s}


@pytest.fixture
def session(relations):
    with Session(relations) as active:
        yield active


QUERY_TEXT = "project[A, C](R * S)"


class TestSessionContract:
    def test_prepare_from_text_and_ast_hit_the_same_registry_entry(self, session, relations):
        from_text = session.prepare(QUERY_TEXT)
        ast = Projection(
            ["A", "C"],
            Join(
                (
                    Operand("R", relations["R"].scheme),
                    Operand("S", relations["S"].scheme),
                )
            ),
        )
        assert session.prepare(ast) is from_text
        assert session.stats()["prepares"] == 1
        assert session.stats()["registry_hits"] == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_backend_matches_the_seed_reference(self, session, relations, backend):
        prepared = session.prepare(QUERY_TEXT, backend=backend)
        result = prepared.execute()
        expression = prepared.expression
        reference = _reference(expression, relations)
        assert result.set_equal(reference)
        assert result.backend == backend
        assert isinstance(result, QueryResult)
        assert len(result) == len(reference)

    def test_repeated_execute_hits_the_plan_cache(self, session):
        prepared = session.prepare(QUERY_TEXT)
        for _ in range(5):
            prepared.execute()
        stats = session.stats()
        assert stats["plan_builds"] == 1
        assert stats["plan_cache_hits"] == 5
        assert stats["executes"] == 5

    def test_execute_convenience_prepares_once(self, session):
        first = session.execute(QUERY_TEXT)
        second = session.execute(QUERY_TEXT)
        assert first == second
        assert session.stats()["prepares"] == 1
        assert session.stats()["registry_hits"] == 1

    def test_per_execute_binding_overrides_do_not_touch_the_pin(self, session, relations):
        prepared = session.prepare(QUERY_TEXT)
        baseline = prepared.execute()
        shrunk = Relation.from_rows("A B", [(1, "x")], name="R")
        overridden = prepared.execute(R=shrunk)
        assert overridden.set_equal(
            _reference(prepared.expression, {"R": shrunk, "S": relations["S"]})
        )
        # The override was this execution only; the pinned binding is intact.
        assert prepared.execute() == baseline
        assert session.stats()["plan_builds"] == 1

    def test_execute_rejects_unknown_override_names(self, session, relations):
        prepared = session.prepare(QUERY_TEXT)
        with pytest.raises(SessionError, match="operands"):
            prepared.execute(T=relations["R"])

    def test_execute_rejects_mismatched_override_scheme(self, session):
        prepared = session.prepare(QUERY_TEXT)
        wrong = Relation.from_rows("A D", [(1, 2)])
        with pytest.raises(ExpressionError):
            prepared.execute(R=wrong)

    def test_prepare_rejects_unknown_operands_and_backends(self, session):
        with pytest.raises(SessionError, match="no relation named"):
            session.prepare(
                Projection(["Z"], Operand("T", Relation.from_rows("Z", [(1,)]).scheme))
            )
        with pytest.raises(UnknownBackendError):
            session.prepare(QUERY_TEXT, backend="turbo")
        with pytest.raises(UnknownBackendError):
            BackendConfig(backend="turbo")

    def test_explain_names_the_backend_everywhere(self, session):
        for backend in BACKENDS:
            text = session.prepare(QUERY_TEXT, backend=backend).explain()
            assert text.startswith(f"backend: {backend}")
            assert "project[A, C](R * S)" in text
        assert "hash join" in session.prepare(QUERY_TEXT, backend="engine").explain()
        assert "rewritten" in session.prepare(QUERY_TEXT, backend="optimized").explain()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_contains_is_backend_agnostic(self, session, relations, backend):
        prepared = session.prepare(QUERY_TEXT, backend=backend)
        reference = _reference(prepared.expression, relations)
        inside = next(iter(reference))
        assert prepared.contains(inside)
        assert not prepared.contains(("no-such", "tuple"))

    def test_closed_session_refuses_everything(self, relations):
        session = Session(relations)
        prepared = session.prepare(QUERY_TEXT)
        session.close()
        session.close()  # idempotent
        assert session.closed
        with pytest.raises(SessionClosedError):
            prepared.execute()
        with pytest.raises(SessionClosedError):
            session.prepare("project[A](R)")
        with pytest.raises(SessionClosedError):
            session.set_relation("R", relations["R"])

    def test_database_and_bare_relation_constructors(self, relations):
        with Session(Database(relations)) as from_database:
            assert len(from_database.execute(QUERY_TEXT)) > 0
        bare = Relation.from_rows("A B", [(1, 1), (2, 1)], name="T")
        with connect(bare) as single:
            assert len(single.execute("project[A](T)")) == 2
            # Unnamed operands fall back to the bare relation by scheme.
            expr = Projection(["B"], Operand("Anything", bare.scheme))
            assert len(single.execute(expr)) == 1
        with pytest.raises(SessionError):
            Session(42)

    def test_bare_relation_without_a_name_cannot_parse_text(self):
        anonymous = Relation.from_rows("A B", [(1, 1)])
        with Session(anonymous) as session:
            with pytest.raises(SessionError, match="carry a name"):
                session.prepare("project[A](T)")

    def test_config_validation(self):
        with pytest.raises(SessionError):
            BackendConfig(workers=0)
        with pytest.raises(SessionError):
            BackendConfig(max_pools=0)
        config = BackendConfig(budget=64)
        assert isinstance(config.budget, MemoryBudget)
        assert config.override(workers=2).workers == 2


class TestInvalidation:
    def test_mutation_replans_only_the_affected_queries(self, session, relations):
        reads_both = session.prepare(QUERY_TEXT)
        reads_s = session.prepare("project[C](S)")
        reads_both.execute()
        reads_s.execute()
        assert session.stats()["plan_builds"] == 2

        replacement = Relation.from_rows("A B", [(9, "x"), (8, "w")], name="R")
        session.set_relation("R", replacement)
        after_both = reads_both.execute()
        after_s = reads_s.execute()

        assert after_both.set_equal(
            _reference(reads_both.expression, {"R": replacement, "S": relations["S"]})
        )
        assert after_s.set_equal(_reference(reads_s.expression, relations))
        stats = session.stats()
        assert stats["invalidations"] == 1
        # Only the query reading R re-planned; S's query kept its plan.
        assert stats["invalidation_replans"] == 1
        assert stats["plan_builds"] == 3

    def test_mutation_installs_fresh_statistics(self, session):
        prepared = session.prepare(QUERY_TEXT, backend="engine")
        prepared.execute()
        replacement = Relation.from_rows(
            "A B", [(i, "x") for i in range(50)], name="R"
        )
        session.set_relation("R", replacement)
        trace = prepared.execute().trace
        # The replan saw the new cardinalities (construction-is-invalidation:
        # the fresh relation's stats slot was computed from the new rows).
        assert trace.input_cardinality == 50 + 3

    def test_default_relation_mutation(self):
        bare = Relation.from_rows("A B", [(1, 1), (2, 2)], name="T")
        with Session(bare) as session:
            prepared = session.prepare("project[A](T)")
            assert len(prepared.execute()) == 2
            session.set_default_relation(
                Relation.from_rows("A B", [(5, 5)], name="T")
            )
            assert len(prepared.execute()) == 1
            assert session.stats()["invalidation_replans"] == 1

    def test_set_default_relation_requires_bare_mode(self, session, relations):
        with pytest.raises(SessionError, match="bare relation"):
            session.set_default_relation(relations["R"])

    def test_set_relation_type_checks(self, session):
        with pytest.raises(SessionError, match="Relation"):
            session.set_relation("R", "not a relation")


def _serving_workload():
    """A shared database plus 10 distinct queries over it."""
    r = Relation.from_rows(
        "A B", [(i % 5, i % 3) for i in range(30)], name="R"
    )
    s = Relation.from_rows(
        "B C", [(i % 3, i % 7) for i in range(30)], name="S"
    )
    t = Relation.from_rows(
        "C D", [(i % 7, i % 2) for i in range(30)], name="T"
    )
    relations = {"R": r, "S": s, "T": t}
    r_op = Operand("R", r.scheme)
    s_op = Operand("S", s.scheme)
    t_op = Operand("T", t.scheme)
    queries = [
        Projection(["A"], Join((r_op, s_op))),
        Projection(["A", "C"], Join((r_op, s_op))),
        Projection(["B", "D"], Join((s_op, t_op))),
        Projection(["A", "D"], Join((r_op, s_op, t_op))),
        Projection(["D"], Join((r_op, s_op, t_op))),
        Projection(["C"], Join((s_op, t_op))),
        Projection(["B"], r_op),
        Projection(["A", "B"], Join((r_op, Projection(["B"], s_op)))),
        Projection(["C", "D"], t_op),
        Projection(["A", "C", "D"], Join((r_op, s_op, t_op))),
    ]
    return relations, queries


class TestConcurrentServing:
    def test_one_session_serves_many_prepared_queries_concurrently(self, tmp_path):
        """The acceptance scenario: >= 8 distinct PreparedQuerys on one
        Session, concurrent executes sharing one budget/worker config, every
        result set-equal to the seed reference, prepare() exactly once per
        query (all steady-state executes are plan-cache hits)."""
        relations, queries = _serving_workload()
        references = {
            query: _reference(query, relations) for query in queries
        }
        budget = MemoryBudget(
            rows=64, spill_fanout=2, min_partition_rows=2, spill_dir=str(tmp_path)
        )
        rounds = 3
        with Session(
            relations,
            backend="engine",
            budget=budget,
            workers=2,
            parallel_backend="thread",
        ) as session:
            prepared = [session.prepare(query) for query in queries]
            assert len(prepared) >= 8
            failures = []

            def serve(query_index, _round):
                try:
                    result = prepared[query_index].execute()
                    if not result.set_equal(references[queries[query_index]]):
                        failures.append((query_index, "result mismatch"))
                except BaseException as exc:
                    failures.append((query_index, repr(exc)))

            with ThreadPoolExecutor(max_workers=8) as pool:
                for round_index in range(rounds):
                    list(
                        pool.map(
                            lambda index: serve(index, round_index),
                            range(len(prepared)),
                        )
                    )
            assert failures == []
            stats = session.stats()
            assert stats["prepares"] == len(queries)
            # prepare() compiled each query exactly once ...
            assert stats["plan_builds"] == len(queries)
            # ... and every execute reused its pinned plan.
            assert stats["executes"] == rounds * len(queries)
            assert stats["plan_cache_hits"] == rounds * len(queries)
            assert stats["invalidation_replans"] == 0
        assert not any(tmp_path.iterdir()), "budget spill files leaked"

    def test_mixed_backend_traffic_on_one_session(self):
        relations, queries = _serving_workload()
        with Session(relations) as session:
            for index, query in enumerate(queries[:8]):
                backend = BACKENDS[index % len(BACKENDS)]
                result = session.prepare(query, backend=backend).execute()
                assert result.set_equal(_reference(query, relations)), backend


class TestUnifiedTrace:
    def test_every_backend_satisfies_the_protocol(self, session):
        for backend in BACKENDS:
            trace = session.prepare(QUERY_TEXT, backend=backend).trace()
            assert isinstance(trace, UnifiedTrace)
            assert isinstance(trace, TraceLike)
            assert trace.backend == backend
            assert trace.result_cardinality == len(
                session.prepare(QUERY_TEXT, backend=backend).execute()
            )
            assert trace.input_cardinality == 7
            assert trace.steps, backend  # trace() always records steps
            assert trace.peak_memory_rows > 0
            assert isinstance(trace.counters, dict)
            summary = trace.summary()
            assert summary["peak_memory_rows"] == float(trace.peak_memory_rows)

    def test_backend_traces_satisfy_the_protocol_directly(self):
        assert isinstance(EvaluationTrace(), TraceLike)

    def test_engine_trace_reports_live_rows_not_materialised_peaks(self, session):
        engine = session.prepare(QUERY_TEXT, backend="engine").trace()
        materialising = session.prepare(QUERY_TEXT, backend="instrumented").trace()
        assert engine.peak_live_rows > 0
        assert materialising.peak_live_rows == 0
        assert materialising.peak_memory_rows == (
            materialising.peak_intermediate_cardinality
        )

    def test_naive_execute_returns_a_minimal_trace(self, session):
        result = session.prepare(QUERY_TEXT, backend="naive").execute()
        assert result.trace.steps == []
        assert result.trace.result_cardinality == len(result)
        # ... while trace() upgrades to the instrumented evaluation.
        assert session.prepare(QUERY_TEXT, backend="naive").trace().steps

    def test_legacy_field_pokes_warn_through_the_shim(self, session):
        trace = session.prepare(QUERY_TEXT, backend="instrumented").trace()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            activity = trace.kernel_activity
            blowup = trace.blowup_versus_input()
        assert activity == trace.counters
        assert blowup >= 0.0
        assert len(caught) == 2
        assert all(
            issubclass(warning.category, DeprecationWarning) for warning in caught
        )
        with pytest.raises(AttributeError):
            trace.not_a_trace_field

    def test_last_trace_tracks_the_most_recent_execution(self, session):
        prepared = session.prepare(QUERY_TEXT)
        assert prepared.last_trace() is None
        result = prepared.execute()
        assert prepared.last_trace() is result.trace


class TestQueryResult:
    def test_result_behaves_like_its_relation(self, session, relations):
        prepared = session.prepare(QUERY_TEXT)
        result = prepared.execute()
        reference = _reference(prepared.expression, relations)
        assert len(result) == len(reference)
        assert set(result) == set(reference)
        assert next(iter(reference)) in result
        assert result == prepared.execute()
        assert result.set_equal(reference)
        assert "QueryResult" in repr(result)
        assert result.scheme.name_set == {"A", "C"}
        assert "A" in result.to_table()

    def test_facade_is_exported_from_the_package_root(self):
        assert repro.Session is Session
        assert repro.PreparedQuery is PreparedQuery
        with repro.connect({"R": Relation.from_rows("A", [(1,)], name="R")}) as db:
            assert len(db.execute("project[A](R)")) == 1


class TestReviewRegressions:
    """Pins for defects found in review: default-binding invalidation,
    budgeted membership probes, stale-pool teardown, trace() validation."""

    def test_set_relation_invalidates_default_bound_queries(self):
        """A named relation installed *after* prepare shadows the bare
        default for that operand — the prepared query must notice."""
        bare = Relation.from_rows("A B", [(1, 1), (2, 2)], name="R")
        with Session(bare) as session:
            prepared = session.prepare("project[A](R)")
            assert len(prepared.execute()) == 2
            session.set_relation("R", Relation.from_rows("A B", [(9, 9)], name="R"))
            result = prepared.execute()
            assert sorted(tuple(row) for row in result.relation.rows) == [(9,)]
            assert session.stats()["invalidation_replans"] == 1

    def test_contains_honours_the_session_budget(self, tmp_path):
        """An engine-backed membership probe on a budgeted session must
        spill like an execute, not build unbounded hash tables."""
        from repro.perf import kernel_counters

        heavy = Relation.from_rows(
            "A B", [(i % 3, i) for i in range(40)], name="R"
        )
        wide = Relation.from_rows(
            "B C", [(i, i % 5) for i in range(40)], name="S"
        )
        budget = MemoryBudget(
            rows=8, spill_fanout=2, min_partition_rows=2, spill_dir=str(tmp_path)
        )
        with Session({"R": heavy, "S": wide}, backend="engine", budget=budget) as session:
            prepared = session.prepare("project[A, C](R * S)")
            reference = _reference(
                prepared.expression, {"R": heavy, "S": wide}
            )
            inside = next(iter(reference))
            counters = kernel_counters()
            before = counters.snapshot()
            assert prepared.contains(inside)
            delta = counters.delta_since(before)
            assert delta["join_spills"] > 0, (
                "membership probe ignored the session budget (no spill)"
            )
            assert session.stats()["executes"] == 1
        assert not any(tmp_path.iterdir())

    def test_forget_plan_closes_the_stale_plans_pools(self):
        """Invalidation must not strand forked workers behind unreachable
        LRU keys."""
        from repro.engine import EngineEvaluator, default_backend

        if default_backend() != "fork":
            pytest.skip("fork start method unavailable on this platform")
        relation = Relation.from_rows("A B", [(i % 3, i) for i in range(8)])
        other = Relation.from_rows("B C", [(i, i % 2) for i in range(8)])
        query = Projection(
            ["A"],
            Join((Operand("R", relation.scheme), Operand("S", other.scheme))),
        )
        evaluator = EngineEvaluator(workers=2, max_pools=4)
        try:
            evaluator.evaluate(query, {"R": relation, "S": other})
            assert evaluator.open_pools == 1
            processes = [
                process
                for entry in evaluator._pools.values()
                for process in entry[-1]._processes
            ]
            evaluator.forget_plan(query)
            assert evaluator.open_pools == 0
            for process in processes:
                process.join(timeout=5.0)
            assert not any(process.is_alive() for process in processes)
        finally:
            evaluator.close()

    def test_trace_rejects_unknown_override_names_on_every_backend(self, session, relations):
        for backend in BACKENDS:
            prepared = session.prepare(QUERY_TEXT, backend=backend)
            with pytest.raises(SessionError, match="operands"):
                prepared.trace(Enrolment=relations["R"])
