"""Unit tests for repro.algebra.tuples."""

import pytest

from repro.algebra import (
    Attribute,
    Domain,
    DomainError,
    ProjectionError,
    RelationScheme,
    RelationTuple,
    TupleSchemeMismatch,
    as_tuple,
)

SCHEME = RelationScheme.of("A", "B", "C")


def make(a=1, b=2, c=3):
    return RelationTuple(SCHEME, {"A": a, "B": b, "C": c})


class TestConstruction:
    def test_from_mapping(self):
        tup = make()
        assert tup["A"] == 1 and tup["C"] == 3

    def test_from_values_follows_scheme_order(self):
        tup = RelationTuple.from_values(SCHEME, (10, 20, 30))
        assert tup["B"] == 20

    def test_missing_attribute_rejected(self):
        with pytest.raises(TupleSchemeMismatch):
            RelationTuple(SCHEME, {"A": 1, "B": 2})

    def test_extra_attribute_rejected(self):
        with pytest.raises(TupleSchemeMismatch):
            RelationTuple(SCHEME, {"A": 1, "B": 2, "C": 3, "D": 4})

    def test_wrong_value_count_rejected(self):
        with pytest.raises(TupleSchemeMismatch):
            RelationTuple.from_values(SCHEME, (1, 2))

    def test_domain_validation(self):
        constrained = RelationScheme([Attribute("A", Domain.of("bool", [0, 1]))])
        with pytest.raises(DomainError):
            RelationTuple(constrained, {"A": 7})


class TestMappingProtocol:
    def test_len_iter_contains(self):
        tup = make()
        assert len(tup) == 3
        assert list(tup) == ["A", "B", "C"]
        assert "A" in tup and "Z" not in tup

    def test_getitem_by_attribute_object(self):
        assert make()[Attribute("B")] == 2

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            make()["Z"]

    def test_equality_and_hash(self):
        assert make() == make()
        assert hash(make()) == hash(make())
        assert make(a=9) != make()

    def test_equality_ignores_scheme_presentation_order(self):
        reordered = RelationScheme.of("C", "B", "A")
        assert make() == RelationTuple(reordered, {"A": 1, "B": 2, "C": 3})

    def test_as_dict_round_trip(self):
        assert make().as_dict() == {"A": 1, "B": 2, "C": 3}

    def test_values_in_order(self):
        assert make().values_in_order() == (1, 2, 3)
        assert make().values_in_order(["C", "A"]) == (3, 1)


class TestRelationalOperations:
    def test_project_is_restriction(self):
        projected = make().project("A C")
        assert dict(projected) == {"A": 1, "C": 3}

    def test_project_outside_scheme_rejected(self):
        with pytest.raises(ProjectionError):
            make().project("A Z")

    def test_joins_with_agreement(self):
        other_scheme = RelationScheme.of("B", "D")
        other = RelationTuple(other_scheme, {"B": 2, "D": 9})
        assert make().joins_with(other)
        joined = make().joined(other)
        assert dict(joined) == {"A": 1, "B": 2, "C": 3, "D": 9}

    def test_joins_with_disagreement(self):
        other = RelationTuple(RelationScheme.of("B", "D"), {"B": 99, "D": 9})
        assert not make().joins_with(other)
        with pytest.raises(TupleSchemeMismatch):
            make().joined(other)

    def test_join_with_disjoint_scheme_is_concatenation(self):
        other = RelationTuple(RelationScheme.of("D"), {"D": 4})
        assert dict(make().joined(other)) == {"A": 1, "B": 2, "C": 3, "D": 4}

    def test_extended(self):
        extended = make().extended({"D": 4})
        assert extended["D"] == 4
        with pytest.raises(TupleSchemeMismatch):
            make().extended({"A": 9})

    def test_renamed(self):
        renamed = make().renamed({"A": "Z"})
        assert renamed["Z"] == 1
        assert "A" not in renamed


class TestCoercion:
    def test_as_tuple_from_mapping_and_sequence(self):
        assert as_tuple(SCHEME, {"A": 1, "B": 2, "C": 3}) == make()
        assert as_tuple(SCHEME, (1, 2, 3)) == make()

    def test_as_tuple_passthrough_checks_scheme(self):
        assert as_tuple(SCHEME, make()) == make()
        with pytest.raises(TupleSchemeMismatch):
            as_tuple(RelationScheme.of("A", "B"), make())
