"""Tests for :mod:`repro.engine.planstore`: the plan & statistics store.

Pins the learning loop layer by layer — the sample cache's
identity-keyed warmth (rebinding is invalidation), the observed-
cardinality ledger's material-change versioning and column-key
disambiguation, re-pinning after a mid-stream re-plan (zero further
replans steady-state), proactive drift re-planning, and the serving
facade's scoped invalidation: replacing one relation drops *that*
relation's learned state and nothing else (the stale-stats regression
contract), while the invalidation-replan path must not wipe truth
learned about unchanged relations.
"""

import pytest

from repro.algebra import Relation
from repro.api import Session, SessionError
from repro.engine import (
    AdaptiveConfig,
    CardinalityLedger,
    EngineEvaluator,
    PlanStore,
    PlanStoreConfig,
    SampleCache,
)
from repro.expressions.ast import Operand, Projection
from repro.perf import kernel_counters


def _relations(rows: int = 200):
    """Three chained relations whose joins fan out through small domains."""
    return {
        "R": Relation.from_rows(
            "A B", [(i % 40, i % 11) for i in range(rows)], name="R"
        ),
        "S": Relation.from_rows(
            "B C", [(i % 11, i % 17) for i in range(rows)], name="S"
        ),
        "T": Relation.from_rows(
            "C D", [(i % 17, i % 7) for i in range(rows)], name="T"
        ),
    }


def _tiny(relations):
    """One-row stand-ins over the same schemes (misleading statistics)."""
    return {
        name: Relation.from_rows(
            relation.scheme, [tuple(1 for _ in relation.scheme.names)]
        )
        for name, relation in relations.items()
    }


R_JOIN_S = Operand("R", "A B").join(Operand("S", "B C"))
S_JOIN_T = Operand("S", "B C").join(Operand("T", "C D"))
THREE_WAY = Projection(
    ["A", "D"],
    Operand("R", "A B").join(Operand("S", "B C")).join(Operand("T", "C D")),
)

#: Adaptive sampling without mid-stream re-planning: the guard factor is
#: set far beyond any estimate error these instances produce, so tests
#: that target the drift path see no mid-stream corrections.
NO_REPLAN = AdaptiveConfig(replan_factor=1e9)


class TestPlanStoreConfig:
    def test_coerce_none_and_false_disable(self):
        assert PlanStoreConfig.coerce(None) is None
        assert PlanStoreConfig.coerce(False) is None
        assert PlanStore.coerce(None) is None
        assert PlanStore.coerce(False) is None

    def test_coerce_true_and_instances_pass_through(self):
        assert PlanStoreConfig.coerce(True) == PlanStoreConfig()
        config = PlanStoreConfig(max_samples=3)
        assert PlanStoreConfig.coerce(config) is config
        store = PlanStore()
        assert PlanStore.coerce(store) is store
        assert PlanStore.coerce(True).config == PlanStoreConfig()

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            PlanStoreConfig(max_samples=0)
        with pytest.raises(ValueError):
            PlanStoreConfig(max_observations=0)
        with pytest.raises(ValueError):
            PlanStoreConfig(drift_threshold=1.0)
        with pytest.raises(ValueError):
            PlanStoreConfig(max_history=0)
        with pytest.raises(TypeError):
            PlanStoreConfig.coerce("yes")

    def test_session_config_rejects_bad_planstore(self):
        with pytest.raises(SessionError):
            Session(_relations(20), planstore="yes")


class TestSampleCache:
    def test_same_identity_hits_equal_relation_misses(self):
        cache = SampleCache()
        relation = Relation.from_rows("A", [(1,)])
        twin = Relation.from_rows("A", [(1,)])
        builds = []
        builder = lambda: builds.append(1) or object()
        first = cache.get_or_build("R", relation, builder)
        assert cache.get_or_build("R", relation, builder) is first
        # An equal-but-rebound relation is a new object: a natural miss.
        cache.get_or_build("R", twin, builder)
        assert (cache.hits, cache.misses) == (1, 2)
        assert len(builds) == 2

    def test_invalidate_name_is_scoped(self):
        cache = SampleCache()
        r, s = Relation.from_rows("A", [(1,)]), Relation.from_rows("B", [(2,)])
        cache.get_or_build("R", r, object)
        cache.get_or_build("S", s, object)
        assert cache.invalidate_name("R") == 1
        assert len(cache) == 1
        cache.get_or_build("S", s, object)
        assert cache.hits == 1  # S stayed warm

    def test_lru_eviction_respects_the_cap(self):
        cache = SampleCache(max_samples=2)
        relations = [Relation.from_rows("A", [(i,)]) for i in range(3)]
        for index, relation in enumerate(relations):
            cache.get_or_build(f"R{index}", relation, object)
        assert len(cache) == 2
        cache.get_or_build("R0", relations[0], object)
        assert cache.misses == 4  # the oldest entry was evicted


class TestCardinalityLedger:
    def test_observe_lookup_roundtrip(self):
        ledger = CardinalityLedger()
        assert ledger.observe(("R", "S"), ("A", "B"), 42)
        assert ledger.lookup(("S", "R"), ("B", "A")) == 42
        assert ledger.lookup(("R", "T"), ("A", "B")) is None

    def test_version_advances_only_on_material_change(self):
        ledger = CardinalityLedger()
        ledger.observe(("R", "S"), ("A",), 100)
        version = ledger.version
        # Identical and near-identical re-observations are immaterial.
        assert not ledger.observe(("R", "S"), ("A",), 100)
        assert not ledger.observe(("R", "S"), ("A",), 110)
        assert ledger.version == version
        assert ledger.observe(("R", "S"), ("A",), 500)
        assert ledger.version == version + 1

    def test_column_key_disambiguates_same_operand_subtrees(self):
        # R ⋈ S and R ⋈ project[B](S) both cover {R, S} but compute
        # different schemes; conflating them would make the ledger
        # oscillate between their cardinalities forever.
        ledger = CardinalityLedger()
        ledger.observe(("R", "S"), ("A", "B", "C"), 5000)
        ledger.observe(("R", "S"), ("A", "B"), 200)
        assert ledger.lookup(("R", "S"), ("A", "B", "C")) == 5000
        assert ledger.lookup(("R", "S"), ("A", "B")) == 200
        version = ledger.version
        ledger.observe(("R", "S"), ("A", "B", "C"), 5000)
        ledger.observe(("R", "S"), ("A", "B"), 200)
        assert ledger.version == version  # steady state stays quiet

    def test_invalidate_name_drops_only_entries_involving_it(self):
        ledger = CardinalityLedger()
        ledger.observe(("R", "S"), ("A",), 10)
        ledger.observe(("S", "T"), ("B",), 20)
        assert ledger.invalidate_name("R") == 1
        assert ledger.lookup(("S", "T"), ("B",)) == 20
        assert ledger.lookup(("R", "S"), ("A",)) is None

    def test_invalidate_subsets_keeps_overlapping_supersets(self):
        ledger = CardinalityLedger()
        ledger.observe(("R", "S"), ("A",), 10)
        ledger.observe(("S", "T"), ("B",), 20)
        ledger.observe(("R", "S", "T"), ("C",), 30)
        assert ledger.invalidate_subsets(frozenset(("R", "S"))) == 1
        assert ledger.lookup(("S", "T"), ("B",)) == 20
        assert ledger.lookup(("R", "S", "T"), ("C",)) == 30

    def test_lru_bound_holds(self):
        ledger = CardinalityLedger(max_observations=2)
        ledger.observe(("A", "B"), ("X",), 1)
        ledger.observe(("B", "C"), ("X",), 2)
        ledger.observe(("C", "D"), ("X",), 3)
        assert len(ledger) == 2
        assert ledger.lookup(("A", "B"), ("X",)) is None


class TestHistory:
    def test_history_is_bounded_by_max_history(self):
        store = PlanStore(PlanStoreConfig(max_history=2))
        for index in range(5):
            store.record("expr", "pinned", ("R",), detail=str(index))
        history = store.history("expr")
        assert len(history) == 2
        assert [record.detail for record in history] == ["3", "4"]

    def test_forget_expression_records_and_scopes(self):
        store = PlanStore()
        store.ledger.observe(("R", "S"), ("A",), 10)
        store.ledger.observe(("S", "T"), ("B",), 20)
        store.forget_expression("expr", frozenset(("R", "S")))
        assert [record.kind for record in store.history("expr")] == ["forgotten"]
        assert store.ledger.lookup(("R", "S"), ("A",)) is None
        assert store.ledger.lookup(("S", "T"), ("B",)) == 20


class TestWarmSamples:
    def test_repeated_builds_stop_resampling(self):
        relations = _relations()
        evaluator = EngineEvaluator(adaptive=NO_REPLAN, planstore=True)
        before = kernel_counters().snapshot()
        evaluator.plan_for(R_JOIN_S, relations)
        first = kernel_counters().delta_since(before)
        assert first["sample_builds"] > 0
        assert first["sample_cache_misses"] > 0
        # A different expression sharing S: only the never-seen T samples.
        evaluator.plan_for(S_JOIN_T, relations)
        mid = kernel_counters().delta_since(before)
        assert mid["sample_builds"] == first["sample_builds"] + 1
        # Forget-then-replan rebuilds the plan from entirely warm samples.
        evaluator.forget_plan(R_JOIN_S)
        evaluator.plan_for(R_JOIN_S, relations)
        delta = kernel_counters().delta_since(before)
        assert delta["sample_builds"] == mid["sample_builds"]
        assert delta["sample_cache_hits"] >= 3
        store = evaluator.planstore
        assert store.stats()["cached_samples"] == 3

    def test_without_a_store_every_build_resamples(self):
        relations = _relations()
        evaluator = EngineEvaluator(adaptive=NO_REPLAN)
        before = kernel_counters().snapshot()
        evaluator.plan_for(R_JOIN_S, relations)
        first = kernel_counters().delta_since(before)["sample_builds"]
        evaluator.forget_plan(R_JOIN_S)
        evaluator.plan_for(R_JOIN_S, relations)
        assert kernel_counters().delta_since(before)["sample_builds"] == 2 * first


class TestRepin:
    def test_mid_stream_replan_is_written_back(self):
        relations = _relations()
        evaluator = EngineEvaluator(
            adaptive=AdaptiveConfig(replan_factor=2.0, replan_min_rows=8),
            planstore=True,
        )
        # Pin against one-row stand-ins: every estimate is catastrophically
        # low, so the first real execution re-plans mid-stream.
        pinned = evaluator.plan_for(THREE_WAY, _tiny(relations))
        result, trace = evaluator.evaluate(THREE_WAY, relations)
        assert trace.replans >= 1
        store = evaluator.planstore
        assert store.repins == 1
        kinds = [record.kind for record in store.history(THREE_WAY)]
        assert kinds[0] == "pinned" and "repin" in kinds
        assert evaluator.pinned_plan(THREE_WAY) is not pinned
        # Steady state: the corrected plan executes with zero further
        # replans and the same answer.
        again, steady = evaluator.evaluate(THREE_WAY, relations)
        assert steady.replans == 0
        assert again == result
        assert store.repins == 1

    def test_repin_can_be_disabled(self):
        relations = _relations()
        evaluator = EngineEvaluator(
            adaptive=AdaptiveConfig(replan_factor=2.0, replan_min_rows=8),
            planstore=PlanStoreConfig(repin=False, drift_threshold=None),
        )
        pinned = evaluator.plan_for(THREE_WAY, _tiny(relations))
        _result, trace = evaluator.evaluate(THREE_WAY, relations)
        assert trace.replans >= 1
        assert evaluator.planstore.repins == 0
        assert evaluator.pinned_plan(THREE_WAY) is pinned


class TestDriftReplan:
    def test_ledger_drift_replans_before_execution(self):
        relations = _relations()
        evaluator = EngineEvaluator(adaptive=NO_REPLAN, planstore=True)
        # Pin against misleading one-row stand-ins, then execute the real
        # relations once: the ledger learns the true cardinalities (far
        # beyond the pinned estimates), so the *next* plan_for re-plans
        # proactively instead of correcting mid-stream.
        evaluator.plan_for(R_JOIN_S, _tiny(relations))
        evaluator.evaluate(R_JOIN_S, relations)
        store = evaluator.planstore
        assert store.stats()["ledger_entries"] > 0
        revised = evaluator.plan_for(R_JOIN_S, relations)
        assert store.drift_replans == 1
        kinds = [record.kind for record in store.history(R_JOIN_S)]
        assert kinds == ["pinned", "drift_replan"]
        # O(1) steady state: the revised plan is stamped with the ledger
        # version it was validated against, so nothing re-plans again.
        assert evaluator.plan_for(R_JOIN_S, relations) is revised
        assert store.drift_replans == 1

    def test_drift_check_can_be_disabled(self):
        relations = _relations()
        evaluator = EngineEvaluator(
            adaptive=NO_REPLAN,
            planstore=PlanStoreConfig(drift_threshold=None),
        )
        pinned = evaluator.plan_for(R_JOIN_S, _tiny(relations))
        evaluator.evaluate(R_JOIN_S, relations)
        assert evaluator.plan_for(R_JOIN_S, relations) is pinned
        assert evaluator.planstore.drift_replans == 0


class TestSessionScopedInvalidation:
    """The stale-stats regression contract: changed relation only."""

    def test_set_relation_drops_only_that_relations_learned_state(self):
        relations = _relations()
        with Session(
            relations, backend="engine", adaptive=NO_REPLAN, planstore=True
        ) as session:
            for expression in (R_JOIN_S, S_JOIN_T):
                session.prepare(expression).execute()
            store = session._planstore
            assert store.ledger.lookup(("R", "S"), ("A", "B", "C")) is not None
            assert store.ledger.lookup(("S", "T"), ("B", "C", "D")) is not None
            replacement = Relation.from_rows(
                "A B", [(i % 5, i % 11) for i in range(40)], name="R"
            )
            session.set_relation("R", replacement)
            # Only R's learned state is gone; S and T stay warm.
            assert store.ledger.lookup(("R", "S"), ("A", "B", "C")) is None
            assert store.ledger.lookup(("S", "T"), ("B", "C", "D")) is not None
            misses_before = store.samples.misses
            result = session.execute(R_JOIN_S)
            assert store.samples.misses == misses_before + 1  # R only
            naive = session.execute(R_JOIN_S, backend="naive")
            assert result.set_equal(naive.relation)

    def test_invalidation_replan_keeps_unchanged_relations_truth(self):
        # The prepared-query invalidation path passes forget_learned=False:
        # re-planning R ⋈ S ⋈ T after R changed must not wipe what was
        # learned about {S, T} (other queries still rely on it).
        relations = _relations()
        with Session(
            relations, backend="engine", adaptive=NO_REPLAN, planstore=True
        ) as session:
            three_way = session.prepare(THREE_WAY)
            three_way.execute()
            session.prepare(S_JOIN_T).execute()
            store = session._planstore
            st_key = (frozenset(("S", "T")), frozenset(("B", "C", "D")))
            assert st_key in store.ledger.snapshot()
            session.set_relation(
                "R",
                Relation.from_rows(
                    "A B", [(i % 3, i % 11) for i in range(30)], name="R"
                ),
            )
            three_way.execute()  # invalidation replan, scoped forget
            assert st_key in store.ledger.snapshot()
            kinds = [record.kind for record in three_way.plan_history()]
            assert "forgotten" in kinds
            assert kinds[-1] == "pinned"  # re-pinned after the replan

    def test_public_forget_plan_drops_learned_state(self):
        relations = _relations()
        with Session(
            relations, backend="engine", adaptive=NO_REPLAN, planstore=True
        ) as session:
            prepared = session.prepare(R_JOIN_S)
            prepared.execute()
            session.prepare(S_JOIN_T).execute()
            store = session._planstore
            assert store.ledger.lookup(("R", "S"), ("A", "B", "C")) is not None
            session.forget_plan(R_JOIN_S)
            # An explicit forget is a full forget for this plan's operands,
            # scoped to subsets: {S, T} is no subset of {R, S} and stays.
            assert store.ledger.lookup(("R", "S"), ("A", "B", "C")) is None
            assert store.ledger.lookup(("S", "T"), ("B", "C", "D")) is not None
            assert prepared.plan_history()[-1].kind == "forgotten"

    def test_set_default_relation_forgets_everything(self):
        # A bare relation binds *any* operand name, so no per-name scoping
        # is possible: replacing it must drop all learned state.
        bare = Relation.from_rows(
            "A B", [(i % 5, i % 7) for i in range(40)], name="R"
        )
        with Session(
            bare, backend="engine", adaptive=NO_REPLAN, planstore=True
        ) as session:
            session.execute(Operand("X", "A B").join(Operand("Y", "A B")))
            store = session._planstore
            assert store.stats()["cached_samples"] > 0
            session.set_default_relation(
                Relation.from_rows("A B", [(1, 2)], name="R")
            )
            stats = store.stats()
            assert stats["ledger_entries"] == 0
            assert stats["cached_samples"] == 0

    def test_session_stats_surface_the_store(self):
        relations = _relations()
        with Session(
            relations, backend="engine", adaptive=NO_REPLAN, planstore=True
        ) as session:
            prepared = session.prepare(R_JOIN_S)
            prepared.execute()
            prepared.execute()
            snapshot = session.stats()["planstore"]
            for key in (
                "sample_cache_hits",
                "sample_cache_misses",
                "cached_samples",
                "ledger_entries",
                "ledger_version",
                "plan_repins",
                "drift_replans",
            ):
                assert key in snapshot
            assert snapshot["cached_samples"] == 2
            assert snapshot["ledger_entries"] >= 1

    def test_sessions_without_a_store_report_none(self):
        with Session(_relations(20), backend="engine") as session:
            assert "planstore" not in session.stats()
            prepared = session.prepare(R_JOIN_S)
            assert prepared.plan_history() == ()
