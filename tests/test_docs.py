"""Executable documentation: every fenced ``python`` block must run.

The docs are part of the contract surface — PR after PR has shown that
prose drifts from code faster than tests do — so this harness extracts
every fenced code block from ``README.md`` and ``docs/*.md`` and executes
the Python ones:

* blocks fenced as ```` ```python ```` are executed, top to bottom, with
  all blocks of one file sharing a namespace (later blocks may use names
  defined earlier, exactly as a reader would);
* blocks fenced as ```` ```python no-run ```` render as Python but are
  skipped (illustrative fragments that need context the doc does not
  build);
* non-Python fences (``sh``, ``text``, diagrams) are ignored.

A doc claiming an API that no longer exists therefore fails the tier-1
suite, which is what "CI-verified documentation" means here.
"""

import io
import re
from contextlib import redirect_stdout
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

_FENCE = re.compile(r"^```(\S*)\s*(.*)$")


def extract_blocks(path: Path):
    """Yield ``(start_line, info, code)`` for every fenced block in a file."""
    lines = path.read_text(encoding="utf-8").split("\n")
    inside = False
    info = ""
    extra = ""
    start = 0
    code: list = []
    for number, line in enumerate(lines, start=1):
        match = _FENCE.match(line.strip()) if line.strip().startswith("```") else None
        if not inside:
            if match:
                inside = True
                info, extra = match.group(1), match.group(2).strip()
                start = number + 1
                code = []
        elif line.strip() == "```":
            inside = False
            yield start, (info + (" " + extra if extra else "")).strip(), "\n".join(code)
        else:
            code.append(line)


def runnable_python_blocks(path: Path):
    """The blocks of one file that the harness must execute."""
    return [
        (start, code)
        for start, info, code in extract_blocks(path)
        if info == "python"
    ]


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda path: path.name)
def test_python_blocks_execute(path):
    """Every ``python`` block of the file runs without raising (shared
    namespace per file, stdout captured)."""
    if not path.exists():
        pytest.fail(f"documented file {path} is missing")
    blocks = runnable_python_blocks(path)
    namespace = {"__name__": f"doc_{path.stem}"}
    for start, code in blocks:
        compiled = compile(code, f"{path.name}:{start}", "exec")
        try:
            with redirect_stdout(io.StringIO()):
                exec(compiled, namespace)  # noqa: S102 - the docs ARE the input
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{path.name} block at line {start} failed: "
                f"{type(error).__name__}: {error}"
            )


def test_docs_actually_contain_runnable_blocks():
    """The harness must be biting on the core docs — if refactoring drops
    every runnable block from one of these files, the coverage silently
    evaporating is itself the regression."""
    must_have = {
        "README.md",
        "ARCHITECTURE.md",
        "API.md",
        "ENGINE.md",
        "OBSERVABILITY.md",
        "SERVER.md",
    }
    for path in DOC_FILES:
        if path.name in must_have:
            assert runnable_python_blocks(path), (
                f"{path.name} has no runnable ```python blocks"
            )


def test_fence_info_strings_are_known():
    """Catch typo'd fence tags (```pyton, ```Python) before they silently
    skip execution."""
    allowed_prefixes = ("python", "sh", "bash", "text", "")
    for path in DOC_FILES:
        for start, info, _ in extract_blocks(path):
            tag = info.split()[0] if info else ""
            assert tag in allowed_prefixes, (
                f"{path.name}:{start}: unknown fence tag {info!r}"
            )
