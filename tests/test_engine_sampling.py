"""Sampling-estimator accuracy and adaptive re-planning coverage.

Three layers of pinning for ``repro.engine.sampling``:

* **Estimator accuracy** — property tests over seeded random relations
  bound the q-error of sampled distinct counts (GEE scale-up) and
  sample-join size estimates against the exact statistics; full-relation
  samples must be exact.
* **Propagation** — the sample-aware branches of
  :func:`repro.engine.stats.join_stats` / ``project_stats`` carry joined /
  projected samples along derived entries, and degrade to the backoff
  formulas when either side is unsampled.
* **Adaptive execution** — mid-stream re-planning: a pinned plan whose
  estimates collapse (prepared on tiny relations, executed on large ones)
  triggers a checkpoint + re-cost + resume whose result stays set-equal to
  the seed reference implementations, with the re-plan surfaced in the
  trace, the session counters, and ``repro.perf.counters``; the
  differential fuzz grid of ``test_engine_differential`` is re-run with
  ``adaptive=True`` (aggressive trigger thresholds) on every (budget,
  workers) point.
"""

import random

import pytest

from repro.algebra.relation import Relation
from repro.api import Session
from repro.engine import (
    AdaptiveConfig,
    EngineEvaluator,
    MemoryBudget,
    RelationStats,
    SampledRelationStats,
    join_stats,
    project_stats,
    q_error,
    reservoir_sample,
    sampled_stats,
)
from repro.expressions import Projection, evaluate
from repro.expressions.ast import Operand
from repro.perf import kernel_counters

from test_engine_differential import (
    CONFIG_GRID,
    _random_case,
    _reference_evaluate,
    _tiny_budget,
)

#: Calibrated on seeds 0..11 (worst observed 2.10): a regression in the GEE
#: scale-up shows up as a blown distinct-count ratio.
MAX_DISTINCT_Q = 3.0

#: Calibrated on the same seeds (worst observed 1.05): sample joins measure
#: overlap directly, so their error is far tighter than selectivity guesses.
MAX_JOIN_Q = 1.5


def _random_skewed_relation(seed: int, name: str) -> Relation:
    rng = random.Random(seed)
    count = rng.randint(800, 3000)
    rows = [
        (
            rng.randint(0, 50),
            rng.randint(0, rng.choice((5, 200, 2000))),
            rng.choice("abcdef"),
        )
        for _ in range(count)
    ]
    return Relation.from_rows("A B C", rows, name=name)


class TestReservoirSample:
    def test_small_inputs_are_returned_whole(self):
        rows = [(i,) for i in range(5)]
        assert reservoir_sample(rows, 10, random.Random(0)) == rows

    def test_sample_size_and_membership(self):
        rows = [(i,) for i in range(1000)]
        sample = reservoir_sample(rows, 64, random.Random(1))
        assert len(sample) == 64
        assert set(sample) <= set(rows)

    def test_deterministic_for_a_seed(self):
        rows = [(i, i % 7) for i in range(500)]
        first = reservoir_sample(rows, 32, random.Random(42))
        second = reservoir_sample(rows, 32, random.Random(42))
        assert first == second

    def test_every_position_reachable(self):
        """Algorithm R must not bias against late rows: across seeds, rows
        from the back half of the input appear regularly."""
        rows = [(i,) for i in range(100)]
        seen_late = 0
        for seed in range(50):
            sample = reservoir_sample(rows, 10, random.Random(seed))
            seen_late += sum(1 for (value,) in sample if value >= 50)
        # Expectation is 250 of 500 draws; anything above 150 rules out the
        # classic "only the first k rows" failure mode.
        assert seen_late > 150

    def test_zero_and_negative_k(self):
        assert reservoir_sample([(1,)], 0, random.Random(0)) == []


class TestQError:
    def test_symmetry_and_floor(self):
        assert q_error(10, 100) == pytest.approx(10.0)
        assert q_error(100, 10) == pytest.approx(10.0)
        assert q_error(0, 0) == 1.0
        assert q_error(0.2, 0) == 1.0
        assert q_error(7, 7) == 1.0


class TestSampledDistinctCounts:
    @pytest.mark.parametrize("seed", range(8))
    def test_gee_estimate_within_bound(self, seed):
        relation = _random_skewed_relation(seed, "R")
        exact = RelationStats.from_relation(relation)
        sampled = sampled_stats(relation, 256, seed=seed, name="R")
        for column in relation.scheme.names:
            q = q_error(sampled.distinct(column), exact.distinct(column))
            assert q <= MAX_DISTINCT_Q, (
                f"seed={seed} column={column}: sampled {sampled.distinct(column)} "
                f"vs exact {exact.distinct(column)} (q={q:.2f})"
            )

    def test_full_sample_is_exact(self):
        relation = Relation.from_rows(
            "A B", [(i % 5, i % 3) for i in range(40)], name="R"
        )
        sampled = sampled_stats(relation, 512, name="R")
        exact = RelationStats.from_relation(relation)
        assert sampled.cardinality == len(relation)
        for column in ("A", "B"):
            assert sampled.distinct(column) == exact.distinct(column)
            assert sampled.column(column).minimum == exact.column(column).minimum
            assert sampled.column(column).maximum == exact.column(column).maximum

    def test_each_build_counts_once(self):
        relation = Relation.from_rows("A", [(i,) for i in range(10)])
        before = kernel_counters().snapshot()
        sampled_stats(relation, 4, name="R")
        sampled_stats(relation, 4, name="R")
        assert kernel_counters().delta_since(before)["sample_builds"] == 2


class TestSampleJoinEstimates:
    @pytest.mark.parametrize("seed", range(8))
    def test_join_size_within_bound(self, seed):
        rng = random.Random(seed * 7 + 3)
        left = _random_skewed_relation(seed, "L")
        right = Relation.from_rows(
            "A D",
            [
                (rng.randint(0, 50), rng.randint(0, 30))
                for _ in range(rng.randint(800, 3000))
            ],
            name="R",
        )
        actual = len(left.natural_join(right))
        left_sample = sampled_stats(left, 256, seed=seed, name="L").sample
        right_sample = sampled_stats(right, 256, seed=seed, name="R").sample
        estimate = left_sample.join_size(right_sample, ["A"])
        q = q_error(estimate, actual)
        assert q <= MAX_JOIN_Q, (
            f"seed={seed}: estimated {estimate:.0f} vs actual {actual} (q={q:.2f})"
        )

    def test_full_samples_estimate_exactly(self):
        left = Relation.from_rows("A B", [(i % 4, i) for i in range(30)], name="L")
        right = Relation.from_rows("B C", [(i, i % 3) for i in range(30)], name="R")
        left_sample = sampled_stats(left, 512, name="L").sample
        right_sample = sampled_stats(right, 512, name="R").sample
        actual = len(left.natural_join(right))
        assert left_sample.join_size(right_sample, ["B"]) == pytest.approx(actual)

    def test_disjoint_schemes_estimate_the_product(self):
        left = Relation.from_rows("A", [(i,) for i in range(7)], name="L")
        right = Relation.from_rows("B", [(i,) for i in range(11)], name="R")
        left_sample = sampled_stats(left, 512, name="L").sample
        right_sample = sampled_stats(right, 512, name="R").sample
        assert left_sample.join_size(right_sample, []) == pytest.approx(77.0)


class TestSampledPropagation:
    def test_join_stats_carries_the_joined_sample(self):
        left = Relation.from_rows("A B", [(i % 4, i) for i in range(30)], name="L")
        right = Relation.from_rows("B C", [(i, i % 3) for i in range(30)], name="R")
        left_entry = sampled_stats(left, 512, name="L")
        right_entry = sampled_stats(right, 512, name="R")
        joined = join_stats(left_entry, right_entry, ("A", "B", "C"), ("B",))
        assert isinstance(joined, SampledRelationStats)
        assert joined.sample is not None
        assert joined.cardinality == len(left.natural_join(right))

    def test_project_stats_carries_the_projected_sample(self):
        relation = Relation.from_rows(
            "A B", [(i % 4, i % 6) for i in range(40)], name="R"
        )
        entry = sampled_stats(relation, 512, name="R")
        projected = project_stats(entry, ("A",))
        assert isinstance(projected, SampledRelationStats)
        assert projected.cardinality == len(relation.project(("A",)))

    def test_mixed_entries_degrade_to_backoff(self):
        left = Relation.from_rows("A B", [(i % 4, i) for i in range(30)], name="L")
        sampled = sampled_stats(left, 512, name="L")
        plain = RelationStats.assumed(("B", "C"), 100)
        joined = join_stats(sampled, plain, ("A", "B", "C"), ("B",))
        assert not isinstance(joined, SampledRelationStats)
        assert joined.cardinality >= 0

    def test_propagated_sample_respects_the_join_cap(self):
        rng = random.Random(5)
        left = Relation.from_rows(
            "A B", [(rng.randint(0, 2), i) for i in range(300)], name="L"
        )
        right = Relation.from_rows(
            "A C", [(rng.randint(0, 2), i) for i in range(300)], name="R"
        )
        cap = 128
        left_entry = sampled_stats(left, 512, name="L", join_cap=cap)
        right_entry = sampled_stats(right, 512, name="R", join_cap=cap)
        joined = join_stats(left_entry, right_entry, ("A", "B", "C"), ("A",))
        assert len(joined.sample.rows) <= cap
        # The estimate survives the subsample: it is the scaled match count,
        # not the capped row count.
        actual = len(left.natural_join(right))
        assert q_error(joined.cardinality, actual) <= MAX_JOIN_Q


class TestAdaptiveConfig:
    def test_coerce(self):
        assert AdaptiveConfig.coerce(None) is None
        assert AdaptiveConfig.coerce(False) is None
        assert AdaptiveConfig.coerce(True) == AdaptiveConfig()
        config = AdaptiveConfig(sample_size=64)
        assert AdaptiveConfig.coerce(config) is config
        with pytest.raises(TypeError):
            AdaptiveConfig.coerce(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(sample_size=0)
        with pytest.raises(ValueError):
            AdaptiveConfig(replan_factor=1.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(max_replans=-1)
        with pytest.raises(ValueError):
            AdaptiveConfig(sample_join_cap=0)


def _three_way_case(seed: int):
    """A three-way join whose middle operand constrains the result."""
    rng = random.Random(seed)
    r = Relation.from_rows(
        "A B",
        [(rng.randint(0, 20), rng.randint(0, 8)) for _ in range(300)],
        name="R",
    )
    s = Relation.from_rows(
        "B C",
        [(rng.randint(0, 8), rng.randint(0, 30)) for _ in range(300)],
        name="S",
    )
    t = Relation.from_rows(
        "C D",
        [(rng.randint(0, 30), rng.randint(0, 5)) for _ in range(300)],
        name="T",
    )
    query = Projection(
        ["A", "D"],
        Operand("R", "A B").join(Operand("S", "B C")).join(Operand("T", "C D")),
    )
    return query, {"R": r, "S": s, "T": t}


def _tiny_bindings(bound):
    return {
        name: Relation.from_rows(
            relation.scheme, [tuple(1 for _ in relation.scheme.names)], name=name
        )
        for name, relation in bound.items()
    }


class TestAdaptiveReplan:
    def test_replan_triggers_and_result_stays_correct(self):
        """The checkpoint-resume regression: a plan pinned against tiny
        relations, executed against large ones, must re-plan mid-stream and
        still produce exactly the reference result."""
        query, bound = _three_way_case(11)
        expected = evaluate(query, bound)
        evaluator = EngineEvaluator(
            adaptive=AdaptiveConfig(replan_factor=2.0, replan_min_rows=8)
        )
        # Pin the plan against 1-row relations: every estimate is ~1.
        evaluator.plan_for(query, _tiny_bindings(bound))
        before = kernel_counters().snapshot()
        result, trace = evaluator.evaluate(query, bound)
        delta = kernel_counters().delta_since(before)
        assert result == expected
        assert trace.replans >= 1
        assert delta["adaptive_replans"] == trace.replans
        assert trace.result_cardinality == len(expected)

    def test_no_replan_when_estimates_hold(self):
        query, bound = _three_way_case(12)
        expected = evaluate(query, bound)
        evaluator = EngineEvaluator(adaptive=True)
        result, trace = evaluator.evaluate(query, bound)
        assert result == expected
        assert trace.replans == 0

    def test_checkpoint_cap_gives_up_gracefully(self):
        query, bound = _three_way_case(13)
        expected = evaluate(query, bound)
        evaluator = EngineEvaluator(
            adaptive=AdaptiveConfig(
                replan_factor=2.0, replan_min_rows=8, checkpoint_cap_rows=2
            )
        )
        evaluator.plan_for(query, _tiny_bindings(bound))
        before = kernel_counters().snapshot()
        result, trace = evaluator.evaluate(query, bound)
        delta = kernel_counters().delta_since(before)
        assert result == expected
        assert trace.replans == 0
        assert delta["adaptive_giveups"] >= 1

    def test_max_replans_zero_runs_unguarded(self):
        query, bound = _three_way_case(14)
        expected = evaluate(query, bound)
        evaluator = EngineEvaluator(
            adaptive=AdaptiveConfig(max_replans=0, replan_factor=2.0, replan_min_rows=8)
        )
        evaluator.plan_for(query, _tiny_bindings(bound))
        result, trace = evaluator.evaluate(query, bound)
        assert result == expected
        assert trace.replans == 0

    def test_replan_composes_with_a_budget(self, tmp_path):
        query, bound = _three_way_case(15)
        expected = evaluate(query, bound)
        evaluator = EngineEvaluator(
            budget=_tiny_budget(tmp_path),
            adaptive=AdaptiveConfig(replan_factor=2.0, replan_min_rows=8),
        )
        evaluator.plan_for(query, _tiny_bindings(bound))
        before = kernel_counters().snapshot()
        result, trace = evaluator.evaluate(query, bound)
        delta = kernel_counters().delta_since(before)
        assert result == expected
        assert trace.replans >= 1
        # The checkpoint dwarfs the 4-row budget: it spills to disk instead
        # of overrunning the meter (or giving the re-plan up).
        assert delta["checkpoint_spills"] >= 1
        assert delta["spill_overflows"] == 0
        assert not list(tmp_path.iterdir()), "spill files leaked"

    def test_meter_balances_after_replan(self):
        """Checkpoint state and partial results must be released: a second
        evaluation on the same evaluator starts from a clean meter, so its
        peak cannot inherit phantom rows from the first one's re-plan."""
        query, bound = _three_way_case(16)
        evaluator = EngineEvaluator(
            adaptive=AdaptiveConfig(replan_factor=2.0, replan_min_rows=8)
        )
        evaluator.plan_for(query, _tiny_bindings(bound))
        _, first = evaluator.evaluate(query, bound)
        assert first.replans >= 1
        _, second = evaluator.evaluate(query, bound)
        assert second.peak_live_rows <= first.peak_live_rows * 2


class TestAdaptiveDifferential:
    def test_adaptive_fuzz_matches_reference_on_every_grid_point(
        self, fuzz_seed, tmp_path
    ):
        """The differential harness's grid, re-run with adaptive estimation
        and hair-trigger re-planning: results stay set-equal to the seed
        reference implementations whether or not a re-plan fired."""
        rng = random.Random(fuzz_seed + 2)
        adaptive = AdaptiveConfig(
            sample_size=8, replan_factor=1.5, replan_min_rows=2
        )
        for case_index in range(12):
            expression, bindings = _random_case(rng)
            reference = _reference_evaluate(expression, bindings)
            for budget_rows, workers in CONFIG_GRID:
                budget = _tiny_budget(tmp_path) if budget_rows is not None else None
                evaluator = EngineEvaluator(
                    budget=budget,
                    workers=workers,
                    parallel_backend="thread",
                    adaptive=adaptive,
                )
                result, trace = evaluator.evaluate(expression, bindings)
                detail = (
                    f"seed={fuzz_seed}+2 case={case_index} "
                    f"budget={budget_rows} workers={workers}\n"
                    f"expression: {expression.to_text()}"
                )
                assert result.scheme.name_set == reference.scheme.name_set, detail
                realigned = (
                    result
                    if result.scheme.names == reference.scheme.names
                    else result.project(reference.scheme.names)
                )
                assert realigned == reference, detail
                leftovers = [str(path) for path in tmp_path.iterdir()]
                assert not leftovers, f"spill files leaked: {leftovers}\n{detail}"


class TestAdaptiveSession:
    def test_session_surfaces_replans_and_resamples_on_invalidation(self):
        query, bound = _three_way_case(21)
        tiny = _tiny_bindings(bound)
        expected = evaluate(query, bound)
        with Session(
            tiny,
            backend="engine",
            adaptive=AdaptiveConfig(replan_factor=2.0, replan_min_rows=8),
        ) as session:
            prepared = session.prepare(query)
            prepared.execute()
            assert session.stats()["replans"] == 0
            before = kernel_counters().snapshot()
            # Replace every relation: the prepared query re-binds, the
            # engine forgets its plan, and the replan re-samples the fresh
            # relations (construction is invalidation).
            for name, relation in bound.items():
                session.set_relation(name, relation)
            result = prepared.execute()
            delta = kernel_counters().delta_since(before)
            assert result.set_equal(expected)
            stats = session.stats()
            assert stats["invalidation_replans"] == 1
            # One fresh sample per operand at the invalidation replan (plus
            # any drawn during mid-stream re-planning).
            assert delta["sample_builds"] >= len(bound)
            # The invalidation replan planned against the *real* relations,
            # so the revised pinned plan needs no mid-stream correction.
            assert prepared.last_trace().replans == stats["replans"]

    def test_adaptive_session_serves_identically_to_static(self):
        query, bound = _three_way_case(22)
        expected = evaluate(query, bound)
        with Session(bound, backend="engine", adaptive=True) as session:
            result = session.execute(query)
            assert result.set_equal(expected)
            trace = session.prepare(query).trace()
            assert trace.replans == 0
            assert trace.backend == "engine"
