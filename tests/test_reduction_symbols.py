"""Tests for the attribute-naming and symbol conventions of the construction."""

import pytest

from repro.reductions import (
    BLANK,
    COMMON_U,
    EXTRA_TAG,
    MARK,
    SAT_TAG,
    clause_attribute,
    clause_u_value,
    pair_attribute,
    variable_attribute,
)


class TestSymbols:
    def test_symbols_are_pairwise_distinct(self):
        symbols = {BLANK, MARK, SAT_TAG, EXTRA_TAG, COMMON_U, 0, 1}
        assert len(symbols) == 7

    def test_truth_values_are_ints(self):
        # The paper's 0/1 entries are represented as integers so variable
        # columns read naturally as bits.
        from repro.reductions import FALSE, TRUE

        assert TRUE == 1 and FALSE == 0


class TestAttributeNaming:
    def test_clause_and_variable_attributes(self):
        assert clause_attribute(3) == "F3"
        assert variable_attribute(5) == "X5"
        assert clause_attribute(3, suffix="p") == "F3p"

    def test_pair_attribute_normalises_order(self):
        assert pair_attribute(1, 2) == pair_attribute(2, 1) == "Y_1_2"

    def test_pair_attribute_rejects_equal_indices(self):
        with pytest.raises(ValueError):
            pair_attribute(2, 2)

    def test_clause_u_values_are_distinct_per_clause(self):
        values = {clause_u_value(i) for i in range(1, 6)}
        assert len(values) == 5
        assert COMMON_U not in values

    def test_attribute_names_are_parseable_by_the_expression_syntax(self):
        # The names avoid braces/commas so every generated expression can be
        # re-parsed; this is relied on by the textual round-trip tests.
        import re

        token = re.compile(r"^[A-Za-z_][A-Za-z_0-9']*$")
        for name in (
            clause_attribute(12),
            variable_attribute(7),
            pair_attribute(3, 11),
            clause_attribute(2, suffix="p"),
            pair_attribute(1, 2, suffix="p"),
        ):
            assert token.match(name), name
