"""Tests for the tuple counter and the project-join fixpoint decider."""

import pytest

from repro.algebra import Relation, project_join
from repro.decision import ProjectJoinFixpointDecider, TupleCounter
from repro.expressions import Join, Operand, Projection, evaluate
from repro.workloads import random_relation

R = Relation.from_rows("A B C", [(1, 2, 3), (1, 2, 4), (2, 5, 3)], name="R")
BASE = Operand("R", "A B C")
QUERY = Join([Projection("A B", BASE), Projection("B C", BASE)])


class TestTupleCounter:
    def test_count_matches_evaluation(self):
        counter = TupleCounter()
        assert counter.count(QUERY, R) == len(evaluate(QUERY, R))

    def test_count_project_join_matches_materialised_join(self):
        counter = TupleCounter()
        schemes = ["A B", "B C"]
        assert counter.count_project_join(R, schemes) == len(project_join(R, schemes))

    @pytest.mark.parametrize("seed", range(6))
    def test_count_project_join_on_random_relations(self, seed):
        relation = random_relation(num_attributes=4, num_tuples=12, seed=seed)
        schemes = ["A1 A2", "A2 A3", "A3 A4"]
        counter = TupleCounter()
        assert counter.count_project_join(relation, schemes) == len(
            project_join(relation, schemes)
        )

    def test_count_project_join_single_scheme(self):
        counter = TupleCounter()
        assert counter.count_project_join(R, ["A B"]) == len(R.project("A B"))

    def test_count_project_join_disjoint_schemes_multiplies(self):
        counter = TupleCounter()
        expected = len(R.project("A")) * len(R.project("C"))
        assert counter.count_project_join(R, ["A", "C"]) == expected


class TestFixpointDecider:
    def test_lossless_decomposition(self):
        relation = Relation.from_rows("A B C", [(1, 2, 3), (4, 2, 3)])
        verdict = ProjectJoinFixpointDecider().decide(relation, ["A B", "B C"])
        assert verdict.holds
        assert verdict.extra_tuple is None
        assert verdict.join_cardinality == verdict.relation_cardinality

    def test_lossy_decomposition(self):
        relation = Relation.from_rows("A B C", [(1, 2, 3), (4, 2, 5)])
        verdict = ProjectJoinFixpointDecider().decide(relation, ["A B", "B C"])
        assert not verdict.holds
        assert verdict.extra_tuple is not None
        assert verdict.extra_tuple not in relation
        assert verdict.join_cardinality > verdict.relation_cardinality

    def test_schemes_not_covering_relation_fail(self):
        verdict = ProjectJoinFixpointDecider().decide(R, ["A B"])
        assert not verdict.holds

    def test_single_full_scheme_always_holds(self):
        assert ProjectJoinFixpointDecider().holds(R, ["A B C"])

    def test_empty_relation_always_holds(self):
        empty = Relation.empty(R.scheme)
        assert ProjectJoinFixpointDecider().holds(empty, ["A B", "B C"])

    @pytest.mark.parametrize("seed", range(4))
    def test_verdict_matches_direct_comparison(self, seed):
        relation = random_relation(num_attributes=3, num_tuples=10, seed=seed)
        schemes = ["A1 A2", "A2 A3"]
        verdict = ProjectJoinFixpointDecider().decide(relation, schemes)
        assert verdict.holds == (project_join(relation, schemes) == relation)
