"""Cross-cutting tests tying the decision procedures to the classes the paper assigns.

These tests check the *structural* facts behind the membership proofs: the NP
half and co-NP half of the DP problem are genuinely independent, certificates
are polynomially checkable objects, and the Π₂ᵖ counterexamples decode back to
the quantified formula's universal assignments.
"""

import pytest

from repro.decision import (
    CertificateMembershipDecider,
    QueryResultEqualityDecider,
    tuple_in_result,
)
from repro.expressions import evaluate
from repro.reductions import SatUnsatPair, Theorem1Reduction
from repro.sat import forced_unsatisfiable, planted_satisfiable


@pytest.fixture(scope="module")
def yes_instance():
    satisfiable, _ = planted_satisfiable(4, 3, seed=77)
    unsatisfiable = forced_unsatisfiable(4, seed=77)
    reduction = Theorem1Reduction(SatUnsatPair(satisfiable, unsatisfiable))
    return reduction.instance()


class TestDpStructureOfEquality:
    def test_np_half_is_membership_of_every_conjectured_tuple(self, yes_instance):
        relation, expression, conjectured = yes_instance
        # r ⊆ φ(R) means every tuple of r has a membership certificate; two
        # representatives keep the test fast (each check re-evaluates the query).
        for tup in list(conjectured)[:2]:
            assert tuple_in_result(tup, expression, relation)

    def test_conp_half_fails_with_a_single_extra_tuple_witness(self, yes_instance):
        relation, expression, conjectured = yes_instance
        result = evaluate(expression, relation)
        # Remove one tuple from the conjecture: the co-NP half now fails and
        # the witness returned is a concrete tuple of φ(R) \ r.
        removed = next(iter(conjectured))
        verdict = QueryResultEqualityDecider().decide(
            expression, relation, conjectured.remove(removed)
        )
        assert verdict.conjectured_subset_of_result
        assert not verdict.result_subset_of_conjectured
        assert verdict.extra_tuple in result

    def test_np_half_fails_with_a_single_missing_tuple_witness(self, yes_instance):
        relation, expression, conjectured = yes_instance
        scheme = conjectured.scheme
        alien = {name: "alien" for name in scheme.names}
        verdict = QueryResultEqualityDecider().decide(
            expression, relation, conjectured.insert(alien)
        )
        assert not verdict.conjectured_subset_of_result
        assert verdict.result_subset_of_conjectured
        assert dict(verdict.missing_tuple) == alien

    def test_the_two_halves_are_independent(self, yes_instance):
        relation, expression, conjectured = yes_instance
        scheme = conjectured.scheme
        alien = {name: "alien" for name in scheme.names}
        removed = next(iter(conjectured))
        both_wrong = conjectured.remove(removed).insert(alien)
        verdict = QueryResultEqualityDecider().decide(expression, relation, both_wrong)
        assert not verdict.conjectured_subset_of_result
        assert not verdict.result_subset_of_conjectured


class TestCertificatesArePolynomiallySized:
    def test_witness_size_is_linear_in_the_tableau(self, yes_instance):
        relation, expression, conjectured = yes_instance
        from repro.tableaux import tableau_of_expression

        tableau = tableau_of_expression(expression)
        decider = CertificateMembershipDecider()
        member = next(iter(conjectured))
        witness = decider.decide(member, expression, relation)
        assert witness is not None
        # One source tuple per tableau row, one value per tableau variable.
        assert len(witness.row_sources) == len(tableau.rows)
        assert len(witness.valuation) <= len(tableau.all_variables())
