"""Unit tests for the projection-join expression AST."""

import pytest

from repro.algebra import RelationScheme
from repro.expressions import (
    ExpressionError,
    Join,
    Operand,
    Projection,
    join,
    operand,
    project,
    project_join_query,
)

R = Operand("R", "A B C")
S = Operand("S", "C D")


class TestOperand:
    def test_target_scheme(self):
        assert R.target_scheme() == RelationScheme.of("A", "B", "C")

    def test_operand_names_and_schemes(self):
        assert R.operand_names() == frozenset({"R"})
        assert R.operand_schemes() == {"R": RelationScheme.of("A", "B", "C")}

    def test_empty_name_rejected(self):
        with pytest.raises(ExpressionError):
            Operand("", "A")

    def test_equality(self):
        assert R == Operand("R", "C B A")
        assert R != Operand("R", "A B")
        assert R != S


class TestProjection:
    def test_target_scheme_is_projection_scheme(self):
        node = Projection("A B", R)
        assert node.target_scheme() == RelationScheme.of("A", "B")

    def test_projection_outside_child_scheme_rejected(self):
        with pytest.raises(ExpressionError):
            Projection("A Z", R)

    def test_nested_projection(self):
        node = Projection("A", Projection("A B", R))
        assert node.target_scheme() == RelationScheme.of("A")

    def test_to_text(self):
        assert Projection("A B", R).to_text() == "project[A, B](R)"

    def test_equality(self):
        assert Projection("A B", R) == Projection("A B", R)
        assert Projection("A B", R) != Projection("A", R)


class TestJoin:
    def test_flattening(self):
        nested = Join([Join([R, S]), Operand("T", "D E")])
        assert len(nested.parts) == 3

    def test_target_scheme_is_union(self):
        assert Join([R, S]).target_scheme() == RelationScheme.of("A", "B", "C", "D")

    def test_needs_two_operands(self):
        with pytest.raises(ExpressionError):
            Join([R])

    def test_conflicting_operand_schemes_rejected(self):
        with pytest.raises(ExpressionError):
            Join([R, Operand("R", "A B")])

    def test_operand_names_union(self):
        assert Join([R, S]).operand_names() == frozenset({"R", "S"})

    def test_mul_operator(self):
        assert (R * S) == Join([R, S])

    def test_to_text_with_nested_projection(self):
        expression = Join([Projection("A B", R), Projection("C D", S)])
        assert expression.to_text() == "project[A, B](R) * project[C, D](S)"


class TestStructuralHelpers:
    def test_walk_and_size(self):
        expression = Projection("A", Join([Projection("A B", R), S]))
        kinds = [type(node).__name__ for node in expression.walk()]
        assert kinds[0] == "Projection"
        assert expression.size() == 5

    def test_depth(self):
        expression = Projection("A", Join([Projection("A B", R), S]))
        assert expression.depth() == 4

    def test_counts(self):
        expression = Projection("A", Join([Projection("A B", R), S]))
        assert expression.count_joins() == 1
        assert expression.count_projections() == 2

    def test_fluent_builders(self):
        via_fluent = R.project("A B").join(S.project("C D"))
        via_functions = join(project("A B", operand("R", "A B C")), project("C D", operand("S", "C D")))
        assert via_fluent == via_functions


class TestProjectJoinQuery:
    def test_multi_factor(self):
        query = project_join_query("R", "A B C", ["A B", "B C"])
        assert isinstance(query, Join)
        assert query.target_scheme() == RelationScheme.of("A", "B", "C")

    def test_single_factor_has_no_join(self):
        query = project_join_query("R", "A B C", ["A B"])
        assert isinstance(query, Projection)

    def test_no_factor_rejected(self):
        with pytest.raises(ValueError):
            project_join_query("R", "A B C", [])
