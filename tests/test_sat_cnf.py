"""Unit tests for CNF formulas and parsing."""

import pytest

from repro.sat import Clause, CNFFormula, Literal, is_three_cnf, parse_formula


EXAMPLE = CNFFormula.of("x1 | x2 | x3", "~x2 | x3 | ~x4", "~x3 | ~x4 | ~x5")


class TestConstruction:
    def test_of_from_strings(self):
        assert EXAMPLE.num_clauses == 3
        assert EXAMPLE.num_variables == 5

    def test_variables_in_first_occurrence_order(self):
        assert EXAMPLE.variables == ("x1", "x2", "x3", "x4", "x5")

    def test_explicit_variable_order(self):
        formula = CNFFormula.of("x2 | x1 | x3").with_variables(["x1", "x2", "x3"])
        assert formula.variables == ("x1", "x2", "x3")

    def test_explicit_order_must_cover_all_variables(self):
        with pytest.raises(ValueError):
            CNFFormula(EXAMPLE.clauses, ["x1", "x2"])

    def test_explicit_order_rejects_duplicates(self):
        with pytest.raises(ValueError):
            CNFFormula(EXAMPLE.clauses, ["x1", "x1", "x2", "x3", "x4", "x5"])

    def test_extra_declared_variables_allowed(self):
        formula = CNFFormula.of("x1 | x2 | x3").with_variables(["x1", "x2", "x3", "x9"])
        assert "x9" in formula.variables
        assert formula.num_variables == 4


class TestParsing:
    def test_parse_with_parentheses_and_ampersand(self):
        parsed = parse_formula("(x1 | x2 | x3) & (~x2 | x3 | ~x4) & (~x3 | ~x4 | ~x5)")
        assert parsed == EXAMPLE

    def test_parse_newline_separated(self):
        parsed = CNFFormula.parse("x1 | x2 | x3\n~x2 | x3 | ~x4\n~x3 | ~x4 | ~x5")
        assert parsed.num_clauses == 3

    def test_parse_plus_notation_like_paper(self):
        parsed = parse_formula("(x1 + x2 + x3) & (~x2 + x3 + ~x4)")
        assert parsed.num_clauses == 2

    def test_parse_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_formula("   ")


class TestLogic:
    def test_evaluate(self):
        model = {"x1": True, "x2": False, "x3": False, "x4": False, "x5": False}
        assert EXAMPLE.evaluate(model)
        falsifier = {"x1": False, "x2": False, "x3": False, "x4": False, "x5": False}
        assert not EXAMPLE.evaluate(falsifier)

    def test_status_three_valued(self):
        assert EXAMPLE.status({}) is None
        assert EXAMPLE.status({"x1": False, "x2": False, "x3": False}) is False
        assert (
            EXAMPLE.status({"x1": True, "x2": False, "x3": False, "x4": False, "x5": False})
            is True
        )

    def test_restrict_drops_satisfied_clauses(self):
        restricted = EXAMPLE.restrict({"x1": True})
        assert restricted.num_clauses == 2
        assert "x1" not in restricted.variables

    def test_restrict_keeps_conflict_as_empty_clause(self):
        formula = CNFFormula.of("x1 | x2 | x3")
        restricted = formula.restrict({"x1": False, "x2": False, "x3": False})
        assert restricted.num_clauses == 1
        assert len(restricted.clauses[0]) == 0

    def test_clause_variables_lookup(self):
        assert EXAMPLE.clause_variables(1) == ("x2", "x3", "x4")

    def test_variable_occurrences(self):
        occurrences = EXAMPLE.variable_occurrences()
        assert occurrences["x3"] == 3
        assert occurrences["x1"] == 1

    def test_extended(self):
        extended = EXAMPLE.extended([Clause.of("x6", "x7", "x8")])
        assert extended.num_clauses == 4
        assert "x8" in extended.variables


class TestThreeCnfChecks:
    def test_strict_three_cnf_accepted(self):
        assert is_three_cnf(EXAMPLE)
        EXAMPLE.require_three_cnf(minimum_clauses=3)

    def test_wrong_width_rejected(self):
        formula = CNFFormula.of("x1 | x2")
        assert not is_three_cnf(formula)
        with pytest.raises(ValueError):
            formula.require_three_cnf()

    def test_repeated_variable_rejected(self):
        formula = CNFFormula.of("x1 | ~x1 | x2")
        assert not is_three_cnf(formula)

    def test_minimum_clause_count_enforced(self):
        formula = CNFFormula.of("x1 | x2 | x3")
        with pytest.raises(ValueError):
            formula.require_three_cnf(minimum_clauses=3)

    def test_equality_and_hash(self):
        assert EXAMPLE == CNFFormula.of("x1 | x2 | x3", "~x2 | x3 | ~x4", "~x3 | ~x4 | ~x5")
        assert hash(EXAMPLE) == hash(
            CNFFormula.of("x1 | x2 | x3", "~x2 | x3 | ~x4", "~x3 | ~x4 | ~x5")
        )
