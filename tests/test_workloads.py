"""Tests for the workload generators."""

import pytest

from repro.qbf import evaluate_by_expansion
from repro.sat import is_satisfiable
from repro.workloads import (
    growing_construction_family,
    mixed_family,
    qbf_family,
    random_instance,
    random_project_join_query,
    random_relation,
    sat_unsat_pairs,
    satisfiable_family,
    unsatisfiable_family,
)


class TestFormulaFamilies:
    def test_satisfiable_family_is_satisfiable(self):
        for case in satisfiable_family(clause_counts=(3, 4)):
            assert case.satisfiable_by_construction is True
            assert is_satisfiable(case.formula)
            assert case.formula.is_three_cnf()
            assert case.num_clauses in (3, 4)

    def test_unsatisfiable_family_is_unsatisfiable(self):
        for case in unsatisfiable_family(extra_clause_counts=(0, 1)):
            assert case.satisfiable_by_construction is False
            assert not is_satisfiable(case.formula)

    def test_mixed_family_shape(self):
        cases = mixed_family(count=3, num_variables=5)
        assert len(cases) == 3
        for case in cases:
            assert case.satisfiable_by_construction is None
            assert case.formula.is_three_cnf()

    def test_families_are_deterministic(self):
        first = satisfiable_family(clause_counts=(3, 4), seed=7)
        second = satisfiable_family(clause_counts=(3, 4), seed=7)
        assert [c.formula for c in first] == [c.formula for c in second]

    def test_growing_family_monotone_clause_counts(self):
        cases = growing_construction_family(clause_counts=(3, 5, 8))
        clause_counts = [case.num_clauses for case in cases]
        assert clause_counts == sorted(clause_counts)

    def test_labels_are_informative(self):
        case = satisfiable_family(clause_counts=(3,))[0]
        assert "m=3" in case.label


class TestPairAndQbfFamilies:
    def test_sat_unsat_pairs_cover_all_combinations(self):
        pairs = dict(sat_unsat_pairs())
        assert len(pairs) == 4
        yes = [label for label, pair in pairs.items() if pair.is_yes_instance()]
        assert yes == ["sat+unsat (yes)"]

    def test_qbf_family_truth_values_match_planting(self):
        for label, instance, planted_truth in qbf_family(universal_counts=(3,)):
            assert evaluate_by_expansion(instance) == planted_truth
            assert ("true" in label) == planted_truth


class TestRandomRelationsAndQueries:
    def test_random_relation_shape(self):
        relation = random_relation(num_attributes=3, num_tuples=10, seed=1)
        assert len(relation.scheme) == 3
        assert 0 < len(relation) <= 10

    def test_random_relation_deterministic(self):
        assert random_relation(seed=5) == random_relation(seed=5)

    def test_random_relation_needs_an_attribute(self):
        with pytest.raises(ValueError):
            random_relation(num_attributes=0)

    def test_random_query_is_well_formed(self):
        relation = random_relation(num_attributes=4, seed=2)
        query = random_project_join_query(relation.scheme, seed=2)
        assert query.operand_names() == frozenset({"R"})
        assert query.target_scheme().is_subscheme_of(relation.scheme)

    def test_random_instance_is_evaluable(self):
        from repro.expressions import evaluate

        for seed in range(4):
            relation, query = random_instance(seed=seed)
            result = evaluate(query, relation)
            assert result.scheme == query.target_scheme()
