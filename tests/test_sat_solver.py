"""Unit tests for the DPLL solver."""

import pytest

from repro.sat import (
    CNFFormula,
    DPLLSolver,
    count_models_bruteforce,
    find_model,
    forced_unsatisfiable,
    is_satisfiable,
    paper_example_formula,
    pigeonhole_formula,
    planted_satisfiable,
    random_three_cnf,
)


class TestBasicDecisions:
    def test_paper_example_is_satisfiable(self):
        result = DPLLSolver().solve(paper_example_formula())
        assert result.satisfiable
        assert result.model is not None
        assert paper_example_formula().evaluate(result.model)

    def test_single_clause(self):
        assert is_satisfiable(CNFFormula.of("x | y | z"))

    def test_contradiction_block_unsatisfiable(self):
        assert not is_satisfiable(forced_unsatisfiable(3))

    def test_unsatisfiable_has_no_model(self):
        assert find_model(forced_unsatisfiable(3)) is None

    def test_model_covers_all_variables(self):
        formula = CNFFormula.of("x1 | x2 | x3").with_variables(
            ["x1", "x2", "x3", "unused"]
        )
        model = find_model(formula)
        assert model is not None
        assert set(model.variables) == set(formula.variables)

    def test_unit_propagation_chain(self):
        # x1 forced true, which forces x2, which forces x3.
        formula = CNFFormula.of("x1", "~x1 | x2", "~x2 | x3")
        model = find_model(formula)
        assert model == {"x1": True, "x2": True, "x3": True}

    def test_conflict_through_propagation(self):
        formula = CNFFormula.of("x1", "~x1 | x2", "~x2", )
        assert not is_satisfiable(formula)

    def test_pure_literal_rule_optional(self):
        formula = random_three_cnf(6, 10, seed=4)
        with_rule = DPLLSolver(use_pure_literal_rule=True).solve(formula)
        without_rule = DPLLSolver(use_pure_literal_rule=False).solve(formula)
        assert with_rule.satisfiable == without_rule.satisfiable

    def test_statistics_are_reported(self):
        result = DPLLSolver().solve(random_three_cnf(8, 30, seed=9))
        assert result.decisions >= 0
        assert result.propagations >= 0


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_formulas_agree_with_bruteforce(self, seed):
        formula = random_three_cnf(6, 4 * 6, seed=seed)
        assert is_satisfiable(formula) == (count_models_bruteforce(formula) > 0)

    @pytest.mark.parametrize("seed", range(5))
    def test_planted_formulas_are_satisfied_by_their_model(self, seed):
        formula, planted = planted_satisfiable(7, 20, seed=seed)
        assert formula.evaluate(planted)
        assert is_satisfiable(formula)

    def test_pigeonhole_is_unsatisfiable(self):
        assert not is_satisfiable(pigeonhole_formula(2))

    def test_returned_model_always_satisfies(self):
        for seed in range(10):
            formula = random_three_cnf(6, 18, seed=100 + seed)
            model = find_model(formula)
            if model is not None:
                assert formula.evaluate(model)
