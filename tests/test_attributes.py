"""Unit tests for repro.algebra.attributes."""

import pytest

from repro.algebra import Attribute, Domain, DomainError, as_attribute, attribute_names


class TestDomain:
    def test_closed_domain_membership(self):
        domain = Domain.of("bool", [0, 1])
        assert 0 in domain
        assert 1 in domain
        assert 2 not in domain

    def test_open_domain_accepts_everything(self):
        domain = Domain.open()
        assert "anything" in domain
        assert 42 in domain
        assert domain.is_open

    def test_closed_domain_is_not_open(self):
        assert not Domain.of("bool", [0, 1]).is_open

    def test_check_raises_on_violation(self):
        domain = Domain.of("bool", [0, 1])
        with pytest.raises(DomainError):
            domain.check("e", "X1")

    def test_check_passes_on_member(self):
        Domain.of("bool", [0, 1]).check(1, "X1")

    def test_str_of_open_domain(self):
        assert "*" in str(Domain.open("any"))


class TestAttribute:
    def test_equality_is_by_name_only(self):
        plain = Attribute("A")
        with_domain = Attribute("A", Domain.of("bool", [0, 1]))
        assert plain == with_domain
        assert hash(plain) == hash(with_domain)

    def test_different_names_are_unequal(self):
        assert Attribute("A") != Attribute("B")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Attribute("")

    def test_with_domain_returns_new_attribute(self):
        attribute = Attribute("A")
        enriched = attribute.with_domain(Domain.of("bool", [0, 1]))
        assert enriched.domain is not None
        assert attribute.domain is None

    def test_renamed_preserves_domain(self):
        attribute = Attribute("A", Domain.of("bool", [0, 1]))
        renamed = attribute.renamed("B")
        assert renamed.name == "B"
        assert renamed.domain == attribute.domain

    def test_accepts_with_and_without_domain(self):
        assert Attribute("A").accepts("anything")
        constrained = Attribute("A", Domain.of("bool", [0, 1]))
        assert constrained.accepts(0)
        assert not constrained.accepts("e")

    def test_check_value_raises(self):
        constrained = Attribute("A", Domain.of("bool", [0, 1]))
        with pytest.raises(DomainError):
            constrained.check_value(7)

    def test_ordering_by_name(self):
        assert Attribute("A") < Attribute("B")

    def test_str_is_name(self):
        assert str(Attribute("Student")) == "Student"


class TestCoercions:
    def test_as_attribute_passthrough(self):
        attribute = Attribute("A")
        assert as_attribute(attribute) is attribute

    def test_as_attribute_from_string(self):
        assert as_attribute("A") == Attribute("A")

    def test_as_attribute_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_attribute(42)

    def test_attribute_names(self):
        assert attribute_names(["A", Attribute("B")]) == ("A", "B")
