"""Docstring enforcement for the public serving surface.

Every public symbol of ``repro.api``, ``repro.engine``, ``repro.obs`` and
``repro.server`` —
modules, classes, functions, and the public methods/properties they define —
must carry a docstring.  The same contract is enforced in CI by a ruff
``pydocstyle`` check (``ruff.toml``, rules D100–D103); this test keeps the
rule runnable with the baked-in toolchain alone, so a missing docstring
fails the tier-1 suite before it ever reaches CI.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro.api
import repro.engine
import repro.obs
import repro.server

PACKAGES = (repro.api, repro.engine, repro.obs, repro.server)


def _iter_modules():
    for package in PACKAGES:
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            yield importlib.import_module(f"{package.__name__}.{info.name}")


def _public_members(module):
    """(qualified name, object) pairs that must carry docstrings."""
    prefix = module.__name__
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-exports are documented where they are defined
        yield f"{prefix}.{name}", member
        if inspect.isclass(member):
            for attr_name, attr in vars(member).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr):
                    yield f"{prefix}.{name}.{attr_name}", attr
                elif isinstance(attr, property):
                    yield f"{prefix}.{name}.{attr_name}", attr.fget
                elif isinstance(attr, (classmethod, staticmethod)):
                    yield f"{prefix}.{name}.{attr_name}", attr.__func__


@pytest.mark.parametrize(
    "module", list(_iter_modules()), ids=lambda module: module.__name__
)
def test_module_and_public_symbols_documented(module):
    """The module itself and every public symbol it defines have docstrings."""
    assert (module.__doc__ or "").strip(), f"{module.__name__}: missing module docstring"
    missing = [
        qualified
        for qualified, member in _public_members(module)
        if member is not None and not (getattr(member, "__doc__", None) or "").strip()
    ]
    assert not missing, f"public symbols without docstrings: {missing}"


def test_exported_names_resolve_and_are_documented():
    """Everything in the packages' ``__all__`` exists and is documented
    (modules re-exporting a symbol inherit its defining docstring)."""
    missing = []
    for package in PACKAGES:
        for name in package.__all__:
            member = getattr(package, name)
            if not (getattr(member, "__doc__", None) or "").strip():
                missing.append(f"{package.__name__}.{name}")
    assert not missing, f"exported names without docstrings: {missing}"
