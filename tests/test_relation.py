"""Unit tests for repro.algebra.relation."""

import pytest

from repro.algebra import (
    JoinError,
    ProjectionError,
    Relation,
    RelationScheme,
    RelationTuple,
    SelectionError,
    UnionCompatibilityError,
)

SCHEME = RelationScheme.of("A", "B", "C")


def sample():
    return Relation.from_rows(SCHEME, [(1, 2, 3), (1, 2, 4), (2, 2, 3)], name="R")


class TestConstruction:
    def test_from_rows_and_len(self):
        assert len(sample()) == 3

    def test_duplicates_collapse(self):
        relation = Relation.from_rows(SCHEME, [(1, 2, 3), (1, 2, 3)])
        assert len(relation) == 1

    def test_empty(self):
        empty = Relation.empty(SCHEME)
        assert empty.is_empty() and len(empty) == 0

    def test_single(self):
        assert len(Relation.single(SCHEME, (1, 1, 1))) == 1

    def test_mixed_tuple_inputs(self):
        relation = Relation(SCHEME, [{"A": 1, "B": 2, "C": 3}, (4, 5, 6)])
        assert len(relation) == 2

    def test_with_name(self):
        named = sample().with_name("Fancy")
        assert named.name == "Fancy"
        assert named == sample()


class TestContainerProtocol:
    def test_contains_accepts_mapping_sequence_and_tuple(self):
        relation = sample()
        assert (1, 2, 3) in relation
        assert {"A": 1, "B": 2, "C": 4} in relation
        assert RelationTuple(SCHEME, {"A": 2, "B": 2, "C": 3}) in relation
        assert (9, 9, 9) not in relation

    def test_contains_wrong_scheme_is_false(self):
        other = RelationTuple(RelationScheme.of("A", "B"), {"A": 1, "B": 2})
        assert other not in sample()

    def test_equality_and_hash(self):
        assert sample() == sample()
        assert hash(sample()) == hash(sample())
        assert sample() != sample().insert((9, 9, 9))

    def test_cardinality(self):
        assert sample().cardinality() == 3

    def test_sorted_rows_deterministic(self):
        rows = sample().sorted_rows()
        assert rows == sorted(rows, key=lambda r: tuple(map(repr, r)))

    def test_to_table_contains_header_and_truncation(self):
        table = sample().to_table()
        assert "A" in table and "B" in table
        truncated = sample().to_table(max_rows=1)
        assert "more tuples" in truncated


class TestProjection:
    def test_project_removes_duplicates(self):
        projected = sample().project("A B")
        assert len(projected) == 2

    def test_project_full_scheme_is_identity(self):
        assert sample().project("A B C") == sample()

    def test_project_missing_attribute_rejected(self):
        with pytest.raises(ProjectionError):
            sample().project("Z")


class TestJoin:
    def test_join_on_common_attribute(self):
        left = Relation.from_rows("A B", [(1, 10), (2, 20)])
        right = Relation.from_rows("B C", [(10, "x"), (10, "y"), (30, "z")])
        joined = left.natural_join(right)
        assert joined.scheme == RelationScheme.of("A", "B", "C")
        assert len(joined) == 2
        assert (1, 10, "x") in joined and (1, 10, "y") in joined

    def test_join_disjoint_schemes_is_product(self):
        left = Relation.from_rows("A", [(1,), (2,)])
        right = Relation.from_rows("B", [(10,), (20,), (30,)])
        assert len(left.natural_join(right)) == 6

    def test_join_same_scheme_is_intersection(self):
        left = Relation.from_rows("A B", [(1, 2), (3, 4)])
        right = Relation.from_rows("A B", [(1, 2), (5, 6)])
        assert left.natural_join(right) == Relation.from_rows("A B", [(1, 2)])

    def test_join_with_empty_is_empty(self):
        left = Relation.from_rows("A B", [(1, 2)])
        right = Relation.empty(RelationScheme.of("B", "C"))
        assert left.natural_join(right).is_empty()

    def test_join_is_commutative(self):
        left = Relation.from_rows("A B", [(1, 10), (2, 20)])
        right = Relation.from_rows("B C", [(10, "x"), (20, "y")])
        assert left.natural_join(right) == right.natural_join(left)

    def test_join_non_relation_rejected(self):
        with pytest.raises(JoinError):
            sample().natural_join("not a relation")

    def test_tuple_restrictions_belong_to_operands(self):
        left = Relation.from_rows("A B", [(1, 10), (2, 20)])
        right = Relation.from_rows("B C", [(10, "x"), (20, "y")])
        joined = left.natural_join(right)
        for tup in joined:
            assert tup.project("A B") in left
            assert tup.project("B C") in right


class TestSelection:
    def test_select_predicate(self):
        assert len(sample().select(lambda t: t["C"] == 3)) == 2

    def test_select_eq(self):
        assert len(sample().select_eq(A=1, C=4)) == 1

    def test_select_eq_missing_attribute_rejected(self):
        with pytest.raises(SelectionError):
            sample().select_eq(Z=1)


class TestSetOperations:
    def test_union_difference_intersection(self):
        left = Relation.from_rows("A B", [(1, 2), (3, 4)])
        right = Relation.from_rows("A B", [(3, 4), (5, 6)])
        assert len(left.union(right)) == 3
        assert left.difference(right) == Relation.from_rows("A B", [(1, 2)])
        assert left.intersection(right) == Relation.from_rows("A B", [(3, 4)])

    def test_incompatible_schemes_rejected(self):
        left = Relation.from_rows("A B", [(1, 2)])
        right = Relation.from_rows("A C", [(1, 2)])
        with pytest.raises(UnionCompatibilityError):
            left.union(right)

    def test_subset_checks(self):
        small = Relation.from_rows("A B", [(1, 2)])
        big = Relation.from_rows("A B", [(1, 2), (3, 4)])
        assert small.is_subset_of(big)
        assert small.is_proper_subset_of(big)
        assert not big.is_subset_of(small)
        assert not big.is_proper_subset_of(big)


class TestModification:
    def test_insert_and_remove(self):
        grown = sample().insert((7, 7, 7))
        assert len(grown) == 4
        assert len(grown.remove((7, 7, 7))) == 3

    def test_rename(self):
        renamed = sample().rename({"A": "Z"})
        assert "Z" in renamed.scheme and "A" not in renamed.scheme
        assert len(renamed) == len(sample())

    def test_add_constant_column(self):
        extended = sample().add_constant_column("Tag", "t")
        assert extended.column_values("Tag") == frozenset({"t"})
        assert len(extended) == len(sample())

    def test_active_domain_and_column_values(self):
        assert sample().column_values("A") == frozenset({1, 2})
        assert 4 in sample().active_domain()
        with pytest.raises(ProjectionError):
            sample().column_values("Z")
