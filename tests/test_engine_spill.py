"""Unit tests for the Grace-hash spill path (``GraceHashJoin`` + budget).

Covers the spill lifecycle the differential fuzz cannot see directly:
partition fan-out, recursive re-partitioning of oversized partitions, the
chunked block-nested-loop fallback for unsplittable partitions (one heavy
key, keyless products), temp-file cleanup on normal exhaustion / abandonment
/ mid-stream
exceptions, and the budgeted m=12 smoke the CI gate runs (set-equal to the
unbudgeted run while spilling, build tables within the budget).
"""

import pytest

from repro.algebra import Relation, naive_natural_join
from repro.algebra.relation import _join_plan
from repro.engine import (
    EngineEvaluator,
    GraceHashJoin,
    MemoryBudget,
    MemoryMeter,
    PhysicalOperator,
    SpillFile,
    TableScan,
)
from repro.expressions import Projection
from repro.perf import kernel_counters
from repro.reductions import RGConstruction
from repro.workloads import growing_construction_family


def _drain(operator):
    rows = set()
    for block in operator.blocks():
        rows.update(block)
    return Relation._from_trusted(operator.scheme, frozenset(rows))


def _grace(build, probe, budget, meter=None):
    """A Grace join building on ``build`` (left side) and streaming ``probe``."""
    meter = meter or MemoryMeter(budget.rows)
    return (
        GraceHashJoin(
            TableScan(build, meter),
            TableScan(probe, meter),
            _join_plan(build.scheme, probe.scheme),
            meter,
            budget,
            build_side="left",
        ),
        meter,
    )


def _spill_delta(before):
    return {
        name: value
        for name, value in kernel_counters().delta_since(before).items()
        if name.startswith(("join_spills", "join_chunk", "spill_"))
    }


class TestSpillLifecycle:
    def test_spill_activates_with_expected_fanout(self, tmp_path):
        build = Relation.from_rows("K A", [(i, i) for i in range(100)])
        probe = Relation.from_rows("K B", [(i, -i) for i in range(100)])
        budget = MemoryBudget(rows=32, spill_fanout=8, spill_dir=str(tmp_path))
        operator, meter = _grace(build, probe, budget)
        before = kernel_counters().snapshot()
        result = _drain(operator)
        delta = _spill_delta(before)
        assert result == naive_natural_join(build, probe)
        assert operator.spilled == 1
        assert delta["join_spills"] == 1
        # 8 build partitions at the switch plus 8 (all non-empty) probe ones.
        assert delta["spill_partitions"] == 16
        assert delta["spill_rows"] >= len(build) + len(probe)
        assert delta["spill_recursions"] == 0
        assert delta["spill_overflows"] == 0
        # ~13-row partitions: one resident at a time, never the whole build.
        assert 0 < operator.build_peak_rows <= budget.rows
        assert meter.current == 0
        assert not any(tmp_path.iterdir())

    def test_fitting_build_never_spills(self, tmp_path):
        build = Relation.from_rows("K A", [(i, i) for i in range(10)])
        probe = Relation.from_rows("K B", [(i % 10, -i) for i in range(50)])
        budget = MemoryBudget(rows=64, spill_dir=str(tmp_path))
        operator, meter = _grace(build, probe, budget)
        before = kernel_counters().snapshot()
        result = _drain(operator)
        assert result == naive_natural_join(build, probe)
        assert operator.spilled == 0
        assert _spill_delta(before)["join_spills"] == 0
        assert not any(tmp_path.iterdir())
        assert meter.current == 0

    def test_oversized_partitions_recurse_until_they_fit(self, tmp_path):
        build = Relation.from_rows("K A", [(i, i) for i in range(400)])
        probe = Relation.from_rows("K B", [(i, -i) for i in range(400)])
        budget = MemoryBudget(
            rows=16,
            spill_fanout=2,
            max_recursion=6,
            min_partition_rows=2,
            spill_dir=str(tmp_path),
        )
        operator, meter = _grace(build, probe, budget)
        before = kernel_counters().snapshot()
        result = _drain(operator)
        delta = _spill_delta(before)
        assert result == naive_natural_join(build, probe)
        # 2-way splits from ~200-row partitions down to the ~12-row level:
        # several recursion levels, no overflow, budget respected.
        assert delta["spill_recursions"] >= 3
        assert delta["spill_overflows"] == 0
        assert 0 < operator.build_peak_rows <= budget.rows
        assert meter.current == 0
        assert not any(tmp_path.iterdir())

    def test_single_heavy_key_takes_the_chunked_path(self, tmp_path):
        # Every build row shares one key: no partitioning can split it, so
        # after a no-progress re-salt the partition is joined by the
        # block-nested-loop fallback — multiple probe passes, the budget
        # respected, and no overflow counted.
        build = Relation.from_rows("K A", [(0, i) for i in range(60)])
        probe = Relation.from_rows("K B", [(0, -i) for i in range(5)])
        budget = MemoryBudget(rows=8, spill_fanout=2, spill_dir=str(tmp_path))
        operator, meter = _grace(build, probe, budget)
        before = kernel_counters().snapshot()
        result = _drain(operator)
        delta = _spill_delta(before)
        assert result == naive_natural_join(build, probe)
        assert delta["join_spills"] == 1
        assert delta["spill_overflows"] == 0
        # 60 unsplittable build rows through an 8-row budget: several chunks,
        # each probing the whole partition again.
        assert delta["join_chunk_passes"] >= 60 // budget.rows
        assert 0 < operator.build_peak_rows <= budget.rows
        assert meter.current == 0
        assert not any(tmp_path.iterdir())

    def test_keyless_product_chunks_but_stays_correct(self, tmp_path):
        left = Relation.from_rows("A", [(i,) for i in range(40)])
        right = Relation.from_rows("B", [(i,) for i in range(15)])
        budget = MemoryBudget(rows=8, spill_fanout=2, spill_dir=str(tmp_path))
        operator, meter = _grace(left, right, budget)
        before = kernel_counters().snapshot()
        result = _drain(operator)
        delta = _spill_delta(before)
        assert result == naive_natural_join(left, right)
        assert delta["spill_overflows"] == 0
        assert delta["join_chunk_passes"] >= 1
        assert operator.build_peak_rows <= budget.rows
        assert meter.current == 0
        assert not any(tmp_path.iterdir())


class _ExplodingScan(PhysicalOperator):
    """A scan that yields one block and then raises (a failing producer)."""

    def __init__(self, relation, meter):
        super().__init__(meter)
        self._relation = relation
        self.scheme = relation.scheme

    def blocks(self):
        rows = list(self._relation.rows)
        yield rows[: max(len(rows) // 2, 1)]
        raise RuntimeError("probe side exploded mid-stream")


class TestSpillCleanup:
    def test_files_exist_mid_stream_and_vanish_on_abandonment(self, tmp_path):
        build = Relation.from_rows("K A", [(i, i) for i in range(100)])
        probe = Relation.from_rows("K B", [(i, -i) for i in range(100)])
        budget = MemoryBudget(rows=16, spill_dir=str(tmp_path))
        operator, meter = _grace(build, probe, budget)
        generator = operator.blocks()
        next(generator)
        # Mid-execution the spill directory is real (the test would be
        # vacuous otherwise) ...
        spill_dirs = list(tmp_path.glob("repro-grace-*"))
        assert spill_dirs and any(d.glob("*.spill") for d in spill_dirs)
        # ... and closing the generator (an early-exit consumer) removes it.
        generator.close()
        assert not any(tmp_path.iterdir())
        assert meter.current == 0

    def test_files_vanish_when_the_probe_child_raises(self, tmp_path):
        build = Relation.from_rows("K A", [(i, i) for i in range(100)])
        probe = Relation.from_rows("K B", [(i, -i) for i in range(100)])
        budget = MemoryBudget(rows=16, spill_dir=str(tmp_path))
        meter = MemoryMeter(budget.rows)
        operator = GraceHashJoin(
            TableScan(build, meter),
            _ExplodingScan(probe, meter),
            _join_plan(build.scheme, probe.scheme),
            meter,
            budget,
            build_side="left",
        )
        with pytest.raises(RuntimeError, match="exploded"):
            for _ in operator.blocks():
                pass
        assert not any(tmp_path.iterdir())
        assert meter.current == 0

    def test_spill_file_roundtrip_and_idempotent_delete(self, tmp_path):
        spill = SpillFile(str(tmp_path / "one.spill"))
        rows = [(i, str(i)) for i in range(300)]
        for row in rows:
            spill.append(row)
        spill.finish()
        assert spill.rows == len(rows)
        assert [row for block in spill.blocks() for row in block] == rows
        spill.delete()
        spill.delete()
        assert not any(tmp_path.iterdir())

    def test_empty_spill_file_streams_nothing_and_leaves_no_file(self, tmp_path):
        spill = SpillFile(str(tmp_path / "empty.spill"))
        spill.finish()
        assert list(spill.blocks()) == []
        spill.delete()
        assert not any(tmp_path.iterdir())


class TestBudgetedEngine:
    def _m12(self):
        case = [c for c in growing_construction_family(clause_counts=(12,))][0]
        construction = RGConstruction(case.formula)
        query = Projection([construction.s_attribute], construction.expression)
        return query, construction.relation

    def test_budgeted_m12_stays_under_budget_and_matches_unbudgeted(self):
        """The CI smoke gate: at m=12 a 256-row budget must spill, keep
        every build table within the budget, reduce the live peak, and
        produce output set-equal to the unbudgeted engine."""
        query, relation = self._m12()
        bound = {name: relation for name in query.operand_names()}
        unbudgeted, unbudgeted_trace = EngineEvaluator().evaluate(query, bound)
        before = kernel_counters().snapshot()
        budgeted, trace = EngineEvaluator(budget=256).evaluate(query, bound)
        delta = _spill_delta(before)
        assert budgeted == unbudgeted
        assert delta["join_spills"] > 0 and delta["spill_rows"] > 0
        assert delta["spill_overflows"] == 0
        # Build sides never exceed the budget; total metered state may add
        # the plan's non-spillable slack (dedup seen-sets bounded by the
        # input, the result accumulator bounded by the output).
        assert trace.peak_build_rows <= 256
        slack = trace.input_cardinality + trace.result_cardinality
        assert trace.peak_live_rows <= 256 + slack
        assert trace.peak_live_rows < unbudgeted_trace.peak_live_rows
        # The spill activity is visible in the trace itself.
        assert trace.kernel_activity["join_spills"] > 0
        assert any("grace hash join" in step.description for step in trace.steps)

    def test_budget_composes_with_prefer_merge(self):
        # Merge joins buffer key groups, not build tables: the budget only
        # governs hash joins, and a forced-merge plan must stay correct
        # (if entirely spill-free) under one.
        from repro.engine import PlannerConfig

        query, relation = self._m12()
        bound = {name: relation for name in query.operand_names()}
        reference, _ = EngineEvaluator().evaluate(query, bound)
        evaluator = EngineEvaluator(
            PlannerConfig(prefer_merge=True), budget=256
        )
        result, _ = evaluator.evaluate(query, bound)
        assert result == reference
