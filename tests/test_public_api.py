"""Tests of the public API surface: exports, docstrings, and __all__ hygiene."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.api",
    "repro.algebra",
    "repro.expressions",
    "repro.engine",
    "repro.engine.planstore",
    "repro.obs",
    "repro.tableaux",
    "repro.sat",
    "repro.qbf",
    "repro.reductions",
    "repro.decision",
    "repro.complexity",
    "repro.analysis",
    "repro.workloads",
    "repro.server",
]

#: The documented export surface of the facade.  These are *snapshots*: a
#: missing name is a compatibility break, an extra name is an undocumented
#: API — either way the change must be deliberate (update the snapshot and
#: docs/API.md together).
REPRO_EXPORTS = [
    "__version__",
    "BACKENDS",
    "BackendConfig",
    "ObserveConfig",
    "Session",
    "connect",
    "PreparedQuery",
    "QueryResult",
    "TraceLike",
    "UnifiedTrace",
    "SessionError",
    "SessionClosedError",
    "UnknownBackendError",
]

REPRO_API_EXPORTS = [
    "BACKENDS",
    "BackendConfig",
    "ObserveConfig",
    "Session",
    "connect",
    "PreparedQuery",
    "QueryResult",
    "TraceLike",
    "UnifiedTrace",
    "SessionError",
    "SessionClosedError",
    "UnknownBackendError",
]


class TestPackageStructure:
    def test_version_is_exposed(self):
        assert repro.__version__

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackages_import(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_names_resolve(self, name):
        module = importlib.import_module(name)
        assert hasattr(module, "__all__") and module.__all__
        for exported in module.__all__:
            assert hasattr(module, exported), f"{name}.{exported} missing"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_no_duplicate_exports(self, name):
        module = importlib.import_module(name)
        assert len(set(module.__all__)) == len(module.__all__)

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_public_classes_and_functions_have_docstrings(self, name):
        module = importlib.import_module(name)
        for exported in module.__all__:
            obj = getattr(module, exported)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name}.{exported} lacks a docstring"

    def test_public_classes_have_documented_public_methods(self):
        # Spot-check the central classes: every public method carries a docstring.
        from repro.algebra import Relation, RelationScheme, RelationTuple
        from repro.expressions import Expression
        from repro.reductions import RGConstruction

        for cls in (Relation, RelationScheme, RelationTuple, Expression, RGConstruction):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert member.__doc__, f"{cls.__name__}.{name} lacks a docstring"


class TestFacadeExportSnapshot:
    """The repro / repro.api export surface, pinned exactly."""

    def test_repro_export_surface_is_exactly_the_snapshot(self):
        assert sorted(repro.__all__) == sorted(REPRO_EXPORTS)
        for name in REPRO_EXPORTS:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_repro_api_export_surface_is_exactly_the_snapshot(self):
        api = importlib.import_module("repro.api")
        assert sorted(api.__all__) == sorted(REPRO_API_EXPORTS)
        for name in REPRO_API_EXPORTS:
            assert hasattr(api, name), f"repro.api.{name} missing"

    def test_package_root_reexports_the_facade_objects(self):
        api = importlib.import_module("repro.api")
        for name in REPRO_API_EXPORTS:
            assert getattr(repro, name) is getattr(api, name), name

    def test_backends_tuple_is_the_documented_matrix(self):
        assert repro.BACKENDS == ("naive", "instrumented", "optimized", "engine")
