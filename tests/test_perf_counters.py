"""Direct tests for :mod:`repro.perf.counters`.

The counters are a process-global measurement aid: ``snapshot`` /
``delta_since`` / ``reset`` must behave like value semantics over the live
singleton, and the singleton itself must be safe to *read and share* across
threads (the documented contract — increments are deliberately unlocked, so
only structural safety is promised for concurrent access, not lossless
counting).
"""

import threading

from repro.perf import kernel_counters, reset_kernel_counters
from repro.perf.counters import KernelCounters


class TestSnapshotSemantics:
    def test_snapshot_lists_every_counter_field(self):
        counters = KernelCounters()
        snapshot = counters.snapshot()
        assert set(snapshot) == {
            "join_plan_hits",
            "join_plan_misses",
            "project_plan_hits",
            "project_plan_misses",
            "trusted_tuples_built",
            "join_probes",
            "join_spills",
            "spill_partitions",
            "spill_rows",
            "spill_recursions",
            "spill_overflows",
            "join_chunk_passes",
            "sort_spills",
            "dedup_spills",
            "checkpoint_spills",
            "spill_retries",
            "fault_injected",
            "pool_recoveries",
            "serial_fallbacks",
            "sample_builds",
            "sample_cache_hits",
            "sample_cache_misses",
            "plan_repins",
            "drift_replans",
            "result_cache_hits",
            "result_cache_misses",
            "result_cache_invalidations",
            "adaptive_replans",
            "adaptive_giveups",
            "qerror_observations",
            "qerror_total_milli",
            "qerror_max_milli",
        }
        assert all(value == 0 for value in snapshot.values())

    def test_snapshot_is_a_value_copy(self):
        counters = KernelCounters()
        snapshot = counters.snapshot()
        counters.join_probes += 5
        assert snapshot["join_probes"] == 0
        assert counters.snapshot()["join_probes"] == 5

    def test_delta_since_reports_per_counter_increase(self):
        counters = KernelCounters()
        counters.join_plan_hits = 2
        before = counters.snapshot()
        counters.join_plan_hits += 3
        counters.trusted_tuples_built += 7
        delta = counters.delta_since(before)
        assert delta["join_plan_hits"] == 3
        assert delta["trusted_tuples_built"] == 7
        assert delta["join_probes"] == 0

    def test_delta_since_treats_missing_keys_as_zero(self):
        counters = KernelCounters()
        counters.join_probes = 4
        delta = counters.delta_since({})
        assert delta["join_probes"] == 4

    def test_delta_since_drops_keys_unknown_to_the_dataclass(self):
        """A stale snapshot from another counter generation must not leak.

        Snapshots can outlive the code that took them (persisted BENCH
        sections, traces from an older build).  ``delta_since`` must
        neither crash on nor propagate counter names this dataclass does
        not define: the result's keys are exactly the current fields.
        """
        counters = KernelCounters()
        counters.join_probes = 4
        stale = {"join_probes": 1, "retired_counter_from_v0": 99}
        delta = counters.delta_since(stale)
        assert delta["join_probes"] == 3
        assert "retired_counter_from_v0" not in delta
        assert set(delta) == set(counters.snapshot())

    def test_reset_zeroes_every_counter(self):
        counters = KernelCounters()
        counters.join_plan_misses = 9
        counters.join_probes = 11
        counters.reset()
        assert all(value == 0 for value in counters.snapshot().values())


class TestModuleSingleton:
    def test_kernel_counters_returns_one_object(self):
        assert kernel_counters() is kernel_counters()

    def test_reset_kernel_counters_resets_the_singleton(self):
        counters = kernel_counters()
        counters.join_probes += 1
        reset_kernel_counters()
        assert counters.join_probes == 0

    def test_kernel_activity_flows_through_the_singleton(self):
        from repro.algebra import Relation

        counters = kernel_counters()
        before = counters.snapshot()
        left = Relation.from_rows("A B", [(1, 2), (3, 4)])
        right = Relation.from_rows("B C", [(2, 5)])
        left.natural_join(right)
        delta = counters.delta_since(before)
        assert delta["join_probes"] > 0
        assert delta["join_plan_hits"] + delta["join_plan_misses"] >= 1


class TestLockedAdd:
    def test_add_increments_named_counters(self):
        counters = KernelCounters()
        counters.add(join_spills=2, spill_rows=100)
        counters.add(spill_rows=28)
        assert counters.join_spills == 2
        assert counters.spill_rows == 128
        assert counters.join_probes == 0

    def test_add_is_lossless_under_contention(self):
        """The engine's update path must not lose increments across threads.

        The raw ``+=`` path documented for the materialising kernel *does*
        lose updates under contention (a read-modify-write race); ``add``
        holds a lock, so eight hammering threads must account exactly.
        """
        counters = KernelCounters()
        rounds = 5_000

        def hammer():
            for _ in range(rounds):
                counters.add(spill_rows=1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counters.spill_rows == 8 * rounds


class TestThreadSafety:
    def test_singleton_identity_across_threads(self):
        seen = []

        def record():
            seen.append(kernel_counters())

        threads = [threading.Thread(target=record) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(counters is seen[0] for counters in seen)

    def test_concurrent_snapshots_stay_structurally_sound(self):
        """Readers racing an incrementing writer always see well-formed ints.

        The documented contract is that counters are *not* locked (the hot
        path must not pay for it); what must hold under concurrency is that
        snapshot/delta never raise and never yield torn, non-integer, or
        negative-delta values.
        """
        counters = KernelCounters()
        stop = threading.Event()
        problems = []

        def writer():
            while not stop.is_set():
                counters.join_probes += 1
                counters.trusted_tuples_built += 2

        def reader():
            baseline = counters.snapshot()
            for _ in range(500):
                snapshot = counters.snapshot()
                delta = counters.delta_since(baseline)
                if not all(isinstance(v, int) for v in snapshot.values()):
                    problems.append(("non-int", snapshot))
                if any(v < 0 for v in delta.values()):
                    problems.append(("negative-delta", delta))
                baseline = snapshot

        writer_thread = threading.Thread(target=writer)
        reader_threads = [threading.Thread(target=reader) for _ in range(4)]
        writer_thread.start()
        for thread in reader_threads:
            thread.start()
        for thread in reader_threads:
            thread.join()
        stop.set()
        writer_thread.join()
        assert problems == []

    def test_monotonic_growth_observed_by_a_racing_reader(self):
        counters = KernelCounters()
        done = threading.Event()
        observed = []

        def writer():
            for _ in range(10_000):
                counters.join_probes += 1
            done.set()

        def reader():
            last = -1
            while not done.is_set():
                current = counters.snapshot()["join_probes"]
                observed.append(current >= last)
                last = current

        writer_thread = threading.Thread(target=writer)
        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        writer_thread.start()
        writer_thread.join()
        reader_thread.join()
        assert all(observed)
