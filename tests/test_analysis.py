"""Tests for the analysis tooling (blow-up measurement and statistics helpers)."""

import math

import pytest

from repro.algebra import Relation
from repro.analysis import (
    analyze_blowup,
    blowup_sweep,
    fit_exponential_growth,
    format_table,
    geometric_mean,
)
from repro.expressions import Join, Operand, Projection

R = Relation.from_rows("A B C", [(1, 2, 3), (1, 2, 4), (2, 5, 3)], name="R")
BASE = Operand("R", "A B C")
QUERY = Projection("A", Join([Projection("A B", BASE), Projection("B C", BASE)]))


class TestBlowupMeasurement:
    def test_basic_fields(self):
        measurement = analyze_blowup(QUERY, R, label="toy")
        assert measurement.label == "toy"
        assert measurement.input_cardinality == len(R)
        assert measurement.naive_peak >= measurement.output_cardinality
        assert measurement.optimized_peak is not None

    def test_ratios_and_row(self):
        measurement = analyze_blowup(QUERY, R)
        row = measurement.as_row()
        assert row["naive_peak"] == float(measurement.naive_peak)
        assert measurement.naive_blowup_vs_input == pytest.approx(
            measurement.naive_peak / measurement.input_cardinality
        )
        assert "optimizer_gain" in row

    def test_without_optimizer(self):
        measurement = analyze_blowup(QUERY, R, compare_optimizer=False)
        assert measurement.optimized_peak is None
        assert measurement.optimizer_gain is None
        assert "optimized_peak" not in measurement.as_row()

    def test_sweep(self):
        measurements = blowup_sweep(
            [("a", QUERY, R), ("b", Projection("A B", BASE), R)],
            compare_optimizer=False,
        )
        assert [m.label for m in measurements] == ["a", "b"]

    def test_blowup_is_real_on_the_construction(self):
        # The R_G construction with a tiny output projection: the peak
        # intermediate must exceed both input and output.
        from repro.reductions import RGConstruction
        from repro.sat import paper_example_formula

        construction = RGConstruction(paper_example_formula())
        query = Projection([construction.s_attribute], construction.expression)
        measurement = analyze_blowup(query, construction.relation)
        assert measurement.output_cardinality <= 2
        assert measurement.naive_peak > measurement.output_cardinality
        assert measurement.naive_peak > measurement.input_cardinality


class TestStatistics:
    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([5]) == pytest.approx(5.0)

    def test_geometric_mean_ignores_non_positive(self):
        assert geometric_mean([0, 10, 10]) == pytest.approx(10.0)

    def test_fit_exponential_growth_recovers_base(self):
        points = [(m, 3.0 * (2.0 ** m)) for m in range(1, 7)]
        fit = fit_exponential_growth(points)
        assert fit is not None
        assert fit.base == pytest.approx(2.0, rel=1e-6)
        assert fit.prefactor == pytest.approx(3.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)
        assert fit.predict(8) == pytest.approx(3.0 * 256.0, rel=1e-6)

    def test_fit_needs_two_points(self):
        assert fit_exponential_growth([(1, 5.0)]) is None
        assert fit_exponential_growth([]) is None
        assert fit_exponential_growth([(1, 5.0), (1, 7.0)]) is None

    def test_fit_ignores_non_positive_values(self):
        points = [(1, 0.0), (2, 4.0), (3, 8.0)]
        fit = fit_exponential_growth(points)
        assert fit is not None
        assert fit.base == pytest.approx(2.0, rel=1e-6)

    def test_format_table(self):
        rows = [{"m": 3, "peak": 42.0}, {"m": 4, "peak": 99.5}]
        table = format_table(rows)
        assert "m" in table and "peak" in table
        assert "42.000" in table
        assert format_table([]) == "(no rows)"

    def test_format_table_with_explicit_columns(self):
        rows = [{"a": 1, "b": 2}]
        table = format_table(rows, columns=["b"])
        assert "b" in table and "a" not in table.splitlines()[0]
