"""Mutation-under-traffic differential fuzz for the serving tier.

The server-facing counterpart of ``tests/test_engine_differential.py``:
instead of comparing engine backends against the reference evaluator,
this harness compares *served responses* — multiplexed workers, budget
leases, and the front's invalidating result cache all in the path —
against fresh uncached :class:`~repro.api.Session` results computed for
every relation **generation** the traffic can observe.

The scenario is the result cache's hardest case.  A mutator thread
walks ``R`` through a seeded sequence of generations via ``POST
/mutate`` while client threads hammer a Zipf-skewed query mix (the
fuzz grid adds the per-request budget axis ``{None, 64}``, so spilling
and non-spilling executes interleave).  The contract checked:

* **No torn results.**  Every in-flight response is set-equal to some
  *whole* generation's expected rows — a response mixing two
  generations of ``R``, or a stale cache hit surviving invalidation,
  has no matching generation and fails loudly.
* **Convergence.**  Once traffic quiesces, every query at every budget
  answers exactly the final generation — the cache cannot have
  re-learned an earlier generation through the fill race.
* **The tripwire stays silent.**  ``cache_stale_served`` (the
  serve-time re-validation counter, exported as
  ``repro_server_cache_stale_served_total``) reads zero, and the run
  actually exercised the cache (nonzero hits).

Seeded by ``--fuzz-seed`` like the engine harness, so CI matrix legs
explore different generation sequences while any failure replays.
"""

import http.client
import json
import random
import threading

import pytest

from repro.api import Session
from repro.server import ReproServer
from repro.server.loadgen import zipf_schedule
from repro.workloads import serving_relations

#: Queries the clients draw from (Zipf rank order: first is hottest).
#: The first three read the mutated relation ``R``; the last reads only
#: ``S`` and ``T`` — its answer must never change across generations.
QUERIES = (
    "project[A](R * S)",
    "R * S",
    "project[A, D]((R * S) * T)",
    "project[B, D](S * T)",
)

#: The per-request engine-budget fuzz axis: unbudgeted and a 64-row
#: squeeze that forces the spilling path on the join queries.
BUDGET_GRID = (None, 64)

ROWS = 120
CLIENTS = 4
REQUESTS_PER_CLIENT = 30
GENERATIONS = 3  # mutations applied during traffic (plus the seed data)


def _generation_rows(rng, count):
    """Fresh ``R`` rows in the workload's value domains (A mod 40, B mod 17)."""
    rows = {(rng.randrange(40), rng.randrange(17)) for _ in range(count)}
    return sorted(rows)


def _expected_by_generation(base_relations, generations):
    """``{query: [sorted rows per generation]}`` from fresh, uncached sessions."""
    from repro.algebra.relation import Relation

    expected = {query: [] for query in QUERIES}
    for rows in generations:
        relations = dict(base_relations)
        relations["R"] = Relation.from_rows(
            base_relations["R"].scheme, [tuple(row) for row in rows], name="R"
        )
        with Session(relations) as session:
            for query in QUERIES:
                result = session.execute(query)
                expected[query].append(
                    [list(row) for row in result.relation.sorted_rows()]
                )
    return expected


def _post(conn, path, body):
    conn.request(
        "POST",
        path,
        body=json.dumps(body),
        headers={"Content-Type": "application/json"},
    )
    response = conn.getresponse()
    return response.status, json.loads(response.read())


def test_mutation_under_traffic_matches_some_whole_generation(fuzz_seed):
    rng = random.Random(fuzz_seed)
    base_relations = serving_relations(rows=ROWS)
    generations = [
        [list(row) for row in base_relations["R"].sorted_rows()]
    ]
    for _ in range(GENERATIONS):
        generations.append(
            [list(row) for row in _generation_rows(rng, ROWS)]
        )
    expected = _expected_by_generation(base_relations, generations)
    # Sanity: the generations must actually differ, or the test is vacuous.
    first_query_answers = {
        json.dumps(answers) for answers in expected[QUERIES[0]]
    }
    assert len(first_query_answers) > 1, "seeded generations collided"

    with ReproServer(
        base_relations,
        pool_size=2,
        worker_concurrency=4,
        total_budget_rows=50_000,
        session_budget=10_000,
    ) as server:
        failures = []
        lock = threading.Lock()
        start_barrier = threading.Barrier(CLIENTS + 2)
        traffic_done = threading.Barrier(CLIENTS + 2)
        hot = threading.Event()  # set once clients are mid-run

        def client(offset):
            schedule = zipf_schedule(
                len(QUERIES), REQUESTS_PER_CLIENT, s=1.1,
                seed=fuzz_seed + offset,
            )
            budget_rng = random.Random(fuzz_seed * 31 + offset)
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=60
            )
            try:
                start_barrier.wait(timeout=30)
                for index, rank in enumerate(schedule):
                    if index == REQUESTS_PER_CLIENT // 4:
                        hot.set()
                    query = QUERIES[rank]
                    payload = {"query": query}
                    budget = budget_rng.choice(BUDGET_GRID)
                    if budget is not None:
                        payload["budget"] = budget
                    status, body = _post(conn, "/query", payload)
                    if status != 200:
                        with lock:
                            failures.append((query, budget, status, body))
                        continue
                    if body["rows"] not in expected[query]:
                        with lock:
                            failures.append(
                                (query, budget, "torn-or-stale", body["rows"])
                            )
            finally:
                conn.close()
                traffic_done.wait(timeout=120)

        def mutator():
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=60
            )
            try:
                start_barrier.wait(timeout=30)
                hot.wait(timeout=60)
                for rows in generations[1:]:
                    status, body = _post(
                        conn, "/mutate", {"name": "R", "rows": rows}
                    )
                    if status != 200:
                        with lock:
                            failures.append(("mutate", None, status, body))
            finally:
                conn.close()
                traffic_done.wait(timeout=120)

        threads = [
            threading.Thread(target=client, args=(offset,))
            for offset in range(CLIENTS)
        ]
        threads.append(threading.Thread(target=mutator))
        for thread in threads:
            thread.start()
        start_barrier.wait(timeout=30)
        traffic_done.wait(timeout=120)
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads)
        assert failures == [], failures[:5]

        # Convergence: with traffic quiesced, every (query, budget) grid
        # point answers exactly the final generation — compared against
        # a fresh uncached Session, which is what `expected[...][-1]` is.
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
        try:
            for query in QUERIES:
                for budget in BUDGET_GRID:
                    payload = {"query": query}
                    if budget is not None:
                        payload["budget"] = budget
                    status, body = _post(conn, "/query", payload)
                    assert status == 200, (query, budget, body)
                    assert body["rows"] == expected[query][-1], (
                        query,
                        budget,
                        "served rows diverge from a fresh session on the "
                        "final generation",
                    )
            # The immutable query never moved.
            assert all(
                answer == expected[QUERIES[-1]][0]
                for answer in expected[QUERIES[-1]]
            )
        finally:
            conn.close()

        stats = server.stats()
        cache = stats["cache"]
        assert cache["cache_stale_served"] == 0, cache
        assert cache["cache_invalidations"] == GENERATIONS
        assert cache["cache_hits"] > 0, (
            "the run must actually exercise the cache; got %r" % (cache,)
        )
        assert stats["front"]["mutations"] == GENERATIONS
        # The Prometheus exposition agrees with /stats on the tripwire.
        exposition = server.render_metrics()
        tripwire = [
            line
            for line in exposition.splitlines()
            if line.startswith("repro_server_cache_stale_served_total ")
        ]
        assert tripwire == ["repro_server_cache_stale_served_total 0"]


@pytest.mark.parametrize("budget", BUDGET_GRID)
def test_post_mutation_grid_point_matches_fresh_session(fuzz_seed, budget):
    """One grid point end to end: mutate once, then every query agrees
    with a fresh uncached session bound to the post-mutation rows."""
    rng = random.Random(fuzz_seed + 7)
    base_relations = serving_relations(rows=ROWS)
    new_rows = [list(row) for row in _generation_rows(rng, ROWS)]
    expected = _expected_by_generation(base_relations, [new_rows])

    with ReproServer(
        base_relations, pool_size=1, session_budget=10_000
    ) as server:
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
        try:
            # Warm the cache on pre-mutation data first so the test
            # proves invalidation, not just a cold read.
            for query in QUERIES:
                payload = {"query": query}
                if budget is not None:
                    payload["budget"] = budget
                status, _body = _post(conn, "/query", payload)
                assert status == 200
            status, ack = _post(conn, "/mutate", {"name": "R", "rows": new_rows})
            assert status == 200 and ack["ok"], ack
            for query in QUERIES:
                payload = {"query": query}
                if budget is not None:
                    payload["budget"] = budget
                status, body = _post(conn, "/query", payload)
                assert status == 200, (query, body)
                assert body["rows"] == expected[query][0], (query, budget)
        finally:
            conn.close()
