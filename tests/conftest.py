"""Shared fixtures for the test suite.

``--fuzz-seed`` seeds the differential fuzz harness
(``tests/test_engine_differential.py``): the default keeps local runs
reproducible, while CI passes explicit seeds per matrix leg so the harness
explores different instances under ``PYTHONHASHSEED=random`` without losing
the ability to replay a failure (``pytest --fuzz-seed <N>``).
"""

import pytest

DEFAULT_FUZZ_SEED = 20260730


def pytest_addoption(parser):
    parser.addoption(
        "--fuzz-seed",
        type=int,
        default=DEFAULT_FUZZ_SEED,
        help="base seed for the engine differential fuzz harness",
    )


@pytest.fixture
def fuzz_seed(request):
    """The base seed the differential fuzz harness derives its cases from."""
    return request.config.getoption("--fuzz-seed")
