"""Tests for the Theorem 1 reduction (query-result equality is DP-complete)."""

import pytest

from repro.decision import QueryResultEqualityDecider
from repro.expressions import evaluate
from repro.reductions import SatUnsatPair, Theorem1Reduction
from repro.sat import forced_unsatisfiable, paper_example_formula, planted_satisfiable


@pytest.fixture(scope="module")
def formulas():
    satisfiable, _ = planted_satisfiable(4, 3, seed=8)
    unsatisfiable = forced_unsatisfiable(4, seed=8)
    return satisfiable, unsatisfiable


@pytest.fixture(scope="module")
def pairs(formulas):
    satisfiable, unsatisfiable = formulas
    return {
        "yes": SatUnsatPair(satisfiable, unsatisfiable),
        "both-sat": SatUnsatPair(satisfiable, satisfiable),
        "both-unsat": SatUnsatPair(unsatisfiable, unsatisfiable),
        "swapped": SatUnsatPair(unsatisfiable, satisfiable),
    }


class TestInstanceStructure:
    def test_combined_relation_is_product(self, pairs):
        reduction = Theorem1Reduction(pairs["yes"])
        relation = reduction.relation()
        first = reduction.first_construction.relation
        second = reduction.second_construction.relation
        assert len(relation) == len(first) * len(second)
        assert relation.scheme == first.scheme.union(second.scheme)

    def test_schemes_are_disjoint(self, pairs):
        reduction = Theorem1Reduction(pairs["yes"])
        assert reduction.first_construction.scheme.is_disjoint_from(
            reduction.second_construction.scheme
        )

    def test_expression_operand_is_combined_scheme(self, pairs):
        reduction = Theorem1Reduction(pairs["yes"])
        expression = reduction.expression()
        schemes = expression.operand_schemes()
        assert schemes["R"] == reduction.relation().scheme

    def test_expression_target_is_pair_columns_of_both_copies(self, pairs):
        reduction = Theorem1Reduction(pairs["yes"])
        target = reduction.expression().target_scheme()
        expected = reduction.first_construction.pair_scheme.union(
            reduction.second_construction.pair_scheme
        )
        assert target == expected

    def test_conjectured_result_scheme_matches_query(self, pairs):
        reduction = Theorem1Reduction(pairs["yes"])
        assert (
            reduction.conjectured_result().scheme
            == reduction.expression().target_scheme()
        )

    def test_paper_example_as_first_component(self):
        pair = SatUnsatPair(paper_example_formula(), forced_unsatisfiable(3))
        reduction = Theorem1Reduction(pair)
        relation, expression, conjectured = reduction.instance()
        assert len(relation) == 22 * 57  # 22 x (7*8+1)
        assert reduction.expected_equal()


class TestReductionCorrectness:
    @pytest.mark.parametrize("name", ["yes", "both-sat", "both-unsat", "swapped"])
    def test_equality_holds_iff_yes_instance(self, pairs, name):
        pair = pairs[name]
        reduction = Theorem1Reduction(pair)
        relation, expression, conjectured = reduction.instance()
        equal = evaluate(expression, relation) == conjectured
        assert equal == pair.is_yes_instance() == reduction.expected_equal()

    @pytest.mark.parametrize("name", ["yes", "both-sat", "both-unsat", "swapped"])
    def test_decider_agrees_with_direct_evaluation(self, pairs, name):
        reduction = Theorem1Reduction(pairs[name])
        relation, expression, conjectured = reduction.instance()
        verdict = QueryResultEqualityDecider().decide(expression, relation, conjectured)
        assert verdict.equal == reduction.expected_equal()

    def test_no_instance_direction_of_failure(self, pairs):
        # When both formulas are satisfiable the conjectured result misses the
        # extra u_G' tuple combinations: the query produces tuples outside r.
        reduction = Theorem1Reduction(pairs["both-sat"])
        relation, expression, conjectured = reduction.instance()
        verdict = QueryResultEqualityDecider().decide(expression, relation, conjectured)
        assert not verdict.equal
        assert verdict.conjectured_subset_of_result
        assert not verdict.result_subset_of_conjectured
        assert verdict.extra_tuple is not None

    def test_swapped_instance_fails_the_np_half(self, pairs):
        # First formula unsatisfiable: the conjectured result contains u_G
        # which the query never produces, so r ⊄ φ(R).
        reduction = Theorem1Reduction(pairs["swapped"])
        relation, expression, conjectured = reduction.instance()
        verdict = QueryResultEqualityDecider().decide(expression, relation, conjectured)
        assert not verdict.conjectured_subset_of_result
        assert verdict.missing_tuple is not None
