"""Unit tests for model counting and enumeration."""

import pytest

from repro.sat import (
    CNFFormula,
    count_models,
    count_models_bruteforce,
    enumerate_models,
    forced_unsatisfiable,
    paper_example_formula,
    random_three_cnf,
)


class TestBruteForceAndEnumeration:
    def test_paper_example_has_twenty_models(self):
        assert count_models_bruteforce(paper_example_formula()) == 20

    def test_enumeration_yields_only_models(self):
        formula = paper_example_formula()
        models = list(enumerate_models(formula))
        assert len(models) == 20
        assert all(formula.evaluate(model) for model in models)

    def test_enumeration_is_duplicate_free(self):
        models = list(enumerate_models(paper_example_formula()))
        assert len(set(models)) == len(models)

    def test_single_clause_count(self):
        assert count_models_bruteforce(CNFFormula.of("x | y | z")) == 7

    def test_unsatisfiable_count_is_zero(self):
        assert count_models_bruteforce(forced_unsatisfiable(3)) == 0


class TestComponentCounter:
    def test_matches_bruteforce_on_paper_example(self):
        assert count_models(paper_example_formula()) == 20

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_bruteforce_on_random_formulas(self, seed):
        formula = random_three_cnf(7, 14, seed=seed)
        assert count_models(formula) == count_models_bruteforce(formula)

    def test_unconstrained_variables_double_the_count(self):
        base = CNFFormula.of("x | y | z")
        padded = base.with_variables(["x", "y", "z", "free1", "free2"])
        assert count_models(padded) == 7 * 4

    def test_disjoint_components_multiply(self):
        formula = CNFFormula.of("a | b | c", "p | q | r")
        assert count_models(formula) == 49

    def test_unsatisfiable_component_zeroes_everything(self):
        formula = forced_unsatisfiable(3).extended(
            CNFFormula.of("p | q | r").clauses
        )
        assert count_models(formula) == 0

    def test_unit_clause_halves_space(self):
        formula = CNFFormula.of("x").with_variables(["x", "y"])
        assert count_models(formula) == 2
