"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


SAT_FORMULA = "(x1 | x2 | x3) & (~x1 | x2 | ~x3) & (x1 | ~x2 | x3)"
UNSAT_FORMULA = (
    "(p | q | r) & (p | q | ~r) & (p | ~q | r) & (p | ~q | ~r) & "
    "(~p | q | r) & (~p | q | ~r) & (~p | ~q | r) & (~p | ~q | ~r)"
)


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["example"],
            ["sat", SAT_FORMULA],
            ["count", SAT_FORMULA],
            ["construct", SAT_FORMULA, "--show-relation"],
            ["blowup", "--clauses", "3", "4"],
            ["engine-explain", "project[A](R * S)", "--scheme", "R=A B"],
            ["engine-explain", "--paper"],
            ["plans", "--executes", "2", "--rows", "120"],
            ["plans", "--invalidate"],
        ):
            arguments = parser.parse_args(argv)
            assert callable(arguments.handler)


class TestCommands:
    def test_example_prints_the_table(self, capsys):
        assert main(["example"]) == 0
        output = capsys.readouterr().out
        assert "phi_G" in output
        assert "|phi_G(R_G)| = 42" in output

    def test_sat_command_on_satisfiable_formula(self, capsys):
        assert main(["sat", SAT_FORMULA]) == 0
        output = capsys.readouterr().out
        assert output.count("SAT") >= 2
        assert "UNSAT" not in output.replace("UNSAT", "", 0) or "SAT" in output

    def test_sat_command_on_unsatisfiable_formula(self, capsys):
        assert main(["sat", UNSAT_FORMULA]) == 0
        output = capsys.readouterr().out
        assert "UNSAT" in output

    def test_count_command_matches_both_counters(self, capsys):
        assert main(["count", SAT_FORMULA]) == 0
        output = capsys.readouterr().out
        assert "#SAT via Theorem 3 identity" in output
        assert "#SAT via DPLL counter" in output

    def test_construct_command_reports_dimensions(self, capsys):
        assert main(["construct", SAT_FORMULA]) == 0
        output = capsys.readouterr().out
        assert "tuples" in output and "phi_G:" in output

    def test_construct_command_can_print_relation(self, capsys):
        assert main(["construct", SAT_FORMULA, "--show-relation", "--max-rows", "5"]) == 0
        output = capsys.readouterr().out
        assert "more tuples" in output

    def test_blowup_command_prints_table(self, capsys):
        assert main(["blowup", "--clauses", "3"]) == 0
        output = capsys.readouterr().out
        assert "naive_peak" in output
        assert "engine_peak_live" in output

    def test_blowup_command_can_skip_the_engine(self, capsys):
        assert main(["blowup", "--clauses", "3", "--no-engine"]) == 0
        output = capsys.readouterr().out
        assert "naive_peak" in output
        assert "engine_peak_live" not in output

    def test_engine_explain_prints_the_physical_plan(self, capsys):
        assert (
            main(
                [
                    "engine-explain",
                    "project[A](R * S)",
                    "--scheme",
                    "R=A B",
                    "--scheme",
                    "S=B C",
                    "--cardinality",
                    "R=1000",
                    "--cardinality",
                    "S=10",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "hash join" in output
        assert "scan R" in output and "scan S" in output
        assert "est_rows=" in output and "cost=" in output

    def test_engine_explain_prefer_merge_shows_sorts(self, capsys):
        assert (
            main(
                [
                    "engine-explain",
                    "R * S",
                    "--scheme",
                    "R=A B",
                    "--scheme",
                    "S=B C",
                    "--prefer-merge",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "merge join" in output and "sort by" in output

    def test_engine_explain_paper_mode_executes(self, capsys):
        assert main(["engine-explain", "--paper"]) == 0
        output = capsys.readouterr().out
        assert "peak live rows" in output
        assert "scan R" in output

    def test_engine_explain_paper_adaptive_reports_estimate_provenance(self, capsys):
        assert main(["engine-explain", "--paper", "--adaptive"]) == 0
        output = capsys.readouterr().out
        assert "reservoir samples" in output
        assert "mid-stream re-plan(s)" in output
        assert "per-join estimate provenance" in output
        # The report runs after one execution, so the plan store's ledger
        # has measured every join's true cardinality: each join node must
        # name its provenance, and at least one reports observed truth.
        assert "[observed-ledger]" in output
        for line in output.splitlines():
            if line.strip().startswith("join on"):
                assert (
                    "[observed-ledger]" in line
                    or "[sampled]" in line
                    or "[backoff]" in line
                )

    def test_plans_command_reports_histories_ledger_and_store(self, capsys):
        assert main(["plans", "--executes", "3", "--rows", "120"]) == 0
        output = capsys.readouterr().out
        assert "plan histories (3 execution(s) per query):" in output
        assert "pinned" in output
        assert "observed-cardinality ledger:" in output
        # Ledger lines are keyed by operand set *and* output columns.
        assert "{R, S}" in output and "rows" in output
        assert "warm sample(s)" in output
        # Over unchanged relations only the first sighting of each of the
        # three relations misses; every later plan build hits warm samples.
        import re

        hits, lookups = map(
            int, re.search(r"\((\d+)/(\d+) lookups hit", output).groups()
        )
        assert lookups - hits == 3

    def test_plans_invalidate_reports_the_scoped_drop(self, capsys):
        assert main(["plans", "--executes", "2", "--rows", "120", "--invalidate"]) == 0
        output = capsys.readouterr().out
        assert "forgotten" in output  # the invalidation replans re-pinned
        assert output.count("pinned") > output.count("forgotten")

    def test_plans_rejects_bad_arguments(self):
        with pytest.raises(SystemExit, match="executes"):
            main(["plans", "--executes", "0"])
        with pytest.raises(SystemExit, match="rows"):
            main(["plans", "--rows", "0"])

    def test_engine_explain_adaptive_without_data_notes_the_limit(self, capsys):
        assert (
            main(
                [
                    "engine-explain",
                    "project[A](R * S)",
                    "--scheme",
                    "R=A B",
                    "--scheme",
                    "S=B C",
                    "--adaptive",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "sampled statistics need data" in output
        assert "hash join" in output

    def test_engine_explain_memory_budget_plans_grace_joins(self, capsys):
        assert (
            main(
                [
                    "engine-explain",
                    "project[A](R * S)",
                    "--scheme",
                    "R=A B",
                    "--scheme",
                    "S=B C",
                    "--cardinality",
                    "R=10000",
                    "--memory-budget",
                    "64",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "grace hash join" in output
        assert "budget=64" in output
        assert "est_partitions=" in output

    def test_engine_explain_paper_reports_budget_and_workers(self, capsys):
        assert (
            main(["engine-explain", "--paper", "--memory-budget", "40", "--workers", "2"])
            == 0
        )
        output = capsys.readouterr().out
        assert "budget 40 rows" in output
        assert "peak build rows" in output
        assert "parallel probe: 2 workers" in output

    def test_engine_explain_rejects_bad_budget_and_workers(self):
        with pytest.raises(SystemExit, match="memory-budget"):
            main(["engine-explain", "--paper", "--memory-budget", "0"])
        with pytest.raises(SystemExit, match="workers"):
            main(["engine-explain", "--paper", "--workers", "0"])

    def test_blowup_memory_budget_reports_spill_delta(self, capsys):
        # m=10 under a 96-row budget must actually spill, and the summary
        # must be a per-invocation delta: a second identical run reports the
        # same numbers, not cumulative process totals.
        argv = ["blowup", "--clauses", "10", "--memory-budget", "96", "--workers", "2"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "engine ran budgeted at 96 rows x 2 worker(s)" in first
        import re

        def spilled_rows(output):
            return int(re.search(r"(\d+) row\(s\) spilled", output).group(1))

        assert spilled_rows(first) > 0
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert spilled_rows(second) == spilled_rows(first)

    def test_blowup_rejects_bad_budget_and_workers(self):
        with pytest.raises(SystemExit, match="memory-budget"):
            main(["blowup", "--clauses", "3", "--memory-budget", "-5"])
        with pytest.raises(SystemExit, match="workers"):
            main(["blowup", "--clauses", "3", "--workers", "0"])

    def test_engine_explain_requires_an_expression_or_paper(self):
        with pytest.raises(SystemExit):
            main(["engine-explain"])

    def test_engine_explain_paper_conflicts_with_stats_options(self):
        with pytest.raises(SystemExit):
            main(["engine-explain", "R * S", "--scheme", "R=A B", "--paper"])

    def test_engine_explain_rejects_malformed_scheme_option(self):
        with pytest.raises(SystemExit):
            main(["engine-explain", "R * S", "--scheme", "R:A B"])

    def test_engine_explain_rejects_non_integer_cardinality(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "engine-explain",
                    "R * S",
                    "--scheme",
                    "R=A B",
                    "--scheme",
                    "S=B C",
                    "--cardinality",
                    "R=abc",
                ]
            )

    def test_engine_explain_rejects_absurd_cardinality(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "engine-explain",
                    "R * S",
                    "--scheme",
                    "R=A B",
                    "--scheme",
                    "S=B C",
                    "--cardinality",
                    "R=" + "9" * 40,
                ]
            )

    def test_engine_explain_rejects_unknown_cardinality_name(self):
        # A typo'd operand name must not silently fall back to the default.
        with pytest.raises(SystemExit):
            main(
                [
                    "engine-explain",
                    "R * S",
                    "--scheme",
                    "R=A B",
                    "--scheme",
                    "S=B C",
                    "--cardinality",
                    "r=1000000",
                ]
            )

    def test_short_formula_is_normalised_not_rejected(self, capsys):
        # A 2-literal clause and fewer than 3 clauses: the CLI normalises via
        # the strict-3CNF conversion and minimum-clause padding.
        assert main(["count", "(a | b)"]) == 0
        output = capsys.readouterr().out
        assert "#SAT" in output
