"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


SAT_FORMULA = "(x1 | x2 | x3) & (~x1 | x2 | ~x3) & (x1 | ~x2 | x3)"
UNSAT_FORMULA = (
    "(p | q | r) & (p | q | ~r) & (p | ~q | r) & (p | ~q | ~r) & "
    "(~p | q | r) & (~p | q | ~r) & (~p | ~q | r) & (~p | ~q | ~r)"
)


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["example"],
            ["sat", SAT_FORMULA],
            ["count", SAT_FORMULA],
            ["construct", SAT_FORMULA, "--show-relation"],
            ["blowup", "--clauses", "3", "4"],
        ):
            arguments = parser.parse_args(argv)
            assert callable(arguments.handler)


class TestCommands:
    def test_example_prints_the_table(self, capsys):
        assert main(["example"]) == 0
        output = capsys.readouterr().out
        assert "phi_G" in output
        assert "|phi_G(R_G)| = 42" in output

    def test_sat_command_on_satisfiable_formula(self, capsys):
        assert main(["sat", SAT_FORMULA]) == 0
        output = capsys.readouterr().out
        assert output.count("SAT") >= 2
        assert "UNSAT" not in output.replace("UNSAT", "", 0) or "SAT" in output

    def test_sat_command_on_unsatisfiable_formula(self, capsys):
        assert main(["sat", UNSAT_FORMULA]) == 0
        output = capsys.readouterr().out
        assert "UNSAT" in output

    def test_count_command_matches_both_counters(self, capsys):
        assert main(["count", SAT_FORMULA]) == 0
        output = capsys.readouterr().out
        assert "#SAT via Theorem 3 identity" in output
        assert "#SAT via DPLL counter" in output

    def test_construct_command_reports_dimensions(self, capsys):
        assert main(["construct", SAT_FORMULA]) == 0
        output = capsys.readouterr().out
        assert "tuples" in output and "phi_G:" in output

    def test_construct_command_can_print_relation(self, capsys):
        assert main(["construct", SAT_FORMULA, "--show-relation", "--max-rows", "5"]) == 0
        output = capsys.readouterr().out
        assert "more tuples" in output

    def test_blowup_command_prints_table(self, capsys):
        assert main(["blowup", "--clauses", "3"]) == 0
        output = capsys.readouterr().out
        assert "naive_peak" in output

    def test_short_formula_is_normalised_not_rejected(self, capsys):
        # A 2-literal clause and fewer than 3 clauses: the CLI normalises via
        # the strict-3CNF conversion and minimum-clause padding.
        assert main(["count", "(a | b)"]) == 0
        output = capsys.readouterr().out
        assert "#SAT" in output
