"""Unit tests for the Section 3 construction (R_G and φ_G), Lemma 1, Proposition 1."""

import pytest

from repro.expressions import Join, Projection, evaluate
from repro.reductions import (
    BLANK,
    EXTRA_TAG,
    MARK,
    RGConstruction,
    SAT_TAG,
)
from repro.sat import (
    CNFFormula,
    count_models,
    enumerate_models,
    forced_unsatisfiable,
    is_satisfiable,
    paper_example_formula,
    planted_satisfiable,
    random_three_cnf,
)


@pytest.fixture(scope="module")
def example():
    return RGConstruction(paper_example_formula())


class TestShape:
    def test_relation_size_is_7m_plus_1(self, example):
        assert len(example.relation) == 22 == example.predicted_relation_size()

    def test_column_count_matches_formula(self, example):
        assert len(example.scheme) == 12 == example.predicted_column_count()

    def test_scheme_pieces(self, example):
        assert example.clause_scheme.names == ("F1", "F2", "F3")
        assert example.variable_scheme.names == ("X1", "X2", "X3", "X4", "X5")
        assert example.pair_scheme.names == ("Y_1_2", "Y_1_3", "Y_2_3")
        assert example.s_attribute == "S"

    def test_clause_projection_schemes(self, example):
        assert set(example.clause_projection_scheme(1).names) == {
            "F1", "X1", "X2", "X3", "Y_1_2", "Y_1_3", "S",
        }
        assert set(example.clause_projection_scheme(2).names) == {
            "F2", "X2", "X3", "X4", "Y_1_2", "Y_2_3", "S",
        }

    def test_expression_is_join_of_projections(self, example):
        assert isinstance(example.expression, Join)
        assert len(example.expression.parts) == 4
        assert all(isinstance(part, Projection) for part in example.expression.parts)

    def test_projection_schemes_cover_everything(self, example):
        union = example.projection_schemes()[0]
        for scheme in example.projection_schemes()[1:]:
            union = union.union(scheme)
        assert union == example.scheme

    def test_variable_column_round_trip(self, example):
        assert example.variable_column("x3") == "X3"
        assert example.column_variable("X3") == "x3"
        with pytest.raises(KeyError):
            example.column_variable("nope")

    def test_requires_strict_three_cnf(self):
        with pytest.raises(ValueError):
            RGConstruction(CNFFormula.of("x1 | x2"))

    def test_requires_minimum_clauses(self):
        with pytest.raises(ValueError):
            RGConstruction(CNFFormula.of("x1 | x2 | x3"))

    def test_suffix_makes_schemes_disjoint(self):
        plain = RGConstruction(paper_example_formula())
        primed = RGConstruction(paper_example_formula(), suffix="p")
        assert plain.scheme.is_disjoint_from(primed.scheme)


class TestTupleStructure:
    def test_special_tuple_present(self, example):
        special = [t for t in example.relation if t["S"] == EXTRA_TAG]
        assert len(special) == 1
        tup = special[0]
        assert all(tup[f] == 1 for f in example.clause_scheme.names)
        assert all(tup[x] == BLANK for x in example.variable_scheme.names)
        assert all(tup[y] == BLANK for y in example.pair_scheme.names)

    def test_seven_tuples_per_clause(self, example):
        for clause_attribute in example.clause_scheme.names:
            owned = [
                t
                for t in example.relation
                if t[clause_attribute] == 1 and t["S"] == SAT_TAG
            ]
            assert len(owned) == 7

    def test_clause_tuples_mark_pair_columns(self, example):
        for tup in example.relation:
            if tup["S"] != SAT_TAG:
                continue
            owner = [f for f in example.clause_scheme.names if tup[f] == 1]
            assert len(owner) == 1
            clause_index = int(owner[0][1:])
            for pair in example.pair_scheme.names:
                _, first, second = pair.split("_")
                expected = MARK if clause_index in (int(first), int(second)) else BLANK
                assert tup[pair] == expected

    def test_clause_tuples_encode_satisfying_clause_assignments(self, example):
        formula = example.formula
        for clause_index, clause in enumerate(formula.clauses, start=1):
            attribute = f"F{clause_index}"
            for tup in example.relation:
                if tup[attribute] != 1 or tup["S"] != SAT_TAG:
                    continue
                assignment = {
                    variable: bool(tup[example.variable_column(variable)])
                    for variable in clause.variable_tuple()
                }
                assert clause.evaluate(assignment)

    def test_falsifying_tuple_encodes_the_one_bad_assignment(self, example):
        falsifying = example.falsifying_tuple(1)
        clause = example.formula.clauses[0]
        assignment = {
            variable: bool(falsifying[example.variable_column(variable)])
            for variable in clause.variable_tuple()
        }
        assert not clause.evaluate(assignment)
        assert falsifying not in example.relation


class TestLemma1:
    def test_paper_example(self, example):
        result = evaluate(example.expression, example.relation)
        assert result == example.expected_result()
        assert len(result) == 22 + 20

    @pytest.mark.parametrize("seed", range(4))
    def test_satisfiable_formulas(self, seed):
        formula, _ = planted_satisfiable(5, 4, seed=seed)
        construction = RGConstruction(formula)
        result = evaluate(construction.expression, construction.relation)
        assert result == construction.expected_result()
        # Model counting must use the construction's own (occurring-variable)
        # formula presentation, which is what Lemma 1 is stated over.
        assert len(result) == construction.predicted_result_size(
            count_models(construction.formula)
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_unsatisfiable_formulas(self, seed):
        formula = forced_unsatisfiable(4, extra_random_clauses=seed, seed=seed)
        construction = RGConstruction(formula)
        result = evaluate(construction.expression, construction.relation)
        assert result == construction.relation
        assert result == construction.expected_result()

    def test_assignment_decoding_round_trip(self, example):
        for model in enumerate_models(example.formula):
            tup = example.satisfying_assignment_tuple(model)
            assert example.assignment_of_tuple(tup) == model

    def test_non_assignment_tuple_decodes_to_none(self, example):
        special = next(t for t in example.relation if t["S"] == EXTRA_TAG)
        assert example.assignment_of_tuple(special) is None


class TestProposition1:
    @pytest.mark.parametrize("seed", range(3))
    def test_pair_projection_gains_u_g_iff_satisfiable(self, seed):
        satisfiable, _ = planted_satisfiable(5, 4, seed=seed)
        unsatisfiable = forced_unsatisfiable(4, seed=seed)
        for formula in (satisfiable, unsatisfiable):
            construction = RGConstruction(formula)
            projection = evaluate(
                construction.pair_projection_expression(), construction.relation
            )
            expected = construction.expected_pair_projection(is_satisfiable(formula))
            assert projection == expected
            gained_u_g = construction.u_g_tuple() in projection
            assert gained_u_g == is_satisfiable(formula)

    def test_pair_projection_size_is_m_plus_1(self, example):
        assert example.pair_projection_size() == example.formula.num_clauses + 1


class TestTheorem45Variants:
    def test_relation_with_falsifying_tuples_size(self, example):
        extended = example.relation_with_falsifying_tuples()
        assert len(extended) == len(example.relation) + example.formula.num_clauses

    def test_relation_with_u_column(self, example):
        extended = example.relation_with_u_column()
        assert example.u_attribute in extended.scheme
        assert len(extended) == len(example.relation) + example.formula.num_clauses
        u_values = extended.column_values(example.u_attribute)
        # One shared constant plus one distinct constant per clause.
        assert len(u_values) == example.formula.num_clauses + 1

    def test_phi_two_keeps_u_in_every_clause_factor(self, example):
        phi_two = example.phi_two_expression()
        clause_factors = phi_two.parts[1:]
        assert all(example.u_attribute in part.target_scheme() for part in clause_factors)
        phi_one = example.phi_one_expression()
        assert all(
            example.u_attribute not in part.target_scheme() for part in phi_one.parts
        )

    def test_phi_one_on_plain_relation_scheme_rejected(self, example):
        # φ¹ expects the extended scheme T′ (with U); binding the plain R_G
        # must be rejected by the evaluator's scheme check.
        from repro.expressions import ExpressionError

        with pytest.raises(ExpressionError):
            evaluate(example.phi_one_expression(), example.relation)
