"""Containment and equivalence of query results (Theorems 4 and 5).

Two flavours of comparison are implemented, matching the two theorems:

* **Fixed relation, two queries** — ``φ1(R) ⊆ φ2(R)`` / ``φ1(R) = φ2(R)``;
* **Fixed query, two databases** — ``φ(R1) ⊆ φ(R2)`` / ``φ(R1) = φ(R2)``.

Both are decided by evaluation with witness reporting.  The verdict object
mirrors the Π₂ᵖ structure of the problem: a *violation* is a tuple together
with a membership certificate on the left and the (co-NP) fact that it has no
certificate on the right; :meth:`ContainmentDecider.violating_tuple` surfaces
exactly that tuple.

For contrast, :func:`contained_over_all_databases` exposes the classical
Chandra–Merlin containment (an NP-complete problem) from
:mod:`repro.tableaux`, which ignores the database entirely — the benchmark
harness uses the pair to illustrate how different the two notions are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..algebra.relation import Relation
from ..algebra.tuples import RelationTuple
from ..expressions.ast import Expression
from ..expressions.evaluator import ArgumentLike, evaluate
from ..tableaux.homomorphism import query_contained_in

__all__ = [
    "ContainmentVerdict",
    "ContainmentDecider",
    "contained_over_all_databases",
]


@dataclass(frozen=True)
class ContainmentVerdict:
    """The outcome of a containment / equivalence comparison.

    ``left_in_right`` and ``right_in_left`` are the two one-sided answers;
    the witnesses are tuples demonstrating the corresponding failures.
    """

    left_in_right: bool
    right_in_left: bool
    left_only_witness: Optional[RelationTuple]
    right_only_witness: Optional[RelationTuple]
    left_cardinality: int
    right_cardinality: int

    @property
    def equivalent(self) -> bool:
        """Whether both containments hold."""
        return self.left_in_right and self.right_in_left


class ContainmentDecider:
    """Decide containment and equivalence of evaluated query results."""

    def compare_queries(
        self,
        first: Expression,
        second: Expression,
        arguments: ArgumentLike,
        second_arguments: Optional[ArgumentLike] = None,
    ) -> ContainmentVerdict:
        """Compare ``first(arguments)`` with ``second(second_arguments or arguments)``.

        With the default ``second_arguments=None`` this is the Theorem 4
        problem (two queries, one database); passing a different argument
        binding for the second query covers the general
        ``φ1(R1) vs φ2(R2)`` statement in the introduction.
        """
        left = evaluate(first, arguments)
        right = evaluate(second, arguments if second_arguments is None else second_arguments)
        return self._verdict(left, right)

    def compare_databases(
        self,
        expression: Expression,
        first: ArgumentLike,
        second: ArgumentLike,
    ) -> ContainmentVerdict:
        """Compare ``expression(first)`` with ``expression(second)`` (Theorem 5)."""
        left = evaluate(expression, first)
        right = evaluate(expression, second)
        return self._verdict(left, right)

    def contained(
        self, first: Expression, second: Expression, arguments: ArgumentLike
    ) -> bool:
        """Convenience wrapper for ``first(R) ⊆ second(R)``."""
        return self.compare_queries(first, second, arguments).left_in_right

    def equivalent(
        self, first: Expression, second: Expression, arguments: ArgumentLike
    ) -> bool:
        """Convenience wrapper for ``first(R) = second(R)``."""
        return self.compare_queries(first, second, arguments).equivalent

    @staticmethod
    def _verdict(left: Relation, right: Relation) -> ContainmentVerdict:
        if left.scheme != right.scheme:
            return ContainmentVerdict(
                left_in_right=False,
                right_in_left=False,
                left_only_witness=None,
                right_only_witness=None,
                left_cardinality=len(left),
                right_cardinality=len(right),
            )
        left_only = left.difference(right)
        right_only = right.difference(left)
        return ContainmentVerdict(
            left_in_right=left_only.is_empty(),
            right_in_left=right_only.is_empty(),
            left_only_witness=_first_tuple(left_only),
            right_only_witness=_first_tuple(right_only),
            left_cardinality=len(left),
            right_cardinality=len(right),
        )


def _first_tuple(relation: Relation) -> Optional[RelationTuple]:
    if relation.is_empty():
        return None
    rows = relation.sorted_rows()
    return RelationTuple.from_values(relation.scheme, rows[0])


def contained_over_all_databases(first: Expression, second: Expression) -> bool:
    """Chandra–Merlin containment: ``first ⊆ second`` on *every* database.

    This is a strictly stronger (and computationally different) notion than
    the fixed-database containment of Theorem 4; it is re-exported here so
    users comparing queries have both next to each other.
    """
    return query_contained_in(first, second)
