"""Tuple membership: is ``t ∈ φ(R)``?  (Proposition 2 — the problem is in NP.)

Three deciders are provided and cross-checked by the test-suite:

* :func:`tuple_in_result` — evaluate the expression and test membership
  (simple, exponential space in the worst case);
* :class:`CertificateMembershipDecider` — Proposition 2's NP certificate: search
  for a valuation of the expression's tableau that produces ``t`` (polynomial
  space, exponential time in the worst case);
* :class:`SatBackedMembershipDecider` — encode the valuation search as a CNF
  formula and run the DPLL solver, demonstrating the NP-membership direction
  of the paper's results as an executable reduction *into* SAT;
* :class:`EngineMembershipDecider` — stream the expression through the
  query-execution engine (:mod:`repro.engine`) and short-circuit on the
  first occurrence of the candidate, so neither the result nor any
  intermediate is ever materialised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Tuple, Union

from ..algebra.relation import Relation
from ..algebra.tuples import RelationTuple
from ..expressions.ast import Expression
from ..expressions.evaluator import ArgumentLike, bind_arguments, evaluate
from ..sat.cnf import CNFFormula
from ..sat.literals import Clause, Literal
from ..sat.solver import DPLLSolver
from ..tableaux.tableau import Tableau, TableauCell, tableau_of_expression

__all__ = [
    "tuple_in_result",
    "MembershipWitness",
    "CertificateMembershipDecider",
    "SatBackedMembershipDecider",
    "EngineMembershipDecider",
]


def tuple_in_result(
    candidate: RelationTuple, expression: Expression, arguments: ArgumentLike
) -> bool:
    """Decide ``candidate ∈ expression(arguments)`` by full evaluation."""
    return candidate in evaluate(expression, arguments)


class EngineMembershipDecider:
    """Decide membership by streaming evaluation with early exit.

    The streaming engine yields result rows incrementally, so the decider
    can stop at the candidate's first occurrence — on satisfiable blow-up
    instances this touches a fraction of the result and never materialises
    any intermediate.  Plans are pinned on the wrapped
    :class:`~repro.engine.evaluator.EngineEvaluator`, so deciding many
    tuples against one expression re-plans nothing.
    """

    def __init__(self, evaluator=None):
        if evaluator is None:
            from ..engine.evaluator import EngineEvaluator

            evaluator = EngineEvaluator()
        self._evaluator = evaluator

    def decide(
        self,
        candidate: RelationTuple,
        expression: Expression,
        arguments: ArgumentLike,
    ) -> bool:
        """Return whether ``candidate ∈ expression(arguments)``, streaming."""
        from ..algebra.errors import TupleSchemeMismatch
        from ..algebra.tuples import as_tuple
        from ..engine.physical import MemoryMeter

        bound = bind_arguments(expression, arguments)
        plan = self._evaluator.plan_for(expression, bound)
        # Honour the evaluator's configured budget: a budgeted evaluator's
        # membership probes must spill exactly like its full evaluations
        # instead of building unbounded hash tables.
        budget = self._evaluator.config.budget
        meter = MemoryMeter(budget.rows if budget is not None else None)
        root = plan.executor(bound, meter)
        try:
            # Interpret the candidate against the *expression's* result
            # scheme (the order every other decider uses — a plain value
            # sequence means that order), then realign to the physical
            # plan's output order, which follows the greedy join order.
            canonical = as_tuple(expression.target_scheme(), candidate)
            target = as_tuple(root.scheme, canonical)._values
        except TupleSchemeMismatch:
            return False
        blocks = root.blocks()
        try:
            for block in blocks:
                if target in block:
                    return True
            return False
        finally:
            blocks.close()


@dataclass(frozen=True)
class MembershipWitness:
    """An NP certificate for ``t ∈ φ(R)``: a valuation of the tableau variables.

    ``row_sources`` records, for each tableau row, which input tuple the row
    was mapped onto — together with the valuation this is checkable in
    polynomial time, which is the content of Proposition 2.
    """

    valuation: Mapping[TableauCell, Hashable]
    row_sources: Tuple[RelationTuple, ...]


class CertificateMembershipDecider:
    """Decide membership by searching for a Proposition 2 certificate."""

    def decide(
        self,
        candidate: RelationTuple,
        expression: Expression,
        arguments: ArgumentLike,
    ) -> Optional[MembershipWitness]:
        """Return a witness when ``candidate ∈ expression(arguments)``, else ``None``."""
        tableau = tableau_of_expression(expression)
        bound = bind_arguments(expression, arguments)
        valuation = tableau.produces_tuple(candidate, bound)
        if valuation is None:
            return None
        row_sources = self._row_sources(tableau, valuation, bound)
        return MembershipWitness(valuation=valuation, row_sources=row_sources)

    def verify(
        self,
        candidate: RelationTuple,
        expression: Expression,
        arguments: ArgumentLike,
        witness: MembershipWitness,
    ) -> bool:
        """Check a claimed witness in polynomial time (no search)."""
        tableau = tableau_of_expression(expression)
        bound = bind_arguments(expression, arguments)
        if len(witness.row_sources) != len(tableau.rows):
            return False
        # Every row's cells, under the valuation, must match the claimed source
        # tuple, and that tuple must belong to the row's operand relation.
        for row, source in zip(tableau.rows, witness.row_sources):
            if source not in bound[row.operand]:
                return False
            for attribute, cell in row.cells:
                expected = (
                    cell.value
                    if hasattr(cell, "value")
                    else witness.valuation.get(cell)
                )
                if expected is None or source[attribute] != expected:
                    return False
        # The summary, under the valuation, must spell out the candidate tuple.
        for attribute in tableau.target_scheme.names:
            cell = tableau.summary[attribute]
            expected = (
                cell.value if hasattr(cell, "value") else witness.valuation.get(cell)
            )
            if candidate[attribute] != expected:
                return False
        return True

    @staticmethod
    def _row_sources(
        tableau: Tableau,
        valuation: Mapping[TableauCell, Hashable],
        bound: Mapping[str, Relation],
    ) -> Tuple[RelationTuple, ...]:
        sources: List[RelationTuple] = []
        for row in tableau.rows:
            values: Dict[str, Hashable] = {}
            for attribute, cell in row.cells:
                values[attribute] = (
                    cell.value if hasattr(cell, "value") else valuation[cell]
                )
            relation = bound[row.operand]
            sources.append(RelationTuple(relation.scheme, values))
        return tuple(sources)


class SatBackedMembershipDecider:
    """Decide membership by reducing the certificate search to SAT.

    For every tableau row a block of selector variables ``row_r_chooses_t`` is
    introduced (one per tuple of the row's operand relation); clauses state
    that each row chooses at least one tuple and that choices of any two rows agree
    on every shared tableau variable (and match the candidate on summary
    cells).  The resulting CNF is satisfiable iff ``t ∈ φ(R)``.
    """

    def __init__(self) -> None:
        self._solver = DPLLSolver()

    def encode(
        self,
        candidate: RelationTuple,
        expression: Expression,
        arguments: ArgumentLike,
    ) -> CNFFormula:
        """Build the CNF encoding of the membership question."""
        tableau = tableau_of_expression(expression)
        bound = bind_arguments(expression, arguments)

        clauses: List[Clause] = []
        # Selector variable names and the value each selection implies for each
        # tableau cell touched by the row.
        selections: List[List[Tuple[str, Dict[TableauCell, Hashable]]]] = []
        pinned: Dict[TableauCell, Hashable] = {}
        for attribute in tableau.target_scheme.names:
            cell = tableau.summary[attribute]
            if hasattr(cell, "value"):
                if cell.value != candidate[attribute]:
                    # Constant summary cell conflicts with the candidate: the
                    # formula is trivially unsatisfiable.
                    return CNFFormula(
                        [Clause([Literal("unsat_marker")]), Clause([Literal("unsat_marker", False)])]
                    )
            else:
                if cell in pinned and pinned[cell] != candidate[attribute]:
                    return CNFFormula(
                        [Clause([Literal("unsat_marker")]), Clause([Literal("unsat_marker", False)])]
                    )
                pinned[cell] = candidate[attribute]

        for row_index, row in enumerate(tableau.rows):
            relation = bound[row.operand]
            options: List[Tuple[str, Dict[TableauCell, Hashable]]] = []
            for tuple_index, tup in enumerate(relation.sorted_rows()):
                tup_obj = RelationTuple.from_values(relation.scheme, tup)
                implied: Dict[TableauCell, Hashable] = {}
                consistent = True
                for attribute, cell in row.cells:
                    value = tup_obj[attribute]
                    if hasattr(cell, "value"):
                        if cell.value != value:
                            consistent = False
                            break
                    else:
                        if cell in pinned and pinned[cell] != value:
                            consistent = False
                            break
                        if cell in implied and implied[cell] != value:
                            consistent = False
                            break
                        implied[cell] = value
                if consistent:
                    options.append((f"sel_{row_index}_{tuple_index}", implied))
            if not options:
                return CNFFormula(
                    [Clause([Literal("unsat_marker")]), Clause([Literal("unsat_marker", False)])]
                )
            selections.append(options)
            clauses.append(Clause([Literal(name) for name, _ in options]))

        # Mutual consistency: two selections that disagree on a shared cell
        # cannot both be chosen.
        for first_index in range(len(selections)):
            for second_index in range(first_index + 1, len(selections)):
                for first_name, first_implied in selections[first_index]:
                    for second_name, second_implied in selections[second_index]:
                        shared = set(first_implied) & set(second_implied)
                        if any(
                            first_implied[cell] != second_implied[cell] for cell in shared
                        ):
                            clauses.append(
                                Clause(
                                    [Literal(first_name, False), Literal(second_name, False)]
                                )
                            )
        return CNFFormula(clauses)

    def decide(
        self,
        candidate: RelationTuple,
        expression: Expression,
        arguments: ArgumentLike,
    ) -> bool:
        """Decide membership by solving the CNF encoding."""
        formula = self.encode(candidate, expression, arguments)
        return self._solver.solve(formula).satisfiable
