"""The project-join fixpoint test ``*_i π_{Y_i}(R) = R`` (co-NP-complete).

This is the Maier–Sagiv–Yannakakis problem the paper re-proves via its
construction (``G`` unsatisfiable iff ``φ_G(R_G) = R_G``).  In database terms
the question is whether ``R`` is the *universal-relation* join of its own
projections — i.e. whether the decomposition onto the schemes ``Y_i`` is
lossless for this particular instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..algebra.operations import project_join
from ..algebra.relation import Relation
from ..algebra.schema import RelationScheme, SchemeLike, as_scheme
from ..algebra.tuples import RelationTuple

__all__ = ["FixpointVerdict", "ProjectJoinFixpointDecider"]


@dataclass(frozen=True)
class FixpointVerdict:
    """The outcome of testing ``*_i π_{Y_i}(R) = R``.

    ``extra_tuple`` is a witness in the join but not in ``R`` (the join of
    projections always contains ``R`` when the schemes cover ``R``'s scheme,
    so only this direction can fail).
    """

    holds: bool
    join_cardinality: int
    relation_cardinality: int
    extra_tuple: Optional[RelationTuple]


class ProjectJoinFixpointDecider:
    """Decide whether a relation equals the join of its projections."""

    def decide(
        self, relation: Relation, projection_schemes: Sequence[SchemeLike]
    ) -> FixpointVerdict:
        """Evaluate ``*_i π_{Y_i}(R)`` and compare with ``R``."""
        schemes = [as_scheme(s) for s in projection_schemes]
        joined = project_join(relation, schemes)
        if joined.scheme != relation.scheme:
            # The schemes do not cover R's attributes; the fixpoint cannot hold.
            return FixpointVerdict(
                holds=False,
                join_cardinality=len(joined),
                relation_cardinality=len(relation),
                extra_tuple=None,
            )
        extra = joined.difference(relation)
        witness = None
        if not extra.is_empty():
            witness = RelationTuple.from_values(extra.scheme, extra.sorted_rows()[0])
        return FixpointVerdict(
            holds=extra.is_empty() and relation.difference(joined).is_empty(),
            join_cardinality=len(joined),
            relation_cardinality=len(relation),
            extra_tuple=witness,
        )

    def holds(self, relation: Relation, projection_schemes: Sequence[SchemeLike]) -> bool:
        """Convenience wrapper returning only the Boolean answer."""
        return self.decide(relation, projection_schemes).holds
