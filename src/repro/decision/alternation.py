"""Π₂ᵖ-style deciders that mirror the paper's membership proofs (Proposition 3).

Proposition 3 places the containment problems of Theorems 4 and 5 in Π₂ᵖ by
the following Σ₂ᵖ procedure for the *complement*: nondeterministically guess a
tuple ``t`` and check, with an NP oracle, that ``t ∈ φ1(R1)`` and
``t ∉ φ2(R2)``.  :class:`AlternationContainmentDecider` is that procedure made
deterministic: the "guess" becomes an enumeration of candidate tuples over the
active domain of the target scheme, and the NP oracle is the Proposition 2
certificate search of
:class:`~repro.decision.membership.CertificateMembershipDecider`.

Unlike :class:`~repro.decision.containment.ContainmentDecider`, this decider
never materialises ``φ1(R1)`` or ``φ2(R2)``; its working memory is one
candidate tuple plus one certificate, exactly as the complexity-theoretic
argument requires (polynomial space, exponential time in the worst case).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from ..algebra.relation import Relation
from ..algebra.schema import RelationScheme
from ..algebra.tuples import RelationTuple
from ..expressions.ast import Expression
from ..expressions.evaluator import ArgumentLike, bind_arguments
from .membership import CertificateMembershipDecider

__all__ = ["AlternationVerdict", "AlternationContainmentDecider"]


@dataclass(frozen=True)
class AlternationVerdict:
    """Outcome of the guess-and-verify containment check.

    ``counterexample`` is the first tuple found in the left result but not in
    the right one (the Σ₂ᵖ witness for non-containment), and
    ``candidates_checked`` counts how many guesses were examined before the
    answer was reached.
    """

    contained: bool
    counterexample: Optional[RelationTuple]
    candidates_checked: int


class AlternationContainmentDecider:
    """Decide ``φ1(R1) ⊆ φ2(R2)`` by candidate enumeration plus NP-oracle calls."""

    def __init__(self) -> None:
        self._membership = CertificateMembershipDecider()

    def decide(
        self,
        first: Expression,
        second: Expression,
        arguments: ArgumentLike,
        second_arguments: Optional[ArgumentLike] = None,
    ) -> AlternationVerdict:
        """Run the Proposition 3 procedure.

        The candidate space is the cross product of, per attribute of the
        target scheme, the values occurring in that attribute's column among
        the relations bound to the *first* expression — any tuple of
        ``φ1(R1)`` can only use those values, so the enumeration is complete.
        """
        if second_arguments is None:
            second_arguments = arguments
        target = first.target_scheme()
        if target != second.target_scheme():
            return AlternationVerdict(contained=False, counterexample=None, candidates_checked=0)

        checked = 0
        for candidate in self._candidates(first, arguments, target):
            checked += 1
            in_first = self._membership.decide(candidate, first, arguments) is not None
            if not in_first:
                continue
            in_second = (
                self._membership.decide(candidate, second, second_arguments) is not None
            )
            if not in_second:
                return AlternationVerdict(
                    contained=False, counterexample=candidate, candidates_checked=checked
                )
        return AlternationVerdict(contained=True, counterexample=None, candidates_checked=checked)

    def contained(
        self,
        first: Expression,
        second: Expression,
        arguments: ArgumentLike,
        second_arguments: Optional[ArgumentLike] = None,
    ) -> bool:
        """Boolean wrapper around :meth:`decide`."""
        return self.decide(first, second, arguments, second_arguments).contained

    def equivalent(
        self,
        first: Expression,
        second: Expression,
        arguments: ArgumentLike,
        second_arguments: Optional[ArgumentLike] = None,
    ) -> bool:
        """Decide equivalence as containment in both directions."""
        return self.contained(first, second, arguments, second_arguments) and self.contained(
            second, first, second_arguments if second_arguments is not None else arguments, arguments
        )

    # -- internals -------------------------------------------------------

    @staticmethod
    def _candidates(
        expression: Expression, arguments: ArgumentLike, target: RelationScheme
    ) -> Iterator[RelationTuple]:
        bound = bind_arguments(expression, arguments)
        per_attribute: Dict[str, List[Hashable]] = {}
        for attribute in target.names:
            values: set = set()
            for relation in bound.values():
                if attribute in relation.scheme:
                    values |= set(relation.column_values(attribute))
            per_attribute[attribute] = sorted(values, key=repr)
        names = list(target.names)
        for combination in itertools.product(*(per_attribute[name] for name in names)):
            yield RelationTuple(target, dict(zip(names, combination)))
