"""Cardinality estimation and bound checking for query results (Theorem 2).

The paper shows that every natural question about ``|φ(R)|`` is hard:
two-sided bounds are DP-complete, lower bounds NP-complete, upper bounds
co-NP-complete, and exact counting #P-hard.  The deciders here simply evaluate
and count — which is exactly what the hardness results say cannot be avoided
in the worst case — but they also expose *early-exit* variants that stop as
soon as a bound is decided, matching the nondeterministic algorithms in the
membership proofs (guess ``d1`` distinct tuples / guess ``d2 + 1`` distinct
tuples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..algebra.relation import Relation
from ..expressions.ast import Expression
from ..expressions.evaluator import ArgumentLike, evaluate

__all__ = ["CardinalityVerdict", "CardinalityDecider"]


@dataclass(frozen=True)
class CardinalityVerdict:
    """The outcome of checking ``d1 <= |φ(R)| <= d2``."""

    cardinality: int
    lower: Optional[int]
    upper: Optional[int]

    @property
    def lower_holds(self) -> bool:
        """Whether the lower bound (if any) holds."""
        return self.lower is None or self.cardinality >= self.lower

    @property
    def upper_holds(self) -> bool:
        """Whether the upper bound (if any) holds."""
        return self.upper is None or self.cardinality <= self.upper

    @property
    def holds(self) -> bool:
        """Whether both bounds hold."""
        return self.lower_holds and self.upper_holds


class CardinalityDecider:
    """Count ``|φ(R)|`` and check bound predicates on it."""

    def cardinality(self, expression: Expression, arguments: ArgumentLike) -> int:
        """The exact number of tuples in ``φ(R)`` (the #P-hard quantity)."""
        return len(evaluate(expression, arguments))

    def check_bounds(
        self,
        expression: Expression,
        arguments: ArgumentLike,
        lower: Optional[int] = None,
        upper: Optional[int] = None,
    ) -> CardinalityVerdict:
        """Check ``lower <= |φ(R)| <= upper`` (either bound may be omitted)."""
        cardinality = self.cardinality(expression, arguments)
        return CardinalityVerdict(cardinality=cardinality, lower=lower, upper=upper)

    def at_least(
        self, expression: Expression, arguments: ArgumentLike, lower: int
    ) -> bool:
        """Decide ``lower <= |φ(R)|`` (NP-complete in general).

        Implemented with an early exit: evaluation is still full (the naive
        evaluator materialises the result), but counting stops at ``lower``.
        """
        result = evaluate(expression, arguments)
        return self._count_up_to(result, lower) >= lower

    def at_most(
        self, expression: Expression, arguments: ArgumentLike, upper: int
    ) -> bool:
        """Decide ``|φ(R)| <= upper`` (co-NP-complete in general)."""
        result = evaluate(expression, arguments)
        return self._count_up_to(result, upper + 1) <= upper

    @staticmethod
    def _count_up_to(relation: Relation, limit: int) -> int:
        """Count tuples but stop as soon as ``limit`` is reached."""
        count = 0
        for _ in relation:
            count += 1
            if count >= limit:
                break
        return count
