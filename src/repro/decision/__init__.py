"""Decision procedures for the problems the paper studies.

Each decider answers one of the paper's questions on concrete instances,
reporting witnesses where the complexity class of the problem promises them
(NP certificates, co-NP violations, the DP pair, Π₂ᵖ counterexamples).
"""

from .alternation import AlternationContainmentDecider, AlternationVerdict
from .cardinality import CardinalityDecider, CardinalityVerdict
from .containment import (
    ContainmentDecider,
    ContainmentVerdict,
    contained_over_all_databases,
)
from .counting import TupleCounter, count_models_via_query
from .equality import EqualityVerdict, QueryResultEqualityDecider
from .fixpoint import FixpointVerdict, ProjectJoinFixpointDecider
from .membership import (
    CertificateMembershipDecider,
    EngineMembershipDecider,
    MembershipWitness,
    SatBackedMembershipDecider,
    tuple_in_result,
)

__all__ = [
    "AlternationContainmentDecider",
    "AlternationVerdict",
    "tuple_in_result",
    "MembershipWitness",
    "CertificateMembershipDecider",
    "SatBackedMembershipDecider",
    "EngineMembershipDecider",
    "EqualityVerdict",
    "QueryResultEqualityDecider",
    "CardinalityVerdict",
    "CardinalityDecider",
    "TupleCounter",
    "count_models_via_query",
    "ContainmentVerdict",
    "ContainmentDecider",
    "contained_over_all_databases",
    "FixpointVerdict",
    "ProjectJoinFixpointDecider",
]
