"""Exact tuple counting for projection-join queries (Theorem 3 and its corollary).

Two counters are exposed:

* :class:`TupleCounter.count` — count by evaluating the expression (counts the
  materialised result).
* :class:`TupleCounter.count_project_join` — the corollary's restricted form
  ``*_i π_{Y_i}(R)``, counted without materialising the join: candidate tuples
  over the union scheme are enumerated per-attribute from the *projections*
  and each candidate is checked against every projection.  This mirrors the
  "counting Turing machine" of the corollary's membership proof (guess a
  tuple, verify every projection) and stays polynomial *space*.

The module also provides :func:`count_models_via_query`, the reduction used in
the "useful" direction: counting the satisfying assignments of a 3CNF formula
by building ``R_G`` / ``φ_G`` and counting result tuples — the executable
content of ``#SAT(G) = |φ_G(R_G)| − 7m − 1``.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterable, Iterator, List, Sequence, Tuple

from ..algebra.relation import Relation
from ..algebra.schema import RelationScheme, SchemeLike, as_scheme
from ..algebra.tuples import RelationTuple
from ..expressions.ast import Expression
from ..expressions.evaluator import ArgumentLike, evaluate
from ..sat.cnf import CNFFormula

__all__ = ["TupleCounter", "count_models_via_query"]


class TupleCounter:
    """Counters for ``|φ(R)|`` and for the restricted project-join form."""

    def count(self, expression: Expression, arguments: ArgumentLike) -> int:
        """Count by full evaluation."""
        return len(evaluate(expression, arguments))

    def count_project_join(
        self, relation: Relation, projection_schemes: Sequence[SchemeLike]
    ) -> int:
        """Count the tuples of ``*_i π_{Y_i}(relation)`` without building the join.

        This mirrors the corollary's "counting Turing machine": a result tuple
        is exactly a mutually consistent choice of one tuple from each
        projection (the choice determines the result tuple and vice versa), so
        the count equals the number of consistent choices.  They are
        enumerated by backtracking over the projections, keeping only the
        partial tuple built so far — polynomial space, exponential time in the
        worst case, exactly as the #P-completeness predicts.
        """
        schemes = [as_scheme(s) for s in projection_schemes]
        projections = [relation.project(scheme) for scheme in schemes]
        # Visit projections with the widest overlap against already-bound
        # attributes first, to prune early.
        order = self._projection_order(schemes)
        ordered = [(schemes[i], projections[i]) for i in order]
        return self._count_extensions(ordered, 0, {})

    @staticmethod
    def _projection_order(schemes: Sequence[RelationScheme]) -> List[int]:
        remaining = list(range(len(schemes)))
        bound: set = set()
        order: List[int] = []
        while remaining:
            best = max(
                remaining,
                key=lambda i: (len(set(schemes[i].names) & bound), -len(schemes[i])),
            )
            order.append(best)
            bound |= set(schemes[best].names)
            remaining.remove(best)
        return order

    def _count_extensions(
        self,
        ordered: Sequence[Tuple[RelationScheme, Relation]],
        index: int,
        partial: Dict[str, Hashable],
    ) -> int:
        if index == len(ordered):
            return 1
        scheme, projection = ordered[index]
        total = 0
        for tup in projection:
            if all(
                attribute not in partial or partial[attribute] == tup[attribute]
                for attribute in scheme.names
            ):
                extended = dict(partial)
                for attribute in scheme.names:
                    extended[attribute] = tup[attribute]
                total += self._count_extensions(ordered, index + 1, extended)
        return total


def count_models_via_query(formula: CNFFormula) -> int:
    """Count the satisfying assignments of ``formula`` through the R_G construction.

    Builds ``R_G`` and ``φ_G``, counts ``|φ_G(R_G)|`` by evaluation, and
    returns ``|φ_G(R_G)| − (7m + 1)`` — the Theorem 3 identity run in the
    direction a database engine would actually use it.

    The count is over the variables that occur in the clauses (the paper's
    "variables appearing in the expression"); variables that are declared but
    never used do not multiply the count.
    """
    from ..reductions.theorem3 import Theorem3Reduction

    reduction = Theorem3Reduction(formula)
    instance = reduction.instance()
    tuple_count = TupleCounter().count(instance.expression, instance.relation)
    return reduction.models_from_tuple_count(tuple_count)
