"""Query-result equality and one-sided containment of a conjectured result.

Theorem 1's problem: given a relation ``R``, a projection-join expression
``φ`` and a conjectured result ``r``, decide ``φ(R) = r``.  The paper places
the two halves of the question in NP and co-NP respectively:

* ``r ⊆ φ(R)`` is in NP — guess (or, here, search) a membership certificate
  for every tuple of ``r``;
* ``φ(R) ⊆ r`` is in co-NP — a *violation* is a single tuple of ``φ(R)``
  outside ``r``, checkable with one membership certificate.

:class:`QueryResultEqualityDecider` reports not just the Boolean answer but a
:class:`EqualityVerdict` carrying the witnesses, so the DP structure of the
problem is visible in the API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..algebra.relation import Relation
from ..algebra.tuples import RelationTuple
from ..expressions.ast import Expression
from ..expressions.evaluator import ArgumentLike, evaluate

__all__ = ["EqualityVerdict", "QueryResultEqualityDecider"]


@dataclass(frozen=True)
class EqualityVerdict:
    """The outcome of comparing ``φ(R)`` with a conjectured result ``r``.

    Attributes
    ----------
    conjectured_subset_of_result:
        Whether ``r ⊆ φ(R)`` (the NP half).
    result_subset_of_conjectured:
        Whether ``φ(R) ⊆ r`` (the co-NP half).
    missing_tuple:
        A tuple of ``r`` not produced by the query, when the NP half fails.
    extra_tuple:
        A tuple produced by the query but absent from ``r``, when the co-NP
        half fails.
    result_cardinality:
        ``|φ(R)|`` (handy for the Theorem 2 benchmarks).
    """

    conjectured_subset_of_result: bool
    result_subset_of_conjectured: bool
    missing_tuple: Optional[RelationTuple]
    extra_tuple: Optional[RelationTuple]
    result_cardinality: int

    @property
    def equal(self) -> bool:
        """Whether ``φ(R) = r``."""
        return self.conjectured_subset_of_result and self.result_subset_of_conjectured


class QueryResultEqualityDecider:
    """Decide ``φ(R) = r`` (and the two one-sided containments) with witnesses."""

    def decide(
        self,
        expression: Expression,
        arguments: ArgumentLike,
        conjectured: Relation,
    ) -> EqualityVerdict:
        """Evaluate the query and compare against the conjectured result."""
        result = evaluate(expression, arguments)
        if result.scheme != conjectured.scheme:
            # Different schemes can never be equal; report both directions as
            # failing with no witnesses (there is no common tuple space).
            return EqualityVerdict(
                conjectured_subset_of_result=False,
                result_subset_of_conjectured=False,
                missing_tuple=None,
                extra_tuple=None,
                result_cardinality=len(result),
            )

        missing = self._first_difference(conjectured, result)
        extra = self._first_difference(result, conjectured)
        return EqualityVerdict(
            conjectured_subset_of_result=missing is None,
            result_subset_of_conjectured=extra is None,
            missing_tuple=missing,
            extra_tuple=extra,
            result_cardinality=len(result),
        )

    def equal(
        self, expression: Expression, arguments: ArgumentLike, conjectured: Relation
    ) -> bool:
        """Convenience wrapper returning only the Boolean answer to ``φ(R) = r``."""
        return self.decide(expression, arguments, conjectured).equal

    def conjectured_contained(
        self, expression: Expression, arguments: ArgumentLike, conjectured: Relation
    ) -> bool:
        """Decide the NP half ``r ⊆ φ(R)`` (Yannakakis's problem)."""
        return self.decide(expression, arguments, conjectured).conjectured_subset_of_result

    def result_contained(
        self, expression: Expression, arguments: ArgumentLike, conjectured: Relation
    ) -> bool:
        """Decide the co-NP half ``φ(R) ⊆ r`` (Maier–Sagiv–Yannakakis's problem)."""
        return self.decide(expression, arguments, conjectured).result_subset_of_conjectured

    @staticmethod
    def _first_difference(left: Relation, right: Relation) -> Optional[RelationTuple]:
        """A deterministic witness tuple in ``left`` but not in ``right``."""
        difference = left.difference(right)
        if difference.is_empty():
            return None
        rows = difference.sorted_rows()
        return RelationTuple.from_values(difference.scheme, rows[0])
