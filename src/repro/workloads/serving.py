"""The mixed-traffic serving workload: shared relations + query set.

One definition feeds every consumer of the serving scenario — the
``serving``/``server`` benchmark sections, the ``repro serve`` CLI's demo
database, and the server tests — so "mixed prepared queries over R/S/T"
means the same thing everywhere (the same discipline as
:mod:`repro.workloads.ordering` for the join-ordering oracle helpers).

The relations are sized so one execute costs on the order of a
millisecond: small enough for tight measurement loops, large enough that
timings reflect the engine's work rather than dispatch alone.
"""

from __future__ import annotations

from typing import Dict, List

from ..algebra.relation import Relation

__all__ = ["serving_queries", "serving_relations"]


def serving_relations(rows: int = 600) -> Dict[str, Relation]:
    """The three-relation chain database the serving workload joins over.

    ``R(A, B) * S(B, C) * T(C, D)`` with deterministic small-modulus
    columns, so every query of :func:`serving_queries` has non-trivial
    join fan-out without blowing up.
    """
    return {
        "R": Relation.from_rows(
            "A B", [(i % 40, i % 17) for i in range(rows)], name="R"
        ),
        "S": Relation.from_rows(
            "B C", [(i % 17, i % 23) for i in range(rows)], name="S"
        ),
        "T": Relation.from_rows(
            "C D", [(i % 23, i % 9) for i in range(rows)], name="T"
        ),
    }


def serving_queries() -> List[str]:
    """Eight distinct textual queries over :func:`serving_relations`.

    Textual (rather than AST) form so they can travel over the wire to
    the serving tier and through :meth:`repro.api.Session.prepare`
    unchanged; mixed shapes (two- and three-way joins, narrow and wide
    projections, one nested projection) keep a round-robin client from
    hitting a single plan.
    """
    return [
        "project[A](R * S)",
        "project[A, C](R * S)",
        "project[B, D](S * T)",
        "project[A, D](R * S * T)",
        "project[D](R * S * T)",
        "project[C](S * T)",
        "project[A, B](R * project[B](S))",
        "project[A, C, D](R * S * T)",
    ]
