"""The paper's worked example (p. 106), transcribed verbatim.

The only explicit table in the paper is the relation ``R_G`` for

    ``G = (x1 ∨ x2 ∨ x3)(¬x2 ∨ x3 ∨ ¬x4)(¬x3 ∨ ¬x4 ∨ ¬x5)``

— 22 tuples over the 12 columns
``F1 F2 F3 X1 X2 X3 X4 X5 Y_{1,2} Y_{1,3} Y_{2,3} S``.  This module stores the
printed rows literally (experiment E1) so the test-suite and the
``bench_paper_example`` benchmark can check that :class:`RGConstruction`
reproduces the table exactly, and that the accompanying expression matches the
printed ``φ_G``.
"""

from __future__ import annotations

from typing import List, Tuple

from ..algebra.relation import Relation
from ..algebra.schema import RelationScheme
from ..reductions.rg import RGConstruction
from ..sat.cnf import CNFFormula
from ..sat.generators import paper_example_formula

__all__ = [
    "paper_example_formula",
    "paper_example_construction",
    "paper_example_scheme",
    "paper_example_relation",
    "PAPER_EXAMPLE_ROWS",
    "PAPER_EXAMPLE_EXPRESSION_TEXT",
]

#: Column order exactly as printed in the paper (with this repository's
#: attribute naming: ``Y_{i,l}`` becomes ``Y_i_l``).
PAPER_EXAMPLE_COLUMNS: Tuple[str, ...] = (
    "F1", "F2", "F3",
    "X1", "X2", "X3", "X4", "X5",
    "Y_1_2", "Y_1_3", "Y_2_3",
    "S",
)

#: The 22 rows of the printed table, in the paper's row order.  ``0``/``1``
#: are truth values; ``"e"``, ``"x"``, ``"a"``, ``"b"`` are the paper's symbols.
PAPER_EXAMPLE_ROWS: Tuple[Tuple[object, ...], ...] = (
    (1, "e", "e", 0, 0, 1, "e", "e", "x", "x", "e", "a"),
    (1, "e", "e", 0, 1, 0, "e", "e", "x", "x", "e", "a"),
    (1, "e", "e", 0, 1, 1, "e", "e", "x", "x", "e", "a"),
    (1, "e", "e", 1, 0, 0, "e", "e", "x", "x", "e", "a"),
    (1, "e", "e", 1, 0, 1, "e", "e", "x", "x", "e", "a"),
    (1, "e", "e", 1, 1, 0, "e", "e", "x", "x", "e", "a"),
    (1, "e", "e", 1, 1, 1, "e", "e", "x", "x", "e", "a"),
    ("e", 1, "e", "e", 0, 0, 0, "e", "x", "e", "x", "a"),
    ("e", 1, "e", "e", 0, 0, 1, "e", "x", "e", "x", "a"),
    ("e", 1, "e", "e", 0, 1, 0, "e", "x", "e", "x", "a"),
    ("e", 1, "e", "e", 0, 1, 1, "e", "x", "e", "x", "a"),
    ("e", 1, "e", "e", 1, 0, 0, "e", "x", "e", "x", "a"),
    ("e", 1, "e", "e", 1, 1, 0, "e", "x", "e", "x", "a"),
    ("e", 1, "e", "e", 1, 1, 1, "e", "x", "e", "x", "a"),
    ("e", "e", 1, "e", "e", 0, 0, 0, "e", "x", "x", "a"),
    ("e", "e", 1, "e", "e", 0, 0, 1, "e", "x", "x", "a"),
    ("e", "e", 1, "e", "e", 0, 1, 0, "e", "x", "x", "a"),
    ("e", "e", 1, "e", "e", 0, 1, 1, "e", "x", "x", "a"),
    ("e", "e", 1, "e", "e", 1, 0, 0, "e", "x", "x", "a"),
    ("e", "e", 1, "e", "e", 1, 0, 1, "e", "x", "x", "a"),
    ("e", "e", 1, "e", "e", 1, 1, 0, "e", "x", "x", "a"),
    (1, 1, 1, "e", "e", "e", "e", "e", "e", "e", "e", "b"),
)

#: The expression φ_G exactly as printed, in this repository's textual syntax.
PAPER_EXAMPLE_EXPRESSION_TEXT: str = (
    "project[F1, F2, F3](R)"
    " * project[F1, X1, X2, X3, Y_1_2, Y_1_3, S](R)"
    " * project[F2, X2, X3, X4, Y_1_2, Y_2_3, S](R)"
    " * project[F3, X3, X4, X5, Y_1_3, Y_2_3, S](R)"
)


def paper_example_scheme() -> RelationScheme:
    """The 12-column scheme of the printed table."""
    return RelationScheme(PAPER_EXAMPLE_COLUMNS)


def paper_example_relation() -> Relation:
    """The printed 22-tuple relation, as transcribed from the paper."""
    return Relation.from_rows(paper_example_scheme(), PAPER_EXAMPLE_ROWS, name="R_G(paper)")


def paper_example_construction() -> RGConstruction:
    """The :class:`RGConstruction` for the example formula.

    Tests compare ``paper_example_construction().relation`` against
    :func:`paper_example_relation` (they must be equal as relations) and the
    generated expression against :data:`PAPER_EXAMPLE_EXPRESSION_TEXT`.
    """
    return RGConstruction(paper_example_formula())
