"""Random relations and random projection-join queries.

Used by the property-based tests (equivalence of the three evaluators, the
expression/tableau correspondence) and by the "benign instance" side of the
blow-up benchmark: random project-join queries over random relations rarely
exhibit the worst-case blow-up, which is exactly the contrast the paper's
introduction draws.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple, Union

from ..algebra.relation import Relation
from ..algebra.schema import RelationScheme
from ..expressions.ast import Expression, Join, Operand, Projection

__all__ = ["random_relation", "random_project_join_query", "random_instance"]

RandomLike = Union[int, random.Random, None]


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_relation(
    num_attributes: int = 4,
    num_tuples: int = 12,
    domain_size: int = 4,
    seed: RandomLike = None,
    name: str = "R",
    attribute_prefix: str = "A",
) -> Relation:
    """A random relation with small integer values.

    Attribute names are ``A1 ... Ak``; values are drawn uniformly from
    ``0 .. domain_size - 1``.  Duplicate rows are allowed in the draw (the
    relation deduplicates), so the actual cardinality may be below
    ``num_tuples``.
    """
    if num_attributes < 1:
        raise ValueError("a relation needs at least one attribute")
    rng = _rng(seed)
    scheme = RelationScheme(
        [f"{attribute_prefix}{i}" for i in range(1, num_attributes + 1)]
    )
    rows = [
        tuple(rng.randrange(domain_size) for _ in range(num_attributes))
        for _ in range(num_tuples)
    ]
    return Relation.from_rows(scheme, rows, name=name)


def random_project_join_query(
    scheme: RelationScheme,
    num_factors: int = 3,
    attributes_per_factor: int = 2,
    operand_name: str = "R",
    seed: RandomLike = None,
    outer_projection: bool = True,
) -> Expression:
    """A random query of the form ``π_Z(π_{Y_1}(R) * ... * π_{Y_k}(R))``.

    Each ``Y_i`` is a random subset of the scheme of the given size (clamped
    to the scheme width); the optional outer projection keeps a random subset
    of the union of the ``Y_i``.
    """
    rng = _rng(seed)
    names = list(scheme.names)
    size = min(attributes_per_factor, len(names))
    base = Operand(operand_name, scheme)
    factors: List[Expression] = []
    covered: List[str] = []
    for _ in range(max(1, num_factors)):
        chosen = rng.sample(names, size)
        for attribute in chosen:
            if attribute not in covered:
                covered.append(attribute)
        factors.append(Projection(RelationScheme(chosen), base))
    query: Expression = factors[0] if len(factors) == 1 else Join(factors)
    if outer_projection and len(covered) > 1:
        keep = rng.sample(covered, rng.randint(1, len(covered)))
        ordered = [a for a in covered if a in keep]
        query = Projection(RelationScheme(ordered), query)
    return query


def random_instance(
    num_attributes: int = 4,
    num_tuples: int = 12,
    domain_size: int = 4,
    num_factors: int = 3,
    attributes_per_factor: int = 2,
    seed: RandomLike = None,
) -> Tuple[Relation, Expression]:
    """A random relation together with a random project-join query over it."""
    rng = _rng(seed)
    relation = random_relation(
        num_attributes=num_attributes,
        num_tuples=num_tuples,
        domain_size=domain_size,
        seed=rng,
    )
    query = random_project_join_query(
        relation.scheme,
        num_factors=num_factors,
        attributes_per_factor=attributes_per_factor,
        seed=rng,
    )
    return relation, query
