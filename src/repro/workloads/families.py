"""Formula and instance families swept by the benchmark harness.

Each family is a deterministic function of its parameters (seeds are fixed per
index), so benchmark runs are reproducible and the EXPERIMENTS.md numbers can
be regenerated exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from ..qbf.generators import planted_false_q3sat, planted_true_q3sat
from ..qbf.instances import QThreeSatInstance
from ..sat.cnf import CNFFormula
from ..sat.generators import (
    forced_unsatisfiable,
    planted_satisfiable,
    random_three_cnf,
)
from ..reductions.theorem1 import SatUnsatPair

__all__ = [
    "FormulaCase",
    "satisfiable_family",
    "unsatisfiable_family",
    "mixed_family",
    "sat_unsat_pairs",
    "qbf_family",
    "growing_construction_family",
]


@dataclass(frozen=True)
class FormulaCase:
    """One formula of a family, with the metadata benchmarks report."""

    label: str
    formula: CNFFormula
    satisfiable_by_construction: "bool | None"

    @property
    def num_clauses(self) -> int:
        """Number of clauses (``m``)."""
        return self.formula.num_clauses

    @property
    def num_variables(self) -> int:
        """Number of variables (``n``)."""
        return self.formula.num_variables


def satisfiable_family(
    clause_counts: Sequence[int] = (3, 4, 5, 6), num_variables: int = 6, seed: int = 11
) -> List[FormulaCase]:
    """Planted-satisfiable 3CNF formulas with growing clause counts."""
    cases: List[FormulaCase] = []
    for index, clauses in enumerate(clause_counts):
        formula, _ = planted_satisfiable(num_variables, clauses, seed=seed + index)
        cases.append(
            FormulaCase(
                label=f"sat(m={clauses},n={num_variables})",
                formula=formula,
                satisfiable_by_construction=True,
            )
        )
    return cases


def unsatisfiable_family(
    extra_clause_counts: Sequence[int] = (0, 1, 2, 3),
    num_variables: int = 6,
    seed: int = 23,
) -> List[FormulaCase]:
    """Forced-unsatisfiable 3CNF formulas (contradiction block plus padding)."""
    cases: List[FormulaCase] = []
    for index, extra in enumerate(extra_clause_counts):
        formula = forced_unsatisfiable(
            num_variables, extra_random_clauses=extra, seed=seed + index
        )
        cases.append(
            FormulaCase(
                label=f"unsat(m={formula.num_clauses},n={num_variables})",
                formula=formula,
                satisfiable_by_construction=False,
            )
        )
    return cases


def mixed_family(
    count: int = 8, num_variables: int = 6, clause_ratio: float = 4.3, seed: int = 37
) -> List[FormulaCase]:
    """Random 3CNF near the satisfiability threshold (unknown truth value)."""
    clauses = max(3, int(round(clause_ratio * num_variables)))
    cases: List[FormulaCase] = []
    for index in range(count):
        formula = random_three_cnf(num_variables, clauses, seed=seed + index)
        cases.append(
            FormulaCase(
                label=f"random(m={clauses},n={num_variables},#{index})",
                formula=formula,
                satisfiable_by_construction=None,
            )
        )
    return cases


def sat_unsat_pairs(seed: int = 5, num_variables: int = 5) -> List[Tuple[str, SatUnsatPair]]:
    """The four SAT/UNSAT combinations used by the Theorem 1 / 2 benchmarks."""
    satisfiable, _ = planted_satisfiable(num_variables, 4, seed=seed)
    unsatisfiable = forced_unsatisfiable(num_variables, extra_random_clauses=0, seed=seed)
    return [
        ("sat+unsat (yes)", SatUnsatPair(satisfiable, unsatisfiable)),
        ("sat+sat (no)", SatUnsatPair(satisfiable, satisfiable)),
        ("unsat+unsat (no)", SatUnsatPair(unsatisfiable, unsatisfiable)),
        ("unsat+sat (no)", SatUnsatPair(unsatisfiable, satisfiable)),
    ]


def qbf_family(
    universal_counts: Sequence[int] = (3, 4, 5), seed: int = 7
) -> List[Tuple[str, QThreeSatInstance, bool]]:
    """Planted true and false Q-3SAT instances for the Theorem 4 / 5 benchmarks.

    Returns (label, instance, planted truth value) triples.
    """
    cases: List[Tuple[str, QThreeSatInstance, bool]] = []
    for index, universal in enumerate(universal_counts):
        true_instance = planted_true_q3sat(universal, seed=seed + index)
        false_instance = planted_false_q3sat(max(universal, 3), seed=seed + index)
        cases.append((f"true(|X|={len(true_instance.universal)})", true_instance, True))
        cases.append((f"false(|X|={len(false_instance.universal)})", false_instance, False))
    return cases


def growing_construction_family(
    clause_counts: Sequence[int] = (3, 4, 5, 6, 8, 10), seed: int = 13
) -> List[FormulaCase]:
    """Satisfiable formulas with steadily growing clause counts.

    Used by the construction-scaling and blow-up experiments (E9, E10), where
    only the construction's size matters, not the precise truth value — using
    planted-satisfiable formulas keeps the result non-trivial at every size.
    """
    cases: List[FormulaCase] = []
    for index, clauses in enumerate(clause_counts):
        num_variables = max(4, min(3 * clauses, 9))
        formula, _ = planted_satisfiable(num_variables, clauses, seed=seed + index)
        cases.append(
            FormulaCase(
                label=f"grow(m={clauses},n={num_variables})",
                formula=formula,
                satisfiable_by_construction=True,
            )
        )
    return cases
