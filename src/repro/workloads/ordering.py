"""Join-ordering quality instrumentation shared by tests and benchmarks.

The estimate-quality suite (``tests/test_engine_stats_quality.py``) and the
``adaptive`` benchmark gate (``benchmarks/bench_algebra_kernel.py``) both
compare the planner's greedy join ordering against the *actual-size greedy
oracle*: at every step pick the operand whose real (streamed, capped) join
cardinality with the accumulated chain is smallest.  Keeping the oracle and
its plan-reading helpers in one module means the CI gate and the tier-1
test can never silently assert different bounds.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from ..algebra.relation import Relation, _join_plan
from ..engine.evaluator import EngineEvaluator
from ..engine.physical import HashJoin, MemoryMeter, TableScan
from ..expressions.ast import Join
from ..expressions.ast import Projection as ProjectionNode
from ..expressions.evaluator import evaluate

__all__ = [
    "actual_greedy_order",
    "capped_join_size",
    "chain_peak",
    "join_parts",
    "planner_join_order",
]

#: Default streamed-count cap: candidate joins larger than this can never be
#: the greedy minimum on the R_G instances, so counting is cut off there.
DEFAULT_SIZE_CAP = 120_000


def capped_join_size(left: Relation, right: Relation, cap: int = DEFAULT_SIZE_CAP) -> int:
    """The real join cardinality, streamed (never materialised), capped."""
    meter = MemoryMeter()
    operator = HashJoin(
        TableScan(left, meter),
        TableScan(right, meter),
        _join_plan(left.scheme, right.scheme),
        meter,
        build_side="left" if len(left) <= len(right) else "right",
    )
    count = 0
    generator = operator.blocks()
    for block in generator:
        count += len(block)
        if count >= cap:
            generator.close()
            return cap
    return count


def join_parts(query, relation: Relation) -> List[Relation]:
    """The materialised operands of the query's n-ary join."""
    node = query
    while isinstance(node, ProjectionNode):
        node = node.child
    assert isinstance(node, Join)
    return [
        evaluate(part, {name: relation for name in part.operand_names()})
        for part in node.parts
    ]


def chain_peak(part_relations: List[Relation], order: List[int]) -> int:
    """Peak materialised intermediate along one left-deep join order."""
    accumulated = part_relations[order[0]].natural_join(part_relations[order[1]])
    peak = len(accumulated)
    for index in order[2:]:
        accumulated = accumulated.natural_join(part_relations[index])
        peak = max(peak, len(accumulated))
    return peak


def actual_greedy_order(
    part_relations: List[Relation], cap: int = DEFAULT_SIZE_CAP
) -> List[int]:
    """The oracle: greedy ordering by *actual* (streamed, capped) join sizes."""
    count = len(part_relations)
    best, best_pair = None, None
    for i, j in itertools.combinations(range(count), 2):
        size = capped_join_size(part_relations[i], part_relations[j], cap)
        if best is None or size < best:
            best, best_pair = size, (i, j)
    order = list(best_pair)
    accumulated = part_relations[best_pair[0]].natural_join(part_relations[best_pair[1]])
    remaining = [i for i in range(count) if i not in best_pair]
    while remaining:
        sizes = {
            i: capped_join_size(accumulated, part_relations[i], cap) for i in remaining
        }
        nxt = min(sizes, key=sizes.get)
        order.append(nxt)
        accumulated = accumulated.natural_join(part_relations[nxt])
        remaining.remove(nxt)
    return order


def planner_join_order(
    query,
    relation: Relation,
    part_relations: List[Relation],
    evaluator: Optional[EngineEvaluator] = None,
) -> List[int]:
    """The planner's greedy join order, read off its pinned plan's chain.

    ``evaluator`` selects the estimator under test — a default
    :class:`~repro.engine.evaluator.EngineEvaluator` for the
    exponential-backoff formulas, ``EngineEvaluator(adaptive=True)`` for
    sampling-based estimation.  Operands are identified by matching each
    chain node's scheme against ``part_relations``.
    """
    evaluator = evaluator or EngineEvaluator()
    bound = {name: relation for name in query.operand_names()}
    plan = evaluator.plan_for(query, bound)
    node = plan.root
    while node.kind == "project":
        node = node.children[0]
    by_scheme = {
        tuple(sorted(rel.scheme.names)): index
        for index, rel in enumerate(part_relations)
    }

    def descend(chain_node):
        if chain_node.kind != "hash-join":
            return [chain_node]
        probe = chain_node.children[chain_node.probe_child_index()]
        build = chain_node.children[1 - chain_node.probe_child_index()]
        return descend(probe) + [build]

    return [by_scheme[tuple(sorted(n.scheme.names))] for n in descend(node)]
