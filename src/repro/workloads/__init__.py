"""Workload generators for tests, examples, and the benchmark harness."""

from .families import (
    FormulaCase,
    growing_construction_family,
    mixed_family,
    qbf_family,
    sat_unsat_pairs,
    satisfiable_family,
    unsatisfiable_family,
)
from .paper_example import (
    PAPER_EXAMPLE_EXPRESSION_TEXT,
    PAPER_EXAMPLE_ROWS,
    paper_example_construction,
    paper_example_formula,
    paper_example_relation,
    paper_example_scheme,
)
from .ordering import (
    actual_greedy_order,
    capped_join_size,
    chain_peak,
    join_parts,
    planner_join_order,
)
from .relations import random_instance, random_project_join_query, random_relation
from .serving import serving_queries, serving_relations

__all__ = [
    "FormulaCase",
    "satisfiable_family",
    "unsatisfiable_family",
    "mixed_family",
    "sat_unsat_pairs",
    "qbf_family",
    "growing_construction_family",
    "paper_example_formula",
    "paper_example_construction",
    "paper_example_relation",
    "paper_example_scheme",
    "PAPER_EXAMPLE_ROWS",
    "PAPER_EXAMPLE_EXPRESSION_TEXT",
    "random_relation",
    "random_project_join_query",
    "random_instance",
    "actual_greedy_order",
    "capped_join_size",
    "chain_peak",
    "join_parts",
    "planner_join_order",
    "serving_queries",
    "serving_relations",
]
