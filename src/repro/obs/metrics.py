"""Named counters, gauges, and fixed-bucket histograms.

The registry mirrors the shape of a Prometheus client but stays inside
the baked-in toolchain: a :class:`MetricsRegistry` hands out named
instruments, a per-:class:`~repro.api.Session` registry propagates every
observation to the process-wide registry (:func:`process_metrics`), and
:func:`repro.obs.export.render_prometheus` serialises either one.

Histograms use *fixed buckets* so latency and q-error get per-window
p50/p95 estimates instead of the reset-only high-water mark that
``qerror_max_milli`` offers: callers snapshot a histogram, let traffic
flow, and summarise the delta.  ``count``/``sum``/``max`` are exact;
percentiles are bucket-upper-bound estimates (the standard Prometheus
trade-off).

Thread-safety follows the ``repro.perf.counters`` discipline: one module
lock guards every mutation, and ``os.register_at_fork`` reinstalls a
fresh lock in fork-pool children so a fork taken while the lock is held
cannot deadlock the child.
"""

import math
import os
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_QERROR_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "process_metrics",
]

#: Latency buckets in seconds, Prometheus-style powers-of-ten ladder.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: q-error buckets (dimensionless ratios >= 1.0).
DEFAULT_QERROR_BUCKETS: Tuple[float, ...] = (
    1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 25.0, 100.0, 1000.0,
)

_MUTATION_LOCK = threading.Lock()


def _reinitialize_lock_after_fork() -> None:
    """Replace the module lock in fork children (may be held mid-fork)."""
    global _MUTATION_LOCK
    _MUTATION_LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_reinitialize_lock_after_fork)


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "help", "value", "_parent")

    def __init__(self, name: str, help: str = "", parent: Optional["Counter"] = None):
        self.name = name
        self.help = help
        self.value = 0
        self._parent = parent

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for %r" % self.name)
        with _MUTATION_LOCK:
            self.value += amount
        if self._parent is not None:
            self._parent.inc(amount)

    def collect(self) -> Dict[str, Any]:
        """Return ``{"type", "help", "value"}`` for exporters."""
        return {"type": "counter", "help": self.help, "value": self.value}


class Gauge:
    """A named value that can go up and down (last write wins)."""

    __slots__ = ("name", "help", "value", "_parent")

    def __init__(self, name: str, help: str = "", parent: Optional["Gauge"] = None):
        self.name = name
        self.help = help
        self.value = 0.0
        self._parent = parent

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with _MUTATION_LOCK:
            self.value = value
        if self._parent is not None:
            self._parent.set(value)

    def collect(self) -> Dict[str, Any]:
        """Return ``{"type", "help", "value"}`` for exporters."""
        return {"type": "gauge", "help": self.help, "value": self.value}


class Histogram:
    """A fixed-bucket histogram with exact count/sum/max.

    ``buckets`` are inclusive upper bounds; an implicit ``+Inf`` bucket
    catches the tail.  ``observe`` is thread-safe and O(log buckets).
    Percentiles come from bucket upper bounds; per-window views come
    from :meth:`snapshot` + :meth:`summary_since`.
    """

    __slots__ = ("name", "help", "buckets", "bucket_counts", "count", "sum",
                 "max", "_parent")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
        parent: Optional["Histogram"] = None,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted non-empty sequence")
        self.name = name
        self.help = help
        self.buckets = tuple(float(bound) for bound in buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +Inf tail
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self._parent = parent

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = self._bucket_index(value)
        with _MUTATION_LOCK:
            self.bucket_counts[index] += 1
            self.count += 1
            self.sum += value
            if value > self.max:
                self.max = value
        if self._parent is not None:
            self._parent.observe(value)

    def snapshot(self) -> Dict[str, Any]:
        """Freeze the current state for later :meth:`summary_since`."""
        with _MUTATION_LOCK:
            return {
                "bucket_counts": tuple(self.bucket_counts),
                "count": self.count,
                "sum": self.sum,
                "max": self.max,
            }

    @staticmethod
    def _percentile_from(buckets, counts, count, quantile):
        if count <= 0:
            return 0.0
        rank = math.ceil(quantile * count)
        running = 0
        for index, bucket_count in enumerate(counts):
            running += bucket_count
            if running >= rank:
                if index < len(buckets):
                    return buckets[index]
                return float("inf")
        return float("inf")

    def percentile(self, quantile: float) -> float:
        """Estimate a quantile (0..1) as a bucket upper bound."""
        snap = self.snapshot()
        return self._percentile_from(
            self.buckets, snap["bucket_counts"], snap["count"], quantile
        )

    def summary(self) -> Dict[str, float]:
        """Return ``{count, sum, max, p50, p95}`` over all observations."""
        snap = self.snapshot()
        return {
            "count": snap["count"],
            "sum": snap["sum"],
            "max": snap["max"],
            "p50": self._percentile_from(
                self.buckets, snap["bucket_counts"], snap["count"], 0.50
            ),
            "p95": self._percentile_from(
                self.buckets, snap["bucket_counts"], snap["count"], 0.95
            ),
        }

    def summary_since(self, earlier: Dict[str, Any]) -> Dict[str, float]:
        """Per-window ``{count, sum, max, p50, p95}`` since an earlier snapshot.

        ``count``/``sum`` are exact deltas.  ``max`` and the percentiles
        are bucket-resolution: the window max is the upper bound of the
        highest bucket that gained an observation (bucket counts alone
        cannot recover the exact value).
        """
        snap = self.snapshot()
        delta = [
            now - before
            for now, before in zip(snap["bucket_counts"], earlier["bucket_counts"])
        ]
        count = snap["count"] - earlier["count"]
        window_max = 0.0
        for index in range(len(delta) - 1, -1, -1):
            if delta[index] > 0:
                window_max = (
                    self.buckets[index] if index < len(self.buckets) else snap["max"]
                )
                break
        return {
            "count": count,
            "sum": snap["sum"] - earlier["sum"],
            "max": window_max,
            "p50": self._percentile_from(self.buckets, delta, count, 0.50),
            "p95": self._percentile_from(self.buckets, delta, count, 0.95),
        }

    def collect(self) -> Dict[str, Any]:
        """Return buckets/count/sum for exporters."""
        snap = self.snapshot()
        return {
            "type": "histogram",
            "help": self.help,
            "buckets": self.buckets,
            "bucket_counts": snap["bucket_counts"],
            "count": snap["count"],
            "sum": snap["sum"],
            "max": snap["max"],
        }


class MetricsRegistry:
    """A namespace of instruments; observations propagate to ``parent``.

    A :class:`~repro.api.Session` owns one registry whose parent is the
    process-wide registry, so per-session numbers and fleet numbers stay
    consistent without double bookkeeping at call sites.  Instrument
    creation is idempotent: asking for an existing name returns the same
    object (and raises if the kind or buckets disagree).
    """

    def __init__(self, parent: Optional["MetricsRegistry"] = None):
        self._parent = parent
        self._instruments: Dict[str, Any] = {}

    def _get_or_create(self, kind, name, factory):
        with _MUTATION_LOCK:
            existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    "metric %r already registered as %s"
                    % (name, type(existing).__name__)
                )
            return existing
        created = factory()
        with _MUTATION_LOCK:
            # Another thread may have won the race; keep the first one.
            existing = self._instruments.setdefault(name, created)
        if existing is not created and not isinstance(existing, kind):
            raise ValueError(
                "metric %r already registered as %s" % (name, type(existing).__name__)
            )
        return existing

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the named :class:`Counter`."""
        parent = self._parent.counter(name, help) if self._parent else None
        return self._get_or_create(
            Counter, name, lambda: Counter(name, help, parent=parent)
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the named :class:`Gauge`."""
        parent = self._parent.gauge(name, help) if self._parent else None
        return self._get_or_create(Gauge, name, lambda: Gauge(name, help, parent=parent))

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> Histogram:
        """Get or create the named :class:`Histogram`."""
        parent = self._parent.histogram(name, buckets, help) if self._parent else None
        instrument = self._get_or_create(
            Histogram, name, lambda: Histogram(name, buckets, help, parent=parent)
        )
        if instrument.buckets != tuple(float(bound) for bound in buckets):
            raise ValueError("histogram %r already registered with other buckets" % name)
        return instrument

    def names(self) -> List[str]:
        """Return registered instrument names, sorted."""
        with _MUTATION_LOCK:
            return sorted(self._instruments)

    def collect(self) -> Dict[str, Dict[str, Any]]:
        """Snapshot every instrument: ``{name: instrument.collect()}``."""
        with _MUTATION_LOCK:
            instruments = list(self._instruments.items())
        return {name: instrument.collect() for name, instrument in sorted(instruments)}


_PROCESS_REGISTRY = MetricsRegistry()


def process_metrics() -> MetricsRegistry:
    """Return the process-wide registry every session aggregates into."""
    return _PROCESS_REGISTRY
