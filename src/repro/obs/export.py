"""Exporters: Prometheus text exposition and JSON-Lines event streams.

These renderers keep the observability layer scrape-ready for the
networked serving tier without taking any dependency: the Prometheus
renderer follows the text exposition format (``# HELP`` / ``# TYPE``
comments, ``_bucket{le=...}`` / ``_sum`` / ``_count`` series for
histograms), and the JSONL renderer is the same one-line-per-event
framing :class:`repro.obs.events.EventLog` writes incrementally.
"""

import json
import re
from typing import Any, Dict, Iterable, List, Mapping, Union

from .metrics import MetricsRegistry

__all__ = ["events_to_jsonl", "merge_collected", "render_prometheus"]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    return _NAME_SANITIZER.sub("_", name)


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value != value:  # NaN compares unequal to itself
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value)


def _escape_help(text: str) -> str:
    # The exposition format allows only the escapes ``\\`` and ``\n`` in
    # HELP text; a raw newline would start a bogus exposition line.
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_one(lines: List[str], name: str, collected: Dict[str, Any]) -> None:
    metric = _metric_name(name)
    if collected.get("help"):
        lines.append("# HELP %s %s" % (metric, _escape_help(collected["help"])))
    lines.append("# TYPE %s %s" % (metric, collected["type"]))
    if collected["type"] in ("counter", "gauge"):
        lines.append("%s %s" % (metric, _format_value(collected["value"])))
        return
    cumulative = 0
    bounds = list(collected["buckets"]) + [float("inf")]
    for bound, bucket_count in zip(bounds, collected["bucket_counts"]):
        cumulative += bucket_count
        le = "+Inf" if bound == float("inf") else repr(float(bound))
        lines.append('%s_bucket{le="%s"} %d' % (metric, le, cumulative))
    lines.append("%s_sum %s" % (metric, _format_value(collected["sum"])))
    lines.append("%s_count %d" % (metric, collected["count"]))


def render_prometheus(
    registry: Union[MetricsRegistry, Mapping[str, Dict[str, Any]]],
) -> str:
    """Render a registry in the Prometheus text exposition format.

    ``registry`` is a :class:`~repro.obs.metrics.MetricsRegistry` or an
    already-collected ``{name: instrument.collect()}`` mapping (what
    :func:`merge_collected` returns), so cross-process snapshots render
    through the same code path as live registries.
    """
    collected_map = registry.collect() if hasattr(registry, "collect") else registry
    lines: List[str] = []
    for name in sorted(collected_map):
        _render_one(lines, name, collected_map[name])
    return "\n".join(lines) + ("\n" if lines else "")


def merge_collected(
    collections: Iterable[Mapping[str, Dict[str, Any]]],
) -> Dict[str, Dict[str, Any]]:
    """Merge per-process ``registry.collect()`` snapshots into one mapping.

    The serving tier's workers run in their own processes, so their
    registries cannot parent-propagate into the front's; instead each
    worker ships its collected snapshot and the front merges them for one
    scrape.  Counters and histogram ``bucket_counts``/``count``/``sum``
    add up, ``max`` takes the maximum, gauges keep the last snapshot's
    value (last writer wins, matching :meth:`Gauge.set`).  A name
    registered with different types or histogram buckets across
    snapshots raises ``ValueError`` — silently coercing would corrupt
    the exposition.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for collection in collections:
        for name, collected in collection.items():
            existing = merged.get(name)
            if existing is None:
                merged[name] = dict(collected)
                if collected["type"] == "histogram":
                    merged[name]["bucket_counts"] = list(collected["bucket_counts"])
                continue
            if existing["type"] != collected["type"]:
                raise ValueError(
                    "metric %r collected as both %s and %s"
                    % (name, existing["type"], collected["type"])
                )
            if not existing.get("help") and collected.get("help"):
                existing["help"] = collected["help"]
            if existing["type"] == "counter":
                existing["value"] += collected["value"]
            elif existing["type"] == "gauge":
                existing["value"] = collected["value"]
            else:
                if tuple(existing["buckets"]) != tuple(collected["buckets"]):
                    raise ValueError(
                        "histogram %r collected with different buckets" % name
                    )
                existing["bucket_counts"] = [
                    ours + theirs
                    for ours, theirs in zip(
                        existing["bucket_counts"], collected["bucket_counts"]
                    )
                ]
                existing["count"] += collected["count"]
                existing["sum"] += collected["sum"]
                existing["max"] = max(existing["max"], collected["max"])
    return merged


def events_to_jsonl(events: Iterable[Dict[str, Any]]) -> str:
    """Serialise events as JSON Lines (one compact object per line)."""
    return "".join(
        json.dumps(event, sort_keys=True, default=str) + "\n" for event in events
    )
