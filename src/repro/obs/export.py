"""Exporters: Prometheus text exposition and JSON-Lines event streams.

These renderers keep the observability layer scrape-ready for the
networked serving tier without taking any dependency: the Prometheus
renderer follows the text exposition format (``# HELP`` / ``# TYPE``
comments, ``_bucket{le=...}`` / ``_sum`` / ``_count`` series for
histograms), and the JSONL renderer is the same one-line-per-event
framing :class:`repro.obs.events.EventLog` writes incrementally.
"""

import json
import re
from typing import Any, Dict, Iterable, List

from .metrics import MetricsRegistry

__all__ = ["events_to_jsonl", "render_prometheus"]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    return _NAME_SANITIZER.sub("_", name)


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


def _render_one(lines: List[str], name: str, collected: Dict[str, Any]) -> None:
    metric = _metric_name(name)
    if collected.get("help"):
        lines.append("# HELP %s %s" % (metric, collected["help"]))
    lines.append("# TYPE %s %s" % (metric, collected["type"]))
    if collected["type"] in ("counter", "gauge"):
        lines.append("%s %s" % (metric, _format_value(collected["value"])))
        return
    cumulative = 0
    bounds = list(collected["buckets"]) + [float("inf")]
    for bound, bucket_count in zip(bounds, collected["bucket_counts"]):
        cumulative += bucket_count
        le = "+Inf" if bound == float("inf") else repr(float(bound))
        lines.append('%s_bucket{le="%s"} %d' % (metric, le, cumulative))
    lines.append("%s_sum %s" % (metric, _format_value(collected["sum"])))
    lines.append("%s_count %d" % (metric, collected["count"]))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for name, collected in registry.collect().items():
        _render_one(lines, name, collected)
    return "\n".join(lines) + ("\n" if lines else "")


def events_to_jsonl(events: Iterable[Dict[str, Any]]) -> str:
    """Serialise events as JSON Lines (one compact object per line)."""
    return "".join(
        json.dumps(event, sort_keys=True, default=str) + "\n" for event in events
    )
