"""Structured event log: degradations, re-plans, spills, and faults.

Every noteworthy runtime decision becomes one timestamped dict —
``{"ts": ..., "seq": ..., "kind": ..., **fields}`` — appended to an
in-memory list and, when a path is configured, to a JSON-Lines file as
it happens (one ``json.dumps`` line per event, append-mode open per
emit, so the log survives crashes and fork children never share a file
handle).

Event kinds emitted by the engine today:

``spill``
    An operator switched to disk (grace hash join, spilling dedup,
    external sort) — fields name the operator and the row count at the
    switch.
``spill-retry``
    A spill read/write failed and is being retried with backoff.
``fault``
    An injected fault fired (chaos testing); every in-process
    ``fault_injected`` counter increment has a matching ``fault`` event.
``replan`` / ``checkpoint`` / ``checkpoint-spill``
    The adaptive layer re-planned mid-stream, and where its checkpoint
    lived.
``plan_repin`` / ``drift_replan``
    The plan store wrote a corrected join order back into a pinned plan
    (after a successful mid-stream re-plan), or proactively rebuilt a
    pinned plan whose estimates drifted past the configured q-error
    threshold against the observed-cardinality ledger.
``serial-fallback`` / ``pool-rebuild``
    Parallel-execution degradations.
``degradation``
    Anything the engine also appends to ``UnifiedTrace.degradations``.
``cache_hit`` / ``cache_invalidate``
    The serving tier's result cache answered a query without a worker
    dispatch, or swept the entries reading a mutated relation name
    (see :mod:`repro.server.cache`); emitted on the front's event log.

The locking/fork discipline matches ``repro.perf.counters``: one module
lock, reinstalled in fork children via ``os.register_at_fork``.
"""

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

__all__ = ["EventLog"]

_MUTATION_LOCK = threading.Lock()


def _reinitialize_lock_after_fork() -> None:
    """Replace the module lock in fork children (may be held mid-fork)."""
    global _MUTATION_LOCK
    _MUTATION_LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_reinitialize_lock_after_fork)


class EventLog:
    """Collects structured events; optionally mirrors them to JSONL.

    ``emit`` is cheap enough for degradation-frequency call sites
    (spills, re-plans, faults) but is *not* meant for per-row or
    per-block paths — those belong to counters and spans.
    """

    def __init__(self, path: Optional[str] = None, clock=time.time):
        self._events: List[Dict[str, Any]] = []
        self._seq = 0
        self._clock = clock
        #: Destination JSON-Lines file, or ``None`` for in-memory only.
        self.path = path

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Record one event and return the stored dict.

        The JSONL mirror is written under the same lock that assigns
        ``seq``: releasing it between the append and the write let two
        concurrent emitters reach ``open()`` in either order, producing
        out-of-``seq`` (and, with enough contention, interleaved partial)
        lines in the file.  Holding the lock across the append-mode write
        keeps the file a faithful, line-atomic replica of the in-memory
        order.
        """
        with _MUTATION_LOCK:
            self._seq += 1
            event = {"ts": self._clock(), "seq": self._seq, "kind": kind}
            event.update(fields)
            self._events.append(event)
            if self.path is not None:
                line = json.dumps(event, sort_keys=True, default=str)
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
        return event

    def events(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """Return recorded events, optionally filtered by ``kind``."""
        with _MUTATION_LOCK:
            events = list(self._events)
        if kind is None:
            return events
        return [event for event in events if event["kind"] == kind]

    def counts(self) -> Dict[str, int]:
        """Return ``{kind: occurrences}`` over all recorded events."""
        counts: Dict[str, int] = {}
        for event in self.events():
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        return counts

    def clear(self) -> None:
        """Drop the in-memory events (the JSONL file is left alone)."""
        with _MUTATION_LOCK:
            del self._events[:]

    def __len__(self) -> int:
        with _MUTATION_LOCK:
            return len(self._events)
