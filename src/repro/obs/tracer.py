"""Span-based execution tracing for the engine's physical plans.

A :class:`Tracer` records *spans*: named, timed slices of one execution
(``plan``, ``operator``, ``build``, ``spill-write``, ``spill-read``,
``replan``, ``checkpoint``, ``fault-retry``, ``materialize`` …), each
carrying wall-clock seconds, a row count, and the kernel-counter deltas
that accrued while it was open.  Spans form a tree: each records the
span that was innermost on the same thread when it started, and
:func:`span_tree` reassembles the parent/child structure afterwards.

Operator spans are produced by :meth:`Tracer.operator_stream`, a thin
generator wrapper installed by ``PhysicalOperator.blocks()`` that times
every ``next()`` call on the underlying block stream.  The measured time
is *inclusive* — a join's span covers the scans it pulls from — exactly
like the ``EXPLAIN ANALYZE`` output of a conventional engine; the
analyze layer (:mod:`repro.obs.analyze`) derives self-time by
subtracting child spans.

Tracing is pay-for-what-you-use.  A disabled tracer is either ``None``
on ``MemoryMeter.tracer`` or the shared :data:`NULL_TRACER` no-op
object; both cost one attribute check per operator and nothing per
block.  The ``observability`` benchmark section gates the disabled
overhead at <= 1.05x an uninstrumented run.
"""

import itertools
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..perf.counters import kernel_counters

__all__ = [
    "MAX_SPANS",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "span_tree",
]

#: Hard cap on retained spans per tracer; pathological spill storms at
#: tiny budgets can emit one span per spill frame, and an unbounded list
#: would turn the observability layer into its own memory hazard.
MAX_SPANS = 50_000


@dataclass
class Span:
    """One timed slice of an execution.

    ``start`` is seconds since the owning tracer's epoch (its creation
    time), so spans within one trace are directly comparable.
    ``counters`` holds only the kernel counters that changed while the
    span was open (inclusive of nested spans, like ``seconds``).
    """

    span_id: int
    parent_id: Optional[int]
    kind: str
    label: str
    start: float
    seconds: float
    rows: int = 0
    counters: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> Dict[str, Any]:
        """Return the span as a plain JSON-serialisable dict."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "label": self.label,
            "start": self.start,
            "seconds": self.seconds,
            "rows": self.rows,
            "counters": dict(self.counters),
        }


class _SpanHandle:
    """Mutable in-flight span state; becomes a :class:`Span` on close."""

    __slots__ = ("tracer", "span_id", "parent_id", "kind", "label", "start",
                 "rows", "_before", "_t0")

    def __init__(self, tracer, span_id, parent_id, kind, label, start, before, t0):
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.label = label
        self.start = start
        self.rows = 0
        self._before = before
        self._t0 = t0

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.tracer._close(self, perf_counter() - self._t0)
        return False


class Tracer:
    """Collects spans for one execution into a per-thread nested tree.

    One tracer instance belongs to one ``evaluate()`` call; it travels to
    every operator and spill file through ``MemoryMeter.tracer`` exactly
    as fault injectors travel through ``MemoryMeter.faults``.  All
    methods are thread-safe; spans opened on pool worker threads simply
    root their own subtrees (fork-pool children run in other processes
    and are not traced — their work still shows up in the parent's
    counters when the pool merges deltas back).
    """

    #: Checked by hot call sites before paying for any wrapping.
    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._epoch = perf_counter()
        #: Spans discarded after :data:`MAX_SPANS` was reached.
        self.dropped = 0

    # -- span lifecycle -------------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, kind: str, label: str) -> _SpanHandle:
        t0 = perf_counter()
        stack = self._stack()
        parent = stack[-1] if stack else None
        handle = _SpanHandle(
            tracer=self,
            span_id=next(self._ids),
            parent_id=parent,
            kind=kind,
            label=label,
            start=t0 - self._epoch,
            before=kernel_counters().snapshot(),
            t0=t0,
        )
        stack.append(handle.span_id)
        return handle

    def _close(self, handle: _SpanHandle, seconds: float) -> None:
        stack = self._stack()
        if handle.span_id in stack:  # tolerate out-of-order unwinding
            stack.remove(handle.span_id)
        delta = kernel_counters().delta_since(handle._before)
        span = Span(
            span_id=handle.span_id,
            parent_id=handle.parent_id,
            kind=handle.kind,
            label=handle.label,
            start=handle.start,
            seconds=seconds,
            rows=handle.rows,
            counters={name: value for name, value in delta.items() if value},
        )
        with self._lock:
            if len(self._spans) < MAX_SPANS:
                self._spans.append(span)
            else:
                self.dropped += 1

    def span(self, kind: str, label: str = "") -> _SpanHandle:
        """Open a span as a context manager: ``with tracer.span(...) as s``.

        The handle's ``rows`` attribute may be assigned inside the block
        and is copied onto the finished :class:`Span`.
        """
        return self._open(kind, label)

    def stream(
        self,
        kind: str,
        label: str,
        blocks: Iterator[List[tuple]],
        rows: Optional[Any] = None,
    ) -> Iterator[List[tuple]]:
        """Wrap a block stream in one timed span of ``kind``.

        The span opens lazily on the first ``next()`` (so its parent is
        whichever span is actually pulling) and accumulates only time
        spent *inside* the underlying generator — time the consumer
        holds the block does not count.  ``rows`` is an optional
        zero-argument callable evaluated at close for the span's row
        count.
        """
        handle = None
        inclusive = 0.0
        try:
            while True:
                t0 = perf_counter()
                if handle is None:
                    handle = self._open(kind, label)
                try:
                    block = next(blocks)
                except StopIteration:
                    inclusive += perf_counter() - t0
                    return
                inclusive += perf_counter() - t0
                yield block
        finally:
            close = getattr(blocks, "close", None)
            if close is not None:
                close()  # children unwind first, so their spans nest correctly
            if handle is not None:
                if rows is not None:
                    handle.rows = rows()
                self._close(handle, inclusive)

    def operator_stream(
        self, operator: Any, blocks: Iterator[List[tuple]]
    ) -> Iterator[List[tuple]]:
        """Wrap an operator's block stream in a timed ``operator`` span."""
        return self.stream(
            "operator",
            operator.label(),
            blocks,
            rows=lambda: getattr(operator, "rows_out", 0),
        )

    # -- results --------------------------------------------------------

    def finish(self) -> List[Span]:
        """Return all closed spans, ordered by start time."""
        with self._lock:
            spans = sorted(self._spans, key=lambda span: (span.start, span.span_id))
        return spans


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Call sites that want an always-present object (rather than an
    ``is None`` check) use the shared :data:`NULL_TRACER` instance; its
    class-level ``enabled = False`` is the single branch hot paths pay.
    """

    enabled = False
    dropped = 0

    def span(self, kind: str, label: str = "") -> "NullTracer":
        """Return ``self`` as a no-op context manager."""
        return self

    def stream(self, kind: str, label: str, blocks: Iterator, rows=None) -> Iterator:
        """Return the block stream untouched."""
        return blocks

    def operator_stream(self, operator: Any, blocks: Iterator) -> Iterator:
        """Return the block stream untouched."""
        return blocks

    def finish(self) -> List[Span]:
        """Return an empty span list."""
        return []

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    @property
    def rows(self) -> int:
        """Row count stub so ``with tracer.span(...) as s: s.rows = n`` works."""
        return 0

    @rows.setter
    def rows(self, value: int) -> None:
        pass


#: Shared no-op tracer for call sites that prefer an object over ``None``.
NULL_TRACER = NullTracer()


def span_tree(
    spans: Iterable[Span],
) -> Tuple[List[Span], Dict[Optional[int], List[Span]]]:
    """Assemble ``(roots, children)`` from a flat span list.

    ``children`` maps a span id to its child spans (ordered by start);
    spans whose parent was never closed (e.g. dropped past
    :data:`MAX_SPANS`) are promoted to roots rather than lost.
    """
    spans = sorted(spans, key=lambda span: (span.start, span.span_id))
    by_id = {span.span_id: span for span in spans}
    roots: List[Span] = []
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    return roots, children
