"""Build ``EXPLAIN ANALYZE`` reports from a traced execution's spans.

:func:`explain_report` turns the flat span list on ``UnifiedTrace.spans``
plus the measured wall-time of the execution into a per-operator runtime
report: an operator tree annotated with inclusive and self seconds, row
counts, and the fraction of wall-time attributed to named operator spans
(the engine's acceptance gate holds this at >= 95% on the m=12 blowup
workload).
"""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .tracer import Span, span_tree

__all__ = ["ExplainAnalyzeReport", "OperatorTiming", "explain_report"]


@dataclass
class OperatorTiming:
    """One operator's measured runtime within an execution.

    ``seconds`` is inclusive (covers everything the operator pulled
    from); ``self_seconds`` subtracts directly nested operator spans.
    """

    label: str
    seconds: float
    self_seconds: float
    rows: int
    depth: int
    counters: Dict[str, int] = field(default_factory=dict)


@dataclass
class ExplainAnalyzeReport:
    """The ``PreparedQuery.explain_analyze()`` result.

    ``attributed_fraction`` is the share of ``total_seconds`` covered by
    root operator spans — the headline "do the spans explain the time?"
    number.  ``str(report)`` renders the human-readable tree.
    """

    backend: str
    total_seconds: float
    attributed_seconds: float
    result_rows: int
    operators: List[OperatorTiming] = field(default_factory=list)
    others: Dict[str, Dict[str, float]] = field(default_factory=dict)
    spans: List[Span] = field(default_factory=list)

    @property
    def attributed_fraction(self) -> float:
        """Operator-span seconds over measured wall seconds (0..1)."""
        if self.total_seconds <= 0.0:
            return 0.0
        return min(1.0, self.attributed_seconds / self.total_seconds)

    def __str__(self) -> str:
        lines = [
            "EXPLAIN ANALYZE (%s)" % self.backend,
            "total %.6fs · operators %.6fs (%.1f%% attributed) · %d rows out"
            % (
                self.total_seconds,
                self.attributed_seconds,
                100.0 * self.attributed_fraction,
                self.result_rows,
            ),
        ]
        if self.operators:
            lines.append("operator tree (inclusive / self seconds · rows):")
            for timing in self.operators:
                lines.append(
                    "  %s%-48s %.6f / %.6f · %d"
                    % (
                        "  " * timing.depth,
                        timing.label,
                        timing.seconds,
                        timing.self_seconds,
                        timing.rows,
                    )
                )
        else:
            lines.append("(no operator spans — tracing is engine-backend only)")
        if self.others:
            parts = [
                "%s ×%d %.6fs" % (kind, stats["count"], stats["seconds"])
                for kind, stats in sorted(self.others.items())
            ]
            lines.append("other spans: " + " · ".join(parts))
        return "\n".join(lines)


def explain_report(
    spans: List[Span],
    total_seconds: float,
    backend: str = "engine",
    result_rows: int = 0,
) -> ExplainAnalyzeReport:
    """Assemble an :class:`ExplainAnalyzeReport` from spans + wall time."""
    roots, children = span_tree(spans)
    operators: List[OperatorTiming] = []

    def walk(span: Span, depth: int) -> None:
        kids = children.get(span.span_id, [])
        if span.kind == "operator":
            nested = sum(kid.seconds for kid in kids if kid.kind == "operator")
            operators.append(
                OperatorTiming(
                    label=span.label,
                    seconds=span.seconds,
                    self_seconds=max(0.0, span.seconds - nested),
                    rows=span.rows,
                    depth=depth,
                    counters=dict(span.counters),
                )
            )
            depth += 1
        for kid in kids:
            walk(kid, depth)

    operator_roots = 0.0
    for root in roots:
        walk(root, 0)

    def root_operator_seconds(span: Span) -> float:
        if span.kind == "operator":
            return span.seconds
        return sum(
            root_operator_seconds(kid) for kid in children.get(span.span_id, [])
        )

    operator_roots = sum(root_operator_seconds(root) for root in roots)

    others: Dict[str, Dict[str, float]] = {}
    for span in spans:
        if span.kind == "operator":
            continue
        stats = others.setdefault(span.kind, {"count": 0, "seconds": 0.0})
        stats["count"] += 1
        stats["seconds"] += span.seconds
    return ExplainAnalyzeReport(
        backend=backend,
        total_seconds=total_seconds,
        attributed_seconds=operator_roots,
        result_rows=result_rows,
        operators=operators,
        others=others,
        spans=list(spans),
    )
