"""Observability for the serving path: spans, metrics, events, exporters.

``repro.obs`` is the instrumentation tier that the evaluator backends,
the :class:`repro.api.Session` facade, and (eventually) the networked
serving tier report into.  It is organised as four small layers:

``repro.obs.tracer``
    Span-based execution tracing.  A :class:`Tracer` wraps physical
    operators, the planner, spill I/O, adaptive checkpoints, and fault
    retries in start/stop spans and assembles them into a per-execution
    span tree (surfaced as ``UnifiedTrace.spans`` and rendered by
    ``PreparedQuery.explain_analyze()``).

``repro.obs.metrics``
    A registry of named counters, gauges, and fixed-bucket histograms,
    aggregated per :class:`~repro.api.Session` and process-wide,
    thread-safe under the same lock/fork-reset discipline as
    ``repro.perf.counters``.

``repro.obs.events``
    A structured event log: every degradation, re-plan, spill switch,
    and fault retry becomes a timestamped dict, optionally appended to a
    JSON-Lines file as it happens.

``repro.obs.export``
    Renderers: Prometheus-style text exposition for a registry and
    JSON-Lines serialisation for event streams.

Tracing is pay-for-what-you-use: when disabled the hot path sees either
``None`` or the :data:`NULL_TRACER` no-op object, and the gated
``observability`` benchmark section holds the disabled overhead under
1.05x of an uninstrumented evaluator.
"""

from .config import Observer, ObserveConfig
from .events import EventLog
from .export import events_to_jsonl, merge_collected, render_prometheus
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    process_metrics,
)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer, span_tree
from .analyze import ExplainAnalyzeReport, OperatorTiming, explain_report

__all__ = [
    "Counter",
    "EventLog",
    "ExplainAnalyzeReport",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Observer",
    "ObserveConfig",
    "OperatorTiming",
    "Span",
    "Tracer",
    "events_to_jsonl",
    "explain_report",
    "merge_collected",
    "process_metrics",
    "render_prometheus",
    "span_tree",
]
