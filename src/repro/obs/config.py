"""Observation wiring: the ``ObserveConfig`` knob and runtime ``Observer``.

``BackendConfig(observe=...)`` accepts an :class:`ObserveConfig` (or
``True`` as shorthand for "everything on"); the :class:`Observer` is the
resolved runtime object a :class:`~repro.api.Session` or
``EngineEvaluator`` actually holds — it owns the event log and metrics
registry for its scope and mints per-execution tracers.
"""

from dataclasses import dataclass
from typing import Optional, Union

from .events import EventLog
from .metrics import MetricsRegistry, process_metrics
from .tracer import Tracer

__all__ = ["Observer", "ObserveConfig"]


@dataclass(frozen=True)
class ObserveConfig:
    """Declarative observability switches for a backend or session.

    ``trace``
        Mint a :class:`~repro.obs.tracer.Tracer` per execution and
        surface the span tree on ``UnifiedTrace.spans``.  Off by
        default: tracing is the one knob with measurable per-block cost
        (gated <= 1.25x; disabled cost gated <= 1.05x).
    ``events``
        Record degradations/spills/re-plans/faults in an
        :class:`~repro.obs.events.EventLog`.
    ``events_path``
        Mirror events to this JSON-Lines file (implies ``events``).
    ``metrics``
        Maintain a :class:`~repro.obs.metrics.MetricsRegistry`
        (parented to the process-wide registry).  On by default.
    """

    trace: bool = False
    events: bool = False
    events_path: Optional[str] = None
    metrics: bool = True

    @classmethod
    def coerce(
        cls, value: Union["ObserveConfig", bool, None]
    ) -> Optional["ObserveConfig"]:
        """Normalise ``observe=`` inputs: ``True`` means everything on."""
        if value is None or value is False:
            return None
        if value is True:
            return cls(trace=True, events=True)
        if isinstance(value, cls):
            return value
        raise TypeError(
            "observe must be an ObserveConfig, True, False, or None; got %r" % (value,)
        )


class Observer:
    """The runtime side of an :class:`ObserveConfig`.

    One observer belongs to one scope (a session, or one evaluator used
    directly); it is shared across executions in that scope so events
    and metrics accumulate, while :meth:`tracer` mints a fresh tracer
    per execution so span trees never interleave.
    """

    def __init__(self, config: ObserveConfig):
        self.config = config
        wants_events = config.events or config.events_path is not None
        #: Scope-wide event log, or ``None`` when events are off.
        self.events: Optional[EventLog] = (
            EventLog(path=config.events_path) if wants_events else None
        )
        #: Scope-wide registry (parented process-wide), or ``None``.
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry(parent=process_metrics()) if config.metrics else None
        )

    @classmethod
    def coerce(
        cls, value: Union["Observer", ObserveConfig, bool, None]
    ) -> Optional["Observer"]:
        """Accept an existing observer, a config, ``True``, or nothing."""
        if isinstance(value, cls):
            return value
        config = ObserveConfig.coerce(value)
        return cls(config) if config is not None else None

    def tracer(self) -> Optional[Tracer]:
        """Return a fresh tracer when tracing is on, else ``None``."""
        return Tracer() if self.config.trace else None
