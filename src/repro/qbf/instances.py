"""Q-3SAT instances: ∀X ∃X′ G with G in 3CNF.

The Π₂ᵖ-complete problem the paper reduces from (Theorems 4 and 5) is:

    Q-3SAT: given a 3CNF expression G and a partition of its variables into
    X = {x_1, ..., x_r} and X' = {x_{r+1}, ..., x_n}, decide whether for all
    assignments of truth values to X, G is satisfiable, i.e. whether
    ∀X ∃X' (G(X, X') = 1).

:class:`QThreeSatInstance` packages the formula with the partition and checks
the partition is well-formed.  Proposition 4's technical restrictions (the
universal set is not contained in any clause's variable set and contains no
clause's variable set) are available as predicates and as the transformation
:meth:`QThreeSatInstance.with_guard_clauses`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Sequence, Tuple

from ..sat.cnf import CNFFormula
from ..sat.transforms import add_universal_guard_clauses

__all__ = ["QThreeSatInstance"]


@dataclass(frozen=True)
class QThreeSatInstance:
    """A ∀∃ quantified 3CNF instance.

    Attributes
    ----------
    formula:
        The 3CNF matrix ``G``.
    universal:
        The universally quantified variables ``X`` (order preserved).
    """

    formula: CNFFormula
    universal: Tuple[str, ...]

    def __post_init__(self) -> None:
        universal = tuple(self.universal)
        object.__setattr__(self, "universal", universal)
        unknown = set(universal) - set(self.formula.variables)
        if unknown:
            raise ValueError(
                f"universal variables {sorted(unknown)} do not occur in the formula"
            )
        if len(set(universal)) != len(universal):
            raise ValueError("universal variable list contains duplicates")

    # -- structure -------------------------------------------------------

    @property
    def existential(self) -> Tuple[str, ...]:
        """The existentially quantified variables ``X'`` (formula order)."""
        universal = set(self.universal)
        return tuple(v for v in self.formula.variables if v not in universal)

    @property
    def universal_set(self) -> FrozenSet[str]:
        """The universal variables as a set."""
        return frozenset(self.universal)

    def describe(self) -> str:
        """A one-line description, e.g. ``∀x1 x2 ∃x3 x4 (G)``."""
        return (
            "forall " + " ".join(self.universal)
            + " exists " + " ".join(self.existential)
            + " . " + str(self.formula)
        )

    # -- Proposition 4 restrictions ---------------------------------------

    def universal_contains_some_clause(self) -> bool:
        """Whether X contains the variable set of some clause.

        If it does, Q-3SAT is trivially false for that instance (the paper's
        Proposition 4): the assignment falsifying that clause is universal.
        """
        universal = self.universal_set
        return any(clause.variables <= universal for clause in self.formula.clauses)

    def universal_inside_some_clause(self) -> bool:
        """Whether X is contained in the variable set of some clause."""
        universal = self.universal_set
        return any(universal <= clause.variables for clause in self.formula.clauses)

    def satisfies_proposition4_restrictions(self) -> bool:
        """Whether both technical restrictions of Proposition 4 hold."""
        return (
            not self.universal_contains_some_clause()
            and not self.universal_inside_some_clause()
        )

    def with_guard_clauses(self) -> "QThreeSatInstance":
        """Apply Proposition 4's guard-clause transformation.

        Returns an instance with the same truth value that satisfies both
        technical restrictions (two fresh satisfiable clauses are added and
        one fresh variable from each joins the universal set).
        """
        formula, universal = add_universal_guard_clauses(self.formula, self.universal)
        return QThreeSatInstance(formula, tuple(universal))
