"""Evaluators for ∀∃ (Q-3SAT) instances.

Two evaluators are provided and cross-checked by the test-suite:

* :func:`evaluate_by_expansion` — enumerate every assignment of the universal
  variables and call the DPLL solver on the restricted formula.  Simple,
  obviously correct, exponential only in ``|X|``.
* :func:`evaluate_with_pruning` — the same ∀-loop but with two short-cuts: an
  unsatisfiable matrix fails immediately, and universal variables that do not
  occur in the formula are skipped.

Both return the truth value of ``∀X ∃X' G``, which Theorems 4 and 5 equate
with the containment / equivalence questions on the constructed relations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..sat.assignments import Assignment, all_assignments
from ..sat.solver import DPLLSolver
from .instances import QThreeSatInstance

__all__ = [
    "evaluate_by_expansion",
    "evaluate_with_pruning",
    "find_universal_counterexample",
]


def evaluate_by_expansion(instance: QThreeSatInstance) -> bool:
    """Decide ∀X ∃X' G by brute-force expansion over the universal variables."""
    return find_universal_counterexample(instance) is None


def find_universal_counterexample(instance: QThreeSatInstance) -> Optional[Assignment]:
    """Return an assignment of X under which G is unsatisfiable, or ``None``.

    A counterexample witnesses that ∀X ∃X' G is false; ``None`` means the
    formula is satisfiable under every universal assignment.
    """
    solver = DPLLSolver()
    for universal_assignment in all_assignments(instance.universal):
        restricted = instance.formula.restrict(universal_assignment)
        if not solver.solve(restricted).satisfiable:
            return universal_assignment
    return None


def evaluate_with_pruning(instance: QThreeSatInstance) -> bool:
    """Decide ∀X ∃X' G with cheap pruning around the expansion loop."""
    solver = DPLLSolver()

    # If the matrix itself is unsatisfiable, some (indeed every) universal
    # assignment has no completion.
    if not solver.solve(instance.formula).satisfiable:
        return False

    # Universal variables that never occur in the formula cannot affect it.
    occurring = set(instance.formula.variable_set)
    relevant_universal = [v for v in instance.universal if v in occurring]

    # If the universal set contains all variables of some clause, the clause's
    # falsifying assignment extends to a universal counterexample.
    universal_set = set(relevant_universal)
    for clause in instance.formula.clauses:
        if clause.variables <= universal_set:
            return False

    for universal_assignment in all_assignments(relevant_universal):
        restricted = instance.formula.restrict(universal_assignment)
        if not solver.solve(restricted).satisfiable:
            return False
    return True
