"""Generators for Q-3SAT workloads.

The Theorem 4/5 benchmarks need families of ∀∃ instances with *known* truth
values.  Random instances are easy to make but their truth value requires
evaluation; the planted generators below construct instances that are true or
false by design, so the reduction benchmarks can report agreement without
trusting a single evaluator.  The gadgets are kept as small as possible
(clauses and variables both cost dearly on the relational side of the
reductions, where evaluation is intentionally naive).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple, Union

from ..sat.cnf import CNFFormula
from ..sat.generators import RandomLike, _rng, random_three_cnf
from ..sat.literals import Clause, Literal
from .instances import QThreeSatInstance

__all__ = [
    "random_q3sat",
    "planted_true_q3sat",
    "planted_false_q3sat",
    "canonical_false_q3sat",
    "paper_style_partition",
]


def random_q3sat(
    num_variables: int,
    num_clauses: int,
    num_universal: int,
    seed: RandomLike = None,
) -> QThreeSatInstance:
    """A uniformly random 3CNF with a random choice of universal variables."""
    rng = _rng(seed)
    formula = random_three_cnf(num_variables, num_clauses, seed=rng)
    if num_universal > num_variables:
        raise ValueError("cannot have more universal variables than variables")
    universal = tuple(rng.sample(list(formula.variables), num_universal))
    return QThreeSatInstance(formula, universal)


def _mirror_pair(index: int) -> Tuple[List[Clause], str]:
    """Two clauses stating "the existential e_i can copy the universal u_i".

    Whatever value ``u_i`` takes, setting ``e_i`` equal to it satisfies both
    clauses (the slack ``t_i`` is never needed), so these pairs never make a
    ∀∃ instance false, and they let the planted generators scale the number
    of universal variables without changing the instance's truth value.
    """
    u, e, t = f"u{index}", f"e{index}", f"t{index}"
    clauses = [
        Clause([Literal(u, False), Literal(e), Literal(t)]),
        Clause([Literal(u), Literal(e, False), Literal(t)]),
    ]
    return clauses, u


def planted_true_q3sat(
    num_universal: int,
    extra_clauses: int = 0,
    seed: RandomLike = None,
) -> QThreeSatInstance:
    """A Q-3SAT instance that is true by construction.

    Every universal variable gets a "mirror pair" of clauses (see
    :func:`_mirror_pair`); the existential mirror can always copy the
    universal value, so ∀X ∃X' G holds.  ``extra_clauses`` appends additional
    always-satisfiable clauses over fresh existential variables, which scales
    the clause count without affecting the truth value.  The instance
    satisfies both Proposition 4 restrictions as long as ``num_universal >= 1``
    (no clause's variables are all universal, and no clause contains every
    universal variable once there are two or more mirror pairs or one pair
    plus padding).
    """
    if num_universal < 1:
        raise ValueError("need at least one universal variable")
    rng = _rng(seed)
    clauses: List[Clause] = []
    universal: List[str] = []
    for index in range(1, num_universal + 1):
        pair, u = _mirror_pair(index)
        clauses.extend(pair)
        universal.append(u)
    for pad_index in range(extra_clauses):
        clauses.append(
            Clause(
                [
                    Literal(f"pad{pad_index}a"),
                    Literal(f"pad{pad_index}b"),
                    Literal(f"pad{pad_index}c"),
                ]
            )
        )
    # Ensure the paper's minimum of three clauses even for num_universal == 1.
    while len(clauses) < 3:
        clauses.append(
            Clause([Literal("fill_a"), Literal("fill_b"), Literal("fill_c")])
        )
    rng.shuffle(clauses)
    return QThreeSatInstance(CNFFormula(clauses), tuple(universal))


def canonical_false_q3sat() -> QThreeSatInstance:
    """The minimal planted-false gadget: 4 clauses, 4 variables, 3 universal.

    With ``X = {u1, u2, w}`` and the matrix

        (¬u1 ∨ z ∨ w) (u1 ∨ ¬z ∨ w) (¬u2 ∨ ¬z ∨ w) (u2 ∨ z ∨ w)

    the universal assignment ``u1 = u2 = 1, w = 0`` forces both ``z`` and
    ``¬z``, so ∀X ∃X' G is false.  The instance satisfies both Proposition 4
    restrictions (every clause mentions ``z ∉ X``; no clause contains both
    ``u1`` and ``u2``), so no guard clauses are needed.
    """
    clauses = [
        Clause([Literal("u1", False), Literal("z"), Literal("w")]),
        Clause([Literal("u1"), Literal("z", False), Literal("w")]),
        Clause([Literal("u2", False), Literal("z", False), Literal("w")]),
        Clause([Literal("u2"), Literal("z"), Literal("w")]),
    ]
    return QThreeSatInstance(CNFFormula(clauses), ("u1", "u2", "w"))


def planted_false_q3sat(
    num_universal: int = 3,
    extra_clauses: int = 0,
    seed: RandomLike = None,
) -> QThreeSatInstance:
    """A Q-3SAT instance that is false by construction.

    The core is :func:`canonical_false_q3sat` (3 universal variables);
    additional universal variables beyond the first three get harmless mirror
    pairs, and ``extra_clauses`` appends always-satisfiable padding clauses.
    Neither addition can repair the planted universal counterexample, so the
    instance stays false.
    """
    if num_universal < 3:
        raise ValueError("the planted-false gadget uses three universal variables")
    rng = _rng(seed)
    core = canonical_false_q3sat()
    clauses: List[Clause] = list(core.formula.clauses)
    universal: List[str] = list(core.universal)
    for index in range(4, num_universal + 1):
        pair, u = _mirror_pair(index)
        clauses.extend(pair)
        universal.append(u)
    for pad_index in range(extra_clauses):
        clauses.append(
            Clause(
                [
                    Literal(f"pad{pad_index}a"),
                    Literal(f"pad{pad_index}b"),
                    Literal(f"pad{pad_index}c"),
                ]
            )
        )
    rng.shuffle(clauses)
    return QThreeSatInstance(CNFFormula(clauses), tuple(universal))


def paper_style_partition(
    formula: CNFFormula, num_universal: int, seed: RandomLike = None
) -> QThreeSatInstance:
    """Partition an existing formula's variables into (X, X') with |X| = num_universal."""
    rng = _rng(seed)
    variables = list(formula.variables)
    if num_universal > len(variables):
        raise ValueError("cannot quantify more variables than the formula has")
    universal = tuple(rng.sample(variables, num_universal))
    return QThreeSatInstance(formula, universal)
