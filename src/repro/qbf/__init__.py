"""Q-3SAT (∀X ∃X′ G) instances, evaluators, and generators.

This is the Π₂ᵖ-complete source problem of Theorems 4 and 5.
"""

from .evaluator import (
    evaluate_by_expansion,
    evaluate_with_pruning,
    find_universal_counterexample,
)
from .generators import (
    canonical_false_q3sat,
    paper_style_partition,
    planted_false_q3sat,
    planted_true_q3sat,
    random_q3sat,
)
from .instances import QThreeSatInstance

__all__ = [
    "QThreeSatInstance",
    "evaluate_by_expansion",
    "evaluate_with_pruning",
    "find_universal_counterexample",
    "random_q3sat",
    "planted_true_q3sat",
    "planted_false_q3sat",
    "canonical_false_q3sat",
    "paper_style_partition",
]
