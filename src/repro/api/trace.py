"""The backend-agnostic trace: one protocol, one concrete wrapper.

Historically every evaluator generation grew its own trace dialect: the
materialising evaluators populate ``steps`` / ``peak_intermediate_cardinality``
on :class:`~repro.expressions.evaluator.EvaluationTrace`, while the streaming
engine reuses the same dataclass but reports through ``peak_live_rows`` /
``peak_build_rows`` and leaves the materialised peaks meaningless (its steps
record *streamed* cardinalities — nothing was resident).  Code that poked the
fields directly therefore had to know which backend produced the trace.

This module closes the gap:

* :class:`TraceLike` is the structural protocol every backend trace satisfies
  (``steps``, cardinalities, ``counters``, ``peak_live_rows`` /
  ``peak_build_rows`` where the backend can measure them, 0 elsewhere);
* :class:`UnifiedTrace` is the concrete, backend-tagged trace
  :meth:`repro.api.prepared.PreparedQuery.trace` returns — identical shape on
  every backend, plus :attr:`UnifiedTrace.peak_memory_rows`, which answers
  "how many rows were resident at the worst moment" with whichever accounting
  the backend actually has (live rows for the streaming engine, the largest
  materialised intermediate for the materialising evaluators).

Direct field poking on the wrapped backend trace is deprecated: attributes
that only exist on the raw trace (``kernel_activity``, ``record``,
``blowup_versus_input``, ...) still resolve through a shim that emits a
:class:`DeprecationWarning`, so existing callers keep working while new code
migrates to the unified names.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, runtime_checkable

from ..expressions.evaluator import EvaluationTrace, TraceStep

__all__ = ["TraceLike", "UnifiedTrace"]


@runtime_checkable
class TraceLike(Protocol):
    """What every evaluator trace structurally guarantees.

    ``counters`` is the :mod:`repro.perf.counters` delta accumulated during
    the evaluation (plan-cache traffic, join probes, spill activity);
    ``peak_live_rows`` / ``peak_build_rows`` are populated by backends that
    meter residency (the streaming engine) and 0 elsewhere.
    """

    steps: List[TraceStep]
    input_cardinality: int
    result_cardinality: int
    peak_live_rows: int
    peak_build_rows: int
    replans: int

    @property
    def counters(self) -> Dict[str, int]:
        """The kernel-counter deltas accumulated during the evaluation."""
        ...


@dataclass
class UnifiedTrace:
    """One evaluation's trace, identical in shape on every backend.

    ``backend`` names the evaluator that produced it (``naive`` /
    ``instrumented`` / ``optimized`` / ``engine``); the remaining fields
    follow :class:`TraceLike`.  ``steps`` are materialised intermediates for
    the materialising backends and per-operator *streamed* cardinalities for
    the engine (the engine materialises nothing).
    """

    backend: str
    steps: List[TraceStep] = field(default_factory=list)
    input_cardinality: int = 0
    result_cardinality: int = 0
    counters: Dict[str, int] = field(default_factory=dict)
    peak_live_rows: int = 0
    peak_build_rows: int = 0
    #: Mid-stream re-plans performed during the evaluation (adaptive engine
    #: executions only; 0 everywhere else).
    replans: int = 0
    #: Parallel executions that degraded to the serial path after recovery
    #: failed (engine backend only; every one is also warned and listed in
    #: :attr:`degradations` — degradation is never silent).
    serial_fallbacks: int = 0
    #: Human-readable reasons for every degradation the evaluation absorbed.
    degradations: List[str] = field(default_factory=list)
    #: Execution spans recorded by :class:`repro.obs.Tracer` when tracing
    #: was enabled (``ObserveConfig(trace=True)`` or ``explain_analyze()``);
    #: empty on untraced runs.  Feed them to :func:`repro.obs.span_tree` /
    #: :func:`repro.obs.explain_report`.
    spans: List = field(default_factory=list)
    #: The wrapped backend trace, kept for the deprecation shim; ``None``
    #: when the backend produced no trace (the plain naive evaluator).
    raw: Optional[EvaluationTrace] = field(default=None, repr=False, compare=False)

    @classmethod
    def from_backend(cls, backend: str, trace: EvaluationTrace) -> "UnifiedTrace":
        """Normalise a backend's :class:`EvaluationTrace` into the unified shape."""
        return cls(
            backend=backend,
            steps=list(trace.steps),
            input_cardinality=trace.input_cardinality,
            result_cardinality=trace.result_cardinality,
            counters=dict(trace.kernel_activity),
            peak_live_rows=trace.peak_live_rows,
            peak_build_rows=trace.peak_build_rows,
            replans=getattr(trace, "replans", 0),
            serial_fallbacks=getattr(trace, "serial_fallbacks", 0),
            degradations=list(getattr(trace, "degradations", ())),
            spans=list(getattr(trace, "spans", ()) or ()),
            raw=trace,
        )

    @classmethod
    def minimal(
        cls, backend: str, input_cardinality: int, result_cardinality: int
    ) -> "UnifiedTrace":
        """The stepless trace of an untraced evaluation (cardinalities only)."""
        return cls(
            backend=backend,
            input_cardinality=input_cardinality,
            result_cardinality=result_cardinality,
        )

    # -- unified accessors ---------------------------------------------

    @property
    def peak_intermediate_cardinality(self) -> int:
        """The largest single step (materialised intermediate, or streamed
        operator output for the engine)."""
        if not self.steps:
            return 0
        return max(step.cardinality for step in self.steps)

    @property
    def peak_memory_rows(self) -> int:
        """Rows resident at the worst moment, in the backend's own accounting.

        The streaming engine meters residency directly (``peak_live_rows``);
        the materialising evaluators' analogue is their largest materialised
        intermediate.  This is the one number the blow-up analyses compare
        across backends.

        The dispatch branches on :attr:`backend`, not on truthiness: an
        engine evaluation whose residency peak really was 0 (e.g. empty
        inputs) must report 0, not silently fall through to the streamed
        step cardinalities, which measure throughput rather than residency.
        """
        if self.backend == "engine":
            return self.peak_live_rows
        return self.peak_intermediate_cardinality

    @property
    def total_intermediate_tuples(self) -> int:
        """Total tuples across all steps (a proxy for total work)."""
        return sum(step.cardinality for step in self.steps)

    def summary(self) -> Dict[str, float]:
        """A flat dictionary of the headline statistics."""
        return {
            "backend_steps": float(len(self.steps)),
            "input_cardinality": float(self.input_cardinality),
            "result_cardinality": float(self.result_cardinality),
            "peak_memory_rows": float(self.peak_memory_rows),
            "peak_intermediate_cardinality": float(self.peak_intermediate_cardinality),
            "peak_live_rows": float(self.peak_live_rows),
            "peak_build_rows": float(self.peak_build_rows),
            "replans": float(self.replans),
            "serial_fallbacks": float(self.serial_fallbacks),
            "total_intermediate_tuples": float(self.total_intermediate_tuples),
        }

    # -- deprecation shim ----------------------------------------------

    def __getattr__(self, name: str):
        """Forward legacy field pokes to the wrapped backend trace, warning.

        Only attributes missing from the unified shape land here (Python
        consults ``__getattr__`` last), so the shim costs nothing on the
        supported names.
        """
        if name.startswith("_"):
            raise AttributeError(name)
        raw = self.__dict__.get("raw")
        if raw is not None and hasattr(raw, name):
            warnings.warn(
                f"UnifiedTrace.{name} is a deprecated pass-through to the "
                f"backend trace; use the unified accessors (peak_memory_rows, "
                f"counters, summary()) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            return getattr(raw, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )
