"""The session: one database, one config, many prepared queries.

Cosmadakis' results make evaluation complexity a property of the *(query,
database)* pair, and the facade's shape follows: a :class:`Session` owns the
database side (named relations or the paper's single-relation databases) plus
one :class:`~repro.api.config.BackendConfig`, and
:meth:`Session.prepare` fixes the query side — parsing, validating, and
compiling once into a :class:`~repro.api.prepared.PreparedQuery` that is then
executed many times.  All prepared queries of a session share its serving
state: the engine evaluator's pinned-plan dictionary, its memory budget, and
its LRU-capped pool of persistent fork workers, so mixed query traffic is
served from one warm process pool instead of one pinned pool per evaluator.

Mutation follows the statistics catalog's construction-is-invalidation
contract: :meth:`Session.set_relation` installs a *new* relation object
(relations are immutable, so its stats slot starts empty) and bumps that
name's version; every prepared query reading the name lazily re-binds and
re-plans on its next execution — against the fresh statistics — while
queries over untouched relations keep their plans and their plan-cache hits.

Counters (:meth:`Session.stats`) make the serving behaviour auditable:
``plan_builds`` counts actual compilations, ``plan_cache_hits`` counts
executions that reused a pinned plan, so "prepare once, execute many" is a
measurable property rather than a promise.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Dict, Mapping, Optional, Tuple, Union

from ..algebra.database import Database
from ..algebra.relation import Relation
from ..expressions.ast import Expression
from ..expressions.evaluator import InstrumentedEvaluator, evaluate
from ..expressions.optimizer import OptimizedEvaluator, push_down_projections
from ..expressions.parser import parse_expression
from ..obs.config import Observer
from ..obs.events import EventLog
from ..obs.metrics import MetricsRegistry, process_metrics
from .config import BackendConfig, validate_backend
from .errors import SessionClosedError, SessionError
from .prepared import PreparedQuery
from .result import QueryResult
from .trace import UnifiedTrace

__all__ = ["Session", "connect"]

DatabaseLike = Union[Database, Mapping[str, Relation], Relation]

#: Version key for the bare default relation of single-relation sessions.
_DEFAULT_KEY = "*default*"

_COUNTER_NAMES = (
    "prepares",
    "registry_hits",
    "executes",
    "plan_builds",
    "plan_cache_hits",
    "invalidations",
    "invalidation_replans",
    "replans",
    "serial_fallbacks",
)


class Session:
    """Serve prepared queries over one database from any evaluator backend.

    ``database`` is a :class:`~repro.algebra.database.Database`, a plain
    ``{name: relation}`` mapping, or a bare :class:`Relation` (bound to every
    operand whose scheme it matches — the paper's single-relation
    databases).  ``config`` carries the backend and its knobs; keyword
    overrides (``backend=``, ``budget=``, ``workers=``, ...) are applied on
    top of it, so ``Session(db, backend="engine", workers=4)`` needs no
    explicit config object.

    Sessions are context managers; :meth:`close` (idempotent) shuts down the
    engine's persistent worker pools.
    """

    def __init__(
        self,
        database: DatabaseLike,
        config: Optional[BackendConfig] = None,
        **overrides,
    ):
        base = config or BackendConfig()
        if overrides:
            base = base.override(**overrides)
        self.config = base
        self._state_lock = threading.Lock()
        self._relations: Dict[str, Relation] = {}
        self._default: Optional[Relation] = None
        self._default_version = 0
        self._rel_versions: Dict[str, int] = {}
        if isinstance(database, Relation):
            self._default = database
        elif isinstance(database, (Database, Mapping)):
            self._relations = dict(database.items())
        else:
            raise SessionError(
                f"database must be a Database, a name->relation mapping, or "
                f"a bare Relation, got {type(database).__name__}"
            )
        self._registry: Dict[Tuple[Expression, str], PreparedQuery] = {}
        self._counters: Dict[str, int] = {name: 0 for name in _COUNTER_NAMES}
        self._closed = False
        # Backend executors, created lazily and shared by every prepared
        # query of this session (the engine evaluator carries the shared
        # budget, worker pools, and pinned-plan dictionary).
        self._engine_evaluator = None
        self._instrumented = InstrumentedEvaluator()
        self._optimized = OptimizedEvaluator(estimator=base.size_estimator)
        # Observability: the observer owns the event log and (usually) the
        # metrics registry; an unobserved session still keeps a registry so
        # Session.metrics() always has latency/throughput to show.
        self._observer = Observer.coerce(base.observe)
        if self._observer is not None:
            self._metrics = self._observer.metrics  # None if explicitly off
        else:
            self._metrics = MetricsRegistry(parent=process_metrics())

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Shut down serving state (engine worker pools).  Idempotent."""
        with self._state_lock:
            self._closed = True
            engine = self._engine_evaluator
        if engine is not None:
            engine.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise SessionClosedError("this session is closed")

    # -- the database side ---------------------------------------------

    @property
    def relations(self) -> Dict[str, Relation]:
        """A snapshot of the session's named relations."""
        with self._state_lock:
            return dict(self._relations)

    @property
    def default_relation(self) -> Optional[Relation]:
        """The bare relation of a single-relation session, if any."""
        return self._default

    def set_relation(self, name: str, relation: Relation) -> None:
        """Install ``relation`` under ``name`` (replacing any previous one).

        Relations are immutable, so this is the only mutation a session
        knows: a *new* object whose statistics catalog starts empty
        (construction is invalidation).  Prepared queries reading ``name``
        re-bind and re-plan on their next execution; others are untouched.
        """
        if not isinstance(relation, Relation):
            raise SessionError(
                f"set_relation expects a Relation, got {type(relation).__name__}"
            )
        self._ensure_open()
        with self._state_lock:
            self._relations[name] = relation
            self._rel_versions[name] = self._rel_versions.get(name, 0) + 1
            self._counters["invalidations"] += 1
        store = self._planstore
        if store is not None:
            # Scoped invalidation: drop only this name's warm samples and
            # ledger observations; other relations' learned state stays.
            store.invalidate_relation(name)

    def set_default_relation(self, relation: Relation) -> None:
        """Replace a single-relation session's bare relation."""
        if not isinstance(relation, Relation):
            raise SessionError(
                f"set_default_relation expects a Relation, got {type(relation).__name__}"
            )
        self._ensure_open()
        with self._state_lock:
            if self._default is None:
                raise SessionError(
                    "this session was not created from a bare relation; "
                    "use set_relation(name, relation)"
                )
            self._default = relation
            self._default_version += 1
            self._counters["invalidations"] += 1
        store = self._planstore
        if store is not None:
            # The bare relation binds any operand name, so nothing learned
            # can be scoped to a name — forget all samples and observations.
            store.invalidate_all()

    def _resolve_bindings(
        self, expression: Expression
    ) -> Tuple[Dict[str, Relation], Dict[str, int]]:
        """Map the expression's operands onto the session's relations.

        Returns the mapping plus the version snapshot the binding was taken
        at, so staleness is detectable without re-resolving.
        """
        schemes = expression.operand_schemes()
        mapping: Dict[str, Relation] = {}
        versions: Dict[str, int] = {}
        with self._state_lock:
            for name in schemes:
                if name in self._relations:
                    mapping[name] = self._relations[name]
                    versions[name] = self._rel_versions.get(name, 0)
                elif self._default is not None:
                    mapping[name] = self._default
                    versions[_DEFAULT_KEY] = self._default_version
                    # Also snapshot the *name*: a later set_relation(name,
                    # ...) shadows the default for this operand, and the
                    # binding must notice that too.
                    versions[name] = self._rel_versions.get(name, 0)
                else:
                    raise SessionError(
                        f"no relation named {name!r} in this session "
                        f"(have: {sorted(self._relations) or 'none'})"
                    )
        return mapping, versions

    def _versions_changed(self, snapshot: Mapping[str, int]) -> bool:
        with self._state_lock:
            for key, version in snapshot.items():
                if key == _DEFAULT_KEY:
                    if self._default_version != version:
                        return True
                elif self._rel_versions.get(key, 0) != version:
                    return True
        return False

    # -- preparing -----------------------------------------------------

    def prepare(
        self,
        expression: Union[Expression, str],
        backend: Optional[str] = None,
    ) -> PreparedQuery:
        """Parse/validate/compile once; return the pinned prepared query.

        ``expression`` is an AST or the textual syntax of
        :func:`repro.expressions.parse_expression` (operand schemes are
        taken from the session's relations).  ``backend`` overrides the
        session default for this query — one session serves mixed traffic.
        Preparing a structurally identical (expression, backend) pair again
        returns the *same* prepared query (a registry hit, not a re-plan).
        """
        self._ensure_open()
        chosen = validate_backend(backend or self.config.backend)
        if isinstance(expression, str):
            expression = self._parse(expression)
        key = (expression, chosen)
        with self._state_lock:
            existing = self._registry.get(key)
            if existing is not None:
                self._counters["registry_hits"] += 1
                return existing
        prepared = PreparedQuery(self, expression, chosen)
        with self._state_lock:
            raced = self._registry.get(key)
            if raced is not None:
                self._counters["registry_hits"] += 1
                return raced
            self._registry[key] = prepared
            self._counters["prepares"] += 1
        return prepared

    def execute(
        self,
        expression: Union[Expression, str],
        backend: Optional[str] = None,
        **bindings: Relation,
    ) -> QueryResult:
        """Prepare (registry-cached) and execute in one call."""
        return self.prepare(expression, backend=backend).execute(**bindings)

    def _parse(self, source: str) -> Expression:
        with self._state_lock:
            schemes = {name: rel.scheme for name, rel in self._relations.items()}
            if self._default is not None and self._default.name:
                schemes.setdefault(self._default.name, self._default.scheme)
        if not schemes:
            raise SessionError(
                "cannot parse a textual query: the session holds no named "
                "relations (bare-relation sessions need the relation to "
                "carry a name)"
            )
        return parse_expression(source, schemes)

    @property
    def prepared_queries(self) -> Tuple[PreparedQuery, ...]:
        """Every distinct prepared query registered with this session."""
        with self._state_lock:
            return tuple(self._registry.values())

    # -- backend dispatch ----------------------------------------------

    @property
    def _engine(self):
        """The session's shared engine evaluator (created on first use)."""
        engine = self._engine_evaluator
        if engine is None:
            from ..engine.evaluator import EngineEvaluator
            from ..engine.planner import PlannerConfig

            with self._state_lock:
                engine = self._engine_evaluator
                if engine is None:
                    engine = EngineEvaluator(
                        config=PlannerConfig(prefer_merge=self.config.prefer_merge),
                        budget=self.config.budget,
                        workers=self.config.workers,
                        parallel_backend=self.config.parallel_backend,
                        max_pools=self.config.max_pools,
                        adaptive=self.config.adaptive,
                        planstore=self.config.planstore,
                        faults=self.config.faults,
                        observe=self._observer,
                    )
                    self._engine_evaluator = engine
        return engine

    def _compile_for(
        self, backend: str, expression: Expression, bound: Mapping[str, Relation]
    ):
        """The backend's pinned artifact for one (expression, binding)."""
        if backend == "engine":
            return self._engine.plan_for(expression, bound)
        if backend == "optimized":
            return push_down_projections(expression)
        return None

    def _forget_backend_plan(
        self, backend: str, expression: Expression, forget_learned: bool = True
    ) -> None:
        """Drop a stale pinned plan so the next compile re-plans.

        ``forget_learned=False`` is the invalidation-replan path: the
        changed relation's plan-store state was already invalidated —
        scoped to that name — by :meth:`set_relation`, so observations
        over the plan's *unchanged* relations stay learned.
        """
        if backend == "engine" and self._engine_evaluator is not None:
            self._engine_evaluator.forget_plan(
                expression, forget_learned=forget_learned
            )

    @property
    def _planstore(self):
        """The engine evaluator's plan store, if one is attached and live."""
        engine = self._engine_evaluator
        return engine.planstore if engine is not None else None

    def forget_plan(
        self,
        expression: Union[Expression, str],
        backend: Optional[str] = None,
    ) -> None:
        """Drop the pinned plan (and what executing it taught the store).

        The next execution of a prepared query over ``expression`` re-plans
        from scratch.  With a plan store attached, forgetting also drops
        the ledger observations learned from this plan's operands (a
        ``forgotten`` event lands in its plan history) — warm reservoir
        samples stay, because they are keyed by relation identity and
        remain valid until :meth:`set_relation` replaces the relation.
        ``backend`` defaults to the session's configured backend; only the
        engine backend pins plans, so other backends are a no-op.
        """
        self._ensure_open()
        chosen = validate_backend(backend or self.config.backend)
        if isinstance(expression, str):
            expression = self._parse(expression)
        self._forget_backend_plan(chosen, expression)

    def _execute_backend(
        self,
        backend: str,
        expression: Expression,
        bound: Mapping[str, Relation],
        artifact,
        tracer=None,
    ) -> Tuple[Relation, UnifiedTrace]:
        start = perf_counter()
        relation, trace = self._dispatch_backend(
            backend, expression, bound, artifact, tracer
        )
        if self._metrics is not None:
            self._observe_execution(backend, perf_counter() - start, trace)
        return relation, trace

    def _observe_execution(self, backend, seconds, trace) -> None:
        """Feed one execution into the session's metrics registry."""
        metrics = self._metrics
        metrics.histogram(
            "repro_query_seconds", help="end-to-end prepared-query latency"
        ).observe(seconds)
        metrics.counter("repro_executes_total", help="queries executed").inc()
        metrics.counter("repro_rows_total", help="result rows returned").inc(
            trace.result_cardinality
        )
        if trace.replans:
            metrics.counter(
                "repro_replans_total", help="mid-stream adaptive re-plans"
            ).inc(trace.replans)
        if trace.serial_fallbacks:
            metrics.counter(
                "repro_serial_fallbacks_total",
                help="parallel-to-serial degradations",
            ).inc(trace.serial_fallbacks)
        spilled = trace.counters.get("spill_rows", 0) if trace.counters else 0
        if spilled:
            metrics.counter("repro_spill_rows_total", help="rows spilled").inc(
                spilled
            )
        metrics.gauge(
            "repro_last_peak_memory_rows",
            help="peak resident rows of the most recent execution",
        ).set(trace.peak_memory_rows)

    def _dispatch_backend(
        self,
        backend: str,
        expression: Expression,
        bound: Mapping[str, Relation],
        artifact,
        tracer=None,
    ) -> Tuple[Relation, UnifiedTrace]:
        if backend == "engine":
            relation, trace = self._engine.evaluate(expression, bound, tracer=tracer)
            if trace.replans or trace.serial_fallbacks:
                # Mid-stream re-plans (adaptive mode) and parallel-to-serial
                # degradations are serving events: surface them next to the
                # prepare/invalidation counters.
                with self._state_lock:
                    self._counters["replans"] += trace.replans
                    self._counters["serial_fallbacks"] += trace.serial_fallbacks
            return relation, UnifiedTrace.from_backend("engine", trace)
        if backend == "optimized":
            relation, trace = self._optimized.evaluate(
                expression, bound, rewritten=artifact
            )
            return relation, UnifiedTrace.from_backend("optimized", trace)
        if backend == "instrumented":
            relation, trace = self._instrumented.evaluate(expression, bound)
            return relation, UnifiedTrace.from_backend("instrumented", trace)
        relation = evaluate(expression, bound)
        trace = UnifiedTrace.minimal(
            "naive",
            input_cardinality=sum(len(rel) for rel in bound.values()),
            result_cardinality=len(relation),
        )
        return relation, trace

    # -- counters ------------------------------------------------------

    def _count(self, name: str) -> None:
        with self._state_lock:
            self._counters[name] += 1

    def stats(self) -> Dict[str, int]:
        """A snapshot of the session's serving counters.

        ``plan_builds`` counts compilations (one per prepared query, plus
        one per invalidation replan); ``plan_cache_hits`` counts executions
        that reused a pinned plan; ``registry_hits`` counts ``prepare``
        calls answered from the registry; ``replans`` counts the adaptive
        engine's mid-stream re-plans (0 unless the config sets
        ``adaptive``); ``serial_fallbacks`` counts loud parallel-to-serial
        degradations (each also warned and recorded on the trace).
        ``open_pools`` reports the engine's warm fork-probe pools.  With a
        plan store attached (``planstore=`` config), a nested
        ``"planstore"`` dict reports its sample-cache hits/misses, ledger
        size and version, plan re-pins, and drift re-plans.
        """
        with self._state_lock:
            snapshot = dict(self._counters)
            engine = self._engine_evaluator
        snapshot["open_pools"] = engine.open_pools if engine is not None else 0
        store = engine.planstore if engine is not None else None
        if store is not None:
            snapshot["planstore"] = store.stats()
        return snapshot

    def metrics(self) -> "MetricsRegistry":
        """The session's metrics registry (latency, throughput, q-error...).

        Every session keeps one — executions are observed into it and
        aggregated upward into :func:`repro.obs.process_metrics` — unless
        the config's :class:`~repro.obs.ObserveConfig` explicitly set
        ``metrics=False``, in which case this raises
        :class:`~repro.api.errors.SessionError`.  Render it with
        :func:`repro.obs.render_prometheus`.
        """
        if self._metrics is None:
            raise SessionError(
                "metrics were disabled by ObserveConfig(metrics=False)"
            )
        return self._metrics

    def events(self) -> Optional["EventLog"]:
        """The session's structured event log, or ``None`` when not observed.

        Present only when the config's ``observe`` enables events — the
        log records every spill switch, re-plan, checkpoint, degradation,
        and injected fault as a timestamped dict (mirrored to JSON-Lines
        when ``events_path`` is set).
        """
        if self._observer is None:
            return None
        return self._observer.events

    def __repr__(self) -> str:
        if self._default is not None:
            held = f"1 bare relation [{len(self._default)} tuples]"
        else:
            held = f"{len(self._relations)} relation(s)"
        return (
            f"Session({held}, backend={self.config.backend!r}, "
            f"{len(self._registry)} prepared quer"
            f"{'y' if len(self._registry) == 1 else 'ies'})"
        )


def connect(database: DatabaseLike, **overrides) -> Session:
    """Open a :class:`Session` on ``database`` (keyword config overrides).

    The one-line entry point the docs use::

        with repro.connect({"R": r, "S": s}, backend="engine", workers=4) as db:
            rows = db.execute("project[A](R * S)")
    """
    return Session(database, **overrides)
