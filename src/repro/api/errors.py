"""Exceptions raised by the :mod:`repro.api` facade.

The facade deliberately keeps the underlying layers' exceptions visible —
an :class:`~repro.expressions.ast.ExpressionError` from binding or parsing
propagates unchanged, because its message already names the operand and
scheme at fault.  The session adds only the failure modes that belong to
*its* contract: using a session after :meth:`~repro.api.session.Session.close`,
preparing against relations the session does not hold, or configuring a
backend that does not exist.
"""

from __future__ import annotations

__all__ = ["SessionError", "SessionClosedError", "UnknownBackendError"]


class SessionError(Exception):
    """A violation of the session/prepared-query contract."""


class SessionClosedError(SessionError):
    """The session was closed; its prepared queries can no longer execute."""


class UnknownBackendError(SessionError, ValueError):
    """A backend name outside the supported backend set."""
