"""The unified public API: sessions, prepared queries, unified traces.

Four generations of evaluation APIs grew alongside the paper reproduction —
:func:`repro.expressions.evaluate`, the instrumented and optimising
evaluators, and the streaming :class:`~repro.engine.evaluator.EngineEvaluator`
with its budget/worker knobs — each with its own constructor, trace dialect,
and caching story.  This package is the one front door over all of them:

>>> import repro
>>> from repro.algebra import Relation
>>> r = Relation.from_rows("A B", [(1, "x"), (2, "y")], name="R")
>>> with repro.connect({"R": r}) as session:
...     query = session.prepare("project[A](R)")
...     len(query.execute())
2

* :class:`Session` owns the database side (named relations or a bare
  single relation), the :class:`BackendConfig`, and the serving state every
  prepared query shares (pinned plans, memory budget, persistent worker
  pools, counters);
* :meth:`Session.prepare` parses/validates/compiles **once** into a
  :class:`PreparedQuery`; ``execute()`` / ``explain()`` / ``trace()`` then
  behave identically on every backend;
* :class:`QueryResult` and :class:`UnifiedTrace` are the backend-agnostic
  result and trace types (:class:`TraceLike` is the structural protocol);
* :class:`ObserveConfig` (re-exported from :mod:`repro.obs`) switches on
  the observability layer — span tracing, the structured event log, and
  the session metrics registry (``BackendConfig(observe=...)``).

``docs/API.md`` documents the facade, the backend matrix, and the
prepared-plan/invalidation contract.
"""

from ..obs.config import ObserveConfig
from .config import BACKENDS, BackendConfig
from .errors import SessionClosedError, SessionError, UnknownBackendError
from .prepared import PreparedQuery
from .result import QueryResult
from .session import Session, connect
from .trace import TraceLike, UnifiedTrace

__all__ = [
    "BACKENDS",
    "BackendConfig",
    "ObserveConfig",
    "Session",
    "connect",
    "PreparedQuery",
    "QueryResult",
    "TraceLike",
    "UnifiedTrace",
    "SessionError",
    "SessionClosedError",
    "UnknownBackendError",
]
