"""Prepared queries: parse/validate/plan once, execute many times.

A :class:`PreparedQuery` is created by :meth:`repro.api.session.Session.prepare`
and pins everything that does not change between executions of one query:

* the validated expression (parsed once if it arrived as text);
* the binding of operand names to the session's relations (re-validated
  lazily only after the session mutates a relation the query reads);
* the backend-specific compiled artifact — the engine's
  :class:`~repro.engine.planner.PhysicalPlan` or the optimiser's pushed-down
  rewrite (the naive backends have nothing to compile).

``execute()`` then runs the pinned plan; the session's counters record a
plan-cache hit for every execution that re-planned nothing, which is how the
serving benchmark proves steady-state executes never touch the planner.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple

from ..algebra.relation import Relation
from ..expressions.ast import Expression
from ..expressions.evaluator import bind_arguments
from .errors import SessionError
from .result import QueryResult
from .trace import UnifiedTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.planstore import PlanRecord
    from .session import Session

__all__ = ["PreparedQuery"]


class PreparedQuery:
    """One query, prepared against one session's relations and backend.

    Instances are created by :meth:`Session.prepare` (the constructor is not
    public API) and stay valid for the session's lifetime: executing after a
    relation mutation transparently re-binds and re-plans once, executing
    after :meth:`Session.close` raises.
    """

    def __init__(self, session: "Session", expression: Expression, backend: str):
        self._session = session
        self.expression = expression
        self.backend = backend
        self._lock = threading.Lock()
        self._bound: Dict[str, Relation] = {}
        self._versions: Dict[str, int] = {}
        #: Backend artifact: PhysicalPlan (engine) or rewritten Expression
        #: (optimized); None for the naive backends.
        self._artifact = None
        self._last_trace: Optional[UnifiedTrace] = None
        self._compile(count_build=True)

    # -- pinning -------------------------------------------------------

    def _compile(self, count_build: bool) -> None:
        """(Re)bind against the session's current relations and re-pin.

        Called at preparation and again after a relation this query reads is
        replaced (the session bumps that name's version; the stale check in
        :meth:`_current_binding` notices).  ``count_build`` is False only
        for the no-op path.
        """
        session = self._session
        mapping, versions = session._resolve_bindings(self.expression)
        bound = bind_arguments(self.expression, mapping)
        artifact = session._compile_for(self.backend, self.expression, bound)
        self._bound = bound
        self._versions = versions
        self._artifact = artifact
        if count_build:
            session._count("plan_builds")

    def _current_binding(self) -> Dict[str, Relation]:
        """The pinned binding, re-pinned first if the session mutated under it."""
        session = self._session
        session._ensure_open()
        with self._lock:
            if session._versions_changed(self._versions):
                session._count("invalidation_replans")
                # Drop the engine's pinned plan for this expression so the
                # re-compile plans against the *new* relations' statistics
                # (construction-is-invalidation: fresh relations carry fresh
                # stats catalogs).  forget_learned=False: the changed
                # relation's plan-store state was already invalidated by
                # set_relation, scoped to that name — what was learned about
                # unchanged relations stays.
                session._forget_backend_plan(
                    self.backend, self.expression, forget_learned=False
                )
                self._compile(count_build=True)
            else:
                session._count("plan_cache_hits")
            return self._bound

    def _merge_overrides(
        self, bound: Mapping[str, Relation], bindings: Mapping[str, Relation]
    ) -> Mapping[str, Relation]:
        """Apply per-call relation overrides to the pinned binding, validated."""
        if not bindings:
            return bound
        unknown = sorted(set(bindings) - set(bound))
        if unknown:
            raise SessionError(
                f"got relations for {unknown} but the query's "
                f"operands are {sorted(bound)}"
            )
        merged = dict(bound)
        merged.update(bindings)
        return bind_arguments(self.expression, merged)

    # -- the unified verbs ---------------------------------------------

    def execute(self, **bindings: Relation) -> QueryResult:
        """Run the pinned plan and return a :class:`QueryResult`.

        Keyword arguments override the session's relation for that operand
        name *for this execution only* (the pinned plan is reused — a plan
        stays correct for any conforming database; only the statistics it
        was costed with age).  Unknown names raise, mismatched schemes raise
        through the usual binding validation.
        """
        bound = self._merge_overrides(self._current_binding(), bindings)
        relation, trace = self._session._execute_backend(
            self.backend, self.expression, bound, self._artifact
        )
        self._last_trace = trace
        self._session._count("executes")
        return QueryResult(relation=relation, trace=trace, backend=self.backend)

    def trace(self, **bindings: Relation) -> UnifiedTrace:
        """Execute with full tracing and return the :class:`UnifiedTrace`.

        Identical on every backend: the ``naive`` backend (whose plain
        ``execute`` records no steps) traces through the instrumented
        evaluator, which materialises the same intermediates.
        """
        if self.backend == "naive":
            bound = self._merge_overrides(self._current_binding(), bindings)
            relation, trace = self._session._execute_backend(
                "instrumented", self.expression, bound, None
            )
            self._session._count("executes")
            trace.backend = "naive"
            self._last_trace = trace
            return trace
        return self.execute(**bindings).trace

    def last_trace(self) -> Optional[UnifiedTrace]:
        """The most recent execution's trace (``None`` before any execution)."""
        return self._last_trace

    def explain_analyze(self, **bindings: Relation):
        """Execute once under a span tracer and return the runtime report.

        The engine analogue of SQL ``EXPLAIN ANALYZE``: the pinned plan runs
        with a fresh :class:`repro.obs.Tracer` attached (regardless of the
        session's ``observe`` config), and the recorded spans are folded into
        an :class:`repro.obs.ExplainAnalyzeReport` — per-operator wall time
        (inclusive and self), rows produced, kernel-counter deltas, plus the
        plan/spill/replan overhead spans.  Only the ``engine`` backend emits
        operator spans; other backends return a report whose operator list is
        empty and whose total is the wall time.

        The traced execution also updates :meth:`last_trace`, whose ``spans``
        carry the raw span list for custom analysis.
        """
        from time import perf_counter

        from ..obs import Tracer, explain_report

        bound = self._merge_overrides(self._current_binding(), bindings)
        tracer = Tracer()
        start = perf_counter()
        relation, trace = self._session._execute_backend(
            self.backend, self.expression, bound, self._artifact, tracer=tracer
        )
        total = perf_counter() - start
        self._last_trace = trace
        self._session._count("executes")
        spans = trace.spans or tracer.finish()
        return explain_report(
            spans,
            total_seconds=total,
            backend=self.backend,
            result_rows=len(relation),
        )

    def explain(self) -> str:
        """A human-readable account of how this backend runs the query."""
        bound = self._current_binding()
        expression_text = self.expression.to_text()
        if self.backend == "engine":
            plan = self._artifact
            return (
                f"backend: engine (streaming physical plan)\n"
                f"expression: {expression_text}\n"
                f"estimated result rows: {plan.est_rows:.1f}   "
                f"estimated cost: {plan.est_cost:.1f}\n"
                f"{plan.explain()}"
            )
        if self.backend == "optimized":
            return (
                f"backend: optimized (projection push-down + greedy join ordering)\n"
                f"expression: {expression_text}\n"
                f"rewritten:  {self._artifact.to_text()}"
            )
        detail = "records every intermediate" if self.backend == "instrumented" else "no trace steps"
        return (
            f"backend: {self.backend} (materialise as written; {detail})\n"
            f"expression: {expression_text}\n"
            f"operands: "
            + ", ".join(
                f"{name}[{len(relation)} tuples]" for name, relation in sorted(bound.items())
            )
        )

    def contains(self, candidate) -> bool:
        """Decide ``candidate ∈ result`` without asking for the full result.

        On the engine backend this streams the pinned plan and stops at the
        candidate's first occurrence
        (:class:`~repro.decision.membership.EngineMembershipDecider`); the
        materialising backends evaluate and test membership.
        """
        bound = self._current_binding()
        if self.backend == "engine":
            from ..decision.membership import EngineMembershipDecider

            decider = EngineMembershipDecider(evaluator=self._session._engine)
            verdict = decider.decide(candidate, self.expression, bound)
            self._session._count("executes")
            return verdict
        relation, _ = self._session._execute_backend(
            self.backend, self.expression, bound, self._artifact
        )
        self._session._count("executes")
        return candidate in relation

    # -- introspection -------------------------------------------------

    @property
    def operand_names(self) -> Tuple[str, ...]:
        """The operand names this query reads, sorted."""
        return tuple(sorted(self._bound))

    def plan_history(self) -> Tuple["PlanRecord", ...]:
        """What the plan store recorded about this query's plan, oldest first.

        Each :class:`~repro.engine.planstore.PlanRecord` is one lifecycle
        event — ``pinned`` (a fresh build, with its join order), ``repin``
        (the corrected order written back after a mid-stream re-plan),
        ``drift_replan`` (a proactive rebuild after observed cardinalities
        drifted from the pinned estimates), ``forgotten`` (the plan was
        dropped).  Empty when the session has no plan store
        (``planstore=`` not configured), when the backend is not the
        engine, or before the first engine compile.
        """
        store = self._session._planstore
        if store is None or self.backend != "engine":
            return ()
        return store.history(self.expression)

    def __repr__(self) -> str:
        return (
            f"PreparedQuery({self.expression.to_text()!r}, "
            f"backend={self.backend!r})"
        )
