"""Backend configuration for :class:`~repro.api.session.Session`.

One frozen dataclass replaces four generations of constructor knobs: the
evaluator to serve from (``backend``), the streaming engine's memory budget
and parallelism, the optimiser's size-estimator hook, and the serving-side
limits (how many persistent fork pools a session may keep warm).  A session
holds exactly one config; individual :meth:`~repro.api.session.Session.prepare`
calls may override the backend per query, which is how one session serves
mixed query traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Union

from ..engine.faults import FaultPlan
from ..engine.physical import MemoryBudget
from ..engine.planstore import PlanStore, PlanStoreConfig
from ..engine.sampling import AdaptiveConfig
from ..obs.config import Observer, ObserveConfig
from .errors import SessionError, UnknownBackendError

__all__ = ["BACKENDS", "BackendConfig"]

#: The evaluator backends a session can serve from, in generation order.
BACKENDS = ("naive", "instrumented", "optimized", "engine")


@dataclass(frozen=True)
class BackendConfig:
    """Every knob of every evaluator generation, in one place.

    ``backend``
        Default evaluator for prepared queries: ``naive`` (materialise as
        written, no trace steps), ``instrumented`` (naive + per-intermediate
        trace), ``optimized`` (projection push-down + greedy join ordering),
        or ``engine`` (streaming physical plans — the production path, and
        the default).
    ``budget``
        Row budget for the engine's state (int or
        :class:`~repro.engine.physical.MemoryBudget`); hash joins spill to
        Grace partitions when their build side would overflow it.
    ``workers``
        Parallel probe workers for the engine (1 = serial).
    ``parallel_backend``
        Force ``"fork"`` or ``"thread"`` for the engine's worker pool
        (default: fork where available).
    ``size_estimator``
        The optimised backend's join-ordering hook: a callable
        ``(left, right) -> float`` scoring candidate pairwise joins
        (default: :func:`repro.algebra.operations.estimate_join_size`).
    ``prefer_merge``
        Make the engine's planner choose sort-merge joins.
    ``max_pools``
        How many persistent fork-probe pools the engine evaluator keeps
        warm, LRU-evicted beyond that (each pool pins one bound plan's
        forked workers — see ``docs/ENGINE.md``).
    ``adaptive``
        ``True`` (or an :class:`~repro.engine.sampling.AdaptiveConfig`)
        switches the engine backend to sampling-based cardinality
        estimation plus mid-stream re-planning: plans are costed against
        reservoir samples of the bound relations, and a serial execution
        whose observed cardinality blows past its estimate checkpoints and
        resumes on a re-costed join order (``session.stats()["replans"]``
        counts it; invalidation replans re-sample the fresh relations).
    ``planstore``
        ``True`` (or a :class:`~repro.engine.planstore.PlanStoreConfig`)
        attaches the plan-management subsystem to the engine backend: a
        per-session store that caches warm reservoir samples by relation
        identity, keeps an observed-cardinality ledger that plan costing
        consults before any estimator, re-pins the corrected join order
        after a successful mid-stream re-plan, and proactively re-plans
        pinned plans whose estimates have drifted past the configured
        q-error threshold.  A pre-built :class:`~repro.engine.planstore.PlanStore`
        is accepted as-is (sessions may share one store the way they share
        an :class:`~repro.obs.Observer`).  ``None`` (the default) keeps
        planning memoryless, exactly as before this knob existed.
    ``faults``
        A :class:`~repro.engine.faults.FaultPlan` chaos schedule for the
        engine backend: spill I/O failures, a worker kill, checkpoint-cap
        pressure.  The engine either recovers (retries, pool rebuild, loud
        serial fallback) or raises a typed
        :class:`~repro.engine.faults.EngineFaultError` — never a silent
        wrong answer.  ``None`` (the default) injects nothing.
    ``observe``
        An :class:`~repro.obs.ObserveConfig` (or ``True`` for everything
        on) attaching the observability layer: per-execution span
        tracing (``UnifiedTrace.spans``, ``explain_analyze()``), a
        structured event log of spills / re-plans / degradations /
        faults, and a metrics registry (``Session.metrics()``).  With
        ``None`` (the default) the session still keeps a metrics
        registry, but no tracer or event log ever touches the engine's
        hot path.  A pre-built runtime :class:`~repro.obs.Observer` is
        accepted as-is, which is how the serving tier shares one event
        log and metrics registry across a worker's session cache.
    """

    backend: str = "engine"
    budget: Union[MemoryBudget, int, None] = None
    workers: int = 1
    parallel_backend: Optional[str] = None
    size_estimator: Optional[Callable] = None
    prefer_merge: bool = False
    max_pools: int = 8
    adaptive: Union[AdaptiveConfig, bool, None] = None
    planstore: Union[PlanStore, PlanStoreConfig, bool, None] = None
    faults: Optional[FaultPlan] = None
    observe: Union[Observer, ObserveConfig, bool, None] = None

    def __post_init__(self):
        """Validate the backend name and knob ranges; coerce budget/adaptive."""
        validate_backend(self.backend)
        if self.workers < 1:
            raise SessionError(f"workers must be >= 1, got {self.workers}")
        if self.max_pools < 1:
            raise SessionError(f"max_pools must be >= 1, got {self.max_pools}")
        coerced = MemoryBudget.coerce(self.budget)
        if coerced is not self.budget:
            object.__setattr__(self, "budget", coerced)
        try:
            adaptive = AdaptiveConfig.coerce(self.adaptive)
        except (TypeError, ValueError) as error:
            raise SessionError(str(error)) from error
        if adaptive is not self.adaptive:
            object.__setattr__(self, "adaptive", adaptive)
        if not isinstance(self.planstore, PlanStore):
            try:
                planstore = PlanStoreConfig.coerce(self.planstore)
            except (TypeError, ValueError) as error:
                raise SessionError(str(error)) from error
            if planstore is not self.planstore:
                object.__setattr__(self, "planstore", planstore)
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise SessionError(
                f"faults must be a FaultPlan or None, got {type(self.faults).__name__}"
            )
        if not isinstance(self.observe, Observer):
            try:
                observe = ObserveConfig.coerce(self.observe)
            except TypeError as error:
                raise SessionError(str(error)) from error
            if observe is not self.observe:
                object.__setattr__(self, "observe", observe)

    def override(self, **changes) -> "BackendConfig":
        """A copy with ``changes`` applied (validated like the constructor)."""
        return replace(self, **changes)


def validate_backend(backend: str) -> str:
    """Return ``backend`` if supported, raise :class:`UnknownBackendError` otherwise."""
    if backend not in BACKENDS:
        raise UnknownBackendError(
            f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    return backend
