"""The unified result of one prepared-query execution.

Every backend returns the same thing: the result :class:`Relation`, the
backend-agnostic :class:`~repro.api.trace.UnifiedTrace` of the execution,
and the name of the backend that served it.  The wrapper behaves like the
relation for the common read paths (length, iteration, membership, equality
against relations or other results), so callers migrating from
``evaluate(...) -> Relation`` rarely need to touch ``.relation`` at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..algebra.relation import Relation
from ..algebra.schema import RelationScheme
from .trace import UnifiedTrace

__all__ = ["QueryResult"]


@dataclass(frozen=True, eq=False, repr=False)
class QueryResult:
    """One execution's outcome: relation + trace + the backend that served it."""

    relation: Relation
    trace: UnifiedTrace
    backend: str

    @property
    def scheme(self) -> RelationScheme:
        """The result relation's scheme."""
        return self.relation.scheme

    def __len__(self) -> int:
        return len(self.relation)

    def __iter__(self) -> Iterator:
        return iter(self.relation)

    def __contains__(self, item) -> bool:
        return item in self.relation

    def __eq__(self, other: object) -> bool:
        if isinstance(other, QueryResult):
            return self.relation == other.relation
        if isinstance(other, Relation):
            return self.relation == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.relation)

    def set_equal(self, other) -> bool:
        """Set-equality against a relation or result, tolerating a reordered
        column presentation (the engine's output order follows its plan)."""
        reference = other.relation if isinstance(other, QueryResult) else other
        if self.relation.scheme.name_set != reference.scheme.name_set:
            return False
        aligned = (
            self.relation
            if self.relation.scheme.names == reference.scheme.names
            else self.relation.project(reference.scheme.names)
        )
        return aligned == reference

    def to_table(self, max_rows: int = 60) -> str:
        """The result rendered as a text table (delegates to the relation)."""
        return self.relation.to_table(max_rows=max_rows)

    def __repr__(self) -> str:
        return (
            f"QueryResult({len(self.relation)} tuples over "
            f"{', '.join(self.scheme.names)}; backend={self.backend!r})"
        )
