"""Abstract syntax of relational expressions over projection and join.

A relational expression (paper, Section 2.1) has relation schemes as operands
and projection and natural join as operations.  The AST mirrors that
definition:

* :class:`Operand` — a named argument position, carrying the relation scheme
  the argument must conform to;
* :class:`Projection` — ``π_Y(e)``;
* :class:`Join` — ``e1 * e2 * ... * ek`` (n-ary, since natural join is
  associative and the paper freely writes multi-way joins).

Every node knows its *target relation scheme* (``trs(φ)`` in the paper),
computed structurally, and the set of operand names it mentions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..algebra.schema import RelationScheme, SchemeLike, as_scheme

__all__ = ["Expression", "Operand", "Projection", "Join", "ExpressionError"]


class ExpressionError(Exception):
    """Raised when an expression is ill-formed (e.g. projecting onto absent attributes)."""


class Expression:
    """Base class of all expression nodes."""

    def target_scheme(self) -> RelationScheme:
        """The relation scheme of the expression's result (``trs(φ)``)."""
        raise NotImplementedError

    def operand_names(self) -> FrozenSet[str]:
        """The names of the operand relation schemes mentioned by the expression."""
        raise NotImplementedError

    def operand_schemes(self) -> Dict[str, RelationScheme]:
        """Mapping from operand name to the scheme it must be a relation over.

        Raises :class:`ExpressionError` if the same operand name appears with
        two different schemes.
        """
        raise NotImplementedError

    def children(self) -> Tuple["Expression", ...]:
        """The immediate sub-expressions."""
        raise NotImplementedError

    # -- structural helpers ---------------------------------------------

    def walk(self) -> Iterator["Expression"]:
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def size(self) -> int:
        """The number of AST nodes (a syntactic size measure)."""
        return sum(1 for _ in self.walk())

    def depth(self) -> int:
        """The height of the AST."""
        children = self.children()
        if not children:
            return 1
        return 1 + max(child.depth() for child in children)

    def count_joins(self) -> int:
        """Number of Join nodes in the expression."""
        return sum(1 for node in self.walk() if isinstance(node, Join))

    def count_projections(self) -> int:
        """Number of Projection nodes in the expression."""
        return sum(1 for node in self.walk() if isinstance(node, Projection))

    # -- fluent construction ---------------------------------------------

    def project(self, target: SchemeLike) -> "Projection":
        """Fluent ``π_Y(self)``."""
        return Projection(as_scheme(target), self)

    def join(self, *others: "Expression") -> "Join":
        """Fluent ``self * other * ...``."""
        return Join((self,) + tuple(others))

    def __mul__(self, other: "Expression") -> "Join":
        if not isinstance(other, Expression):
            return NotImplemented
        return Join((self, other))

    # -- display -----------------------------------------------------------

    def to_text(self) -> str:
        """A parseable textual rendering (see :mod:`repro.expressions.parser`)."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_text()


class Operand(Expression):
    """A named operand: an argument position over a fixed relation scheme."""

    __slots__ = ("_name", "_scheme")

    def __init__(self, name: str, scheme: SchemeLike):
        if not name:
            raise ExpressionError("operand name must be non-empty")
        self._name = name
        self._scheme = as_scheme(scheme)

    @property
    def name(self) -> str:
        """The operand (argument) name, e.g. ``"R"``."""
        return self._name

    @property
    def scheme(self) -> RelationScheme:
        """The relation scheme the argument relation must be over."""
        return self._scheme

    def target_scheme(self) -> RelationScheme:
        return self._scheme

    def operand_names(self) -> FrozenSet[str]:
        return frozenset({self._name})

    def operand_schemes(self) -> Dict[str, RelationScheme]:
        return {self._name: self._scheme}

    def children(self) -> Tuple[Expression, ...]:
        return ()

    def to_text(self) -> str:
        return self._name

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Operand):
            return self._name == other._name and self._scheme == other._scheme
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._name, self._scheme))

    def __repr__(self) -> str:
        return f"Operand({self._name!r}, {self._scheme})"


class Projection(Expression):
    """Projection node ``π_Y(child)``."""

    __slots__ = ("_target", "_child")

    def __init__(self, target: SchemeLike, child: Expression):
        target_scheme = as_scheme(target)
        if not isinstance(child, Expression):
            raise ExpressionError(f"projection child must be an Expression, got {child!r}")
        child_scheme = child.target_scheme()
        if not target_scheme.is_subscheme_of(child_scheme):
            missing = sorted(target_scheme.name_set - child_scheme.name_set)
            raise ExpressionError(
                f"projection onto {target_scheme} is not a subset of the child "
                f"scheme {child_scheme}; missing attributes {missing}"
            )
        self._target = child_scheme.restrict(target_scheme.names)
        self._child = child

    @property
    def target(self) -> RelationScheme:
        """The projection scheme ``Y``."""
        return self._target

    @property
    def child(self) -> Expression:
        """The sub-expression being projected."""
        return self._child

    def target_scheme(self) -> RelationScheme:
        return self._target

    def operand_names(self) -> FrozenSet[str]:
        return self._child.operand_names()

    def operand_schemes(self) -> Dict[str, RelationScheme]:
        return self._child.operand_schemes()

    def children(self) -> Tuple[Expression, ...]:
        return (self._child,)

    def to_text(self) -> str:
        return f"project[{', '.join(self._target.names)}]({self._child.to_text()})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Projection):
            return self._target == other._target and self._child == other._child
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("project", self._target, self._child))

    def __repr__(self) -> str:
        return f"Projection({self._target}, {self._child!r})"


class Join(Expression):
    """n-ary natural join node ``e1 * e2 * ... * ek`` with ``k >= 2``."""

    __slots__ = ("_parts",)

    def __init__(self, parts: Sequence[Expression]):
        flattened: List[Expression] = []
        for part in parts:
            if not isinstance(part, Expression):
                raise ExpressionError(f"join operand must be an Expression, got {part!r}")
            if isinstance(part, Join):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        if len(flattened) < 2:
            raise ExpressionError("a join needs at least two operands")
        self._parts: Tuple[Expression, ...] = tuple(flattened)
        # Validate operand scheme consistency eagerly so errors surface at
        # construction time rather than at evaluation time.
        self.operand_schemes()

    @property
    def parts(self) -> Tuple[Expression, ...]:
        """The joined sub-expressions (already flattened)."""
        return self._parts

    def target_scheme(self) -> RelationScheme:
        scheme = self._parts[0].target_scheme()
        for part in self._parts[1:]:
            scheme = scheme.union(part.target_scheme())
        return scheme

    def operand_names(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for part in self._parts:
            names |= part.operand_names()
        return names

    def operand_schemes(self) -> Dict[str, RelationScheme]:
        merged: Dict[str, RelationScheme] = {}
        for part in self._parts:
            for name, scheme in part.operand_schemes().items():
                if name in merged and merged[name] != scheme:
                    raise ExpressionError(
                        f"operand {name!r} used with two different schemes: "
                        f"{merged[name]} and {scheme}"
                    )
                merged[name] = scheme
        return merged

    def children(self) -> Tuple[Expression, ...]:
        return self._parts

    def to_text(self) -> str:
        rendered = []
        for part in self._parts:
            text = part.to_text()
            rendered.append(f"({text})" if isinstance(part, Join) else text)
        return " * ".join(rendered)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Join):
            return self._parts == other._parts
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("join", self._parts))

    def __repr__(self) -> str:
        return f"Join({list(self._parts)!r})"
