"""A small textual syntax for projection-join expressions.

Grammar (whitespace-insensitive)::

    expression  := join
    join        := term ( "*" term )*
    term        := projection | operand | "(" expression ")"
    projection  := "project" "[" attribute ("," attribute)* "]" "(" expression ")"
    operand     := identifier

Because an operand is just a name, the parser must be told which relation
scheme each operand is over; pass a mapping from operand name to scheme (or
scheme string).  The rendering produced by :meth:`Expression.to_text` parses
back to an equal expression, which the property tests rely on.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Tuple, Union

from ..algebra.schema import RelationScheme, SchemeLike, as_scheme
from .ast import Expression, ExpressionError, Join, Operand, Projection

__all__ = ["parse_expression", "ParseError"]


class ParseError(ExpressionError):
    """Raised when expression text cannot be parsed."""


_TOKEN_PATTERN = re.compile(
    r"\s*(?:(?P<project>project\b|π|pi\b)|(?P<name>[A-Za-z_][A-Za-z_0-9']*)"
    r"|(?P<punct>[\[\](),*]))"
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ParseError(f"unexpected input at {remainder[:20]!r}")
        if match.lastgroup == "project":
            tokens.append(("PROJECT", match.group()))
        elif match.lastgroup == "name":
            tokens.append(("NAME", match.group("name")))
        else:
            tokens.append(("PUNCT", match.group("punct")))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]], schemes: Mapping[str, RelationScheme]):
        self._tokens = tokens
        self._position = 0
        self._schemes = schemes

    def parse(self) -> Expression:
        expression = self._parse_join()
        if self._position != len(self._tokens):
            kind, value = self._tokens[self._position]
            raise ParseError(f"unexpected trailing token {value!r}")
        return expression

    # -- helpers --------------------------------------------------------

    def _peek(self) -> Tuple[str, str]:
        if self._position >= len(self._tokens):
            return ("EOF", "")
        return self._tokens[self._position]

    def _advance(self) -> Tuple[str, str]:
        token = self._peek()
        self._position += 1
        return token

    def _expect_punct(self, symbol: str) -> None:
        kind, value = self._advance()
        if kind != "PUNCT" or value != symbol:
            raise ParseError(f"expected {symbol!r}, got {value!r}")

    # -- grammar --------------------------------------------------------

    def _parse_join(self) -> Expression:
        parts = [self._parse_term()]
        while self._peek() == ("PUNCT", "*"):
            self._advance()
            parts.append(self._parse_term())
        if len(parts) == 1:
            return parts[0]
        return Join(parts)

    def _parse_term(self) -> Expression:
        kind, value = self._peek()
        if kind == "PROJECT":
            return self._parse_projection()
        if kind == "PUNCT" and value == "(":
            self._advance()
            inner = self._parse_join()
            self._expect_punct(")")
            return inner
        if kind == "NAME":
            self._advance()
            if value not in self._schemes:
                raise ParseError(
                    f"operand {value!r} has no declared scheme; "
                    f"known operands: {sorted(self._schemes)}"
                )
            return Operand(value, self._schemes[value])
        raise ParseError(f"unexpected token {value!r} where a term was expected")

    def _parse_projection(self) -> Expression:
        self._advance()  # consume 'project'
        self._expect_punct("[")
        attributes: List[str] = []
        while True:
            kind, value = self._advance()
            if kind != "NAME":
                raise ParseError(f"expected attribute name inside projection, got {value!r}")
            attributes.append(value)
            kind, value = self._advance()
            if kind == "PUNCT" and value == ",":
                continue
            if kind == "PUNCT" and value == "]":
                break
            raise ParseError(f"expected ',' or ']' in projection list, got {value!r}")
        self._expect_punct("(")
        child = self._parse_join()
        self._expect_punct(")")
        return Projection(RelationScheme(attributes), child)


def parse_expression(
    text: str, operand_schemes: Mapping[str, SchemeLike]
) -> Expression:
    """Parse expression text, resolving operand names against ``operand_schemes``."""
    schemes: Dict[str, RelationScheme] = {
        name: as_scheme(scheme) for name, scheme in operand_schemes.items()
    }
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("cannot parse an empty expression")
    return _Parser(tokens, schemes).parse()
