"""Convenience constructors for projection-join expressions.

These helpers keep the reduction modules readable: the paper writes
``π_F(T) * *_j π_{T_j}(T)`` and the corresponding Python should read almost
the same.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Union

from ..algebra.relation import Relation
from ..algebra.schema import RelationScheme, SchemeLike, as_scheme
from .ast import Expression, Join, Operand, Projection

__all__ = ["operand", "project", "join", "project_join_query", "operand_for"]


def operand(name: str, scheme: SchemeLike) -> Operand:
    """Create an operand node over the given scheme."""
    return Operand(name, scheme)


def operand_for(relation: Relation, name: str = "R") -> Operand:
    """Create an operand whose scheme is taken from an existing relation."""
    return Operand(name, relation.scheme)


def project(target: SchemeLike, child: Expression) -> Projection:
    """Create ``π_target(child)``."""
    return Projection(as_scheme(target), child)


def join(*parts: Expression) -> Expression:
    """Create the natural join of the given expressions (flattened, n-ary).

    With a single argument the argument itself is returned, which lets
    callers join a dynamically built list without special-casing length one.
    """
    flattened: List[Expression] = list(parts)
    if not flattened:
        raise ValueError("join requires at least one expression")
    if len(flattened) == 1:
        return flattened[0]
    return Join(flattened)


def project_join_query(
    operand_name: str,
    operand_scheme: SchemeLike,
    projection_schemes: Sequence[SchemeLike],
) -> Expression:
    """Build the paper's recurring query shape ``*_i π_{Y_i}(R)``.

    A single projection scheme yields just ``π_{Y_1}(R)`` (no join node).
    """
    base = Operand(operand_name, operand_scheme)
    projections: List[Expression] = [
        Projection(as_scheme(scheme), base) for scheme in projection_schemes
    ]
    if not projections:
        raise ValueError("project_join_query requires at least one projection scheme")
    return join(*projections)
