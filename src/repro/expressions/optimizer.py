"""Heuristic optimisation of projection-join expressions.

The paper's central observation is that *naive* evaluation of projection-join
expressions can materialise intermediates exponentially larger than both the
input and the output, and that this blow-up is inherent in the worst case
(because the decision problems are DP-/Π₂ᵖ-complete).  In practice, however,
two standard rewrites mitigate the blow-up on benign instances, and the
ablation benchmark compares them against the naive evaluator:

* **Projection push-down** — only the attributes needed above a join need to
  be carried through it, so a projection can be pushed onto each join operand
  (keeping the join attributes).
* **Greedy join ordering** — joining the pair with the smallest estimated
  result first.

These rewrites never change the result (classical algebraic identities of the
relational algebra); the tests verify this equivalence on random instances.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..algebra.operations import estimate_join_size, greedy_join
from ..algebra.relation import Relation
from ..perf.counters import kernel_counters
from ..algebra.schema import RelationScheme
from .ast import Expression, ExpressionError, Join, Operand, Projection
from .evaluator import ArgumentLike, EvaluationTrace, TraceStep, bind_arguments

__all__ = ["push_down_projections", "OptimizedEvaluator"]

SizeEstimator = Callable[[Relation, Relation], float]


def push_down_projections(expression: Expression) -> Expression:
    """Rewrite the expression so projections are applied as early as possible.

    The rewrite preserves the target scheme and the value of the expression on
    every database.  The top-level scheme is used as the initial set of
    "needed" attributes.
    """
    return _push(expression, expression.target_scheme())


def _push(node: Expression, needed: RelationScheme) -> Expression:
    node_scheme = node.target_scheme()
    needed = node_scheme.intersection(needed)

    if isinstance(node, Operand):
        if needed == node_scheme:
            return node
        return Projection(needed, node)

    if isinstance(node, Projection):
        # Collapse nested projections: only the outermost needed set matters.
        inner_needed = node.target.intersection(needed)
        return _push(node.child, inner_needed)

    if isinstance(node, Join):
        # An attribute must be kept below the join if it is needed above, or
        # if it is a join attribute (appears in more than one operand).
        appearance_count: Dict[str, int] = {}
        for part in node.parts:
            for name in part.target_scheme().names:
                appearance_count[name] = appearance_count.get(name, 0) + 1
        join_attributes = {name for name, count in appearance_count.items() if count > 1}
        keep = set(needed.names) | join_attributes

        new_parts: List[Expression] = []
        for part in node.parts:
            part_scheme = part.target_scheme()
            part_keep = RelationScheme(
                [a for a in part_scheme.attributes if a.name in keep]
            )
            new_parts.append(_push(part, part_keep))
        joined: Expression = Join(new_parts)
        if joined.target_scheme() == needed:
            return joined
        return Projection(needed, joined)

    raise ExpressionError(f"unknown expression node {node!r}")


class OptimizedEvaluator:
    """Evaluate with projection push-down and greedy join ordering.

    The evaluator first rewrites the expression with
    :func:`push_down_projections`, then evaluates it, ordering each n-ary join
    greedily by estimated intermediate cardinality.  An
    :class:`~repro.expressions.evaluator.EvaluationTrace` is returned so the
    blow-up benchmark can compare peak intermediate sizes against the naive
    evaluator.

    The join ordering is driven by a pluggable *size estimator*: a callable
    ``(left, right) -> float`` scoring candidate pairwise joins.  The default
    is :func:`repro.algebra.operations.estimate_join_size`; benchmarks pass
    alternative estimators (e.g. a constant) to contrast orderings while
    keeping every other part of the pipeline identical.
    """

    def __init__(self, estimator: Optional[SizeEstimator] = None):
        """Create an evaluator, optionally overriding the join size estimator."""
        # Default through the method (not the module function) so subclasses
        # overriding _estimate_join_size keep driving the join ordering.
        self._estimator: SizeEstimator = estimator or self._estimate_join_size

    def evaluate(
        self,
        expression: Expression,
        arguments: ArgumentLike,
        rewritten: Optional[Expression] = None,
    ) -> Tuple[Relation, EvaluationTrace]:
        """Evaluate and return ``(result, trace)``.

        ``rewritten`` lets a caller that evaluates one expression many times
        (the :class:`repro.api.Session` facade's prepared queries) pass the
        :func:`push_down_projections` rewrite computed once at preparation;
        without it the rewrite runs per call.
        """
        if rewritten is None:
            rewritten = push_down_projections(expression)
        bound = bind_arguments(expression, arguments)
        trace = EvaluationTrace()
        trace.input_cardinality = sum(len(rel) for rel in bound.values())
        counters = kernel_counters()
        before = counters.snapshot()
        result = self._evaluate(rewritten, bound, trace)
        trace.kernel_activity = counters.delta_since(before)
        trace.result_cardinality = len(result)
        return result, trace

    def _evaluate(
        self, node: Expression, bound: Mapping[str, Relation], trace: EvaluationTrace
    ) -> Relation:
        if isinstance(node, Operand):
            relation = bound[node.name]
            trace.record(TraceStep.from_relation(f"operand {node.name}", "operand", relation))
            return relation
        if isinstance(node, Projection):
            child = self._evaluate(node.child, bound, trace)
            projected = child.project(node.target)
            trace.record(
                TraceStep.from_relation(
                    f"project[{', '.join(node.target.names)}]", "projection", projected
                )
            )
            return projected
        if isinstance(node, Join):
            parts = [self._evaluate(part, bound, trace) for part in node.parts]
            return self._join_greedily(parts, trace)
        raise ExpressionError(f"unknown expression node {node!r}")

    def _join_greedily(self, parts: List[Relation], trace: EvaluationTrace) -> Relation:
        """Join relations pairwise, picking the cheapest estimated pair each time."""

        def record(joined: Relation, remaining: int) -> None:
            trace.record(
                TraceStep.from_relation(
                    f"greedy join ({remaining} operands remaining)", "join", joined
                )
            )

        return greedy_join(parts, self._estimator, observe=record)

    @staticmethod
    def _estimate_join_size(left: Relation, right: Relation) -> float:
        """Backwards-compatible alias for :func:`repro.algebra.operations.estimate_join_size`."""
        return estimate_join_size(left, right)
