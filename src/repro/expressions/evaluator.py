"""Evaluation of projection-join expressions over databases.

The *naive* evaluator materialises every intermediate relation exactly as the
expression is written — which is precisely the regime the paper analyses:
intermediate results can be exponentially larger than both the input and the
output.  The *instrumented* evaluator additionally records the size of every
intermediate relation, so the blow-up experiment (E9 in DESIGN.md) can report
the peak.

Both evaluators accept either a :class:`~repro.algebra.database.Database` or a
plain mapping from operand name to relation; the common single-relation case
can also pass a bare relation, which is bound to every operand name whose
scheme it matches.

Every pairwise join inside an expression goes through the positional kernel's
plan cache (:mod:`repro.perf`), so the scheme-level work of an expression's
repeated sub-joins — key positions, output permutations, output schemes — is
compiled once and reused across all of its intermediates; the instrumented
evaluator reports the cache traffic in ``trace.kernel_activity``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..algebra.database import Database
from ..algebra.operations import join_all
from ..algebra.relation import Relation
from ..perf.counters import kernel_counters
from .ast import Expression, ExpressionError, Join, Operand, Projection

__all__ = ["evaluate", "bind_arguments", "EvaluationTrace", "InstrumentedEvaluator", "TraceStep"]

ArgumentLike = Union[Relation, Mapping[str, Relation], Database]


def bind_arguments(expression: Expression, arguments: ArgumentLike) -> Dict[str, Relation]:
    """Resolve the operand relations an expression needs from ``arguments``.

    * A mapping / :class:`Database` must provide every operand name, with a
      matching scheme.
    * A bare :class:`Relation` is bound to every operand whose declared scheme
      equals the relation's scheme (the paper's single-relation databases).
    """
    schemes = expression.operand_schemes()
    bound: Dict[str, Relation] = {}
    if isinstance(arguments, Relation):
        for name, scheme in schemes.items():
            if arguments.scheme != scheme:
                raise ExpressionError(
                    f"single relation over {arguments.scheme} cannot serve operand "
                    f"{name!r} which requires scheme {scheme}"
                )
            bound[name] = arguments
        return bound

    mapping: Mapping[str, Relation]
    if isinstance(arguments, Database):
        mapping = arguments
    else:
        mapping = arguments
    for name, scheme in schemes.items():
        if name not in mapping:
            raise ExpressionError(f"no relation bound for operand {name!r}")
        relation = mapping[name]
        if relation.scheme != scheme:
            raise ExpressionError(
                f"operand {name!r} requires scheme {scheme}, "
                f"got a relation over {relation.scheme}"
            )
        bound[name] = relation
    return bound


def evaluate(expression: Expression, arguments: ArgumentLike) -> Relation:
    """Evaluate ``expression`` on ``arguments``, materialising intermediates naively."""
    bound = bind_arguments(expression, arguments)
    return _evaluate_node(expression, bound)


def _evaluate_node(node: Expression, bound: Mapping[str, Relation]) -> Relation:
    if isinstance(node, Operand):
        return bound[node.name]
    if isinstance(node, Projection):
        return _evaluate_node(node.child, bound).project(node.target)
    if isinstance(node, Join):
        parts = [_evaluate_node(part, bound) for part in node.parts]
        return join_all(parts)
    raise ExpressionError(f"unknown expression node {node!r}")


@dataclass
class TraceStep:
    """One materialised intermediate relation during evaluation."""

    description: str
    node_kind: str
    cardinality: int
    scheme_width: int
    cell_count: int

    @classmethod
    def from_relation(cls, description: str, node_kind: str, relation: Relation) -> "TraceStep":
        width = len(relation.scheme)
        return cls(
            description=description,
            node_kind=node_kind,
            cardinality=len(relation),
            scheme_width=width,
            cell_count=len(relation) * width,
        )


@dataclass
class EvaluationTrace:
    """A record of every intermediate relation materialised by an evaluation."""

    steps: List[TraceStep] = field(default_factory=list)
    result_cardinality: int = 0
    input_cardinality: int = 0
    #: Kernel counter deltas accumulated during the evaluation (plan cache
    #: hits/misses, trusted tuples built, join probes) — populated by the
    #: instrumented evaluators, empty when not measured.
    kernel_activity: Dict[str, int] = field(default_factory=dict)
    #: Peak number of rows simultaneously resident in engine state (hash
    #: tables, dedup sets, sort buffers, the result accumulator) — populated
    #: by the streaming :class:`~repro.engine.evaluator.EngineEvaluator`; the
    #: materialising evaluators leave it 0.  This is the streaming analogue
    #: of :attr:`peak_intermediate_cardinality` and deliberately a *stricter*
    #: accounting: it sums everything live at once rather than taking the
    #: largest single relation.
    peak_live_rows: int = 0
    #: Largest number of rows resident in any single hash-join build table
    #: during the evaluation — what a memory budget's Grace-hash spilling
    #: bounds (see ``docs/ENGINE.md``).  Populated by the engine evaluator;
    #: 0 elsewhere.
    peak_build_rows: int = 0
    #: Mid-stream re-plans this evaluation performed (adaptive engine mode
    #: only: a guarded operator's observed cardinality crossed its
    #: threshold, a checkpoint was materialised, and execution resumed on a
    #: re-costed join order).  0 everywhere else.
    replans: int = 0
    #: How many times a requested parallel execution degraded to the serial
    #: path after recovery (pool rebuild) failed.  The engine evaluator
    #: never degrades silently: every fallback increments this, appends a
    #: reason to :attr:`degradations`, and emits a ``RuntimeWarning``.
    serial_fallbacks: int = 0
    #: Human-readable reasons for every degradation this evaluation
    #: absorbed (e.g. ``"serial-fallback: ParallelExecutionError: ..."``).
    degradations: List[str] = field(default_factory=list)
    #: Execution spans recorded by a :class:`repro.obs.Tracer` when tracing
    #: was enabled for the evaluation; empty on untraced runs (the engine
    #: evaluator populates it, the materialising evaluators leave it empty).
    spans: List = field(default_factory=list)

    def record(self, step: TraceStep) -> None:
        """Append one step to the trace."""
        self.steps.append(step)

    @property
    def counters(self) -> Dict[str, int]:
        """The kernel-counter deltas, under the unified-trace protocol's name.

        :class:`repro.api.UnifiedTrace` and every backend trace expose the
        :mod:`repro.perf.counters` activity as ``counters``;
        ``kernel_activity`` remains as the original field name.
        """
        return self.kernel_activity

    @property
    def peak_intermediate_cardinality(self) -> int:
        """The largest number of tuples in any intermediate relation."""
        if not self.steps:
            return 0
        return max(step.cardinality for step in self.steps)

    @property
    def peak_intermediate_cells(self) -> int:
        """The largest tuple-count x width product of any intermediate relation."""
        if not self.steps:
            return 0
        return max(step.cell_count for step in self.steps)

    @property
    def total_intermediate_tuples(self) -> int:
        """Total tuples materialised across all steps (a proxy for total work)."""
        return sum(step.cardinality for step in self.steps)

    def blowup_versus_input(self) -> float:
        """Peak intermediate size relative to the input size."""
        if self.input_cardinality == 0:
            return float("inf") if self.peak_intermediate_cardinality else 0.0
        return self.peak_intermediate_cardinality / self.input_cardinality

    def blowup_versus_output(self) -> float:
        """Peak intermediate size relative to the final result size."""
        if self.result_cardinality == 0:
            return float("inf") if self.peak_intermediate_cardinality else 0.0
        return self.peak_intermediate_cardinality / self.result_cardinality

    def summary(self) -> Dict[str, float]:
        """A flat dictionary of the headline statistics (used by benchmarks)."""
        return {
            "steps": float(len(self.steps)),
            "input_cardinality": float(self.input_cardinality),
            "result_cardinality": float(self.result_cardinality),
            "peak_intermediate_cardinality": float(self.peak_intermediate_cardinality),
            "peak_intermediate_cells": float(self.peak_intermediate_cells),
            "total_intermediate_tuples": float(self.total_intermediate_tuples),
            "blowup_vs_input": self.blowup_versus_input(),
            "blowup_vs_output": self.blowup_versus_output(),
            "peak_live_rows": float(self.peak_live_rows),
            "peak_build_rows": float(self.peak_build_rows),
        }


class InstrumentedEvaluator:
    """Naive evaluator that records every intermediate relation's size."""

    def evaluate(self, expression: Expression, arguments: ArgumentLike) -> Tuple[Relation, EvaluationTrace]:
        """Evaluate and return ``(result, trace)``."""
        bound = bind_arguments(expression, arguments)
        trace = EvaluationTrace()
        trace.input_cardinality = sum(len(rel) for rel in bound.values())
        counters = kernel_counters()
        before = counters.snapshot()
        result = self._evaluate(expression, bound, trace)
        trace.kernel_activity = counters.delta_since(before)
        trace.result_cardinality = len(result)
        return result, trace

    def _evaluate(
        self, node: Expression, bound: Mapping[str, Relation], trace: EvaluationTrace
    ) -> Relation:
        if isinstance(node, Operand):
            relation = bound[node.name]
            trace.record(TraceStep.from_relation(f"operand {node.name}", "operand", relation))
            return relation
        if isinstance(node, Projection):
            child = self._evaluate(node.child, bound, trace)
            projected = child.project(node.target)
            trace.record(
                TraceStep.from_relation(
                    f"project[{', '.join(node.target.names)}]", "projection", projected
                )
            )
            return projected
        if isinstance(node, Join):
            parts = [self._evaluate(part, bound, trace) for part in node.parts]
            accumulated = parts[0]
            for index, part in enumerate(parts[1:], start=2):
                accumulated = accumulated.natural_join(part)
                trace.record(
                    TraceStep.from_relation(
                        f"join of first {index} operands", "join", accumulated
                    )
                )
            return accumulated
        raise ExpressionError(f"unknown expression node {node!r}")
