"""Projection-join relational expressions: AST, parsing, evaluation, optimisation."""

from .ast import Expression, ExpressionError, Join, Operand, Projection
from .builder import join, operand, operand_for, project, project_join_query
from .evaluator import (
    EvaluationTrace,
    InstrumentedEvaluator,
    TraceStep,
    bind_arguments,
    evaluate,
)
from .optimizer import OptimizedEvaluator, push_down_projections
from .parser import ParseError, parse_expression

__all__ = [
    "Expression",
    "ExpressionError",
    "Operand",
    "Projection",
    "Join",
    "operand",
    "operand_for",
    "project",
    "join",
    "project_join_query",
    "evaluate",
    "bind_arguments",
    "EvaluationTrace",
    "TraceStep",
    "InstrumentedEvaluator",
    "OptimizedEvaluator",
    "push_down_projections",
    "parse_expression",
    "ParseError",
]
