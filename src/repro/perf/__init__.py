"""Performance infrastructure for the relational algebra kernel.

The algebra's hot path (:meth:`repro.algebra.relation.Relation.natural_join`
and ``.project``) compiles scheme-level *plans* — integer pick lists plus a
pre-built output scheme — and caches them here, keyed by scheme fingerprints.
The per-tuple inner loop then reduces to tuple indexing.  This package holds
the plan caches, the kernel activity counters, and nothing algebra-specific,
so it can be imported from anywhere without cycles.

See ``docs/PERFORMANCE.md`` for the architecture and invariants.
"""

from .counters import KernelCounters, kernel_counters, reset_kernel_counters
from .plancache import (
    JoinPlan,
    LRUPlanCache,
    ProjectPlan,
    clear_plan_caches,
    join_plan_cache,
    plan_cache_stats,
    project_plan_cache,
)

__all__ = [
    "KernelCounters",
    "kernel_counters",
    "reset_kernel_counters",
    "JoinPlan",
    "ProjectPlan",
    "LRUPlanCache",
    "join_plan_cache",
    "project_plan_cache",
    "clear_plan_caches",
    "plan_cache_stats",
]
