"""Compiled-plan caches for the positional algebra kernel.

A *plan* is the scheme-level part of a relational operation, computed once per
scheme pair and reused for every tuple: which positions form the join key,
which positions are copied into the output, and what the output scheme is.
Plans contain only integer pick lists plus a reference to the pre-built output
scheme, so applying one is pure tuple indexing — no per-tuple dict churn, no
attribute-name lookups.

This module is deliberately independent of :mod:`repro.algebra` (the plans
hold schemes as opaque references) so the relation kernel can import it
without creating an import cycle.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

__all__ = [
    "JoinPlan",
    "ProjectPlan",
    "LRUPlanCache",
    "make_row_picker",
    "make_key_picker",
    "join_plan_cache",
    "project_plan_cache",
    "clear_plan_caches",
    "plan_cache_stats",
]

RowPicker = Callable[[Tuple[Any, ...]], Tuple[Any, ...]]
KeyPicker = Callable[[Tuple[Any, ...]], Hashable]


def _empty_picker(row: Tuple[Any, ...]) -> Tuple[Any, ...]:
    return ()


def make_row_picker(positions: Tuple[int, ...]) -> RowPicker:
    """Compile positions into a callable returning the picked values *as a tuple*.

    Uses :func:`operator.itemgetter` (a C-level fast path) for two or more
    positions; single positions are wrapped so the result stays a 1-tuple.
    """
    if not positions:
        return _empty_picker
    if len(positions) == 1:
        single = itemgetter(positions[0])
        return lambda row: (single(row),)
    return itemgetter(*positions)


def make_key_picker(positions: Tuple[int, ...]) -> KeyPicker:
    """Compile positions into a callable returning a hashable join key.

    Single positions return the bare value (cheaper to hash than a 1-tuple);
    multiple positions return a value tuple.  Keys from the two sides of a
    join agree because both sides use pickers built by this function.
    """
    if not positions:
        return _empty_picker
    return itemgetter(*positions)


@dataclass(frozen=True)
class JoinPlan:
    """A compiled natural join for one ordered pair of relation schemes.

    Applying the plan to a left value tuple ``l`` and right value tuple ``r``
    that agree on the key produces the output values
    ``l + tuple(r[i] for i in right_extra)`` over ``joined_scheme`` — the
    union scheme in left-then-new-right attribute order, exactly as
    ``RelationScheme.union`` builds it.
    """

    joined_scheme: Any
    common_names: Tuple[str, ...]
    left_key: Tuple[int, ...]
    right_key: Tuple[int, ...]
    right_extra: Tuple[int, ...]
    # Compiled C-level pickers for the positions above, built in __post_init__.
    left_key_of: KeyPicker = field(init=False, compare=False, repr=False)
    right_key_of: KeyPicker = field(init=False, compare=False, repr=False)
    right_extra_of: RowPicker = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "left_key_of", make_key_picker(self.left_key))
        object.__setattr__(self, "right_key_of", make_key_picker(self.right_key))
        object.__setattr__(self, "right_extra_of", make_row_picker(self.right_extra))

    @property
    def is_product(self) -> bool:
        """Whether the schemes are disjoint (the join degenerates to a product)."""
        return not self.common_names


@dataclass(frozen=True)
class ProjectPlan:
    """A compiled projection: positions to pick and the pre-built target scheme."""

    target_scheme: Any
    picks: Tuple[int, ...]
    pick: RowPicker = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "pick", make_row_picker(self.picks))


class LRUPlanCache:
    """A small least-recently-used cache mapping plan keys to compiled plans.

    Keys are hashable scheme fingerprints (attribute names plus their
    domains — names alone would hand one scheme's domain metadata to a
    same-named scheme without it); values are plan objects.  The cache is
    bounded so pathological workloads with unboundedly many distinct schemes
    cannot leak memory.
    """

    __slots__ = ("_maxsize", "_data")

    def __init__(self, maxsize: int = 1024):
        if maxsize <= 0:
            raise ValueError("plan cache maxsize must be positive")
        self._maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached plan for ``key``, refreshing its recency, or ``None``."""
        data = self._data
        plan = data.get(key)
        if plan is not None:
            data.move_to_end(key)
        return plan

    def put(self, key: Hashable, plan: Any) -> None:
        """Insert a plan, evicting the least recently used entry when full."""
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = plan
        if len(data) > self._maxsize:
            data.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached plan."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    @property
    def maxsize(self) -> int:
        """The configured capacity bound."""
        return self._maxsize


_JOIN_PLANS = LRUPlanCache(maxsize=1024)
_PROJECT_PLANS = LRUPlanCache(maxsize=2048)


def join_plan_cache() -> LRUPlanCache:
    """Return the process-global join plan cache."""
    return _JOIN_PLANS


def project_plan_cache() -> LRUPlanCache:
    """Return the process-global projection plan cache."""
    return _PROJECT_PLANS


def clear_plan_caches() -> None:
    """Empty both global plan caches (used by tests and benchmarks)."""
    _JOIN_PLANS.clear()
    _PROJECT_PLANS.clear()


def plan_cache_stats() -> Dict[str, int]:
    """Return current sizes and capacities of the global plan caches."""
    return {
        "join_plans": len(_JOIN_PLANS),
        "join_plans_maxsize": _JOIN_PLANS.maxsize,
        "project_plans": len(_PROJECT_PLANS),
        "project_plans_maxsize": _PROJECT_PLANS.maxsize,
    }
