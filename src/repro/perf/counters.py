"""Lightweight counters instrumenting the positional algebra kernel.

The kernel (see :mod:`repro.algebra.relation` and ``docs/PERFORMANCE.md``)
compiles per-scheme-pair join plans and per-projection pick lists, then runs a
pure tuple-indexing inner loop.  These counters record how often plans are
compiled versus reused and how many tuples the trusted constructor produces,
so benchmarks and the instrumented evaluator can report kernel activity
alongside cardinalities.

Counters are process-global and intentionally not thread-safe: they are a
measurement aid, not a correctness mechanism, and the hot path must not pay
for locking.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict

__all__ = ["KernelCounters", "kernel_counters", "reset_kernel_counters"]


@dataclass
class KernelCounters:
    """Running totals of kernel activity since the last reset."""

    join_plan_hits: int = 0
    join_plan_misses: int = 0
    project_plan_hits: int = 0
    project_plan_misses: int = 0
    trusted_tuples_built: int = 0
    join_probes: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Return the counters as a plain dict (for traces and JSON output)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def delta_since(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Return the per-counter increase since an earlier :meth:`snapshot`."""
        current = self.snapshot()
        return {name: current[name] - earlier.get(name, 0) for name in current}

    def reset(self) -> None:
        """Zero every counter."""
        for f in fields(self):
            setattr(self, f.name, 0)


_COUNTERS = KernelCounters()


def kernel_counters() -> KernelCounters:
    """Return the process-global kernel counters."""
    return _COUNTERS


def reset_kernel_counters() -> None:
    """Zero the process-global kernel counters."""
    _COUNTERS.reset()
