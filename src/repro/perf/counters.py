"""Lightweight counters instrumenting the positional algebra kernel.

The kernel (see :mod:`repro.algebra.relation` and ``docs/PERFORMANCE.md``)
compiles per-scheme-pair join plans and per-projection pick lists, then runs a
pure tuple-indexing inner loop.  These counters record how often plans are
compiled versus reused and how many tuples the trusted constructor produces,
so benchmarks and the instrumented evaluator can report kernel activity
alongside cardinalities.

Since the memory-budget PR the counters also cover the streaming engine's
spill machinery: how many hash joins switched to Grace (partitioned) mode,
how many partition files were created, how many rows were spilled, and how
often oversized partitions were re-partitioned or processed beyond the
budget.

Threading: the *materialising kernel*'s increments are deliberately plain
``+=`` — they sit on the hot path and must not pay for locking, so under
concurrent kernel use they are a measurement aid only.  The *engine* updates
its counters through :meth:`KernelCounters.add`, which takes a module lock:
engine increments happen at block/spill granularity (rare relative to row
work), and the parallel probe stage runs one plan from several threads, so
losslessness there is part of the tested contract.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, fields
from typing import Dict

__all__ = ["KernelCounters", "kernel_counters", "reset_kernel_counters"]

#: Guards :meth:`KernelCounters.add` (the engine's thread-safe update path).
_MUTATION_LOCK = threading.Lock()


def _reinitialize_lock_after_fork() -> None:
    """Replace the mutation lock in a freshly forked child.

    The engine's fork-backend workers are forked from a process that may
    have other threads running; if one of them holds the lock at fork time
    the child inherits it locked with no owner, and the worker's first
    counter update would deadlock.  A brand-new lock in the child is always
    correct — the child starts with exactly one thread.
    """
    global _MUTATION_LOCK
    _MUTATION_LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):  # pragma: no branch - CPython >= 3.7
    os.register_at_fork(after_in_child=_reinitialize_lock_after_fork)


@dataclass
class KernelCounters:
    """Running totals of kernel activity since the last reset."""

    join_plan_hits: int = 0
    join_plan_misses: int = 0
    project_plan_hits: int = 0
    project_plan_misses: int = 0
    trusted_tuples_built: int = 0
    join_probes: int = 0
    #: Hash joins that exceeded the memory budget and switched to Grace
    #: (partitioned, spill-to-disk) mode.
    join_spills: int = 0
    #: Spill partition files created (build and probe files both count).
    spill_partitions: int = 0
    #: Rows written to spill files (build entries plus probe rows).
    spill_rows: int = 0
    #: Oversized partitions that were re-partitioned with a fresh hash salt.
    spill_recursions: int = 0
    #: Spilled state whose distinct rows exceeded the budget even after
    #: re-salted splitting stopped making progress — the one overrun
    #: spilling cannot bound, surfaced instead of masked.  Zero on every
    #: differential-fuzz grid point (the bench robustness gate pins it).
    spill_overflows: int = 0
    #: Probe-partition passes made by the block-nested-loop fallback for
    #: unsplittable join partitions (one heavy key, keyless products): the
    #: build side is loaded in meter-sized chunks and the probe partition
    #: re-scanned once per chunk, trading disk reads for bounded memory.
    join_chunk_passes: int = 0
    #: Sort operators that switched to external (spill-run) mode because
    #: their buffer would overflow the budget.
    sort_spills: int = 0
    #: Dedup seen-sets (projections, union/difference, checkpoint
    #: materialisation) that switched to partitioned spill mode.
    dedup_spills: int = 0
    #: Adaptive checkpoints kept on disk instead of in metered memory
    #: because they would overflow the budget (or the checkpoint row cap).
    checkpoint_spills: int = 0
    #: Spill-file I/O operations retried after a (possibly injected)
    #: transient failure — each retry backs off before reattempting.
    spill_retries: int = 0
    #: Faults injected by an active :class:`repro.engine.faults.FaultPlan`
    #: (spill I/O failures, worker kills, forced checkpoint pressure).
    fault_injected: int = 0
    #: Fork-probe pools rebuilt successfully after a worker death — the
    #: recovery path that avoids degrading to serial execution.
    pool_recoveries: int = 0
    #: Parallel executions that degraded to serial after the pool (and, on
    #: the fork backend, one rebuild attempt) failed.  Always paired with a
    #: ``warnings.warn`` and a trace degradation event — never silent.
    serial_fallbacks: int = 0
    #: Reservoir samples built for the sampling-based estimator (one per
    #: ``repro.engine.sampling.sampled_stats`` call) — re-sampling after a
    #: relation invalidation shows up here.
    sample_builds: int = 0
    #: Plan builds that reused a warm reservoir sample from the plan store's
    #: identity-keyed cache instead of re-sampling an unchanged relation.
    sample_cache_hits: int = 0
    #: Plan-store sample lookups that missed (first build, or the relation
    #: was rebound/invalidated) and had to sample.
    sample_cache_misses: int = 0
    #: Pinned plans rewritten with the revised join order after a successful
    #: mid-stream re-plan — the plan store's "learning sticks" path.
    plan_repins: int = 0
    #: Pinned plans proactively re-planned *before* execution because the
    #: observed-cardinality ledger drifted past the configured q-error
    #: threshold against the plan's estimates.
    drift_replans: int = 0
    #: Mid-stream re-plans the adaptive evaluator completed (checkpoint
    #: materialised, remaining join order re-costed, execution resumed).
    adaptive_replans: int = 0
    #: Re-plans abandoned because the checkpoint would exceed its row cap
    #: (the original plan then runs to completion — correct either way).
    adaptive_giveups: int = 0
    #: Serving-tier result-cache lookups answered from the front's LRU
    #: without leasing a budget or dispatching to a worker.
    result_cache_hits: int = 0
    #: Result-cache lookups that missed (cold key, or the entry was
    #: invalidated/evicted) and paid the full lease+dispatch path.
    result_cache_misses: int = 0
    #: Per-relation-name invalidation sweeps the serving tier's result
    #: cache performed (one per ``set_relation``-style mutation).
    result_cache_invalidations: int = 0
    #: Cardinality-estimate q-error observations (see :meth:`record_q_error`).
    qerror_observations: int = 0
    #: Sum of observed q-errors × 1000 (divide by ``qerror_observations``
    #: for the mean); deltas of this counter are additive like any other.
    qerror_total_milli: int = 0
    #: Largest single observed q-error × 1000 since the last reset.  This is
    #: a high-water mark, so ``delta_since`` on it reports growth of the
    #: maximum, not a per-window maximum.
    qerror_max_milli: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Return the counters as a plain dict (for traces and JSON output)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def delta_since(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Return the per-counter increase since an earlier :meth:`snapshot`.

        Tolerates snapshots from other counter generations: names present in
        ``earlier`` but unknown to this dataclass (e.g. a counter that was
        since renamed or removed, or a snapshot persisted by a newer build)
        are **dropped**, and names missing from ``earlier`` are treated as 0.
        The result's keys are therefore always exactly this dataclass's
        fields — callers can rely on the shape regardless of where the
        snapshot came from.
        """
        current = self.snapshot()
        return {name: current[name] - earlier.get(name, 0) for name in current}

    def add(self, **amounts: int) -> None:
        """Atomically add ``amounts`` to the named counters (engine path).

        Unlike the kernel's raw ``+=``, this holds a lock so concurrent
        engine workers (the parallel probe stage, multi-threaded evaluators)
        never lose updates.  Call it at block/spill granularity, not per row.
        """
        with _MUTATION_LOCK:
            for name, amount in amounts.items():
                setattr(self, name, getattr(self, name) + amount)

    def record_q_error(self, q: float) -> None:
        """Record one cardinality-estimate q-error (``max(est/act, act/est)``).

        Stored in integer milli-units so the counters stay plain ints:
        ``qerror_observations`` counts, ``qerror_total_milli`` sums (mean =
        total / observations / 1000), ``qerror_max_milli`` tracks the worst
        estimate seen.  Lock-guarded like :meth:`add` — the adaptive
        evaluator records at evaluation granularity, never per row.
        """
        milli = int(round(max(q, 1.0) * 1000))
        with _MUTATION_LOCK:
            self.qerror_observations += 1
            self.qerror_total_milli += milli
            if milli > self.qerror_max_milli:
                self.qerror_max_milli = milli

    def reset(self) -> None:
        """Zero every counter."""
        with _MUTATION_LOCK:
            for f in fields(self):
                setattr(self, f.name, 0)


_COUNTERS = KernelCounters()


def kernel_counters() -> KernelCounters:
    """Return the process-global kernel counters."""
    return _COUNTERS


def reset_kernel_counters() -> None:
    """Zero the process-global kernel counters."""
    _COUNTERS.reset()
