"""A small framework for *checking* reductions empirically.

A many-one reduction is correct when the source instance is a yes instance
exactly when the produced target instance is.  The paper proves this once and
for all; this repository additionally *executes* both sides on concrete
instances and compares.  :class:`ReductionCheck` packages one such executable
check, and :func:`verify_reduction` runs it over a batch of instances and
reports the agreement — which is what the reduction benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, Iterable, List, Sequence, Tuple, TypeVar

__all__ = ["ReductionCheck", "ReductionReport", "verify_reduction"]

SourceInstance = TypeVar("SourceInstance")


@dataclass(frozen=True)
class ReductionCheck(Generic[SourceInstance]):
    """An executable correctness check for one reduction.

    Attributes
    ----------
    name:
        Human-readable name, e.g. ``"Theorem 1: 3SAT-3UNSAT -> equality"``.
    source_answer:
        Decides the source instance with an independent procedure (e.g. the
        DPLL solver / the QBF expander).
    target_answer:
        Builds the target instance from the source instance and decides it
        with the relational machinery.
    """

    name: str
    source_answer: Callable[[SourceInstance], bool]
    target_answer: Callable[[SourceInstance], bool]

    def agrees_on(self, instance: SourceInstance) -> bool:
        """Whether both sides give the same answer for one instance."""
        return bool(self.source_answer(instance)) == bool(self.target_answer(instance))


@dataclass
class ReductionReport:
    """The outcome of checking a reduction on a batch of instances."""

    name: str
    total: int = 0
    agreements: int = 0
    yes_instances: int = 0
    disagreements: List[int] = field(default_factory=list)

    @property
    def all_agree(self) -> bool:
        """Whether every checked instance agreed."""
        return self.agreements == self.total

    @property
    def agreement_rate(self) -> float:
        """Fraction of instances on which both sides agreed."""
        if self.total == 0:
            return 1.0
        return self.agreements / self.total

    def summary(self) -> str:
        """A one-line summary suitable for benchmark output."""
        return (
            f"{self.name}: {self.agreements}/{self.total} agree "
            f"({self.yes_instances} yes instances)"
        )


def verify_reduction(
    check: ReductionCheck, instances: Sequence
) -> ReductionReport:
    """Run a reduction check over a batch of instances and report agreement."""
    report = ReductionReport(name=check.name)
    for index, instance in enumerate(instances):
        report.total += 1
        source = bool(check.source_answer(instance))
        target = bool(check.target_answer(instance))
        if source:
            report.yes_instances += 1
        if source == target:
            report.agreements += 1
        else:
            report.disagreements.append(index)
    return report
