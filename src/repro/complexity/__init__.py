"""Complexity-theoretic framing: class registry, problem catalogue, reduction checks."""

from .classes import CLASSES, ComplexityClass, class_named, is_contained_in
from .problems import PROBLEMS, Problem, problem_named
from .reductions import ReductionCheck, ReductionReport, verify_reduction

__all__ = [
    "ComplexityClass",
    "CLASSES",
    "class_named",
    "is_contained_in",
    "Problem",
    "PROBLEMS",
    "problem_named",
    "ReductionCheck",
    "ReductionReport",
    "verify_reduction",
]
