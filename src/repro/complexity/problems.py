"""The decision and counting problems studied by the paper, as a registry.

Each :class:`Problem` records the statement, the exact complexity the paper
establishes, where the hardness reduction and the decision procedure live in
this repository, and which experiment of DESIGN.md exercises it.  The registry
is what the documentation examples and the `problem_catalog` benchmark print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .classes import class_named

__all__ = ["Problem", "PROBLEMS", "problem_named"]


@dataclass(frozen=True)
class Problem:
    """A problem studied by the paper.

    Attributes
    ----------
    name:
        Short identifier, e.g. ``"query-result-equality"``.
    statement:
        The informal statement, in the paper's notation.
    completeness:
        The class the paper proves the problem complete (or hard) for.
    hardness_source:
        The satisfiability problem the hardness reduction starts from.
    reduction_module:
        Where the executable reduction lives in this repository.
    decider_module:
        Where the decision procedure lives.
    experiment_id:
        The DESIGN.md / EXPERIMENTS.md experiment that exercises it.
    paper_reference:
        Theorem / proposition number in the paper.
    """

    name: str
    statement: str
    completeness: str
    hardness_source: str
    reduction_module: str
    decider_module: str
    experiment_id: str
    paper_reference: str

    def complexity_class(self):
        """The :class:`~repro.complexity.classes.ComplexityClass` object."""
        return class_named(self.completeness)


PROBLEMS: Dict[str, Problem] = {
    problem.name: problem
    for problem in [
        Problem(
            name="tuple-membership",
            statement="Given R, a PJ expression φ, and a tuple t, is t ∈ φ(R)?",
            completeness="NP",
            hardness_source="3SAT",
            reduction_module="repro.reductions.membership.MembershipReduction",
            decider_module="repro.decision.membership",
            experiment_id="E8",
            paper_reference="Proposition 2 + Yannakakis (1981) re-proof",
        ),
        Problem(
            name="project-join-fixpoint",
            statement="Given R and schemes Y_i, is *_i π_{Y_i}(R) = R?",
            completeness="co-NP",
            hardness_source="3UNSAT",
            reduction_module="repro.reductions.membership.FixpointReduction",
            decider_module="repro.decision.fixpoint",
            experiment_id="E8",
            paper_reference="Lemma 1 + Maier-Sagiv-Yannakakis (1981) re-proof",
        ),
        Problem(
            name="query-result-equality",
            statement="Given R, a PJ expression φ, and a relation r, is φ(R) = r?",
            completeness="DP",
            hardness_source="3SAT-3UNSAT",
            reduction_module="repro.reductions.theorem1.Theorem1Reduction",
            decider_module="repro.decision.equality",
            experiment_id="E3",
            paper_reference="Theorem 1",
        ),
        Problem(
            name="cardinality-window",
            statement="Given R, φ, and unary d1, d2, is d1 <= |φ(R)| <= d2?",
            completeness="DP",
            hardness_source="3SAT-3UNSAT",
            reduction_module="repro.reductions.theorem2.Theorem2TwoSidedReduction",
            decider_module="repro.decision.cardinality",
            experiment_id="E4",
            paper_reference="Theorem 2",
        ),
        Problem(
            name="cardinality-lower-bound",
            statement="Given R, φ, and unary d1, is d1 <= |φ(R)|?",
            completeness="NP",
            hardness_source="3SAT",
            reduction_module="repro.reductions.theorem2.Theorem2LowerBoundReduction",
            decider_module="repro.decision.cardinality",
            experiment_id="E4",
            paper_reference="Theorem 2",
        ),
        Problem(
            name="cardinality-upper-bound",
            statement="Given R, φ, and unary d2, is |φ(R)| <= d2?",
            completeness="co-NP",
            hardness_source="3UNSAT",
            reduction_module="repro.reductions.theorem2.Theorem2UpperBoundReduction",
            decider_module="repro.decision.cardinality",
            experiment_id="E4",
            paper_reference="Theorem 2",
        ),
        Problem(
            name="tuple-counting",
            statement="Given R and φ, how many tuples does φ(R) have?",
            completeness="#P",
            hardness_source="#3SAT",
            reduction_module="repro.reductions.theorem3.Theorem3Reduction",
            decider_module="repro.decision.counting",
            experiment_id="E5",
            paper_reference="Theorem 3 and its corollary",
        ),
        Problem(
            name="fixed-relation-containment",
            statement="Given R and PJ expressions φ1, φ2, is φ1(R) ⊆ φ2(R)?",
            completeness="Pi2P",
            hardness_source="Q-3SAT",
            reduction_module="repro.reductions.theorem4.Theorem4Reduction",
            decider_module="repro.decision.containment",
            experiment_id="E6",
            paper_reference="Theorem 4",
        ),
        Problem(
            name="fixed-relation-equivalence",
            statement="Given R and PJ expressions φ1, φ2, is φ1(R) = φ2(R)?",
            completeness="Pi2P",
            hardness_source="Q-3SAT",
            reduction_module="repro.reductions.theorem4.Theorem4Reduction",
            decider_module="repro.decision.containment",
            experiment_id="E6",
            paper_reference="Theorem 4",
        ),
        Problem(
            name="fixed-query-containment",
            statement="Given relations R1, R2 and a PJ expression φ, is φ(R1) ⊆ φ(R2)?",
            completeness="Pi2P",
            hardness_source="Q-3SAT",
            reduction_module="repro.reductions.theorem5.Theorem5Reduction",
            decider_module="repro.decision.containment",
            experiment_id="E7",
            paper_reference="Theorem 5",
        ),
        Problem(
            name="fixed-query-equivalence",
            statement="Given relations R1, R2 and a PJ expression φ, is φ(R1) = φ(R2)?",
            completeness="Pi2P",
            hardness_source="Q-3SAT",
            reduction_module="repro.reductions.theorem5.Theorem5Reduction",
            decider_module="repro.decision.containment",
            experiment_id="E7",
            paper_reference="Theorem 5",
        ),
    ]
}


def problem_named(name: str) -> Problem:
    """Look up a problem by name (raises ``KeyError`` listing the known names)."""
    try:
        return PROBLEMS[name]
    except KeyError:
        raise KeyError(
            f"unknown problem {name!r}; known problems: {sorted(PROBLEMS)}"
        ) from None
