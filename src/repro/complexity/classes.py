"""A registry of the complexity classes named in the paper.

The registry serves two purposes: it documents where each of the paper's
problems sits (every :class:`~repro.complexity.problems.Problem` refers to one
of these classes), and it records the inclusion structure the paper leans on
(NP ∪ co-NP ⊆ DP ⊆ Δ₂ᵖ ⊆ Σ₂ᵖ ∩ Π₂ᵖ, informally) so the test-suite can sanity
check the annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

__all__ = ["ComplexityClass", "CLASSES", "class_named", "is_contained_in"]


@dataclass(frozen=True)
class ComplexityClass:
    """A named complexity class with its description and known inclusions.

    ``contained_in`` lists classes this one is (unconditionally) included in —
    only the inclusions the paper uses are recorded, not a complete zoo.
    """

    name: str
    kind: str  # "decision" or "counting"
    description: str
    contained_in: Tuple[str, ...] = ()


CLASSES: Dict[str, ComplexityClass] = {
    cls.name: cls
    for cls in [
        ComplexityClass(
            name="P",
            kind="decision",
            description="Problems decidable in deterministic polynomial time.",
            contained_in=("NP", "co-NP"),
        ),
        ComplexityClass(
            name="NP",
            kind="decision",
            description=(
                "Problems decidable by a nondeterministic polynomial-time machine; "
                "equivalently, problems with polynomial-size certificates checkable "
                "in polynomial time."
            ),
            contained_in=("DP", "Sigma2P"),
        ),
        ComplexityClass(
            name="co-NP",
            kind="decision",
            description="Complements of NP problems (polynomial certificates of 'no').",
            contained_in=("DP", "Pi2P"),
        ),
        ComplexityClass(
            name="DP",
            kind="decision",
            description=(
                "Languages expressible as the intersection of a language in NP and a "
                "language in co-NP (Papadimitriou & Yannakakis 1982); contains both "
                "NP and co-NP."
            ),
            contained_in=("Sigma2P", "Pi2P"),
        ),
        ComplexityClass(
            name="Sigma2P",
            kind="decision",
            description=(
                "Σ₂ᵖ: problems decidable by a nondeterministic polynomial-time machine "
                "with an NP oracle."
            ),
            contained_in=("PSPACE",),
        ),
        ComplexityClass(
            name="Pi2P",
            kind="decision",
            description="Π₂ᵖ: the complements of Σ₂ᵖ problems (∀∃ alternation).",
            contained_in=("PSPACE",),
        ),
        ComplexityClass(
            name="PSPACE",
            kind="decision",
            description="Problems decidable in polynomial space.",
        ),
        ComplexityClass(
            name="#P",
            kind="counting",
            description=(
                "Counting problems: the number of accepting computations of a "
                "nondeterministic polynomial-time machine (Valiant 1979)."
            ),
        ),
    ]
}


def class_named(name: str) -> ComplexityClass:
    """Look up a class by name (raises ``KeyError`` with the known names listed)."""
    try:
        return CLASSES[name]
    except KeyError:
        raise KeyError(
            f"unknown complexity class {name!r}; known classes: {sorted(CLASSES)}"
        ) from None


def is_contained_in(inner: str, outer: str) -> bool:
    """Whether the registry records (transitively) that ``inner ⊆ outer``."""
    if inner == outer:
        return True
    seen = set()
    frontier = [inner]
    while frontier:
        current = frontier.pop()
        if current == outer:
            return True
        if current in seen:
            continue
        seen.add(current)
        frontier.extend(class_named(current).contained_in)
    return False
