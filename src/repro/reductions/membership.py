"""The NP / co-NP side results re-proved directly by the paper.

Both follow immediately from Lemma 1 / Proposition 1 and Proposition 2:

* **Tuple membership (Yannakakis 1981).**  Given a relation ``R``, a tuple
  ``t`` and relation schemes ``X, Y_i``, testing ``t ∈ π_X(*_i π_{Y_i}(R))``
  is NP-complete.  The reduction from 3SAT: ``G`` is satisfiable iff
  ``u_G ∈ π_Y(φ_G(R_G))`` — and ``φ_G`` is itself of the ``*_i π_{Y_i}`` form.

* **Project-join fixpoint (Maier–Sagiv–Yannakakis 1981).**  Given ``R`` and
  schemes ``Y_i``, testing ``*_i π_{Y_i}(R) = R`` is co-NP-complete.  The
  reduction from 3UNSAT: ``G`` is unsatisfiable iff ``φ_G(R_G) = R_G``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..algebra.relation import Relation
from ..algebra.schema import RelationScheme
from ..algebra.tuples import RelationTuple
from ..expressions.ast import Expression, Projection
from ..sat.cnf import CNFFormula
from ..sat.solver import is_satisfiable
from .rg import RGConstruction

__all__ = [
    "TupleMembershipInstance",
    "ProjectJoinFixpointInstance",
    "MembershipReduction",
    "FixpointReduction",
]


@dataclass(frozen=True)
class TupleMembershipInstance:
    """An instance of the tuple-membership problem ``t ∈ π_X(*_i π_{Y_i}(R))``."""

    relation: Relation
    target_scheme: RelationScheme
    projection_schemes: Tuple[RelationScheme, ...]
    tuple: RelationTuple


@dataclass(frozen=True)
class ProjectJoinFixpointInstance:
    """An instance of the fixpoint problem ``*_i π_{Y_i}(R) = R``."""

    relation: Relation
    projection_schemes: Tuple[RelationScheme, ...]


class MembershipReduction:
    """3SAT -> tuple membership: ``G`` satisfiable iff ``u_G ∈ π_Y(φ_G(R_G))``."""

    def __init__(self, formula: CNFFormula, operand_name: str = "R"):
        self._construction = RGConstruction(formula, operand_name=operand_name)

    @property
    def construction(self) -> RGConstruction:
        """The underlying R_G construction."""
        return self._construction

    def instance(self) -> TupleMembershipInstance:
        """The produced membership instance."""
        return TupleMembershipInstance(
            relation=self._construction.relation,
            target_scheme=self._construction.pair_scheme,
            projection_schemes=tuple(self._construction.projection_schemes()),
            tuple=self._construction.u_g_tuple(),
        )

    def expression(self) -> Expression:
        """The membership query as an expression: ``π_Y(φ_G)``."""
        return self._construction.pair_projection_expression()

    def expected_yes(self) -> bool:
        """Ground truth from the SAT solver."""
        return is_satisfiable(self._construction.formula)


class FixpointReduction:
    """3UNSAT -> project-join fixpoint: ``G`` unsatisfiable iff ``φ_G(R_G) = R_G``."""

    def __init__(self, formula: CNFFormula, operand_name: str = "R"):
        self._construction = RGConstruction(formula, operand_name=operand_name)

    @property
    def construction(self) -> RGConstruction:
        """The underlying R_G construction."""
        return self._construction

    def instance(self) -> ProjectJoinFixpointInstance:
        """The produced fixpoint instance."""
        return ProjectJoinFixpointInstance(
            relation=self._construction.relation,
            projection_schemes=tuple(self._construction.projection_schemes()),
        )

    def expression(self) -> Expression:
        """The project-join mapping as an expression (``φ_G`` itself)."""
        return self._construction.expression

    def expected_yes(self) -> bool:
        """Ground truth: the fixpoint holds iff the formula is unsatisfiable."""
        return not is_satisfiable(self._construction.formula)
