"""Theorem 1: query-result equality testing is DP-complete.

Reduction from 3SAT-3UNSAT.  Given two 3CNF formulas ``G`` and ``G'``:

* build ``R_G`` over scheme ``T`` and ``R_{G'}`` over a disjoint (primed)
  scheme ``T'``;
* the instance relation is ``R_{G,G'} = R_G * R_{G'}`` (a cartesian product,
  since the schemes are disjoint);
* the instance query is ``φ_{G,G'} = π_Y(φ_G) * π_{Y'}(φ_{G'})`` — each copy's
  expression projected onto its pair columns, joined (again a product);
* the conjectured result is ``r_{G,G'} = (π_Y(R_G) ∪ {u_G}) * π_{Y'}(R_{G'})``.

Then ``φ_{G,G'}(R_{G,G'}) = r_{G,G'}`` **iff** ``G`` is satisfiable and ``G'``
is unsatisfiable — i.e. iff the 3SAT-3UNSAT instance is a *yes* instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..algebra.operations import cartesian_product
from ..algebra.relation import Relation
from ..expressions.ast import Expression, Join, Projection
from ..sat.cnf import CNFFormula
from ..sat.solver import is_satisfiable
from .rg import RGConstruction

__all__ = ["SatUnsatPair", "Theorem1Reduction"]

#: Attribute-name suffix used for the primed (G') copy of the construction.
PRIME_SUFFIX = "p"


@dataclass(frozen=True)
class SatUnsatPair:
    """A 3SAT-3UNSAT instance: is ``first`` satisfiable and ``second`` unsatisfiable?"""

    first: CNFFormula
    second: CNFFormula

    def is_yes_instance(self) -> bool:
        """Ground truth via the DPLL solver (used to verify the reduction)."""
        return is_satisfiable(self.first) and not is_satisfiable(self.second)


class Theorem1Reduction:
    """Materialises the Theorem 1 reduction for one 3SAT-3UNSAT instance."""

    def __init__(self, pair: SatUnsatPair, operand_name: str = "R"):
        self._pair = pair
        self._first = RGConstruction(pair.first, suffix="", operand_name=operand_name)
        self._second = RGConstruction(
            pair.second, suffix=PRIME_SUFFIX, operand_name=operand_name
        )
        self._operand_name = operand_name

    # -- the three components of the produced instance ----------------------

    @property
    def pair(self) -> SatUnsatPair:
        """The source 3SAT-3UNSAT instance."""
        return self._pair

    @property
    def first_construction(self) -> RGConstruction:
        """The unprimed construction (for ``G``)."""
        return self._first

    @property
    def second_construction(self) -> RGConstruction:
        """The primed construction (for ``G'``)."""
        return self._second

    def relation(self) -> Relation:
        """The combined relation ``R_{G,G'} = R_G * R_{G'}`` over ``T ∪ T'``."""
        return cartesian_product(self._first.relation, self._second.relation).with_name(
            "R_G_Gp"
        )

    def expression(self) -> Expression:
        """The combined query ``φ_{G,G'} = π_Y(φ_G) * π_{Y'}(φ_{G'})``.

        The operand of both sub-expressions is re-declared over the combined
        scheme ``T ∪ T'`` (as the paper specifies: the expression "takes as
        argument the relation scheme T ∪ T'"), which is achieved by rebuilding
        each φ over the combined operand and projecting every factor onto the
        same schemes as before — projections from ``T ∪ T'`` onto subsets of
        ``T`` see exactly ``R_G``'s columns.
        """
        combined_scheme = self.relation().scheme
        first = self._rebuild_over(self._first, combined_scheme)
        second = self._rebuild_over(self._second, combined_scheme)
        return Join(
            [
                Projection(self._first.pair_scheme, first),
                Projection(self._second.pair_scheme, second),
            ]
        )

    def conjectured_result(self) -> Relation:
        """The conjectured result ``r_{G,G'} = (π_Y(R_G) ∪ {u_G}) * π_{Y'}(R_{G'})``."""
        left = self._first.relation.project(self._first.pair_scheme).insert(
            self._first.u_g_tuple()
        )
        right = self._second.relation.project(self._second.pair_scheme)
        return cartesian_product(left, right).with_name("r_G_Gp")

    def _rebuild_over(self, construction: RGConstruction, scheme) -> Expression:
        """Rebuild ``φ_G`` with its operand declared over the combined scheme."""
        from ..expressions.ast import Operand  # local import to avoid cycle noise

        base = Operand(self._operand_name, scheme)
        factors = [Projection(construction.clause_scheme, base)]
        for clause_index in range(1, construction.formula.num_clauses + 1):
            factors.append(
                Projection(construction.clause_projection_scheme(clause_index), base)
            )
        return Join(factors)

    # -- ground truth ----------------------------------------------------------

    def expected_equal(self) -> bool:
        """Whether the produced equality instance should be a *yes* instance.

        By Theorem 1 this is exactly ``pair.is_yes_instance()``; exposed
        separately so benchmarks can record both sides of the iff.
        """
        return self._pair.is_yes_instance()

    def instance(self) -> Tuple[Relation, Expression, Relation]:
        """The produced instance ``(R, φ, r)`` of the equality problem."""
        return self.relation(), self.expression(), self.conjectured_result()
