"""The value symbols and attribute-naming conventions of the R_G construction.

The paper builds its relations from the symbols ``0, 1, e, x, a, b`` (plus the
``c, c_j`` constants of Theorem 4) and remarks that reusing the same symbol in
different columns is irrelevant — one could rename per column.  This module
fixes the concrete Python values used for those symbols and the attribute
names used for the columns:

* clause columns ``F_j``            -> ``"F1", "F2", ...``
* variable columns ``X_i``          -> ``"X1", "X2", ...`` (by position of the
  variable in the formula's variable order)
* pair columns ``Y_{i,l}`` (i < l)  -> ``"Y_1_2", "Y_1_3", ...``
* the ``S`` column                  -> ``"S"``
* the ``U`` column of Theorem 4     -> ``"U"``

Attribute names avoid ``{}`` and commas so the textual expression syntax of
:mod:`repro.expressions.parser` can round-trip every constructed expression.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "TRUE",
    "FALSE",
    "BLANK",
    "MARK",
    "SAT_TAG",
    "EXTRA_TAG",
    "COMMON_U",
    "clause_attribute",
    "variable_attribute",
    "pair_attribute",
    "clause_u_value",
    "S_ATTRIBUTE",
    "U_ATTRIBUTE",
]

#: The truth value 1 in variable columns.
TRUE = 1

#: The truth value 0 in variable columns.
FALSE = 0

#: The paper's "e" symbol: a column not constrained by this tuple.
BLANK = "e"

#: The paper's "x" symbol used in the Y_{i,l} columns.
MARK = "x"

#: The paper's "a" symbol in the S column (ordinary tuples).
SAT_TAG = "a"

#: The paper's "b" symbol in the S column (the special tuple v).
EXTRA_TAG = "b"

#: The paper's "c" symbol in the U column (Theorem 4) for ordinary tuples.
COMMON_U = "c"

#: The attribute name of the S column.
S_ATTRIBUTE = "S"

#: The attribute name of the U column added by the Theorem 4 construction.
U_ATTRIBUTE = "U"


def clause_attribute(clause_index: int, suffix: str = "") -> str:
    """The attribute name for clause column ``F_j`` (1-based ``clause_index``)."""
    return f"F{clause_index}{suffix}"


def variable_attribute(variable_index: int, suffix: str = "") -> str:
    """The attribute name for variable column ``X_i`` (1-based ``variable_index``)."""
    return f"X{variable_index}{suffix}"


def pair_attribute(first: int, second: int, suffix: str = "") -> str:
    """The attribute name for the pair column ``Y_{i,l}``, ``i < l`` (1-based)."""
    low, high = (first, second) if first < second else (second, first)
    if low == high:
        raise ValueError("pair attributes need two distinct clause indices")
    return f"Y_{low}_{high}{suffix}"


def clause_u_value(clause_index: int) -> str:
    """The distinct ``c_j`` constant placed in the U column of the tuple ξ_j."""
    return f"c{clause_index}"
