"""Theorem 4: query containment / equivalence w.r.t. a fixed relation is Π₂ᵖ-complete.

Reduction from Q-3SAT.  Given ``∀X ∃X' G`` (with the Proposition 4
restrictions in force — the construction applies the guard-clause
transformation automatically when they are not):

* build ``R'_G``: the relation ``R_G`` plus, for every clause, the tuple ξ_j
  encoding the clause's unique *falsifying* assignment, all extended with a
  ``U`` column (ordinary tuples carry the common constant ``c``, each ξ_j its
  own constant ``c_j``);
* build the two queries

  - ``Q1 = π_X(φ¹_G)`` where ``φ¹_G`` ignores ``U`` — because of the extra
    tuples it "considers G as a tautology", so ``Q1(R'_G)`` contains *every*
    truth assignment of the universal variables (plus blank-containing rows);
  - ``Q2 = π_X(φ²_G)`` where ``φ²_G`` keeps ``U`` in every factor — the
    distinct ``c_j`` values prevent the falsifying tuples from combining, so
    ``Q2(R'_G)`` contains exactly the restrictions of *satisfying* assignments
    (plus the same blank-containing rows).

Then ``∀X ∃X' G`` is true **iff** ``Q1(R'_G) ⊆ Q2(R'_G)`` **iff**
``Q1(R'_G) = Q2(R'_G)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..algebra.relation import Relation
from ..algebra.schema import RelationScheme
from ..expressions.ast import Expression, Projection
from ..qbf.evaluator import evaluate_by_expansion
from ..qbf.instances import QThreeSatInstance
from .rg import RGConstruction

__all__ = ["Theorem4Reduction", "FixedRelationComparisonInstance"]


@dataclass(frozen=True)
class FixedRelationComparisonInstance:
    """An instance of the fixed-relation query-comparison problem.

    The question is whether ``first(relation) ⊆ second(relation)`` (or ``=``,
    for the equivalence variant).
    """

    relation: Relation
    first: Expression
    second: Expression


class Theorem4Reduction:
    """Materialises the Q-3SAT -> fixed-relation comparison reduction.

    Instances violating the *first* Proposition 4 restriction (the universal
    set is contained in some clause's variable set) are repaired with the
    guard-clause transformation, which preserves the truth value.  Instances
    violating the *second* restriction (the universal set contains some
    clause's variable set) are trivially false — the assignment falsifying
    that clause is universal — so, as a polynomial-time reduction must, they
    are mapped to a fixed no-instance (the canonical false gadget).
    """

    def __init__(self, instance: QThreeSatInstance, operand_name: str = "R"):
        self._source_instance = instance
        self._trivially_false = instance.universal_contains_some_clause()
        if self._trivially_false:
            from ..qbf.generators import canonical_false_q3sat

            instance = canonical_false_q3sat()
        elif not instance.satisfies_proposition4_restrictions():
            instance = instance.with_guard_clauses()
        self._instance = instance
        self._construction = RGConstruction(instance.formula, operand_name=operand_name)
        self._universal_scheme = self._construction.columns_for_variables(
            instance.universal
        )

    # -- accessors --------------------------------------------------------------

    @property
    def qbf_instance(self) -> QThreeSatInstance:
        """The (possibly repaired) Q-3SAT instance actually encoded."""
        return self._instance

    @property
    def source_instance(self) -> QThreeSatInstance:
        """The Q-3SAT instance the reduction was asked to encode."""
        return self._source_instance

    @property
    def construction(self) -> RGConstruction:
        """The underlying R_G construction (over the encoded formula)."""
        return self._construction

    @property
    def universal_scheme(self) -> RelationScheme:
        """The scheme of variable columns carrying the universal variables ``X``."""
        return self._universal_scheme

    def relation(self) -> Relation:
        """The fixed relation ``R'_G`` (with falsifying tuples and the U column)."""
        return self._construction.relation_with_u_column()

    def first_expression(self) -> Expression:
        """``Q1 = π_X(φ¹_G)`` — treats G as a tautology."""
        return Projection(self._universal_scheme, self._construction.phi_one_expression())

    def second_expression(self) -> Expression:
        """``Q2 = π_X(φ²_G)`` — picks out satisfying assignments only."""
        return Projection(self._universal_scheme, self._construction.phi_two_expression())

    def containment_instance(self) -> FixedRelationComparisonInstance:
        """The produced instance of ``Q1(R) ⊆ Q2(R)``."""
        return FixedRelationComparisonInstance(
            self.relation(), self.first_expression(), self.second_expression()
        )

    # -- ground truth ------------------------------------------------------------

    def expected_yes(self) -> bool:
        """Whether containment (equivalently, equality) should hold.

        By Theorem 4 this is exactly the truth value of ``∀X ∃X' G``, computed
        here with the independent QBF evaluator.
        """
        return evaluate_by_expansion(self._instance)

    def all_universal_assignments_relation(self) -> Relation:
        """The relation ``R_X`` of all 0/1 assignments to the universal columns.

        Used by tests to check the intermediate claim of the proof:
        ``π_X φ¹_G(R'_G) = π_X(R'_G) ∪ R_X``.
        """
        from ..sat.assignments import all_assignments

        columns = self._universal_scheme
        tuples = []
        for assignment in all_assignments(list(self._instance.universal)):
            values = {
                self._construction.variable_column(variable): int(assignment[variable])
                for variable in self._instance.universal
            }
            tuples.append(values)
        return Relation(columns, tuples, name="R_X")

    def satisfying_restrictions_relation(self) -> Relation:
        """The relation ``R_{X,G}``: satisfying assignments restricted to ``X``.

        Used by tests to check the other intermediate claim:
        ``π_X φ²_G(R'_G) = π_X(R'_G) ∪ R_{X,G}``.
        """
        from ..sat.counting import enumerate_models

        columns = self._universal_scheme
        tuples = []
        for model in enumerate_models(self._instance.formula):
            values = {
                self._construction.variable_column(variable): int(model[variable])
                for variable in self._instance.universal
            }
            tuples.append(values)
        return Relation(columns, tuples, name="R_X_G")
