"""Theorem 2: cardinality-bound testing is DP-complete (NP / co-NP for one-sided bounds).

Three reductions are packaged here:

* **Two-sided (DP-hard).**  For a 3SAT-3UNSAT pair ``(G, G')`` the Theorem 1
  product instance satisfies
  ``|φ_{G,G'}(R_{G,G'})| = |π_Y φ_G(R_G)| · |π_{Y'} φ_{G'}(R_{G'})|``, and by
  Proposition 1 each factor is ``β`` (unsatisfiable) or ``β + 1``
  (satisfiable), where ``β = |π_Y(R_G)|``.  After padding ``G'`` so that
  ``β < β'``, the pair is a yes instance **iff**
  ``|φ_{G,G'}(R_{G,G'})| = (β + 1)·β'`` **iff**
  ``β(β'+1) + 1 <= |φ_{G,G'}(R_{G,G'})| <= β(β'+1) + β'`` — giving both the
  ``d1 = d2`` and the ``d1 < d2`` forms of the theorem.

* **Lower bound (NP-hard).**  ``G`` is satisfiable iff
  ``7m + 2 <= |φ_G(R_G)|`` (Lemma 1).

* **Upper bound (co-NP-hard).**  ``G`` is unsatisfiable iff
  ``|φ_G(R_G)| <= 7m + 1``.

A note on the paper's β: the journal text sets ``β = 7m + 1`` once and uses it
both for the product bound and for the one-sided bounds.  The one-sided bounds
indeed need ``7m + 1``; the product bound, which the paper derives from
Proposition 1 (the *pair-column projection* gains exactly one tuple), needs
``β = |π_Y(R_G)| = m + 1``.  This module therefore computes β directly from the
construction (``RGConstruction.pair_projection_size``), which preserves the
intended behaviour of the reduction for every input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..algebra.relation import Relation
from ..expressions.ast import Expression
from ..sat.cnf import CNFFormula
from ..sat.solver import is_satisfiable
from ..sat.transforms import pad_with_duplicate_clauses
from .rg import RGConstruction
from .theorem1 import SatUnsatPair, Theorem1Reduction

__all__ = [
    "CardinalityBoundInstance",
    "Theorem2TwoSidedReduction",
    "Theorem2LowerBoundReduction",
    "Theorem2UpperBoundReduction",
]


@dataclass(frozen=True)
class CardinalityBoundInstance:
    """An instance of the cardinality-bound problem ``d1 <= |φ(R)| <= d2``.

    Either bound may be ``None`` to express the one-sided variants.
    """

    relation: Relation
    expression: Expression
    lower: "int | None"
    upper: "int | None"

    def holds_for(self, cardinality: int) -> bool:
        """Whether a concrete result cardinality satisfies the bounds."""
        if self.lower is not None and cardinality < self.lower:
            return False
        if self.upper is not None and cardinality > self.upper:
            return False
        return True


class Theorem2TwoSidedReduction:
    """The DP-hard two-sided reduction from 3SAT-3UNSAT."""

    def __init__(self, pair: SatUnsatPair, operand_name: str = "R"):
        first, second = pair.first, pair.second
        # Pad G' until β < β'.  Duplicating an existing clause raises the
        # clause count (and hence β' = |π_{Y'}(R_{G'})|) without changing
        # satisfiability or the model count, so the padded instance stays the
        # same size on the relational side.
        beta_first = RGConstruction(first).pair_projection_size()
        padded_second = second
        while RGConstruction(padded_second).pair_projection_size() <= beta_first:
            deficit = beta_first - RGConstruction(padded_second).pair_projection_size() + 1
            padded_second = pad_with_duplicate_clauses(padded_second, deficit)
        self._pair = SatUnsatPair(first, padded_second)
        self._theorem1 = Theorem1Reduction(self._pair, operand_name=operand_name)
        self._beta = self._theorem1.first_construction.pair_projection_size()
        self._beta_prime = self._theorem1.second_construction.pair_projection_size()

    @property
    def pair(self) -> SatUnsatPair:
        """The (padded) 3SAT-3UNSAT instance actually encoded."""
        return self._pair

    @property
    def beta(self) -> int:
        """``β = |π_Y(R_G)|`` for the first formula."""
        return self._beta

    @property
    def beta_prime(self) -> int:
        """``β' = |π_{Y'}(R_{G'})|`` for the (padded) second formula."""
        return self._beta_prime

    def exact_instance(self) -> CardinalityBoundInstance:
        """The ``d1 = d2`` instance: is ``|φ(R)|`` exactly ``(β + 1)·β'``?"""
        relation, expression, _ = self._theorem1.instance()
        target = (self._beta + 1) * self._beta_prime
        return CardinalityBoundInstance(relation, expression, target, target)

    def window_instance(self) -> CardinalityBoundInstance:
        """The ``d1 < d2`` instance: ``β(β'+1)+1 <= |φ(R)| <= β(β'+1)+β'``."""
        relation, expression, _ = self._theorem1.instance()
        lower = self._beta * (self._beta_prime + 1) + 1
        upper = self._beta * (self._beta_prime + 1) + self._beta_prime
        return CardinalityBoundInstance(relation, expression, lower, upper)

    def predicted_cardinality(self) -> int:
        """The exact product cardinality predicted from SAT ground truth."""
        left = self._beta + (1 if is_satisfiable(self._pair.first) else 0)
        right = self._beta_prime + (1 if is_satisfiable(self._pair.second) else 0)
        return left * right

    def expected_yes(self) -> bool:
        """Whether the produced bound instances should hold (the DP ground truth)."""
        return self._pair.is_yes_instance()


class Theorem2LowerBoundReduction:
    """The NP-hard lower-bound reduction: ``G`` satisfiable iff ``7m + 2 <= |φ_G(R_G)|``."""

    def __init__(self, formula: CNFFormula, operand_name: str = "R"):
        self._construction = RGConstruction(formula, operand_name=operand_name)

    @property
    def construction(self) -> RGConstruction:
        """The underlying R_G construction."""
        return self._construction

    def instance(self) -> CardinalityBoundInstance:
        """The produced lower-bound instance."""
        return CardinalityBoundInstance(
            self._construction.relation,
            self._construction.expression,
            self._construction.predicted_relation_size() + 1,
            None,
        )

    def expected_yes(self) -> bool:
        """Ground truth: the bound holds iff the formula is satisfiable."""
        return is_satisfiable(self._construction.formula)


class Theorem2UpperBoundReduction:
    """The co-NP-hard upper-bound reduction: ``G`` unsatisfiable iff ``|φ_G(R_G)| <= 7m + 1``."""

    def __init__(self, formula: CNFFormula, operand_name: str = "R"):
        self._construction = RGConstruction(formula, operand_name=operand_name)

    @property
    def construction(self) -> RGConstruction:
        """The underlying R_G construction."""
        return self._construction

    def instance(self) -> CardinalityBoundInstance:
        """The produced upper-bound instance."""
        return CardinalityBoundInstance(
            self._construction.relation,
            self._construction.expression,
            None,
            self._construction.predicted_relation_size(),
        )

    def expected_yes(self) -> bool:
        """Ground truth: the bound holds iff the formula is unsatisfiable."""
        return not is_satisfiable(self._construction.formula)
