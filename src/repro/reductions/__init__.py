"""The paper's constructions and reductions (Section 3 and 4).

* :class:`RGConstruction` — the relation ``R_G`` and expression ``φ_G``.
* :class:`Theorem1Reduction` — 3SAT-3UNSAT -> query-result equality (DP).
* :class:`Theorem2TwoSidedReduction` and friends — cardinality bounds (DP / NP / co-NP).
* :class:`Theorem3Reduction` — #3SAT -> tuple counting (#P).
* :class:`Theorem4Reduction` — Q-3SAT -> query comparison w.r.t. a fixed relation (Π₂ᵖ).
* :class:`Theorem5Reduction` — Q-3SAT -> database comparison under a fixed query (Π₂ᵖ).
* :class:`MembershipReduction` / :class:`FixpointReduction` — the NP / co-NP side results.
"""

from .membership import (
    FixpointReduction,
    MembershipReduction,
    ProjectJoinFixpointInstance,
    TupleMembershipInstance,
)
from .rg import RGConstruction
from .symbols import (
    BLANK,
    COMMON_U,
    EXTRA_TAG,
    FALSE,
    MARK,
    SAT_TAG,
    S_ATTRIBUTE,
    TRUE,
    U_ATTRIBUTE,
    clause_attribute,
    clause_u_value,
    pair_attribute,
    variable_attribute,
)
from .theorem1 import SatUnsatPair, Theorem1Reduction
from .theorem2 import (
    CardinalityBoundInstance,
    Theorem2LowerBoundReduction,
    Theorem2TwoSidedReduction,
    Theorem2UpperBoundReduction,
)
from .theorem3 import CountingInstance, Theorem3Reduction
from .theorem4 import FixedRelationComparisonInstance, Theorem4Reduction
from .theorem5 import FixedQueryComparisonInstance, Theorem5Reduction

__all__ = [
    "RGConstruction",
    "SatUnsatPair",
    "Theorem1Reduction",
    "CardinalityBoundInstance",
    "Theorem2TwoSidedReduction",
    "Theorem2LowerBoundReduction",
    "Theorem2UpperBoundReduction",
    "CountingInstance",
    "Theorem3Reduction",
    "FixedRelationComparisonInstance",
    "Theorem4Reduction",
    "FixedQueryComparisonInstance",
    "Theorem5Reduction",
    "MembershipReduction",
    "FixpointReduction",
    "TupleMembershipInstance",
    "ProjectJoinFixpointInstance",
    "TRUE",
    "FALSE",
    "BLANK",
    "MARK",
    "SAT_TAG",
    "EXTRA_TAG",
    "COMMON_U",
    "S_ATTRIBUTE",
    "U_ATTRIBUTE",
    "clause_attribute",
    "variable_attribute",
    "pair_attribute",
    "clause_u_value",
]
