"""Theorem 3 and its corollary: counting result tuples is #P-hard / #P-complete.

The reduction from #3SAT is the identity on the construction: by Lemma 1,

    ``#SAT(G) = |φ_G(R_G)| − (7m + 1)``.

So counting the tuples of a projection-join query answers #3SAT, making the
counting problem #P-hard; and since ``φ_G`` is itself of the form
``*_i π_{Y_i}(R)``, the corollary's restricted counting problem (tuples of a
join of projections of a single relation) is #P-complete — membership comes
from the "counting Turing machine" that guesses a tuple and checks each
projection, mirrored here by :class:`repro.decision.counting.TupleCounter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..algebra.relation import Relation
from ..algebra.schema import RelationScheme
from ..expressions.ast import Expression
from ..sat.cnf import CNFFormula
from ..sat.counting import count_models
from .rg import RGConstruction

__all__ = ["Theorem3Reduction", "CountingInstance"]


@dataclass(frozen=True)
class CountingInstance:
    """An instance of the tuple-counting problem: how many tuples has ``φ(R)``?"""

    relation: Relation
    expression: Expression


class Theorem3Reduction:
    """Materialises the #3SAT -> tuple-counting reduction for one formula."""

    def __init__(self, formula: CNFFormula, operand_name: str = "R"):
        self._construction = RGConstruction(formula, operand_name=operand_name)

    @property
    def construction(self) -> RGConstruction:
        """The underlying R_G construction."""
        return self._construction

    def instance(self) -> CountingInstance:
        """The produced counting instance ``(R_G, φ_G)``."""
        return CountingInstance(self._construction.relation, self._construction.expression)

    def projection_schemes(self) -> List[RelationScheme]:
        """The schemes ``Y_i`` of the corollary's restricted form ``*_i π_{Y_i}(R)``."""
        return self._construction.projection_schemes()

    def offset(self) -> int:
        """The additive offset ``7m + 1`` relating the two counts."""
        return self._construction.predicted_relation_size()

    def models_from_tuple_count(self, tuple_count: int) -> int:
        """Recover ``#SAT(G)`` from a measured ``|φ_G(R_G)|``."""
        models = tuple_count - self.offset()
        if models < 0:
            raise ValueError(
                f"tuple count {tuple_count} is below the construction size {self.offset()}; "
                "the relation/expression pair does not come from this reduction"
            )
        return models

    def expected_tuple_count(self) -> int:
        """Ground truth ``|φ_G(R_G)|`` computed from the SAT-side model counter."""
        return self.offset() + count_models(self._construction.formula)

    def expected_model_count(self) -> int:
        """Ground truth ``#SAT(G)`` from the SAT-side model counter."""
        return count_models(self._construction.formula)
