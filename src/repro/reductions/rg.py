"""The Section 3 construction: the relation R_G and the expression φ_G.

Given a 3CNF formula ``G`` with clauses ``F_1 ... F_m`` over variables
``x_1 ... x_n`` (each clause over three distinct variables, ``m >= 3``), the
paper builds:

* a relation ``R_G`` over the scheme
  ``T = F_1 ... F_m  X_1 ... X_n  Y_{1,2} ... Y_{m-1,m}  S``
  containing, for every clause ``F_j``, one tuple per satisfying assignment of
  that clause (7 tuples), plus one special tuple ``v``;
* the projection-join expression
  ``φ_G = π_F(T) * π_{T_1}(T) * ... * π_{T_m}(T)`` where
  ``T_j = F_j X_{j1} X_{j2} X_{j3} Y_{{j,1}} ... Y_{{j,m}} S``.

**Lemma 1** then states ``φ_G(R_G) = R_G ∪ R̃_G`` where ``R̃_G`` has one tuple
per satisfying truth assignment of ``G`` (all clause columns 1, all pair
columns x, S = a, and the variable columns spelling out the assignment), and
**Proposition 1** that the projection onto the pair columns gains exactly the
single tuple ``u_G`` iff ``G`` is satisfiable.

:class:`RGConstruction` materialises all of this, plus the helpers every later
reduction needs (the scheme pieces, the expected results, the ``u_G`` tuple,
and the Theorem 4/5 variants with the extra falsifying tuples and the ``U``
column).
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..algebra.relation import Relation
from ..algebra.schema import RelationScheme
from ..algebra.tuples import RelationTuple
from ..expressions.ast import Expression, Join, Operand, Projection
from ..sat.assignments import Assignment
from ..sat.cnf import CNFFormula
from ..sat.counting import enumerate_models
from .symbols import (
    BLANK,
    COMMON_U,
    EXTRA_TAG,
    MARK,
    SAT_TAG,
    S_ATTRIBUTE,
    U_ATTRIBUTE,
    clause_attribute,
    clause_u_value,
    pair_attribute,
    variable_attribute,
)

__all__ = ["RGConstruction"]


class RGConstruction:
    """The R_G / φ_G construction for one 3CNF formula.

    Parameters
    ----------
    formula:
        A strict 3CNF formula (three distinct variables per clause) with at
        least ``minimum_clauses`` clauses.  Use
        :func:`repro.sat.transforms.to_strict_three_cnf` and
        :func:`repro.sat.transforms.ensure_minimum_clauses` to normalise
        arbitrary CNF inputs first.
    suffix:
        Appended to every attribute name.  The Theorem 1 product construction
        builds two copies over *disjoint* schemes by giving the second copy a
        non-empty suffix (the paper's primed attributes).
    operand_name:
        The operand name used in the generated expressions (default ``"R"``).
    minimum_clauses:
        The paper assumes at least three clauses; lowering this is only useful
        in unit tests of degenerate cases.
    """

    def __init__(
        self,
        formula: CNFFormula,
        suffix: str = "",
        operand_name: str = "R",
        minimum_clauses: int = 3,
    ):
        formula.require_three_cnf(minimum_clauses=minimum_clauses)
        # The paper's construction is over "the variables appearing in the
        # expression": a declared variable that occurs in no clause would get
        # an X column that no projection of φ_G covers (breaking Lemma 1's
        # scheme bookkeeping) and would silently skew the Theorem 3 count, so
        # the formula is normalised to its occurring variables here.
        occurring = CNFFormula(formula.clauses)
        if set(occurring.variables) != set(formula.variables):
            formula = occurring
        self._formula = formula
        self._suffix = suffix
        self._operand_name = operand_name
        self._num_clauses = formula.num_clauses
        self._num_variables = formula.num_variables

        self._variable_index: Dict[str, int] = {
            variable: position + 1 for position, variable in enumerate(formula.variables)
        }

        self._clause_attributes = [
            clause_attribute(j, suffix) for j in range(1, self._num_clauses + 1)
        ]
        self._variable_attributes = [
            variable_attribute(i, suffix) for i in range(1, self._num_variables + 1)
        ]
        self._pair_attributes = [
            pair_attribute(i, l, suffix)
            for i in range(1, self._num_clauses + 1)
            for l in range(i + 1, self._num_clauses + 1)
        ]
        self._s_attribute = S_ATTRIBUTE + suffix
        self._u_attribute = U_ATTRIBUTE + suffix

        self._scheme = RelationScheme(
            self._clause_attributes
            + self._variable_attributes
            + self._pair_attributes
            + [self._s_attribute]
        )
        self._relation = self._build_relation()
        self._expression = self._build_expression()

    # -- basic accessors ---------------------------------------------------

    @property
    def formula(self) -> CNFFormula:
        """The source 3CNF formula ``G``."""
        return self._formula

    @property
    def suffix(self) -> str:
        """The attribute-name suffix (empty for the unprimed copy)."""
        return self._suffix

    @property
    def operand_name(self) -> str:
        """The operand name used in the generated expressions."""
        return self._operand_name

    @property
    def scheme(self) -> RelationScheme:
        """The full relation scheme ``T`` of ``R_G``."""
        return self._scheme

    @property
    def relation(self) -> Relation:
        """The constructed relation ``R_G`` (``7m + 1`` tuples)."""
        return self._relation

    @property
    def expression(self) -> Expression:
        """The expression ``φ_G = π_F(T) * *_j π_{T_j}(T)``."""
        return self._expression

    @property
    def clause_scheme(self) -> RelationScheme:
        """The scheme ``F = F_1 ... F_m``."""
        return RelationScheme(self._clause_attributes)

    @property
    def variable_scheme(self) -> RelationScheme:
        """The scheme ``X_1 ... X_n`` of the variable columns."""
        return RelationScheme(self._variable_attributes)

    @property
    def pair_scheme(self) -> RelationScheme:
        """The scheme ``Y = Y_{1,2} ... Y_{m-1,m}`` of the pair columns."""
        return RelationScheme(self._pair_attributes)

    @property
    def s_attribute(self) -> str:
        """The name of the ``S`` column."""
        return self._s_attribute

    @property
    def u_attribute(self) -> str:
        """The name of the ``U`` column used by the Theorem 4 variant."""
        return self._u_attribute

    def variable_column(self, variable: str) -> str:
        """The ``X_i`` attribute name carrying ``variable``."""
        return variable_attribute(self._variable_index[variable], self._suffix)

    def column_variable(self, attribute: str) -> str:
        """The formula variable carried by the ``X_i`` attribute ``attribute``."""
        for variable, index in self._variable_index.items():
            if variable_attribute(index, self._suffix) == attribute:
                return variable
        raise KeyError(attribute)

    def columns_for_variables(self, variables: Sequence[str]) -> RelationScheme:
        """The sub-scheme of variable columns carrying ``variables`` (given order)."""
        return RelationScheme([self.variable_column(v) for v in variables])

    def clause_projection_scheme(self, clause_index: int) -> RelationScheme:
        """The scheme ``T_j`` projected by the j-th factor of ``φ_G`` (1-based j).

        ``T_j = F_j  X_{j1} X_{j2} X_{j3}  Y_{{j,l}} for all l != j  S``.
        """
        clause = self._formula.clauses[clause_index - 1]
        attributes: List[str] = [clause_attribute(clause_index, self._suffix)]
        attributes.extend(
            self.variable_column(variable) for variable in clause.variable_tuple()
        )
        attributes.extend(
            pair_attribute(clause_index, other, self._suffix)
            for other in range(1, self._num_clauses + 1)
            if other != clause_index
        )
        attributes.append(self._s_attribute)
        return RelationScheme(attributes)

    # -- construction of R_G -----------------------------------------------

    def _blank_row(self) -> Dict[str, Hashable]:
        row: Dict[str, Hashable] = {name: BLANK for name in self._scheme.names}
        return row

    def _clause_tuples(self, clause_index: int) -> List[RelationTuple]:
        """The seven tuples μ_{jk} for clause ``F_j`` (1-based ``clause_index``)."""
        clause = self._formula.clauses[clause_index - 1]
        tuples: List[RelationTuple] = []
        for satisfying in clause.satisfying_assignments():
            row = self._blank_row()
            row[clause_attribute(clause_index, self._suffix)] = 1
            for variable, value in satisfying.items():
                row[self.variable_column(variable)] = int(value)
            for other in range(1, self._num_clauses + 1):
                if other != clause_index:
                    row[pair_attribute(clause_index, other, self._suffix)] = MARK
            row[self._s_attribute] = SAT_TAG
            tuples.append(RelationTuple(self._scheme, row))
        return tuples

    def _special_tuple(self) -> RelationTuple:
        """The tuple ``v``: all clause columns 1, S = b, everything else e."""
        row = self._blank_row()
        for attribute in self._clause_attributes:
            row[attribute] = 1
        row[self._s_attribute] = EXTRA_TAG
        return RelationTuple(self._scheme, row)

    def _build_relation(self) -> Relation:
        tuples: List[RelationTuple] = []
        for clause_index in range(1, self._num_clauses + 1):
            tuples.extend(self._clause_tuples(clause_index))
        tuples.append(self._special_tuple())
        return Relation(self._scheme, tuples, name=f"R_G{self._suffix}")

    # -- construction of φ_G -------------------------------------------------

    def _build_expression(self) -> Expression:
        base = Operand(self._operand_name, self._scheme)
        factors: List[Expression] = [Projection(self.clause_scheme, base)]
        for clause_index in range(1, self._num_clauses + 1):
            factors.append(
                Projection(self.clause_projection_scheme(clause_index), base)
            )
        return Join(factors)

    def projection_schemes(self) -> List[RelationScheme]:
        """The schemes projected by ``φ_G``, in order: ``F, T_1, ..., T_m``.

        ``φ_G`` is exactly the project-join mapping ``*_i π_{Y_i}(R)`` over
        these schemes, which is the form used by the NP / co-NP / #P side
        results.
        """
        schemes = [self.clause_scheme]
        schemes.extend(
            self.clause_projection_scheme(j) for j in range(1, self._num_clauses + 1)
        )
        return schemes

    def pair_projection_expression(self) -> Expression:
        """The expression ``π_Y(φ_G)`` of Proposition 1."""
        return Projection(self.pair_scheme, self._expression)

    # -- the Lemma 1 / Proposition 1 predictions -----------------------------

    def satisfying_assignment_tuple(self, assignment: Mapping[str, bool]) -> RelationTuple:
        """The R̃_G tuple encoding one satisfying truth assignment of ``G``.

        All clause columns carry 1, all pair columns carry x, ``S`` carries a,
        and the variable columns carry the assignment as 0/1.  The assignment
        must cover every variable of the formula (extra variables are ignored).
        """
        row = self._blank_row()
        for attribute in self._clause_attributes:
            row[attribute] = 1
        for attribute in self._pair_attributes:
            row[attribute] = MARK
        row[self._s_attribute] = SAT_TAG
        for variable in self._formula.variables:
            row[self.variable_column(variable)] = int(bool(assignment[variable]))
        return RelationTuple(self._scheme, row)

    def assignment_of_tuple(self, tup: RelationTuple) -> Optional[Assignment]:
        """Decode an R̃_G-shaped tuple back into a truth assignment.

        Returns ``None`` if any variable column does not carry 0 or 1 (i.e.
        the tuple is not of the satisfying-assignment shape of Lemma 1).
        """
        values: Dict[str, bool] = {}
        for variable in self._formula.variables:
            cell = tup[self.variable_column(variable)]
            if cell not in (0, 1):
                return None
            values[variable] = bool(cell)
        return Assignment(values)

    def satisfying_assignment_relation(self) -> Relation:
        """The relation R̃_G: one tuple per satisfying assignment of ``G``.

        Computed by enumerating the formula's models with the SAT substrate;
        Lemma 1 predicts ``φ_G(R_G) = R_G ∪ R̃_G``, which the test-suite checks
        by actually evaluating ``φ_G``.
        """
        tuples = [
            self.satisfying_assignment_tuple(model)
            for model in enumerate_models(self._formula)
        ]
        return Relation(self._scheme, tuples, name=f"R~_G{self._suffix}")

    def expected_result(self) -> Relation:
        """Lemma 1's prediction for ``φ_G(R_G)``: ``R_G ∪ R̃_G``."""
        return self._relation.union(self.satisfying_assignment_relation())

    def u_g_tuple(self) -> RelationTuple:
        """The Y-tuple ``u_G`` with every pair column equal to x (Proposition 1)."""
        return RelationTuple(
            self.pair_scheme, {name: MARK for name in self._pair_attributes}
        )

    def expected_pair_projection(self, satisfiable: bool) -> Relation:
        """Proposition 1's prediction for ``π_Y(φ_G(R_G))``.

        ``π_Y(R_G)`` when ``G`` is unsatisfiable; ``π_Y(R_G) ∪ {u_G}`` when it
        is satisfiable.
        """
        base = self._relation.project(self.pair_scheme)
        if not satisfiable:
            return base
        return base.insert(self.u_g_tuple())

    # -- size bookkeeping ------------------------------------------------------

    def predicted_relation_size(self) -> int:
        """``|R_G| = 7m + 1``."""
        return 7 * self._num_clauses + 1

    def predicted_column_count(self) -> int:
        """``m + n + m(m-1)/2 + 1`` columns (the paper's count)."""
        m, n = self._num_clauses, self._num_variables
        return m + n + m * (m - 1) // 2 + 1

    def predicted_result_size(self, model_count: int) -> int:
        """``|φ_G(R_G)| = 7m + 1 + #SAT(G)`` (Lemma 1 / Theorem 3)."""
        return self.predicted_relation_size() + model_count

    def pair_projection_size(self) -> int:
        """``|π_Y(R_G)|``: the number of distinct pair-column projections of R_G.

        For ``m >= 2`` this is ``m + 1`` (one Y-pattern per clause plus the
        all-blank pattern of the special tuple ``v``); the Theorem 2 reduction
        uses this as its β.
        """
        return len(self._relation.project(self.pair_scheme))

    # -- Theorem 4 / 5 variants --------------------------------------------------

    def falsifying_tuple(self, clause_index: int) -> RelationTuple:
        """The Theorem 4 tuple ξ_j for clause ``F_j`` over the base scheme ``T``.

        It encodes the unique truth assignment of the clause's variables that
        does *not* satisfy the clause, with the same clause / pair / S pattern
        as the ordinary clause tuples.
        """
        clause = self._formula.clauses[clause_index - 1]
        row = self._blank_row()
        row[clause_attribute(clause_index, self._suffix)] = 1
        for variable, value in clause.falsifying_assignment().items():
            row[self.variable_column(variable)] = int(value)
        for other in range(1, self._num_clauses + 1):
            if other != clause_index:
                row[pair_attribute(clause_index, other, self._suffix)] = MARK
        row[self._s_attribute] = SAT_TAG
        return RelationTuple(self._scheme, row)

    def relation_with_falsifying_tuples(self) -> Relation:
        """The Theorem 5 relation ``R''_G``: ``R_G`` plus every ξ_j (no U column)."""
        extra = [
            self.falsifying_tuple(clause_index)
            for clause_index in range(1, self._num_clauses + 1)
        ]
        return self._relation.insert(*extra).with_name(f"R''_G{self._suffix}")

    def extended_scheme_with_u(self) -> RelationScheme:
        """The Theorem 4 scheme ``T' = T ∪ {U}``."""
        return self._scheme.union(RelationScheme([self._u_attribute]))

    def relation_with_u_column(self) -> Relation:
        """The Theorem 4 relation ``R'_G``.

        ``R_G`` plus the falsifying tuples ξ_j, extended with a ``U`` column in
        which every ordinary tuple carries the common constant ``c`` and each
        ξ_j carries its own constant ``c_j``.
        """
        scheme = self.extended_scheme_with_u()
        tuples: List[RelationTuple] = [
            tup.extended({self._u_attribute: COMMON_U}) for tup in self._relation
        ]
        for clause_index in range(1, self._num_clauses + 1):
            tuples.append(
                self.falsifying_tuple(clause_index).extended(
                    {self._u_attribute: clause_u_value(clause_index)}
                )
            )
        return Relation(scheme, tuples, name=f"R'_G{self._suffix}")

    def phi_one_expression(self) -> Expression:
        """Theorem 4's ``φ¹_G`` over the extended scheme ``T'`` (ignores ``U``).

        ``φ¹_G = π_F(T') * *_j π_{T_j}(T')`` — structurally the same as
        ``φ_G`` but with the operand declared over ``T'``, so it never looks at
        the ``U`` column and therefore "considers G as a tautology" once the
        falsifying tuples are present.
        """
        base = Operand(self._operand_name, self.extended_scheme_with_u())
        factors: List[Expression] = [Projection(self.clause_scheme, base)]
        for clause_index in range(1, self._num_clauses + 1):
            factors.append(
                Projection(self.clause_projection_scheme(clause_index), base)
            )
        return Join(factors)

    def phi_two_expression(self) -> Expression:
        """Theorem 4's ``φ²_G``: like ``φ¹_G`` but each factor also keeps ``U``.

        Keeping ``U`` forces every per-clause choice to agree on the ``U``
        value, which rules out mixing the falsifying tuples ξ_j (each has its
        own ``c_j``), so the expression "picks out the satisfying truth
        assignments" exactly as ``φ_G`` does on ``R_G``.
        """
        base = Operand(self._operand_name, self.extended_scheme_with_u())
        factors: List[Expression] = [Projection(self.clause_scheme, base)]
        for clause_index in range(1, self._num_clauses + 1):
            scheme_with_u = self.clause_projection_scheme(clause_index).union(
                RelationScheme([self._u_attribute])
            )
            factors.append(Projection(scheme_with_u, base))
        return Join(factors)
