"""Theorem 5: comparing databases under a fixed query is Π₂ᵖ-complete.

Reduction from Q-3SAT, sharing the Theorem 4 machinery but swapping the roles
of "fixed" and "varying":

* the fixed *query* is ``Q = π_X(φ_G)`` (the original expression of the
  Section 3 construction, projected onto the universal-variable columns);
* the two *databases* compared are

  - ``R''_G`` — ``R_G`` plus the falsifying tuples ξ_j (no ``U`` column), and
  - ``R_G`` itself.

Because the falsifying tuples make ``Q`` treat G as a tautology on ``R''_G``
while on ``R_G`` it picks out satisfying assignments, and because (by the
second Proposition 4 restriction) ``π_X(R''_G) = π_X(R_G)``, we get:

    ``∀X ∃X' G``  iff  ``Q(R''_G) ⊆ Q(R_G)``  iff  ``Q(R''_G) = Q(R_G)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..algebra.relation import Relation
from ..algebra.schema import RelationScheme
from ..expressions.ast import Expression, Projection
from ..qbf.evaluator import evaluate_by_expansion
from ..qbf.instances import QThreeSatInstance
from .rg import RGConstruction

__all__ = ["Theorem5Reduction", "FixedQueryComparisonInstance"]


@dataclass(frozen=True)
class FixedQueryComparisonInstance:
    """An instance of the fixed-query database-comparison problem.

    The question is whether ``expression(first) ⊆ expression(second)`` (or
    ``=``, for the equivalence variant).
    """

    expression: Expression
    first: Relation
    second: Relation


class Theorem5Reduction:
    """Materialises the Q-3SAT -> fixed-query comparison reduction.

    The same instance repair as :class:`repro.reductions.theorem4.Theorem4Reduction`
    is applied: guard clauses fix violations of the first Proposition 4
    restriction, and instances that are trivially false because the universal
    set covers a whole clause are mapped to the canonical false gadget.
    """

    def __init__(self, instance: QThreeSatInstance, operand_name: str = "R"):
        self._source_instance = instance
        self._trivially_false = instance.universal_contains_some_clause()
        if self._trivially_false:
            from ..qbf.generators import canonical_false_q3sat

            instance = canonical_false_q3sat()
        elif not instance.satisfies_proposition4_restrictions():
            instance = instance.with_guard_clauses()
        self._instance = instance
        self._construction = RGConstruction(instance.formula, operand_name=operand_name)
        self._universal_scheme = self._construction.columns_for_variables(
            instance.universal
        )

    # -- accessors --------------------------------------------------------------

    @property
    def qbf_instance(self) -> QThreeSatInstance:
        """The (possibly repaired) Q-3SAT instance actually encoded."""
        return self._instance

    @property
    def source_instance(self) -> QThreeSatInstance:
        """The Q-3SAT instance the reduction was asked to encode."""
        return self._source_instance

    @property
    def construction(self) -> RGConstruction:
        """The underlying R_G construction."""
        return self._construction

    @property
    def universal_scheme(self) -> RelationScheme:
        """The scheme of variable columns carrying the universal variables ``X``."""
        return self._universal_scheme

    def expression(self) -> Expression:
        """The fixed query ``Q = π_X(φ_G)``."""
        return Projection(self._universal_scheme, self._construction.expression)

    def first_relation(self) -> Relation:
        """The database ``R''_G`` (with the falsifying tuples)."""
        return self._construction.relation_with_falsifying_tuples()

    def second_relation(self) -> Relation:
        """The database ``R_G`` (the plain construction)."""
        return self._construction.relation

    def containment_instance(self) -> FixedQueryComparisonInstance:
        """The produced instance of ``Q(R''_G) ⊆ Q(R_G)``."""
        return FixedQueryComparisonInstance(
            self.expression(), self.first_relation(), self.second_relation()
        )

    # -- ground truth ------------------------------------------------------------

    def expected_yes(self) -> bool:
        """Whether containment (equivalently, equality) should hold.

        By Theorem 5 this is exactly the truth value of ``∀X ∃X' G``.
        """
        return evaluate_by_expansion(self._instance)
