"""repro — reproduction of Cosmadakis (1983), "The Complexity of Evaluating Relational Queries".

The package implements the relational-algebra substrate (projection/join
queries over finite relations), the Boolean-satisfiability substrate, the
paper's R_G / φ_G constructions and every reduction of Theorems 1-5, plus the
decision procedures, analysis tooling and workload generators used by the
benchmark harness.

The supported entry point is the :mod:`repro.api` facade, re-exported here:
``repro.connect(database)`` (or ``repro.Session``) opens a session over named
relations, ``session.prepare(query)`` parses/validates/compiles once, and the
returned ``PreparedQuery`` executes on any evaluator backend behind one
``QueryResult`` / ``UnifiedTrace`` shape — see ``docs/API.md``.  The
per-generation evaluator classes remain importable from their subpackages
but are considered internal.

Subpackages
-----------
``repro.api``
    The unified Session / PreparedQuery facade over every evaluator backend.
``repro.algebra``
    Relational model: schemes, tuples, relations, databases, operations.
``repro.expressions``
    Projection-join expression AST, parser, evaluators, optimiser.
``repro.engine``
    Streaming query-execution engine: statistics catalog, physical
    operators, cost-based planner, ``EngineEvaluator``.
``repro.obs``
    Observability: span tracing, the metrics registry (histograms /
    gauges / counters), the structured event log, and the JSONL /
    Prometheus exporters behind ``BackendConfig(observe=...)``.
``repro.server``
    The networked serving tier: an asyncio HTTP front with admission
    control and a cross-session memory-budget scheduler, dispatching to
    worker processes holding warm sessions (``repro serve``,
    ``docs/SERVER.md``).
``repro.tableaux``
    Tableaux, homomorphisms, conjunctive-query containment (Proposition 2).
``repro.sat``
    CNF formulas, DPLL solving, model counting, generators.
``repro.qbf``
    Q-3SAT (∀∃) instances and evaluators (Theorems 4-5).
``repro.reductions``
    The paper's constructions: R_G, φ_G, Theorems 1-5 reductions.
``repro.decision``
    Decision procedures and certificate verifiers for the studied problems.
``repro.complexity``
    Problem/reduction framework and complexity-class registry.
``repro.analysis``
    Instrumentation and intermediate-result blow-up analysis.
``repro.workloads``
    Benchmark workload generators, including the paper's worked example.
"""

__version__ = "1.3.0"

from .api import (
    BACKENDS,
    BackendConfig,
    ObserveConfig,
    PreparedQuery,
    QueryResult,
    Session,
    SessionClosedError,
    SessionError,
    TraceLike,
    UnifiedTrace,
    UnknownBackendError,
    connect,
)

__all__ = [
    "__version__",
    "BACKENDS",
    "BackendConfig",
    "ObserveConfig",
    "Session",
    "connect",
    "PreparedQuery",
    "QueryResult",
    "TraceLike",
    "UnifiedTrace",
    "SessionError",
    "SessionClosedError",
    "UnknownBackendError",
]
