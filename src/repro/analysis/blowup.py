"""Intermediate-result blow-up analysis (the introduction's headline claim).

The paper's framing result is that, unlike ordinary integer algebra,
relational algebra admits expressions whose *intermediate* results are
inherently much larger than both the input and the (polynomially bounded)
output.  :func:`analyze_blowup` measures exactly that on a concrete
relation/expression pair by running the instrumented evaluator, and
optionally the optimising evaluator and the streaming engine for comparison;
:func:`blowup_sweep` repeats the measurement over a family and tabulates
growth.

Since the :mod:`repro.api` facade landed, the measurement itself is one
mixed-backend serving session: the query is prepared once per backend on a
single :class:`~repro.api.Session` (so the engine run shares that session's
budget/worker configuration and pool teardown) and each backend's
:class:`~repro.api.UnifiedTrace` supplies the peaks.  Instantiating the
per-generation evaluator classes directly for this purpose is deprecated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..api import Session
from ..expressions.ast import Expression
from ..expressions.evaluator import ArgumentLike

__all__ = ["BlowupMeasurement", "analyze_blowup", "blowup_sweep"]


@dataclass(frozen=True)
class BlowupMeasurement:
    """Peak intermediate sizes of one evaluation, naive vs optimised.

    ``label`` identifies the instance (e.g. "m=4, n=6"); the remaining fields
    are tuple counts.
    """

    label: str
    input_cardinality: int
    output_cardinality: int
    naive_peak: int
    naive_total: int
    optimized_peak: Optional[int]
    optimized_total: Optional[int]
    #: Peak rows simultaneously resident in the streaming engine's state
    #: (hash tables, dedup sets, result accumulator) — ``None`` when the
    #: engine comparison was not requested.
    engine_peak_live: Optional[int] = None

    @property
    def naive_blowup_vs_input(self) -> float:
        """Peak naive intermediate size divided by input size."""
        return self.naive_peak / self.input_cardinality if self.input_cardinality else 0.0

    @property
    def naive_blowup_vs_output(self) -> float:
        """Peak naive intermediate size divided by output size."""
        return self.naive_peak / self.output_cardinality if self.output_cardinality else 0.0

    @property
    def optimizer_gain(self) -> Optional[float]:
        """How much smaller the optimised peak is (naive_peak / optimized_peak)."""
        if self.optimized_peak in (None, 0):
            return None
        return self.naive_peak / self.optimized_peak

    @property
    def engine_gain(self) -> Optional[float]:
        """How much smaller the engine's live peak is (naive_peak / engine_peak_live)."""
        if self.engine_peak_live in (None, 0):
            return None
        return self.naive_peak / self.engine_peak_live

    def as_row(self) -> Dict[str, float]:
        """A flat dict for tabular output."""
        row: Dict[str, float] = {
            "input": float(self.input_cardinality),
            "output": float(self.output_cardinality),
            "naive_peak": float(self.naive_peak),
            "naive_total": float(self.naive_total),
            "blowup_vs_input": self.naive_blowup_vs_input,
            "blowup_vs_output": self.naive_blowup_vs_output,
        }
        if self.optimized_peak is not None:
            row["optimized_peak"] = float(self.optimized_peak)
            row["optimizer_gain"] = float(self.optimizer_gain or 0.0)
        if self.engine_peak_live is not None:
            row["engine_peak_live"] = float(self.engine_peak_live)
            row["engine_gain"] = float(self.engine_gain or 0.0)
        return row


def analyze_blowup(
    expression: Expression,
    arguments: ArgumentLike,
    label: str = "",
    compare_optimizer: bool = True,
    compare_engine: bool = False,
    engine_budget: "int | None" = None,
    engine_workers: int = 1,
) -> BlowupMeasurement:
    """Measure peak intermediate sizes for one evaluation.

    With ``compare_engine`` the streaming engine also runs the query; its
    result is checked against the naive evaluation and its peak *live* row
    count — the streaming analogue of peak materialised cardinality — is
    recorded in :attr:`BlowupMeasurement.engine_peak_live`.
    ``engine_budget`` (rows) makes that run memory-budgeted (Grace-hash
    spilling) and ``engine_workers`` > 1 runs the parallel probe stage —
    the cross-check against the naive result still applies, so the CLI's
    ``--memory-budget``/``--workers`` sweeps double as correctness checks.

    All runs go through one mixed-backend :class:`~repro.api.Session`, so
    the engine's pools/budget are torn down with the measurement.
    """
    with Session(
        arguments,
        backend="instrumented",
        budget=engine_budget,
        workers=engine_workers,
    ) as session:
        naive = session.prepare(expression, backend="instrumented").execute()
        naive_trace = naive.trace
        optimized_peak: Optional[int] = None
        optimized_total: Optional[int] = None
        if compare_optimizer:
            optimized = session.prepare(expression, backend="optimized").execute()
            if not optimized.set_equal(naive):
                raise AssertionError(
                    "optimised evaluation disagreed with naive evaluation; "
                    "this indicates a bug in the optimiser rewrites"
                )
            optimized_peak = optimized.trace.peak_intermediate_cardinality
            optimized_total = optimized.trace.total_intermediate_tuples
        engine_peak_live: Optional[int] = None
        if compare_engine:
            engine = session.prepare(expression, backend="engine").execute()
            if not engine.set_equal(naive):
                raise AssertionError(
                    "engine evaluation disagreed with naive evaluation; "
                    "this indicates a bug in the streaming operators or planner"
                )
            engine_peak_live = engine.trace.peak_live_rows
    return BlowupMeasurement(
        label=label,
        input_cardinality=naive_trace.input_cardinality,
        output_cardinality=naive_trace.result_cardinality,
        naive_peak=naive_trace.peak_intermediate_cardinality,
        naive_total=naive_trace.total_intermediate_tuples,
        optimized_peak=optimized_peak,
        optimized_total=optimized_total,
        engine_peak_live=engine_peak_live,
    )


def blowup_sweep(
    instances: Sequence[Tuple[str, Expression, ArgumentLike]],
    compare_optimizer: bool = True,
    compare_engine: bool = False,
    engine_budget: "int | None" = None,
    engine_workers: int = 1,
) -> List[BlowupMeasurement]:
    """Measure a family of (label, expression, arguments) instances."""
    return [
        analyze_blowup(
            expression,
            arguments,
            label=label,
            compare_optimizer=compare_optimizer,
            compare_engine=compare_engine,
            engine_budget=engine_budget,
            engine_workers=engine_workers,
        )
        for label, expression, arguments in instances
    ]
