"""Intermediate-result blow-up analysis (the introduction's headline claim).

The paper's framing result is that, unlike ordinary integer algebra,
relational algebra admits expressions whose *intermediate* results are
inherently much larger than both the input and the (polynomially bounded)
output.  :func:`analyze_blowup` measures exactly that on a concrete
relation/expression pair by running the naive instrumented evaluator, and
optionally the optimising evaluator for comparison; :func:`blowup_sweep`
repeats the measurement over a family and tabulates growth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..algebra.relation import Relation
from ..expressions.ast import Expression
from ..expressions.evaluator import ArgumentLike, EvaluationTrace, InstrumentedEvaluator
from ..expressions.optimizer import OptimizedEvaluator

__all__ = ["BlowupMeasurement", "analyze_blowup", "blowup_sweep"]


@dataclass(frozen=True)
class BlowupMeasurement:
    """Peak intermediate sizes of one evaluation, naive vs optimised.

    ``label`` identifies the instance (e.g. "m=4, n=6"); the remaining fields
    are tuple counts.
    """

    label: str
    input_cardinality: int
    output_cardinality: int
    naive_peak: int
    naive_total: int
    optimized_peak: Optional[int]
    optimized_total: Optional[int]

    @property
    def naive_blowup_vs_input(self) -> float:
        """Peak naive intermediate size divided by input size."""
        return self.naive_peak / self.input_cardinality if self.input_cardinality else 0.0

    @property
    def naive_blowup_vs_output(self) -> float:
        """Peak naive intermediate size divided by output size."""
        return self.naive_peak / self.output_cardinality if self.output_cardinality else 0.0

    @property
    def optimizer_gain(self) -> Optional[float]:
        """How much smaller the optimised peak is (naive_peak / optimized_peak)."""
        if self.optimized_peak in (None, 0):
            return None
        return self.naive_peak / self.optimized_peak

    def as_row(self) -> Dict[str, float]:
        """A flat dict for tabular output."""
        row: Dict[str, float] = {
            "input": float(self.input_cardinality),
            "output": float(self.output_cardinality),
            "naive_peak": float(self.naive_peak),
            "naive_total": float(self.naive_total),
            "blowup_vs_input": self.naive_blowup_vs_input,
            "blowup_vs_output": self.naive_blowup_vs_output,
        }
        if self.optimized_peak is not None:
            row["optimized_peak"] = float(self.optimized_peak)
            row["optimizer_gain"] = float(self.optimizer_gain or 0.0)
        return row


def analyze_blowup(
    expression: Expression,
    arguments: ArgumentLike,
    label: str = "",
    compare_optimizer: bool = True,
) -> BlowupMeasurement:
    """Measure peak intermediate sizes for one evaluation."""
    naive_result, naive_trace = InstrumentedEvaluator().evaluate(expression, arguments)
    optimized_peak: Optional[int] = None
    optimized_total: Optional[int] = None
    if compare_optimizer:
        optimized_result, optimized_trace = OptimizedEvaluator().evaluate(
            expression, arguments
        )
        if optimized_result != naive_result:
            raise AssertionError(
                "optimised evaluation disagreed with naive evaluation; "
                "this indicates a bug in the optimiser rewrites"
            )
        optimized_peak = optimized_trace.peak_intermediate_cardinality
        optimized_total = optimized_trace.total_intermediate_tuples
    return BlowupMeasurement(
        label=label,
        input_cardinality=naive_trace.input_cardinality,
        output_cardinality=naive_trace.result_cardinality,
        naive_peak=naive_trace.peak_intermediate_cardinality,
        naive_total=naive_trace.total_intermediate_tuples,
        optimized_peak=optimized_peak,
        optimized_total=optimized_total,
    )


def blowup_sweep(
    instances: Sequence[Tuple[str, Expression, ArgumentLike]],
    compare_optimizer: bool = True,
) -> List[BlowupMeasurement]:
    """Measure a family of (label, expression, arguments) instances."""
    return [
        analyze_blowup(expression, arguments, label=label, compare_optimizer=compare_optimizer)
        for label, expression, arguments in instances
    ]
