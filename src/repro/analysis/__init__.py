"""Measurement and analysis tooling used by the benchmark harness."""

from .blowup import BlowupMeasurement, analyze_blowup, blowup_sweep
from .statistics import GrowthFit, fit_exponential_growth, format_table, geometric_mean

__all__ = [
    "BlowupMeasurement",
    "analyze_blowup",
    "blowup_sweep",
    "GrowthFit",
    "fit_exponential_growth",
    "format_table",
    "geometric_mean",
]
