"""Small statistics helpers for the benchmark harness.

Pure-Python (no numpy dependency in the library itself) implementations of the
few aggregates the harness reports: geometric means, simple linear regression
in log space to fit exponential growth laws, and a fixed-width table renderer
so every benchmark prints its rows the same way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = ["geometric_mean", "fit_exponential_growth", "GrowthFit", "format_table"]


def geometric_mean(values: Iterable[float]) -> float:
    """The geometric mean of positive values (0.0 for an empty sequence)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class GrowthFit:
    """The result of fitting ``y ≈ a * base**x`` by least squares in log space."""

    base: float
    prefactor: float
    r_squared: float

    def predict(self, x: float) -> float:
        """The fitted value at ``x``."""
        return self.prefactor * (self.base ** x)


def fit_exponential_growth(points: Sequence[Tuple[float, float]]) -> Optional[GrowthFit]:
    """Fit ``y ≈ a * b**x`` to (x, y) points with y > 0.

    Returns ``None`` when fewer than two usable points exist.  Used by the
    blow-up benchmark to report the measured growth base of peak intermediate
    sizes as the construction scales.
    """
    usable = [(x, math.log(y)) for x, y in points if y > 0]
    if len(usable) < 2:
        return None
    n = len(usable)
    mean_x = sum(x for x, _ in usable) / n
    mean_log_y = sum(log_y for _, log_y in usable) / n
    ss_xx = sum((x - mean_x) ** 2 for x, _ in usable)
    if ss_xx == 0:
        return None
    ss_xy = sum((x - mean_x) * (log_y - mean_log_y) for x, log_y in usable)
    slope = ss_xy / ss_xx
    intercept = mean_log_y - slope * mean_x
    ss_total = sum((log_y - mean_log_y) ** 2 for _, log_y in usable)
    ss_residual = sum(
        (log_y - (slope * x + intercept)) ** 2 for x, log_y in usable
    )
    r_squared = 1.0 if ss_total == 0 else 1.0 - ss_residual / ss_total
    return GrowthFit(base=math.exp(slope), prefactor=math.exp(intercept), r_squared=r_squared)


def format_table(
    rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None
) -> str:
    """Render a list of dict rows as an aligned text table.

    Column order follows ``columns`` when given, otherwise the key order of the
    first row.  Floats are shown with three decimals; other values with
    ``str``.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    cells = [[str(c) for c in columns]]
    for row in rows:
        cells.append([render(row.get(c, "")) for c in columns])
    widths = [max(len(line[i]) for line in cells) for i in range(len(columns))]
    lines = ["  ".join(cell.ljust(width) for cell, width in zip(cells[0], widths))]
    lines.append("  ".join("-" * width for width in widths))
    for line in cells[1:]:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)
